// Ablation (Section 3.1.4 claim): queries against a partially materialized
// ("dirty") column run through COALESCE(col, extract(reservoir)) and should
// see at most a modest slowdown (the paper observed <=10%). We freeze the
// materializer at several completion fractions and measure the same query.

#include <cstdio>

#include "bench/bench_util.h"
#include "sinew/sinew_db.h"
#include "workloads/nobench/generator.h"
#include "workloads/nobench/runners.h"

namespace nb = sinew::workloads::nobench;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

int main() {
  PrintHeader("Ablation: query cost vs. materialization progress (dirty "
              "columns + COALESCE)");
  nb::Config config;
  config.num_records = Scaled(40000);
  std::vector<sinew::Value> docs = nb::Generate(config);

  sinew::SinewDb db;
  if (!db.LoadDocuments(nb::kTableName, docs).ok()) {
    std::printf("load failed\n");
    return 1;
  }
  if (!db.ForceMaterialization(nb::kTableName, "num", true).ok()) {
    std::printf("force materialization failed\n");
    return 1;
  }

  const std::string query =
      "SELECT COUNT(*) FROM nobench_main WHERE num BETWEEN 100 AND " +
      std::to_string(config.num_records / 2);
  const double fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::printf("%-14s %12s %10s\n", "materialized", "query (ms)", "rows");
  uint64_t done = 0;
  for (double f : fractions) {
    uint64_t target = static_cast<uint64_t>(f * config.num_records);
    while (done < target) {
      auto step = db.MaterializeStep(nb::kTableName,
                                     std::min<uint64_t>(4096, target - done));
      if (!step.ok() || *step == 0) break;
      done += *step;
    }
    // Median of 3.
    double best = -1;
    int64_t count = 0;
    for (int r = 0; r < 3; ++r) {
      Timer timer;
      auto result = db.Query(query);
      double ms = timer.Millis();
      if (!result.ok()) {
        std::printf("query failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      count = result->rows[0][0].int_value();
      if (best < 0 || ms < best) best = ms;
    }
    std::printf("%13.0f%% %12.1f %10lld\n", f * 100, best,
                static_cast<long long>(count));
  }
  std::printf(
      "\nPaper shape: the COALESCE read path over a partially materialized\n"
      "column costs at most ~10%% versus the fully materialized column, so\n"
      "the materializer can stop and resume at any point.\n");
  return 0;
}
