// Ablation (Section 3.1.3): sweep the schema analyzer's density threshold
// and report how many attributes materialize and what that does to a dense
// projection (Q1-style) and a sparse selection (Q9-style) — the design
// trade-off the hybrid schema navigates.

#include <cstdio>

#include "bench/bench_util.h"
#include "sinew/sinew_db.h"
#include "workloads/nobench/generator.h"
#include "workloads/nobench/runners.h"

namespace nb = sinew::workloads::nobench;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

int main() {
  PrintHeader("Ablation: materialization density threshold sweep");
  nb::Config config;
  config.num_records = Scaled(20000);
  std::vector<sinew::Value> docs = nb::Generate(config);
  nb::QueryParams params = nb::MakeQueryParams(config);

  const std::string dense_query = "SELECT str1, num FROM nobench_main";
  const std::string sparse_query =
      "SELECT * FROM nobench_main WHERE sparse_110 = '" + params.q9_value +
      "'";

  std::printf("%-10s %14s %14s %14s %14s\n", "threshold", "materialized",
              "storage (MB)", "dense Q (ms)", "sparse Q (ms)");
  for (double threshold : {1.01, 0.9, 0.6, 0.3, 0.05, 0.005}) {
    sinew::SinewOptions options;
    options.analyzer.density_threshold = threshold;
    options.analyzer.cardinality_threshold = 50;  // let sparse keys qualify

    sinew::SinewDb db(options);
    if (!db.LoadDocuments(nb::kTableName, docs).ok()) {
      std::printf("load failed\n");
      return 1;
    }
    if (!db.AnalyzeAndMaterialize(nb::kTableName).ok()) {
      std::printf("materialization failed\n");
      return 1;
    }
    auto schema = db.LogicalSchema(nb::kTableName);
    int materialized = 0;
    for (const auto& col : *schema) {
      if (col.materialized) ++materialized;
    }
    auto table = db.engine()->catalog()->GetTable(nb::kTableName);
    double mb = static_cast<double>((*table)->DataBytes()) / 1e6;

    auto time_query = [&](const std::string& sql) -> double {
      double best = -1;
      for (int r = 0; r < 3; ++r) {
        Timer timer;
        auto result = db.Query(sql);
        if (!result.ok()) return -1;
        double ms = timer.Millis();
        if (best < 0 || ms < best) best = ms;
      }
      return best;
    };
    std::printf("%-10.3f %14d %14.2f %14.1f %14.1f\n", threshold,
                materialized, mb, time_query(dense_query),
                time_query(sparse_query));
  }
  std::printf(
      "\nExpected: lowering the threshold materializes more columns; dense\n"
      "projections speed up once their columns are physical, while\n"
      "indiscriminate materialization of sparse keys (threshold ~0) wastes\n"
      "row-header space for no query benefit — the motivation for the\n"
      "hybrid schema (paper Section 3.1.1).\n");
  return 0;
}
