// Figure 6, columnar-segment ablation: NoBench Q1-Q10 on the same Sinew
// build with strip segments ON vs OFF. Both configurations keep every
// attribute virtual (no analyzer/materializer pass), so reservoir
// extraction is the whole query cost and the strip-serving path is the only
// difference: the ON db shreds its loaded rows into column strips with zone
// maps (BuildColumnarSegments) and SinewExtract copies cold-row values out
// of the typed vectors; the OFF db decodes every row from the reservoir.
//
// Prints per-query times and the strips-off/strips-on speedup, then the
// EXPLAIN ANALYZE of a projection and a range query on the ON db so the
// columnar_hits / zone_skips actuals are visible. Emits
// BENCH_fig6_columnar.json (configs "strips" and "rows"); diff two builds
// with bench/compare_bench.py, or the two configs of one run with
// `compare_bench.py BENCH_fig6_columnar.json --configs=rows,strips`.
//
// --threads=N sets Gather parallelism; --metrics-out=<path> appends the
// metrics-registry JSON; --bench-out=<dir> places the sidecar (default .).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/nobench/generator.h"
#include "workloads/nobench/runners.h"

namespace nb = sinew::workloads::nobench;
using sinew::bench::BenchRecord;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

constexpr int kReps = 3;  // best-of: isolates steady-state from first-touch

double TimedBest(nb::SinewRunner* runner, int q, const nb::QueryParams& p) {
  (void)runner->Execute(q, p);  // warmup
  double best = -1;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    auto rows = runner->Execute(q, p);
    double ms = timer.Millis();
    if (!rows.ok()) return -1;
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

void PrintExplainAnalyze(sinew::SinewDb* db, const std::string& sql) {
  std::printf("\nEXPLAIN ANALYZE %s\n", sql.c_str());
  auto result = db->Query("EXPLAIN ANALYZE " + sql);
  if (!result.ok()) {
    std::printf("  failed: %s\n", result.status().ToString().c_str());
    return;
  }
  for (const auto& row : result->rows) {
    std::printf("  %s\n", row[0].str().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = sinew::bench::ThreadsFromArgs(argc, argv);
  const std::string metrics_out = sinew::bench::MetricsOutFromArgs(argc, argv);
  PrintHeader("Figure 6 ablation: columnar strips on vs off (all-virtual)");
  std::printf("Sinew parallelism: %d thread%s (--threads=N to change)\n",
              threads, threads == 1 ? "" : "s");

  nb::Config config;
  config.num_records = Scaled(32000);
  std::vector<sinew::Value> docs = nb::Generate(config);
  nb::QueryParams params = nb::MakeQueryParams(config);

  sinew::SinewOptions on_options;
  on_options.parallelism = threads;
  on_options.enable_columnar_segments = true;
  sinew::SinewOptions off_options = on_options;
  off_options.enable_columnar_segments = false;

  nb::SinewRunner strips(on_options, "Sinew-strips");
  nb::SinewRunner rows(off_options, "Sinew-rows");
  for (nb::SinewRunner* runner : {&strips, &rows}) {
    sinew::Status st = runner->Load(docs);
    // No Prepare(): attributes stay virtual so extraction dominates. The
    // shred is a no-op on the rows runner (segments disabled).
    if (st.ok()) st = runner->db()->BuildColumnarSegments("nobench_main");
    if (!st.ok()) {
      std::printf("load failed for %s: %s\n",
                  std::string(runner->name()).c_str(), st.ToString().c_str());
      return 1;
    }
  }

  std::printf("\n--- %llu records, best of %d ---\n",
              static_cast<unsigned long long>(config.num_records), kReps);
  std::printf("%-4s %12s %12s %9s   (ms; lower is better)\n", "Q", "strips",
              "rows", "speedup");
  std::vector<BenchRecord> records;
  double q1_q4_worst = -1;
  for (int q = 1; q <= 10; ++q) {
    const double on_ms = TimedBest(&strips, q, params);
    const double off_ms = TimedBest(&rows, q, params);
    records.push_back({"Q" + std::to_string(q), "strips", on_ms,
                       config.num_records, threads, 0});
    records.push_back({"Q" + std::to_string(q), "rows", off_ms,
                       config.num_records, threads, 0});
    if (on_ms < 0 || off_ms < 0) {
      std::printf("Q%-3d %12s %12s\n", q, on_ms < 0 ? "FAILED" : "-",
                  off_ms < 0 ? "FAILED" : "-");
      continue;
    }
    const double speedup = off_ms / on_ms;
    std::printf("Q%-3d %12.2f %12.2f %8.2fx\n", q, on_ms, off_ms, speedup);
    if (q <= 4 && (q1_q4_worst < 0 || speedup < q1_q4_worst)) {
      q1_q4_worst = speedup;
    }
  }
  if (q1_q4_worst > 0) {
    std::printf("\nprojection queries Q1-Q4: worst strips speedup %.2fx "
                "(acceptance floor 1.3x)\n",
                q1_q4_worst);
  }

  // The actuals behind the numbers: strip-served extraction lanes on a
  // projection, zone-map pruning on a rid-correlated range (num is uniform,
  // so Q6's own zone maps never prune; "seq" below is monotone).
  PrintExplainAnalyze(strips.db(),
                      "SELECT str1, num FROM nobench_main");
  {
    sinew::SinewDb seq_db(on_options);
    std::string jsonl;
    for (uint64_t i = 0; i < config.num_records; ++i) {
      jsonl += "{\"seq\": " + std::to_string(i) + "}\n";
    }
    if (seq_db.LoadJsonLines("seq_docs", jsonl).ok() &&
        seq_db.BuildColumnarSegments("seq_docs").ok()) {
      PrintExplainAnalyze(&seq_db,
                          "SELECT seq FROM seq_docs WHERE seq BETWEEN 5000 "
                          "AND 5100");
    }
  }

  sinew::bench::MaybeWriteMetrics(metrics_out, "fig6_columnar");
  sinew::bench::WriteBenchJson(sinew::bench::BenchOutDirFromArgs(argc, argv),
                               "fig6_columnar", records);
  sinew::bench::MaybeWriteTrace(sinew::bench::TraceOutFromArgs(argc, argv));
  return 0;
}
