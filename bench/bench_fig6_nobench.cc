// Figures 6a/6b: NoBench query performance (Q1-Q10) across the four
// systems, at two dataset scales ("small" fits the paper's in-memory case,
// "large" is 4x). Prints one row per query with per-system execution time in
// milliseconds — the series plotted in Figures 6a and 6b.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/nobench/generator.h"
#include "workloads/nobench/runners.h"

namespace nb = sinew::workloads::nobench;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

void RunScale(const char* label, uint64_t records, int threads,
              const std::string& metrics_out) {
  nb::Config config;
  config.num_records = records;
  std::vector<sinew::Value> docs = nb::Generate(config);
  nb::QueryParams params = nb::MakeQueryParams(config);

  sinew::SinewOptions sinew_options;
  sinew_options.parallelism = threads;
  auto runners = nb::MakeAllRunners(sinew_options);
  for (auto& runner : runners) {
    sinew::Status st = runner->Load(docs);
    if (st.ok()) st = runner->Prepare();
    if (!st.ok()) {
      std::printf("load failed for %s: %s\n",
                  std::string(runner->name()).c_str(), st.ToString().c_str());
      return;
    }
  }

  std::printf("\n--- %s: %llu records ---\n", label,
              static_cast<unsigned long long>(records));
  std::printf("%-4s", "Q");
  for (auto& runner : runners) {
    std::printf(" %16s", std::string(runner->name()).c_str());
  }
  std::printf("   (ms; lower is better)\n");
  for (int q = 1; q <= 10; ++q) {
    std::printf("Q%-3d", q);
    for (auto& runner : runners) {
      Timer timer;
      auto rows = runner->Execute(q, params);
      double ms = timer.Millis();
      if (!rows.ok()) {
        std::printf(" %16s", "FAILED");
      } else {
        std::printf(" %16.1f", ms);
      }
    }
    std::printf("\n");
  }
  sinew::bench::MaybeWriteMetrics(metrics_out, std::string("fig6.") + label);
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = sinew::bench::ThreadsFromArgs(argc, argv);
  const std::string metrics_out = sinew::bench::MetricsOutFromArgs(argc, argv);
  PrintHeader("Figure 6: NoBench Q1-Q10 execution time");
  std::printf("Sinew parallelism: %d thread%s (--threads=N to change)\n",
              threads, threads == 1 ? "" : "s");
  RunScale("small (Figure 6a)", Scaled(8000), threads, metrics_out);
  RunScale("large (Figure 6b)", Scaled(32000), threads, metrics_out);
  std::printf(
      "\nPaper shape: Sinew fastest or tied on every query; PG-JSON and EAV\n"
      "an order of magnitude slower on projections/selections; MongoDB-like\n"
      "competitive on sparse projections, behind Sinew elsewhere.\n");
  return 0;
}
