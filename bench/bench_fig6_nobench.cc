// Figures 6a/6b: NoBench query performance (Q1-Q10) across the four
// systems, at two dataset scales ("small" fits the paper's in-memory case,
// "large" is 4x). Prints one row per query with per-system execution time in
// milliseconds — the series plotted in Figures 6a and 6b. A fifth column,
// "Sinew-row1", runs the same Sinew configuration with the vectorized
// executor disabled (batch_size = 1), so every run measures the
// batch-at-a-time speedup in the same process on the same data. A sixth,
// "Sinew-treewalk", disables expression compilation only (batched tree-walk
// evaluation) — the per-query baseline for the bytecode regression gate:
//   python3 bench/compare_bench.py BENCH_fig6_nobench.json
//           --configs=small.Sinew-treewalk,small.Sinew
//
// --threads=N sets Sinew's Gather parallelism; --metrics-out=<path> appends
// the metrics-registry JSON; --bench-out=<dir> places the
// BENCH_fig6_nobench.json records (default .).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/nobench/generator.h"
#include "workloads/nobench/runners.h"

namespace nb = sinew::workloads::nobench;
using sinew::bench::BenchRecord;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

void RunScale(const char* label, const char* tag, uint64_t records,
              int threads, int reps, const std::string& metrics_out,
              std::vector<BenchRecord>* bench_records) {
  nb::Config config;
  config.num_records = records;
  std::vector<sinew::Value> docs = nb::Generate(config);
  nb::QueryParams params = nb::MakeQueryParams(config);

  sinew::SinewOptions sinew_options;
  sinew_options.parallelism = threads;
  auto runners = nb::MakeAllRunners(sinew_options);
  // Same Sinew configuration minus the vectorized executor: the row-at-a-
  // time baseline for the batch-execution speedup column.
  sinew::SinewOptions row_options = sinew_options;
  row_options.exec.batch_size = 1;
  runners.push_back(std::make_unique<nb::SinewRunner>(row_options,
                                                      "Sinew-row1"));
  // And minus expression compilation: batched tree-walk evaluation, the
  // baseline for the bytecode gate (compare_bench.py
  // --configs=small.Sinew-treewalk,small.Sinew).
  sinew::SinewOptions treewalk_options = sinew_options;
  treewalk_options.planner.enable_bytecode = false;
  runners.push_back(std::make_unique<nb::SinewRunner>(treewalk_options,
                                                      "Sinew-treewalk"));
  for (auto& runner : runners) {
    sinew::Status st = runner->Load(docs);
    if (st.ok()) st = runner->Prepare();
    if (!st.ok()) {
      std::printf("load failed for %s: %s\n",
                  std::string(runner->name()).c_str(), st.ToString().c_str());
      return;
    }
  }

  std::printf("\n--- %s: %llu records ---\n", label,
              static_cast<unsigned long long>(records));
  std::printf("%-4s", "Q");
  for (auto& runner : runners) {
    std::printf(" %16s", std::string(runner->name()).c_str());
  }
  std::printf("   (ms; lower is better)\n");
  double best_speedup = 0;
  int best_speedup_q = 0;
  for (int q = 1; q <= 10; ++q) {
    std::printf("Q%-3d", q);
    double sinew_ms = -1, sinew_row_ms = -1;
    for (auto& runner : runners) {
      // Best of `reps` runs: a single scheduler hiccup must not read as a
      // regression in the compare_bench.py gate.
      double ms = -1;
      bool ok = true;
      for (int r = 0; r < reps && ok; ++r) {
        Timer timer;
        auto rows = runner->Execute(q, params);
        const double run_ms = timer.Millis();
        ok = rows.ok();
        if (ok && (ms < 0 || run_ms < ms)) ms = run_ms;
      }
      if (!ok) {
        std::printf(" %16s", "FAILED");
        ms = -1;
      } else {
        std::printf(" %16.1f", ms);
      }
      const std::string name(runner->name());
      if (name == "Sinew") sinew_ms = ms;
      if (name == "Sinew-row1") sinew_row_ms = ms;
      bench_records->push_back({"Q" + std::to_string(q),
                                std::string(tag) + "." + name, ms, records,
                                threads,
                                name == "Sinew" || name == "Sinew-treewalk"
                                    ? sinew_options.exec.batch_size
                                : name == "Sinew-row1" ? 1
                                                       : 0});
    }
    if (sinew_ms > 0 && sinew_row_ms > 0 &&
        sinew_row_ms / sinew_ms > best_speedup) {
      best_speedup = sinew_row_ms / sinew_ms;
      best_speedup_q = q;
    }
    std::printf("\n");
  }
  if (best_speedup > 0) {
    std::printf("batch executor vs row-at-a-time (Sinew-row1/Sinew): best "
                "%.2fx on Q%d\n",
                best_speedup, best_speedup_q);
  }
  sinew::bench::MaybeWriteMetrics(metrics_out, std::string("fig6.") + tag);
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = sinew::bench::ThreadsFromArgs(argc, argv);
  const int reps = sinew::bench::RepsFromArgs(argc, argv, 3);
  const std::string metrics_out = sinew::bench::MetricsOutFromArgs(argc, argv);
  PrintHeader("Figure 6: NoBench Q1-Q10 execution time");
  std::printf("Sinew parallelism: %d thread%s (--threads=N to change); "
              "best of %d rep%s (--reps=N)\n",
              threads, threads == 1 ? "" : "s", reps, reps == 1 ? "" : "s");
  std::vector<BenchRecord> records;
  RunScale("small (Figure 6a)", "small", Scaled(8000), threads, reps,
           metrics_out, &records);
  RunScale("large (Figure 6b)", "large", Scaled(32000), threads, reps,
           metrics_out, &records);
  sinew::bench::WriteBenchJson(sinew::bench::BenchOutDirFromArgs(argc, argv),
                               "fig6_nobench", records);
  sinew::bench::MaybeWriteTrace(sinew::bench::TraceOutFromArgs(argc, argv));
  std::printf(
      "\nPaper shape: Sinew fastest or tied on every query; PG-JSON and EAV\n"
      "an order of magnitude slower on projections/selections; MongoDB-like\n"
      "competitive on sparse projections, behind Sinew elsewhere.\n");
  return 0;
}
