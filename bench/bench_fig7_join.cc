// Figure 7: NoBench Q11 (join) performance. MongoDB-like runs its
// user-code join through explicit temporary collections under a scratch
// budget; EAV needs a 4-way self-join — both reproduce the paper's
// out-of-scratch failures when the budget is constrained.

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/nobench/generator.h"
#include "workloads/nobench/runners.h"

namespace nb = sinew::workloads::nobench;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

void RunScale(const char* label, uint64_t records, uint64_t scratch_bytes) {
  nb::Config config;
  config.num_records = records;
  std::vector<sinew::Value> docs = nb::Generate(config);
  nb::QueryParams params = nb::MakeQueryParams(config);

  std::printf("\n--- %s: %llu records (scratch budget %.0f MB) ---\n", label,
              static_cast<unsigned long long>(records),
              static_cast<double>(scratch_bytes) / 1e6);
  std::printf("%-14s %12s %10s\n", "System", "Q11 (ms)", "rows");

  // Constrain intermediate-state budgets so resource exhaustion is
  // observable at laptop scale, mirroring the paper's disk exhaustion.
  sinew::engine::ExecOptions exec;
  exec.max_intermediate_bytes = scratch_bytes;

  std::vector<std::unique_ptr<nb::SystemRunner>> runners;
  runners.push_back(std::make_unique<nb::MongoLikeRunner>(scratch_bytes));
  sinew::SinewOptions sinew_options;
  sinew_options.exec = exec;
  runners.push_back(std::make_unique<nb::SinewRunner>(sinew_options));
  runners.push_back(std::make_unique<nb::EavRunner>(
      sinew::engine::PlannerOptions{}, exec));
  runners.push_back(std::make_unique<nb::PgJsonRunner>(
      sinew::engine::PlannerOptions{}, exec));

  for (auto& runner : runners) {
    sinew::Status st = runner->Load(docs);
    if (st.ok()) st = runner->Prepare();
    if (!st.ok()) {
      std::printf("%-14s %12s\n", std::string(runner->name()).c_str(),
                  "LOAD FAILED");
      continue;
    }
    Timer timer;
    auto rows = runner->Execute(11, params);
    double ms = timer.Millis();
    if (!rows.ok()) {
      std::printf("%-14s %12.1f   DID NOT COMPLETE: %s\n",
                  std::string(runner->name()).c_str(), ms,
                  rows.status().message().c_str());
    } else {
      std::printf("%-14s %12.1f %10llu\n",
                  std::string(runner->name()).c_str(), ms,
                  static_cast<unsigned long long>(*rows));
    }
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 7: NoBench Q11 join performance");
  RunScale("small", Scaled(8000), 1ull << 30);
  RunScale("large", Scaled(32000), 256ull << 20);
  std::printf(
      "\nPaper shape: Sinew fastest; PG-JSON and EAV behind; MongoDB-like an\n"
      "order of magnitude slower than Sinew, and MongoDB-like/EAV fail to\n"
      "complete at the larger scale when scratch space is bounded.\n");
  return 0;
}
