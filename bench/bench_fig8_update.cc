// Figure 8: random update performance — the paper's added task
// (UPDATE ... SET sparse_588 = 'DUMMY' WHERE sparse_589 = <value>,
// ~1 in 10000 records affected).
//
// Also measures sustained ingest (docs/sec over a fixed wall-clock window)
// through the crash-safe write path: whole-image-rewrite-per-commit (the
// pre-WAL durable baseline) vs. the WAL + memtable path at each fsync
// policy. Flags: --ingest-seconds=<float> (window per config, default 0.5),
// --fsync=always|group|none (measure one WAL policy instead of all three).
// Emits BENCH_fig8_ingest.json next to the usual sidecar.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "bench/bench_util.h"
#include "sinew/durable_db.h"
#include "sinew/persistence.h"
#include "workloads/nobench/generator.h"
#include "workloads/nobench/runners.h"

namespace nb = sinew::workloads::nobench;
using sinew::bench::BenchRecord;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

void RunScale(const char* label, uint64_t records) {
  nb::Config config;
  config.num_records = records;
  std::vector<sinew::Value> docs = nb::Generate(config);
  nb::QueryParams params = nb::MakeQueryParams(config);

  std::printf("\n--- %s: %llu records ---\n", label,
              static_cast<unsigned long long>(records));
  std::printf("%-14s %14s %10s\n", "System", "Update (ms)", "updated");
  for (auto& runner : nb::MakeAllRunners()) {
    sinew::Status st = runner->Load(docs);
    if (st.ok()) st = runner->Prepare();
    if (!st.ok()) {
      std::printf("%-14s %14s\n", std::string(runner->name()).c_str(),
                  "LOAD FAILED");
      continue;
    }
    Timer timer;
    auto rows = runner->Execute(12, params);
    double ms = timer.Millis();
    if (!rows.ok()) {
      std::printf("%-14s %14s\n", std::string(runner->name()).c_str(),
                  "FAILED");
      continue;
    }
    std::printf("%-14s %14.1f %10llu\n",
                std::string(runner->name()).c_str(), ms,
                static_cast<unsigned long long>(*rows));
  }
}

// ---- sustained ingest through the durable write path ----

double IngestSecondsFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ingest-seconds=", 17) == 0) {
      double v = std::atof(argv[i] + 17);
      if (v > 0) return v;
    }
  }
  return 0.5;
}

/// "" = all policies; else one of always / group / none.
std::string FsyncFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fsync=", 8) == 0) return argv[i] + 8;
  }
  return "";
}

std::string FreshDir(const char* tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("sinew_ingest_" + std::to_string(::getpid()) + "_" + tag))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

constexpr uint64_t kIngestBatchDocs = 8;

/// Baseline: every commit is durable by rewriting the whole database image
/// (what persistence.h offered before the WAL existed).
BenchRecord IngestImageCommit(const std::vector<sinew::Value>& docs,
                              double seconds) {
  std::string dir = FreshDir("image");
  sinew::SinewDb db;
  uint64_t ingested = 0;
  Timer timer;
  while (timer.Seconds() < seconds) {
    std::vector<sinew::Value> batch;
    for (uint64_t i = 0; i < kIngestBatchDocs; ++i) {
      batch.push_back(docs[(ingested + i) % docs.size()]);
    }
    if (!db.LoadDocuments("ingest", batch).ok()) break;
    if (!sinew::SaveDatabase(&db, dir).ok()) break;
    ingested += kIngestBatchDocs;
  }
  double ms = timer.Millis();
  std::filesystem::remove_all(dir);
  return BenchRecord{"ingest", "image-commit", ms, ingested, 1, 0};
}

BenchRecord IngestWal(const std::vector<sinew::Value>& docs, double seconds,
                      const std::string& policy) {
  std::string dir = FreshDir(policy.c_str());
  sinew::DurableDbOptions options;
  if (policy == "always") {
    options.wal.sync_policy = sinew::WalSyncPolicy::kEveryCommit;
  } else if (policy == "group") {
    options.wal.sync_policy = sinew::WalSyncPolicy::kGrouped;
  } else {
    options.wal.sync_policy = sinew::WalSyncPolicy::kNever;
  }
  BenchRecord record{"ingest", "wal-" + policy, -1, 0, 1, 0};
  auto db = sinew::DurableDb::Open(dir, options);
  if (!db.ok()) return record;
  uint64_t ingested = 0;
  Timer timer;
  while (timer.Seconds() < seconds) {
    std::vector<sinew::Value> batch;
    for (uint64_t i = 0; i < kIngestBatchDocs; ++i) {
      batch.push_back(docs[(ingested + i) % docs.size()]);
    }
    if (!(*db)->LoadDocuments("ingest", batch).ok()) break;
    ingested += kIngestBatchDocs;
  }
  double ms = timer.Millis();
  (void)(*db)->Close();
  std::filesystem::remove_all(dir);
  record.ms = ms;
  record.rows = ingested;
  return record;
}

void RunIngest(int argc, char** argv) {
  PrintHeader("Sustained ingest: image-per-commit vs. WAL write path");
  const double seconds = IngestSecondsFromArgs(argc, argv);
  const std::string only = FsyncFromArgs(argc, argv);

  nb::Config config;
  config.num_records = 256;  // a pool to cycle through; size is irrelevant
  std::vector<sinew::Value> docs = nb::Generate(config);

  std::vector<BenchRecord> records;
  records.push_back(IngestImageCommit(docs, seconds));
  for (const char* policy : {"always", "group", "none"}) {
    if (only.empty() || only == policy) {
      records.push_back(IngestWal(docs, seconds, policy));
    }
  }

  std::printf("%-14s %12s %14s\n", "Config", "docs", "docs/sec");
  for (const BenchRecord& r : records) {
    double rate = r.ms > 0 ? static_cast<double>(r.rows) / (r.ms / 1e3) : 0;
    std::printf("%-14s %12llu %14.0f\n", r.config.c_str(),
                static_cast<unsigned long long>(r.rows), rate);
  }
  const double base = records[0].ms > 0 && records[0].rows > 0
                          ? static_cast<double>(records[0].rows) /
                                (records[0].ms / 1e3)
                          : 0;
  if (base > 0 && records.size() > 1) {
    for (size_t i = 1; i < records.size(); ++i) {
      double rate = static_cast<double>(records[i].rows) /
                    (records[i].ms / 1e3);
      std::printf("%s speedup over image-commit: %.1fx\n",
                  records[i].config.c_str(), rate / base);
    }
  }
  sinew::bench::WriteBenchJson(sinew::bench::BenchOutDirFromArgs(argc, argv),
                               "fig8_ingest", records);
  sinew::bench::MaybeWriteMetrics(
      sinew::bench::MetricsOutFromArgs(argc, argv), "fig8_ingest");
  sinew::bench::MaybeWriteTrace(sinew::bench::TraceOutFromArgs(argc, argv));
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Figure 8: random update performance");
  RunScale("small", Scaled(8000));
  RunScale("large", Scaled(32000));
  std::printf(
      "\nPaper shape: Sinew fastest (binary reservoir predicate + in-place\n"
      "functional update); PG-JSON slower (text re-serialization); EAV\n"
      "slowest among RDBMS solutions (self-join + upsert); MongoDB-like's\n"
      "predicate evaluation overhead outweighs its lack of transactional\n"
      "guarantees.\n");
  RunIngest(argc, argv);
  return 0;
}
