// Figure 8: random update performance — the paper's added task
// (UPDATE ... SET sparse_588 = 'DUMMY' WHERE sparse_589 = <value>,
// ~1 in 10000 records affected).

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/nobench/generator.h"
#include "workloads/nobench/runners.h"

namespace nb = sinew::workloads::nobench;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

void RunScale(const char* label, uint64_t records) {
  nb::Config config;
  config.num_records = records;
  std::vector<sinew::Value> docs = nb::Generate(config);
  nb::QueryParams params = nb::MakeQueryParams(config);

  std::printf("\n--- %s: %llu records ---\n", label,
              static_cast<unsigned long long>(records));
  std::printf("%-14s %14s %10s\n", "System", "Update (ms)", "updated");
  for (auto& runner : nb::MakeAllRunners()) {
    sinew::Status st = runner->Load(docs);
    if (st.ok()) st = runner->Prepare();
    if (!st.ok()) {
      std::printf("%-14s %14s\n", std::string(runner->name()).c_str(),
                  "LOAD FAILED");
      continue;
    }
    Timer timer;
    auto rows = runner->Execute(12, params);
    double ms = timer.Millis();
    if (!rows.ok()) {
      std::printf("%-14s %14s\n", std::string(runner->name()).c_str(),
                  "FAILED");
      continue;
    }
    std::printf("%-14s %14.1f %10llu\n",
                std::string(runner->name()).c_str(), ms,
                static_cast<unsigned long long>(*rows));
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 8: random update performance");
  RunScale("small", Scaled(8000));
  RunScale("large", Scaled(32000));
  std::printf(
      "\nPaper shape: Sinew fastest (binary reservoir predicate + in-place\n"
      "functional update); PG-JSON slower (text re-serialization); EAV\n"
      "slowest among RDBMS solutions (self-join + upsert); MongoDB-like's\n"
      "predicate evaluation overhead outweighs its lack of transactional\n"
      "guarantees.\n");
  return 0;
}
