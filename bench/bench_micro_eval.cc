// Micro-benchmark: compiled postfix bytecode vs. the tree-walk batch
// evaluator, isolated at the expression-evaluation layer. Full queries are
// scan-dominated, so this harness evaluates bound expressions directly over
// pre-built synthetic RowBatches — the same entry points the executor uses
// (EvalPredicateBatch / EvalExprBatch for the tree walk,
// bytecode::ExecPredicateBatch / ExecBatch for the compiled programs) — and
// reports ns/lane per shape:
//
//   colref_cmp_lit     c0 < lit                 (fused kColCmpLit; the
//                                               select-mode fast path)
//   extract_cmp_lit    udf(c2, path) = lit      (fused kUdfCmpLit — the
//                                               Sinew extract-then-compare)
//   and_chain          three fused conjuncts    (kBoolFork lane partitioning)
//   between            c0 BETWEEN lits          (fused kColBetweenLits)
//   is_null            c2 IS NULL               (fused kColIsNull)
//   arith_project      c0 * 3 + c1              (generic kArith kernels)
//   concat_project     c2 || lit                (generic kConcat)
//   case_project       CASE WHEN ... END        (kFallbackLane both ways —
//                                               pins the fallback overhead)
//   *_dbl              c4 variants              (monomorphic double kernels)
//   colref_cmp_lit_mixed  c5 < lit              (type-flipping column: the
//                                               profile must fail and the
//                                               boxed loop run at parity)
//
// Three configs per shape: "treewalk" is the PR 5 batch evaluator baseline;
// "boxed" is the compiled program with the typed kernels force-disabled (the
// PR 9 VM); "typed" is the compiled program with the monomorphic kernels on,
// measured with column tags cached (the strip-seeded steady state — the
// warm-up pass pays any profile, as SinewExtract's ColumnStrip::type seeding
// does in the executor). compare_bench.py gates both steps:
//
//   ./build/bench/bench_micro_eval --bench-out=/tmp/e
//   python3 bench/compare_bench.py /tmp/e/BENCH_micro_eval.json \
//           --configs=treewalk,boxed     # compiled never loses to the tree
//   python3 bench/compare_bench.py /tmp/e/BENCH_micro_eval.json \
//           --configs=boxed,typed        # typed never loses to boxed
//
// Each flags any shape where the candidate config is >10% slower than the
// baseline (exit non-zero). --bench-out=<dir> places BENCH_micro_eval.json;
// SINEW_BENCH_SCALE scales the lane count.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "engine/bytecode.h"
#include "engine/datum.h"
#include "engine/eval.h"
#include "engine/expr.h"
#include "engine/row_batch.h"
#include "engine/udf.h"

using sinew::bench::BenchRecord;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

namespace eng = sinew::engine;
namespace bc = sinew::engine::bytecode;

constexpr size_t kBatchSize = 1024;

eng::ExprPtr Col(int slot) {
  eng::ExprPtr e = eng::Expr::Column("", "c" + std::to_string(slot));
  e->bound_slot = slot;
  return e;
}

eng::ExprPtr Lit(int64_t v) {
  return eng::Expr::Literal(eng::Datum::Int(v));
}

eng::ExprPtr Lit(std::string v) {
  return eng::Expr::Literal(eng::Datum::Text(std::move(v)));
}

eng::ExprPtr LitD(double v) {
  return eng::Expr::Literal(eng::Datum::Double(v));
}

constexpr size_t kCorpusWidth = 6;

/// Deterministic batch corpus: c0 int (uniform 0..999), c1 int, c2 text with
/// ~10% NULLs (the "reservoir bytes" stand-in the extract UDF reads), c3
/// int, c4 double (c0 + 0.5), c5 type-flipping int/double/text — the
/// poison column no per-batch monomorphism proof can cover.
std::vector<eng::RowBatch> MakeCorpus(uint64_t lanes) {
  std::vector<eng::RowBatch> corpus;
  uint64_t remaining = lanes;
  uint64_t i = 0;
  while (remaining > 0) {
    const size_t n = static_cast<size_t>(
        remaining < kBatchSize ? remaining : kBatchSize);
    eng::RowBatch b;
    b.Reset(kCorpusWidth);
    for (size_t k = 0; k < n; ++k, ++i) {
      const int64_t v = static_cast<int64_t>((i * 2654435761u) % 1000);
      b.cols[0].push_back(eng::Datum::Int(v));
      b.cols[1].push_back(eng::Datum::Int(static_cast<int64_t>(i % 97)));
      b.cols[2].push_back(i % 10 == 3
                              ? eng::Datum()
                              : eng::Datum::Text("k" + std::to_string(v)));
      b.cols[3].push_back(eng::Datum::Int(static_cast<int64_t>(i % 17)));
      b.cols[4].push_back(eng::Datum::Double(static_cast<double>(v) + 0.5));
      b.cols[5].push_back(i % 3 == 0   ? eng::Datum::Int(v)
                          : i % 3 == 1 ? eng::Datum::Double(v + 0.5)
                                       : eng::Datum::Text("m"));
      b.sel.push_back(static_cast<uint32_t>(k));
    }
    b.size = n;
    corpus.push_back(std::move(b));
    remaining -= n;
  }
  return corpus;
}

struct Shape {
  std::string name;
  bool predicate = true;  // predicate mode (refine sel) vs. expr mode
  eng::ExprPtr expr;
};

std::vector<Shape> MakeShapes() {
  std::vector<Shape> shapes;
  shapes.push_back({"colref_cmp_lit", true,
                    eng::Expr::Binary(eng::BinaryOp::kLt, Col(0), Lit(500))});
  {
    // The Sinew dominant shape: extraction UDF over the bytes column fused
    // with the literal comparison above it.
    eng::ExprPtr call = eng::Expr::Function("bench_extract", {});
    call->args.push_back(Col(2));
    call->args.push_back(Lit("path"));
    shapes.push_back({"extract_cmp_lit", true,
                      eng::Expr::Binary(eng::BinaryOp::kEq, std::move(call),
                                        Lit("k500"))});
  }
  shapes.push_back(
      {"and_chain", true,
       eng::Expr::Binary(
           eng::BinaryOp::kAnd,
           eng::Expr::Binary(eng::BinaryOp::kGe, Col(0), Lit(100)),
           eng::Expr::Binary(
               eng::BinaryOp::kAnd,
               eng::Expr::Binary(eng::BinaryOp::kLt, Col(0), Lit(900)),
               eng::Expr::Binary(eng::BinaryOp::kNe, Col(3), Lit(7))))});
  shapes.push_back(
      {"between", true, eng::Expr::Between(Col(0), Lit(200), Lit(800),
                                           false)});
  shapes.push_back({"is_null", true, eng::Expr::IsNull(Col(2), false)});
  shapes.push_back(
      {"arith_project", false,
       eng::Expr::Binary(
           eng::BinaryOp::kAdd,
           eng::Expr::Binary(eng::BinaryOp::kMul, Col(0), Lit(3)), Col(1))});
  shapes.push_back({"concat_project", false,
                    eng::Expr::Binary(eng::BinaryOp::kConcat, Col(2),
                                      Lit("-x"))});
  {
    eng::ExprPtr c = std::make_unique<eng::Expr>();
    c->kind = eng::ExprKind::kCase;
    c->args.push_back(
        eng::Expr::Binary(eng::BinaryOp::kLt, Col(0), Lit(500)));
    c->args.push_back(Lit("lo"));
    c->args.push_back(Lit("hi"));
    shapes.push_back({"case_project", false, std::move(c)});
  }
  // Monomorphic double variants of the fused comparison shapes, plus a
  // double arithmetic projection.
  shapes.push_back(
      {"colref_cmp_lit_dbl", true,
       eng::Expr::Binary(eng::BinaryOp::kLt, Col(4), LitD(500.0))});
  shapes.push_back({"between_dbl", true,
                    eng::Expr::Between(Col(4), LitD(200.0), LitD(800.0),
                                       false)});
  shapes.push_back(
      {"arith_project_dbl", false,
       eng::Expr::Binary(eng::BinaryOp::kAdd, Col(4), LitD(1.0))});
  // The type-flipping column: the typed config's profile fails per batch and
  // the boxed loop must hold parity (the profile cost is the overhead).
  shapes.push_back(
      {"colref_cmp_lit_mixed", true,
       eng::Expr::Binary(eng::BinaryOp::kLt, Col(5), Lit(500))});
  return shapes;
}

/// Evaluates one shape over the whole corpus `reps` times; returns seconds.
double RunTreewalk(const Shape& shape, std::vector<eng::RowBatch>& corpus,
                   const eng::UdfRegistry* udfs, int reps) {
  std::vector<uint32_t> sel;
  std::vector<eng::Datum> out;
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    for (eng::RowBatch& b : corpus) {
      if (shape.predicate) {
        sel = b.sel;
        sinew::Status st = EvalPredicateBatch(*shape.expr, b, udfs, &sel);
        if (!st.ok()) {
          std::fprintf(stderr, "%s: %s\n", shape.name.c_str(),
                       st.ToString().c_str());
          return -1;
        }
      } else {
        sinew::Status st = EvalExprBatch(*shape.expr, b, b.sel, udfs, &out);
        if (!st.ok()) {
          std::fprintf(stderr, "%s: %s\n", shape.name.c_str(),
                       st.ToString().c_str());
          return -1;
        }
      }
    }
  }
  return timer.Seconds();
}

/// `typed` toggles the monomorphic kernels (the switch is restored before
/// returning, so runs never overlap). Column tags persist across passes:
/// after the caller's warm-up rep every batch carries cached tags, modeling
/// the production strip-fed path where SinewExtract seeds the tag from
/// ColumnStrip::type and no profile pass runs at all. (The profile itself is
/// one-pass O(n) and amortizes over the instructions of real multi-op
/// programs; single-instruction micro shapes would overstate it.)
double RunBytecode(const Shape& shape, std::vector<eng::RowBatch>& corpus,
                   const eng::UdfRegistry* udfs, int reps, bool typed) {
  std::shared_ptr<const bc::Program> prog =
      bc::Compile(*shape.expr, kCorpusWidth, udfs);
  if (prog == nullptr) {
    std::fprintf(stderr, "%s: did not compile\n", shape.name.c_str());
    return -1;
  }
  bc::SetTypedKernelsEnabled(typed);
  bc::ExecState state;
  std::vector<uint32_t> sel;
  std::vector<eng::Datum> out;
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    for (eng::RowBatch& b : corpus) {
      if (shape.predicate) {
        sel = b.sel;
        sinew::Status st = bc::ExecPredicateBatch(*prog, b, udfs, &state,
                                                  &sel);
        if (!st.ok()) {
          std::fprintf(stderr, "%s: %s\n", shape.name.c_str(),
                       st.ToString().c_str());
          return -1;
        }
      } else {
        sinew::Status st = bc::ExecBatch(*prog, b, b.sel, udfs, &state, &out);
        if (!st.ok()) {
          std::fprintf(stderr, "%s: %s\n", shape.name.c_str(),
                       st.ToString().c_str());
          return -1;
        }
      }
    }
  }
  const double seconds = timer.Seconds();
  bc::SetTypedKernelsEnabled(true);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t lanes = Scaled(1 << 18);  // 256K lanes per pass
  const int reps = 8;

  std::vector<eng::RowBatch> corpus = MakeCorpus(lanes);
  eng::UdfRegistry udfs;
  // Extraction stand-in: reads the bytes column, returns the attribute text
  // (NULL source -> NULL), with a header-walk-shaped amount of work.
  udfs.Register("bench_extract",
                [](const eng::UdfArgs& args) -> sinew::Result<eng::Datum> {
                  const eng::Datum& src = *args[0];
                  if (src.is_null()) return eng::Datum();
                  return eng::Datum::Text(src.str());
                });

  std::vector<Shape> shapes = MakeShapes();
  // Match the executor: the tree walk gets its bind-time slot caches too.
  for (Shape& s : shapes) eng::RefreshFallbackSlotCaches(s.expr.get());

  const uint64_t total = lanes * static_cast<uint64_t>(reps);
  std::vector<BenchRecord> records;
  PrintHeader(
      "micro_eval: tree-walk vs. boxed vs. typed bytecode (ns/lane)");
  std::printf("%-20s %10s %10s %10s %9s\n", "shape", "treewalk", "boxed",
              "typed", "typ/box");
  for (const Shape& shape : shapes) {
    // Warm-up pass per engine, then the measured runs.
    RunTreewalk(shape, corpus, &udfs, 1);
    const double tree_s = RunTreewalk(shape, corpus, &udfs, reps);
    RunBytecode(shape, corpus, &udfs, 1, false);
    const double boxed_s = RunBytecode(shape, corpus, &udfs, reps, false);
    RunBytecode(shape, corpus, &udfs, 1, true);
    const double typed_s = RunBytecode(shape, corpus, &udfs, reps, true);
    auto per_lane = [total](double s) {
      return s > 0 ? s * 1e9 / static_cast<double>(total) : -1;
    };
    const double tree_ns = per_lane(tree_s);
    const double boxed_ns = per_lane(boxed_s);
    const double typed_ns = per_lane(typed_s);
    std::printf("%-20s %10.2f %10.2f %10.2f %8.2fx\n", shape.name.c_str(),
                tree_ns, boxed_ns, typed_ns,
                boxed_ns > 0 && typed_ns > 0 ? boxed_ns / typed_ns : 0.0);
    records.push_back({shape.name, "treewalk", tree_s * 1e3, total, 1,
                       kBatchSize});
    records.push_back({shape.name, "boxed", boxed_s * 1e3, total, 1,
                       kBatchSize});
    records.push_back({shape.name, "typed", typed_s * 1e3, total, 1,
                       kBatchSize});
  }

  sinew::bench::WriteBenchJson(sinew::bench::BenchOutDirFromArgs(argc, argv),
                               "micro_eval", records);
  return 0;
}
