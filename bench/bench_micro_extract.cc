// Micro-benchmark: single-pass batched reservoir extraction vs. the
// per-attribute chain-UDF baseline, at 1, 8 and 32 extracted attributes —
// and the vectorized batch executor (batch_size=1024, the default) vs. the
// row-at-a-time Volcano loop (batch_size=1) over the same batched plans.
//
// Every document carries 32 scalar attributes plus a nested object, so the
// 32-attribute query touches the whole header. The per-attribute path
// re-decodes the row's reservoir once per referenced attribute; the batched
// path (planner kExtract + DocumentView::ExtractMany) walks the header once
// per row and merge-joins all wanted ids. `reservoir.decodes` makes the
// difference observable: decodes/row == 1 batched, == k per-attribute.
// The batch-executor column isolates the vectorization win on top of that:
// same plan, same decodes, but operator dispatch, extraction entry and
// stats updates amortize over 1024-row batches.
//
// --threads=N runs all configurations under Gather parallelism;
// --metrics-out=<path> appends the metrics-registry JSON sidecar;
// --bench-out=<dir> places the BENCH_micro_extract.json records (default .).

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sinew/sinew_db.h"

using sinew::bench::BenchRecord;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

std::string GenerateDocs(uint64_t rows) {
  std::string out;
  out.reserve(rows * 512);
  for (uint64_t i = 0; i < rows; ++i) {
    out += "{";
    for (int a = 0; a < 24; ++a) {
      out += "\"a" + std::to_string(a) + "\": " +
             std::to_string((i * 31 + static_cast<uint64_t>(a) * 7) % 1000) +
             ", ";
    }
    for (int a = 24; a < 32; ++a) {
      out += "\"a" + std::to_string(a) + "\": \"v" +
             std::to_string((i + static_cast<uint64_t>(a)) % 100) + "\", ";
    }
    out += "\"meta\": {\"kind\": \"m" + std::to_string(i % 5) +
           "\", \"weight\": " + std::to_string(i % 17) + "}}\n";
  }
  return out;
}

std::string ProjectionSql(int attrs) {
  std::string sql = "SELECT ";
  for (int a = 0; a < attrs; ++a) {
    if (a > 0) sql += ", ";
    sql += "a" + std::to_string(a);
  }
  return sql + " FROM docs";
}

double BestOfRuns(sinew::SinewDb* db, const std::string& sql, int runs) {
  double best = -1;
  for (int i = 0; i < runs; ++i) {
    Timer timer;
    auto result = db->Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return -1;
    }
    double ms = timer.Millis();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = sinew::bench::ThreadsFromArgs(argc, argv);
  const uint64_t rows = Scaled(20000);
  PrintHeader("Micro: batched vs. per-attribute reservoir extraction");

  sinew::SinewOptions batched_options;  // vectorized executor, batched extract
  batched_options.parallelism = threads;
  // --batch-size=N sweeps the vectorization knob for the "batch" column.
  if (uint64_t bs = sinew::bench::BatchSizeFromArgs(argc, argv)) {
    batched_options.exec.batch_size = bs;
  }
  sinew::SinewOptions row_options = batched_options;
  row_options.exec.batch_size = 1;  // row-at-a-time loop, same batched plans
  sinew::SinewOptions per_attr_options = batched_options;
  per_attr_options.planner.enable_batched_extraction = false;
  sinew::SinewDb batched_db(batched_options);
  sinew::SinewDb row_db(row_options);
  sinew::SinewDb per_attr_db(per_attr_options);
  const std::string docs = GenerateDocs(rows);
  if (!batched_db.LoadJsonLines("docs", docs).ok() ||
      !row_db.LoadJsonLines("docs", docs).ok() ||
      !per_attr_db.LoadJsonLines("docs", docs).ok()) {
    std::printf("load failed\n");
    return 1;
  }

  const uint64_t batch_rows = batched_options.exec.batch_size;
  std::printf("%llu docs x 32 attrs; %d thread%s; batch_size=%llu; best of 5 "
              "runs\n",
              static_cast<unsigned long long>(rows), threads,
              threads == 1 ? "" : "s",
              static_cast<unsigned long long>(batch_rows));
  sinew::metrics::Counter* decodes =
      sinew::metrics::GetCounter("reservoir.decodes");
  const int kRuns = 5;
  std::vector<BenchRecord> records;
  auto record = [&](const std::string& query, const std::string& config,
                    double ms, uint64_t batch) {
    records.push_back({query, config, ms, rows, threads, batch});
  };
  std::printf("%-8s %11s %11s %12s %9s %9s | %12s %12s\n", "Attrs",
              "Batch(ms)", "Row(ms)", "Per-attr(ms)", "b/row", "b/attr",
              "decodes/r(b)", "decodes/r(p)");
  for (int attrs : {1, 8, 32}) {
    const std::string sql = ProjectionSql(attrs);
    const std::string query = "project" + std::to_string(attrs);
    uint64_t before = decodes->value();
    double b = BestOfRuns(&batched_db, sql, kRuns);
    double b_decodes =
        static_cast<double>(decodes->value() - before) / kRuns / rows;
    double r = BestOfRuns(&row_db, sql, kRuns);
    before = decodes->value();
    double p = BestOfRuns(&per_attr_db, sql, kRuns);
    double p_decodes =
        static_cast<double>(decodes->value() - before) / kRuns / rows;
    std::printf("%-8d %11.1f %11.1f %12.1f %8.2fx %8.2fx | %12.2f %12.2f\n",
                attrs, b, r, p, b > 0 ? r / b : 0.0, b > 0 ? p / b : 0.0,
                b_decodes, p_decodes);
    record(query, "batch" + std::to_string(batch_rows), b, batch_rows);
    record(query, "row1", r, 1);
    record(query, "per-attr", p, batch_rows);
  }

  // Nested-object descent shares the projection decode too: meta.kind and
  // meta.weight descend once per filter-surviving row, while the lone
  // predicate site stays on the scan's chain path (~1.5 decodes/row at 50%
  // selectivity).
  const std::string nested_sql =
      "SELECT \"meta.kind\", \"meta.weight\", a0 FROM docs WHERE a1 < 500";
  uint64_t before = decodes->value();
  double nested = BestOfRuns(&batched_db, nested_sql, kRuns);
  double nested_decodes =
      static_cast<double>(decodes->value() - before) / kRuns / rows;
  double nested_row = BestOfRuns(&row_db, nested_sql, kRuns);
  std::printf("%-8s %11.1f %11.1f %12s %8.2fx %9s | %12.2f\n", "nested",
              nested, nested_row, "-",
              nested > 0 ? nested_row / nested : 0.0, "-", nested_decodes);
  record("nested", "batch" + std::to_string(batch_rows), nested, batch_rows);
  record("nested", "row1", nested_row, 1);
  std::printf(
      "b/row = batched-executor speedup over the row-at-a-time loop (same\n"
      "plans); b/attr = batched-extraction speedup over per-attribute UDFs.\n");

  sinew::bench::WriteBenchJson(sinew::bench::BenchOutDirFromArgs(argc, argv),
                               "micro_extract", records);
  sinew::bench::MaybeWriteMetrics(sinew::bench::MetricsOutFromArgs(argc, argv),
                                  "micro_extract");
  return 0;
}
