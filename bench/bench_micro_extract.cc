// Micro-benchmark: single-pass batched reservoir extraction vs. the
// per-attribute chain-UDF baseline, at 1, 8 and 32 extracted attributes.
//
// Every document carries 32 scalar attributes plus a nested object, so the
// 32-attribute query touches the whole header. The per-attribute path
// re-decodes the row's reservoir once per referenced attribute; the batched
// path (planner kExtract + DocumentView::ExtractMany) walks the header once
// per row and merge-joins all wanted ids. `reservoir.decodes` makes the
// difference observable: decodes/row == 1 batched, == k per-attribute.
//
// --threads=N runs both configurations under Gather parallelism;
// --metrics-out=<path> appends the metrics-registry JSON sidecar.

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sinew/sinew_db.h"

using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

std::string GenerateDocs(uint64_t rows) {
  std::string out;
  out.reserve(rows * 512);
  for (uint64_t i = 0; i < rows; ++i) {
    out += "{";
    for (int a = 0; a < 24; ++a) {
      out += "\"a" + std::to_string(a) + "\": " +
             std::to_string((i * 31 + static_cast<uint64_t>(a) * 7) % 1000) +
             ", ";
    }
    for (int a = 24; a < 32; ++a) {
      out += "\"a" + std::to_string(a) + "\": \"v" +
             std::to_string((i + static_cast<uint64_t>(a)) % 100) + "\", ";
    }
    out += "\"meta\": {\"kind\": \"m" + std::to_string(i % 5) +
           "\", \"weight\": " + std::to_string(i % 17) + "}}\n";
  }
  return out;
}

std::string ProjectionSql(int attrs) {
  std::string sql = "SELECT ";
  for (int a = 0; a < attrs; ++a) {
    if (a > 0) sql += ", ";
    sql += "a" + std::to_string(a);
  }
  return sql + " FROM docs";
}

double BestOfRuns(sinew::SinewDb* db, const std::string& sql, int runs) {
  double best = -1;
  for (int i = 0; i < runs; ++i) {
    Timer timer;
    auto result = db->Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return -1;
    }
    double ms = timer.Millis();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = sinew::bench::ThreadsFromArgs(argc, argv);
  const uint64_t rows = Scaled(20000);
  PrintHeader("Micro: batched vs. per-attribute reservoir extraction");
  std::printf("%llu docs x 32 attrs; %d thread%s; best of 5 runs\n",
              static_cast<unsigned long long>(rows), threads,
              threads == 1 ? "" : "s");

  sinew::SinewOptions batched_options;
  batched_options.parallelism = threads;
  sinew::SinewOptions per_attr_options = batched_options;
  per_attr_options.planner.enable_batched_extraction = false;
  sinew::SinewDb batched_db(batched_options);
  sinew::SinewDb per_attr_db(per_attr_options);
  const std::string docs = GenerateDocs(rows);
  if (!batched_db.LoadJsonLines("docs", docs).ok() ||
      !per_attr_db.LoadJsonLines("docs", docs).ok()) {
    std::printf("load failed\n");
    return 1;
  }

  sinew::metrics::Counter* decodes =
      sinew::metrics::GetCounter("reservoir.decodes");
  const int kRuns = 5;
  std::printf("%-8s %12s %12s %9s | %14s %14s\n", "Attrs", "Batched(ms)",
              "Per-attr(ms)", "speedup", "decodes/row(b)", "decodes/row(p)");
  for (int attrs : {1, 8, 32}) {
    const std::string sql = ProjectionSql(attrs);
    uint64_t before = decodes->value();
    double b = BestOfRuns(&batched_db, sql, kRuns);
    double b_decodes =
        static_cast<double>(decodes->value() - before) / kRuns / rows;
    before = decodes->value();
    double p = BestOfRuns(&per_attr_db, sql, kRuns);
    double p_decodes =
        static_cast<double>(decodes->value() - before) / kRuns / rows;
    std::printf("%-8d %12.1f %12.1f %8.2fx | %14.2f %14.2f\n", attrs, b, p,
                b > 0 ? p / b : 0.0, b_decodes, p_decodes);
  }

  // Nested-object descent shares the projection decode too: meta.kind and
  // meta.weight descend once per filter-surviving row, while the lone
  // predicate site stays on the scan's chain path (~1.5 decodes/row at 50%
  // selectivity).
  uint64_t before = decodes->value();
  double nested = BestOfRuns(
      &batched_db,
      "SELECT \"meta.kind\", \"meta.weight\", a0 FROM docs WHERE a1 < 500",
      kRuns);
  double nested_decodes =
      static_cast<double>(decodes->value() - before) / kRuns / rows;
  std::printf("%-8s %12.1f %12s %9s | %14.2f\n", "nested", nested, "-", "-",
              nested_decodes);

  sinew::bench::MaybeWriteMetrics(sinew::bench::MetricsOutFromArgs(argc, argv),
                                  "micro_extract");
  return 0;
}
