// Microbenchmarks (google-benchmark) for the serialization layer: the
// O(log n) random-access claim of Section 4.1 (extraction cost vs. document
// width) and the comparison against the sequential ProtoLike format.

#include <benchmark/benchmark.h>

#include "serial/protolike.h"
#include "serial/sinew_serializer.h"
#include "workloads/nobench/generator.h"

namespace {

using sinew::Value;

/// A synthetic document with `width` attributes.
Value WideDocument(int width) {
  Value doc = Value::Object({});
  for (int i = 0; i < width; ++i) {
    doc.Set("key_" + std::to_string(i), Value::Int(i * 7));
  }
  return doc;
}

void BM_SinewExtract_VsWidth(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  sinew::serial::SinewSerializer serializer;
  std::string blob;
  if (!serializer.Serialize(WideDocument(width), &blob).ok()) {
    state.SkipWithError("serialize failed");
    return;
  }
  std::string key = "key_" + std::to_string(width / 2);
  for (auto _ : state) {
    auto v = serializer.Extract(blob, key);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SinewExtract_VsWidth)->RangeMultiplier(4)->Range(4, 4096);

void BM_ProtoLikeExtract_VsWidth(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  sinew::serial::ProtoLikeSerializer serializer;
  std::string blob;
  if (!serializer.Serialize(WideDocument(width), &blob).ok()) {
    state.SkipWithError("serialize failed");
    return;
  }
  std::string key = "key_" + std::to_string(width / 2);
  for (auto _ : state) {
    auto v = serializer.Extract(blob, key);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ProtoLikeExtract_VsWidth)->RangeMultiplier(4)->Range(4, 4096);

void BM_SinewSerializeNoBench(benchmark::State& state) {
  sinew::workloads::nobench::Config config;
  config.num_records = 256;
  auto docs = sinew::workloads::nobench::Generate(config);
  sinew::serial::SinewSerializer serializer;
  size_t i = 0;
  for (auto _ : state) {
    std::string blob;
    benchmark::DoNotOptimize(serializer.Serialize(docs[i % docs.size()], &blob));
    ++i;
  }
}
BENCHMARK(BM_SinewSerializeNoBench);

void BM_SinewDeserializeNoBench(benchmark::State& state) {
  sinew::workloads::nobench::Config config;
  config.num_records = 256;
  auto docs = sinew::workloads::nobench::Generate(config);
  sinew::serial::SinewSerializer serializer;
  std::vector<std::string> blobs(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    if (!serializer.Serialize(docs[i], &blobs[i]).ok()) {
      state.SkipWithError("serialize failed");
      return;
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(serializer.Deserialize(blobs[i % blobs.size()]));
    ++i;
  }
}
BENCHMARK(BM_SinewDeserializeNoBench);

}  // namespace

BENCHMARK_MAIN();
