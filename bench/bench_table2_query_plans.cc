// Tables 1 & 2: effect of virtual vs. physical columns on query plans.
//
// Loads the synthetic Twitter workload into two Sinew instances — one with
// everything left virtual in the column reservoir, one with the referenced
// attributes materialized and ANALYZEd — and EXPLAINs the four Table 1
// queries in both conditions. The paper's observed differences are the
// aggregate-operator flips (HashAggregate vs. sort-based Unique /
// GroupAggregate), join-strategy flips (hash vs. merge under the work_mem
// proxy) and the row-estimate gaps (the fixed 200-row default for
// statistics-less virtual columns vs. ANALYZE statistics).
//
// It also measures execution time of each query in both conditions
// (the paper reports an order-of-magnitude gap on the self-join).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "sinew/sinew_db.h"
#include "workloads/twitter/twitter.h"

namespace tw = sinew::workloads::twitter;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

constexpr const char* kMaterializedTweetCols[] = {
    "id_str",      "retweet_count",       "user",
    "user.id",     "user.screen_name",    "user.lang",
    "user.friends_count", "in_reply_to_screen_name",
};
constexpr const char* kMaterializedDeleteCols[] = {
    "delete", "delete.status.id_str", "delete.status.user_id"};

sinew::Status LoadTwitter(sinew::SinewDb* db, const tw::Config& config) {
  RETURN_NOT_OK(db->LoadDocuments("tweets", tw::GenerateTweets(config))
                    .status());
  RETURN_NOT_OK(db->LoadDocuments("deletes", tw::GenerateDeletes(config))
                    .status());
  return sinew::Status::OK();
}

}  // namespace

int main() {
  PrintHeader("Tables 1 & 2: query plans, virtual vs. physical columns");
  tw::Config config;
  config.num_tweets = Scaled(20000);
  config.num_deletes = config.num_tweets / 5;

  // work_mem proxies scaled to the dataset, playing the role the paper's
  // 128 MB shared-memory limit plays against 10M tweets.
  sinew::SinewOptions options;
  options.planner.hash_agg_max_groups =
      static_cast<double>(config.num_tweets) / 20;
  options.planner.hash_join_max_build_rows =
      static_cast<double>(config.num_tweets) / 20;

  sinew::SinewDb virtual_db(options);
  sinew::SinewDb physical_db(options);
  if (!LoadTwitter(&virtual_db, config).ok() ||
      !LoadTwitter(&physical_db, config).ok()) {
    std::printf("load failed\n");
    return 1;
  }
  for (const char* col : kMaterializedTweetCols) {
    (void)physical_db.ForceMaterialization("tweets", col, true);
  }
  for (const char* col : kMaterializedDeleteCols) {
    (void)physical_db.ForceMaterialization("deletes", col, true);
  }
  if (!physical_db.MaterializeAll("tweets").ok() ||
      !physical_db.MaterializeAll("deletes").ok()) {
    std::printf("materialization failed\n");
    return 1;
  }

  std::vector<std::string> queries = tw::Table1Queries();
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("\n# Query %zu (Table 1)\n%s\n", i + 1, queries[i].c_str());
    auto vplan = virtual_db.Explain(queries[i]);
    auto pplan = physical_db.Explain(queries[i]);
    std::printf("-- with virtual columns:\n%s",
                vplan.ok() ? vplan->c_str() : vplan.status().ToString().c_str());
    std::printf("-- with physical columns:\n%s",
                pplan.ok() ? pplan->c_str() : pplan.status().ToString().c_str());

    Timer vt;
    auto vres = virtual_db.Query(queries[i]);
    double v_ms = vt.Millis();
    Timer pt;
    auto pres = physical_db.Query(queries[i]);
    double p_ms = pt.Millis();
    std::printf("-- execution: virtual %.1f ms (%zu rows), physical %.1f ms (%zu rows)\n",
                v_ms, vres.ok() ? vres->rows.size() : 0, p_ms,
                pres.ok() ? pres->rows.size() : 0);
  }
  std::printf(
      "\nPaper shape (Table 2): DISTINCT flips HashAggregate -> sort-based\n"
      "Unique, GROUP BY flips HashAggregate -> GroupAggregate, and join\n"
      "strategies/row estimates change once real statistics exist; the\n"
      "physical plans run faster, most dramatically on the self-join.\n");
  return 0;
}
