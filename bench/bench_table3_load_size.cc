// Table 3: load time and storage size for the four systems at two scales,
// plus the size of the original JSON input.

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/nobench/generator.h"
#include "workloads/nobench/runners.h"

namespace nb = sinew::workloads::nobench;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

void RunScale(const char* label, uint64_t records) {
  nb::Config config;
  config.num_records = records;
  std::vector<sinew::Value> docs = nb::Generate(config);
  // The paper's systems all ingest JSON text; feed that to every runner.
  std::vector<std::string> lines;
  lines.reserve(docs.size());
  uint64_t original_bytes = 0;
  for (const sinew::Value& doc : docs) {
    lines.push_back(doc.ToJson());
    original_bytes += lines.back().size();
  }
  docs.clear();

  std::printf("\n--- %s: %llu records ---\n", label,
              static_cast<unsigned long long>(records));
  std::printf("%-14s %12s %14s\n", "System", "Load (ms)", "Size (MB)");

  auto runners = nb::MakeAllRunners();
  for (auto& runner : runners) {
    Timer timer;
    sinew::Status st = runner->LoadJsonLines(lines);
    double load_ms = timer.Millis();
    if (!st.ok()) {
      std::printf("%-14s %12s\n", std::string(runner->name()).c_str(),
                  "FAILED");
      continue;
    }
    // Prepare (Sinew materialization / EAV ANALYZE) is excluded from load
    // time, as in the paper (the materializer is a background process).
    (void)runner->Prepare();
    auto size = runner->StorageBytes();
    std::printf("%-14s %12.1f %14.2f\n", std::string(runner->name()).c_str(),
                load_ms,
                size.ok() ? static_cast<double>(*size) / 1e6 : -1.0);
  }
  std::printf("%-14s %12s %14.2f\n", "Original", "-",
              static_cast<double>(original_bytes) / 1e6);
}

}  // namespace

int main() {
  PrintHeader("Table 3: load time and storage size");
  RunScale("small", Scaled(8000));
  RunScale("large", Scaled(32000));
  std::printf(
      "\nPaper shape: Sinew's representation is the most compact (dictionary-\n"
      "encoded keys); PG-JSON ~= original; MongoDB-like slightly larger than\n"
      "original (BSON type/key overhead); EAV ~2x+ original; EAV load is by\n"
      "far the slowest (20+ tuples per record).\n");
  return 0;
}
