// Table 4 (Appendix A): serialization format comparison — Sinew's custom
// format vs. the Protocol-Buffers-like and Avro-like comparators, on
// serialization, full deserialization, 1-key extraction, 10-key extraction,
// and stored size.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "serial/avrolike.h"
#include "serial/protolike.h"
#include "serial/sinew_serializer.h"
#include "workloads/nobench/generator.h"

namespace nb = sinew::workloads::nobench;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

struct Row {
  double serialize_ms = -1;
  double deserialize_ms = -1;
  double extract1_ms = -1;
  double extract10_ms = -1;
  double size_mb = 0;
};

const char* kTenKeys[] = {"str1",       "str2",      "num",        "bool",
                          "dyn1",       "dyn2",      "thousandth", "sparse_110",
                          "sparse_220", "nested_arr"};

Row RunFormat(sinew::serial::DocumentSerializer* serializer,
              const std::vector<sinew::Value>& docs) {
  Row row;
  for (const sinew::Value& doc : docs) {
    if (!serializer->ObserveSchema(doc).ok()) return row;
  }
  std::vector<std::string> blobs(docs.size());
  {
    Timer timer;
    for (size_t i = 0; i < docs.size(); ++i) {
      if (!serializer->Serialize(docs[i], &blobs[i]).ok()) return row;
    }
    row.serialize_ms = timer.Millis();
  }
  uint64_t bytes = 0;
  for (const std::string& b : blobs) bytes += b.size();
  row.size_mb = static_cast<double>(bytes) / 1e6;
  {
    Timer timer;
    for (const std::string& b : blobs) {
      auto doc = serializer->Deserialize(b);
      if (!doc.ok()) return row;
    }
    row.deserialize_ms = timer.Millis();
  }
  {
    Timer timer;
    for (const std::string& b : blobs) {
      auto v = serializer->Extract(b, "thousandth");
      if (!v.ok()) return row;
    }
    row.extract1_ms = timer.Millis();
  }
  {
    Timer timer;
    for (const std::string& b : blobs) {
      for (const char* key : kTenKeys) {
        auto v = serializer->Extract(b, key);
        if (!v.ok()) return row;
      }
    }
    row.extract10_ms = timer.Millis();
  }
  return row;
}

}  // namespace

int main() {
  PrintHeader("Table 4: serialization format comparison (Appendix A)");
  nb::Config config;
  config.num_records = Scaled(20000);
  std::vector<sinew::Value> docs = nb::Generate(config);
  uint64_t original = 0;
  for (const sinew::Value& doc : docs) original += doc.ToJson().size();

  std::vector<std::unique_ptr<sinew::serial::DocumentSerializer>> formats;
  formats.push_back(std::make_unique<sinew::serial::SinewSerializer>());
  formats.push_back(std::make_unique<sinew::serial::ProtoLikeSerializer>());
  formats.push_back(std::make_unique<sinew::serial::AvroLikeSerializer>());

  std::printf("%llu NoBench objects; times in ms\n",
              static_cast<unsigned long long>(config.num_records));
  std::printf("%-22s %10s %10s %10s\n", "Task", "Sinew", "ProtoLike",
              "AvroLike");
  Row rows[3];
  for (int i = 0; i < 3; ++i) rows[i] = RunFormat(formats[i].get(), docs);
  std::printf("%-22s %10.1f %10.1f %10.1f\n", "Serialization (ms)",
              rows[0].serialize_ms, rows[1].serialize_ms,
              rows[2].serialize_ms);
  std::printf("%-22s %10.1f %10.1f %10.1f\n", "Deserialization (ms)",
              rows[0].deserialize_ms, rows[1].deserialize_ms,
              rows[2].deserialize_ms);
  std::printf("%-22s %10.1f %10.1f %10.1f\n", "Extraction 1 key (ms)",
              rows[0].extract1_ms, rows[1].extract1_ms, rows[2].extract1_ms);
  std::printf("%-22s %10.1f %10.1f %10.1f\n", "Extraction 10 keys",
              rows[0].extract10_ms, rows[1].extract10_ms,
              rows[2].extract10_ms);
  std::printf("%-22s %10.2f %10.2f %10.2f   (original JSON: %.2f)\n",
              "Size (MB)", rows[0].size_mb, rows[1].size_mb, rows[2].size_mb,
              static_cast<double>(original) / 1e6);
  std::printf(
      "\nPaper shape: Sinew fastest on every task; ProtoLike slightly\n"
      "smaller on disk (aggressive varint packing) but much slower to\n"
      "extract (sequential wire format); AvroLike bloated and slowest\n"
      "(explicit nulls for every schema field, no random access).\n");
  return 0;
}
