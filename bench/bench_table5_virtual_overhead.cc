// Table 5 (Appendix B): virtual vs. physical column access overhead.
//
// The same three queries run against the same tweets, with the referenced
// attribute stored (a) serialized in the column reservoir and (b) in a
// physical column. The paper measures <5% overhead for projection and <2%
// for selection / ORDER BY, concluding the serialization is cheap but the
// hybrid schema is still necessary for the optimizer (Table 2).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "sinew/sinew_db.h"
#include "workloads/twitter/twitter.h"

namespace tw = sinew::workloads::twitter;
using sinew::bench::PrintHeader;
using sinew::bench::Scaled;
using sinew::bench::Timer;

namespace {

/// Minimum over several runs: the most noise-resistant point estimate on a
/// shared machine (we compare two code paths over identical data).
double BestOfRuns(sinew::SinewDb* db, const std::string& sql, int runs) {
  double best = -1;
  for (int i = 0; i < runs; ++i) {
    Timer timer;
    auto result = db->Query(sql);
    if (!result.ok()) return -1;
    double ms = timer.Millis();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = sinew::bench::ThreadsFromArgs(argc, argv);
  PrintHeader("Table 5: virtual vs. physical column overhead (Appendix B)");
  std::printf("Sinew parallelism: %d thread%s (--threads=N to change)\n",
              threads, threads == 1 ? "" : "s");
  tw::Config config;
  config.num_tweets = Scaled(40000);
  config.num_deletes = 0;

  sinew::SinewOptions options;
  options.parallelism = threads;
  sinew::SinewDb virtual_db(options);
  sinew::SinewDb physical_db(options);
  auto tweets = tw::GenerateTweets(config);
  if (!virtual_db.LoadDocuments("tweets", tweets).ok() ||
      !physical_db.LoadDocuments("tweets", tweets).ok()) {
    std::printf("load failed\n");
    return 1;
  }
  for (const char* col :
       {"user", "user.id", "user.lang", "user.friends_count"}) {
    (void)physical_db.ForceMaterialization("tweets", col, true);
  }
  if (!physical_db.MaterializeAll("tweets").ok()) {
    std::printf("materialization failed\n");
    return 1;
  }

  struct Q {
    const char* label;
    const char* sql;
  } queries[] = {
      {"projection", "SELECT \"user.id\" FROM tweets"},
      {"selection", "SELECT * FROM tweets WHERE \"user.lang\" = 'en'"},
      {"order by",
       "SELECT * FROM tweets ORDER BY \"user.friends_count\" DESC LIMIT 100"},
  };
  std::printf("%llu tweets; best of 5 runs, times in ms\n",
              static_cast<unsigned long long>(config.num_tweets));
  std::printf("%-12s %12s %12s %10s\n", "Query", "Virtual", "Physical",
              "overhead");
  for (const Q& q : queries) {
    double v = BestOfRuns(&virtual_db, q.sql, 5);
    double p = BestOfRuns(&physical_db, q.sql, 5);
    std::printf("%-12s %12.1f %12.1f %9.1f%%\n", q.label, v, p,
                p > 0 ? (v / p - 1.0) * 100.0 : 0.0);
  }

  // Multi-attribute queries: the batched extraction node (SinewExtract)
  // decodes each row's reservoir once for all referenced attributes; the
  // per-attribute path decodes it once per reference. `reservoir.decodes`
  // makes the decode-once invariant observable: decodes/row == 1 batched.
  PrintHeader("Batched vs. per-attribute extraction (multi-attribute)");
  sinew::SinewOptions per_attr_options = options;
  per_attr_options.planner.enable_batched_extraction = false;
  sinew::SinewDb per_attr_db(per_attr_options);
  if (!per_attr_db.LoadDocuments("tweets", tweets).ok()) {
    std::printf("load failed\n");
    return 1;
  }
  const Q multi_queries[] = {
      {"proj x5",
       "SELECT \"user.id\", \"user.lang\", \"user.friends_count\", "
       "\"user.screen_name\", retweet_count FROM tweets"},
      {"filter+proj",
       "SELECT \"user.id\", \"user.screen_name\", text FROM tweets "
       "WHERE \"user.lang\" = 'en' AND retweet_count > 10"},
  };
  sinew::metrics::Counter* decodes =
      sinew::metrics::GetCounter("reservoir.decodes");
  const double rows = static_cast<double>(config.num_tweets);
  std::printf("%-12s %12s %12s %9s | %14s %14s\n", "Query", "Batched",
              "Per-attr", "speedup", "decodes/row(b)", "decodes/row(p)");
  for (const Q& q : multi_queries) {
    uint64_t before = decodes->value();
    double b = BestOfRuns(&virtual_db, q.sql, 5);
    double b_decodes = static_cast<double>(decodes->value() - before) / 5.0;
    before = decodes->value();
    double p = BestOfRuns(&per_attr_db, q.sql, 5);
    double p_decodes = static_cast<double>(decodes->value() - before) / 5.0;
    std::printf("%-12s %12.1f %12.1f %8.2fx | %14.2f %14.2f\n", q.label, b, p,
                b > 0 ? p / b : 0.0, b_decodes / rows, p_decodes / rows);
  }
  sinew::bench::MaybeWriteMetrics(sinew::bench::MetricsOutFromArgs(argc, argv),
                                  "table5.virtual_overhead");
  std::printf(
      "\nPaper shape: virtual-column access costs only a few percent over\n"
      "physical columns (one extra dereference + header binary search),\n"
      "shrinking further as fixed query costs grow.\n");
  return 0;
}
