// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary runs standalone with no arguments and finishes in seconds at
// the default scale. Set SINEW_BENCH_SCALE=<float> to scale the dataset
// sizes (e.g. 4 for a longer, more stable run).

#ifndef SINEW_BENCH_BENCH_UTIL_H_
#define SINEW_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"

namespace sinew::bench {

inline double ScaleFromEnv() {
  const char* env = std::getenv("SINEW_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

inline uint64_t Scaled(uint64_t base) {
  return static_cast<uint64_t>(static_cast<double>(base) * ScaleFromEnv());
}

/// Timing repetitions: `--reps=N` on the command line, else SINEW_BENCH_REPS,
/// else `def`. Benchmarks that gate on compare_bench.py time each query N
/// times and report the minimum, so a single scheduler hiccup cannot read as
/// a regression.
inline int RepsFromArgs(int argc, char** argv, int def = 1) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reps=", 0) == 0) {
      int reps = std::atoi(arg.c_str() + 7);
      if (reps > 0) return reps;
    }
  }
  if (const char* env = std::getenv("SINEW_BENCH_REPS")) {
    int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return def;
}

/// Parallelism degree for Sinew in the benchmark binaries: `--threads=N` on
/// the command line, else SINEW_BENCH_THREADS, else 1 (serial, the
/// paper-faithful configuration). Compare --threads=1 vs --threads=4 runs
/// for the morsel-driven speedup.
inline int ThreadsFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      int threads = std::atoi(arg.c_str() + 10);
      if (threads > 0) return threads;
    }
  }
  if (const char* env = std::getenv("SINEW_BENCH_THREADS")) {
    int threads = std::atoi(env);
    if (threads > 0) return threads;
  }
  return 1;
}

/// Executor batch size override: `--batch-size=N` on the command line, else
/// SINEW_BENCH_BATCH_SIZE, else 0 (keep the engine default). Lets one
/// binary sweep the vectorization knob (1 = row-at-a-time).
inline uint64_t BatchSizeFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--batch-size=", 0) == 0) {
      long long v = std::atoll(arg.c_str() + 13);
      if (v > 0) return static_cast<uint64_t>(v);
    }
  }
  if (const char* env = std::getenv("SINEW_BENCH_BATCH_SIZE")) {
    long long v = std::atoll(env);
    if (v > 0) return static_cast<uint64_t>(v);
  }
  return 0;
}

/// Destination for the metrics-registry JSON dump: `--metrics-out=<path>`
/// on the command line, else SINEW_BENCH_METRICS_OUT, else "" (disabled).
inline std::string MetricsOutFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(14);
    }
  }
  if (const char* env = std::getenv("SINEW_BENCH_METRICS_OUT")) {
    return env;
  }
  return "";
}

/// Appends MetricsRegistry::DumpJson() to `path` tagged with the run label —
/// one (multi-line) JSON object per benchmark run, concatenated. No-op when
/// `path` is empty; under SINEW_METRICS=OFF builds the dump is empty.
inline void MaybeWriteMetrics(const std::string& path,
                              const std::string& label) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "metrics-out: cannot open %s\n", path.c_str());
    return;
  }
  out << "{\"run\":\"" << label << "\",\"metrics\":"
      << metrics::MetricsRegistry::Global()->DumpJson() << "}\n";
}

/// Destination for the Chrome trace-event JSON export of the span ring:
/// `--trace-out=<path>` on the command line, else SINEW_BENCH_TRACE_OUT,
/// else "" (disabled). The file loads in Perfetto / about:tracing and can be
/// checked with bench/validate_trace.py.
inline std::string TraceOutFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      return arg.substr(12);
    }
  }
  if (const char* env = std::getenv("SINEW_BENCH_TRACE_OUT")) {
    return env;
  }
  return "";
}

/// Writes MetricsRegistry::DumpChromeTrace() to `path` (overwrite). No-op
/// when `path` is empty; under SINEW_METRICS=OFF builds the trace is empty.
inline void MaybeWriteTrace(const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "trace-out: cannot open %s\n", path.c_str());
    return;
  }
  out << metrics::MetricsRegistry::Global()->DumpChromeTrace();
  std::printf("wrote %s\n", path.c_str());
}

/// One machine-readable measurement from a benchmark binary. The JSON file
/// adds the derived rows_per_sec / ns_per_row fields so downstream tooling
/// (bench/compare_bench.py) never recomputes them differently.
struct BenchRecord {
  std::string query;   // e.g. "Q3", "project8", "nested"
  std::string config;  // e.g. "Sinew", "Sinew-row1", "batch1024"
  double ms = -1;      // wall time of the measured run; < 0 = failed
  uint64_t rows = 0;   // rows processed (dataset size for scans; 0 unknown)
  int threads = 1;
  uint64_t batch_size = 0;
};

/// Directory for BENCH_<name>.json sidecars: `--bench-out=<dir>` on the
/// command line, else SINEW_BENCH_OUT, else "." — benchmarks always emit
/// their JSON, next to wherever they run by default.
inline std::string BenchOutDirFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--bench-out=", 0) == 0) {
      return arg.substr(12);
    }
  }
  if (const char* env = std::getenv("SINEW_BENCH_OUT")) {
    return env;
  }
  return ".";
}

/// Writes `records` to <dir>/BENCH_<name>.json as a JSON array, one object
/// per measurement, with throughput fields derived from (ms, rows).
inline void WriteBenchJson(const std::string& dir, const std::string& name,
                           const std::vector<BenchRecord>& records) {
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench-out: cannot open %s\n", path.c_str());
    return;
  }
  out << "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    const double secs = r.ms / 1e3;
    const bool has_rate = r.ms > 0 && r.rows > 0;
    out << "  {\"query\": \"" << r.query << "\", \"config\": \"" << r.config
        << "\", \"ms\": " << r.ms << ", \"rows\": " << r.rows
        << ", \"rows_per_sec\": "
        << (has_rate ? static_cast<double>(r.rows) / secs : 0.0)
        << ", \"ns_per_row\": "
        << (has_rate ? r.ms * 1e6 / static_cast<double>(r.rows) : 0.0)
        << ", \"threads\": " << r.threads
        << ", \"batch_size\": " << r.batch_size << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Times a Status-returning action; prints "<label>: FAILED (...)" and
/// returns a negative duration on error.
inline double TimeOrFail(const std::function<Status()>& fn,
                         std::string* error) {
  Timer timer;
  Status st = fn();
  if (!st.ok()) {
    *error = st.ToString();
    return -1.0;
  }
  return timer.Seconds();
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Milliseconds or a failure marker, fixed width.
inline std::string FormatMs(double seconds, const std::string& error) {
  char buf[64];
  if (seconds < 0) {
    std::snprintf(buf, sizeof(buf), "FAILED(%.24s)", error.c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "%10.1f", seconds * 1e3);
  }
  return buf;
}

}  // namespace sinew::bench

#endif  // SINEW_BENCH_BENCH_UTIL_H_
