// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary runs standalone with no arguments and finishes in seconds at
// the default scale. Set SINEW_BENCH_SCALE=<float> to scale the dataset
// sizes (e.g. 4 for a longer, more stable run).

#ifndef SINEW_BENCH_BENCH_UTIL_H_
#define SINEW_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>

#include "common/metrics.h"
#include "common/result.h"

namespace sinew::bench {

inline double ScaleFromEnv() {
  const char* env = std::getenv("SINEW_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

inline uint64_t Scaled(uint64_t base) {
  return static_cast<uint64_t>(static_cast<double>(base) * ScaleFromEnv());
}

/// Parallelism degree for Sinew in the benchmark binaries: `--threads=N` on
/// the command line, else SINEW_BENCH_THREADS, else 1 (serial, the
/// paper-faithful configuration). Compare --threads=1 vs --threads=4 runs
/// for the morsel-driven speedup.
inline int ThreadsFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      int threads = std::atoi(arg.c_str() + 10);
      if (threads > 0) return threads;
    }
  }
  if (const char* env = std::getenv("SINEW_BENCH_THREADS")) {
    int threads = std::atoi(env);
    if (threads > 0) return threads;
  }
  return 1;
}

/// Destination for the metrics-registry JSON dump: `--metrics-out=<path>`
/// on the command line, else SINEW_BENCH_METRICS_OUT, else "" (disabled).
inline std::string MetricsOutFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(14);
    }
  }
  if (const char* env = std::getenv("SINEW_BENCH_METRICS_OUT")) {
    return env;
  }
  return "";
}

/// Appends MetricsRegistry::DumpJson() to `path` tagged with the run label —
/// one (multi-line) JSON object per benchmark run, concatenated. No-op when
/// `path` is empty; under SINEW_METRICS=OFF builds the dump is empty.
inline void MaybeWriteMetrics(const std::string& path,
                              const std::string& label) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "metrics-out: cannot open %s\n", path.c_str());
    return;
  }
  out << "{\"run\":\"" << label << "\",\"metrics\":"
      << metrics::MetricsRegistry::Global()->DumpJson() << "}\n";
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Times a Status-returning action; prints "<label>: FAILED (...)" and
/// returns a negative duration on error.
inline double TimeOrFail(const std::function<Status()>& fn,
                         std::string* error) {
  Timer timer;
  Status st = fn();
  if (!st.ok()) {
    *error = st.ToString();
    return -1.0;
  }
  return timer.Seconds();
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Milliseconds or a failure marker, fixed width.
inline std::string FormatMs(double seconds, const std::string& error) {
  char buf[64];
  if (seconds < 0) {
    std::snprintf(buf, sizeof(buf), "FAILED(%.24s)", error.c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "%10.1f", seconds * 1e3);
  }
  return buf;
}

}  // namespace sinew::bench

#endif  // SINEW_BENCH_BENCH_UTIL_H_
