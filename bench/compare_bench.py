#!/usr/bin/env python3
"""Diff two BENCH_*.json files emitted by the benchmark binaries.

Usage:
    python3 bench/compare_bench.py BASELINE.json CANDIDATE.json [--threshold=0.10]

Measurements are matched on (query, config). For each pair the script prints
the ns/row (falling back to ms when a record carries no row count) of both
runs and the relative change; changes worse than the threshold (default 10%
slower) are flagged as REGRESSION and make the exit status non-zero, so the
script doubles as a CI gate:

    ./build/bench/bench_micro_extract --bench-out=/tmp/a   # baseline build
    ./build/bench/bench_micro_extract --bench-out=/tmp/b   # candidate build
    python3 bench/compare_bench.py /tmp/a/BENCH_micro_extract.json \
                                   /tmp/b/BENCH_micro_extract.json

Works on every sidecar the binaries emit, including BENCH_fig8_ingest.json
(bench_fig8_update's sustained-ingest mode: query "ingest", one config per
write path — image-commit vs. wal-always/group/none).

A single file can also be diffed against itself across two configs it
contains — e.g. the columnar-segment ablation, where BENCH_fig6_columnar.json
carries a "rows" and a "strips" measurement per query:

    python3 bench/compare_bench.py BENCH_fig6_columnar.json \
            --configs=rows,strips

treats the first config as baseline and the second as candidate, matched on
query. The regression flag then reads "strips slower than rows".

With `--metrics-baseline=<path> --metrics-candidate=<path>` (the sidecars
written by the binaries' `--metrics-out=` flag) the report also prints
per-histogram latency percentiles (p50/p95/p99, bucket-interpolated by the
metrics registry) for every run label the two sidecars share. A single
sidecar can be inspected alone with `--metrics=<path>`. The percentile
section is informational — only the (query, config) table gates the exit
status.

Stdlib only; no third-party dependencies.
"""

import json
import sys


def load_metrics(path):
    """Parses a --metrics-out sidecar: concatenated {"run":..,"metrics":..}
    objects (one multi-line JSON object per benchmark run)."""
    decoder = json.JSONDecoder()
    with open(path) as f:
        text = f.read()
    runs = {}
    idx = 0
    while idx < len(text):
        while idx < len(text) and text[idx].isspace():
            idx += 1
        if idx >= len(text):
            break
        obj, idx = decoder.raw_decode(text, idx)
        runs[obj.get("run", f"run{len(runs)}")] = obj.get("metrics", {})
    return runs


def print_percentiles(base_runs, cand_runs, title):
    """Per-histogram p50/p95/p99 columns; candidate columns only when a
    second sidecar is present."""
    print(f"\n--- histogram percentiles ({title}) ---")
    diff = cand_runs is not None
    if diff:
        header = (f"{'run':<16} {'histogram':<28} "
                  f"{'p50':>10} {'p50 cand':>10} "
                  f"{'p95':>10} {'p95 cand':>10} "
                  f"{'p99':>10} {'p99 cand':>10}")
    else:
        header = (f"{'run':<16} {'histogram':<28} "
                  f"{'p50_ns':>12} {'p95_ns':>12} {'p99_ns':>12}")
    print(header)
    labels = sorted(set(base_runs) & set(cand_runs)) if diff \
        else sorted(base_runs)
    for label in labels:
        base_hists = base_runs[label].get("histograms", {})
        cand_hists = (cand_runs[label].get("histograms", {})
                      if diff else {})
        names = sorted(set(base_hists) | set(cand_hists)) if diff \
            else sorted(base_hists)
        for name in names:
            b = base_hists.get(name, {})
            if diff:
                c = cand_hists.get(name, {})
                print(f"{label:<16} {name:<28} "
                      f"{b.get('p50_ns', 0):>10.0f} {c.get('p50_ns', 0):>10.0f} "
                      f"{b.get('p95_ns', 0):>10.0f} {c.get('p95_ns', 0):>10.0f} "
                      f"{b.get('p99_ns', 0):>10.0f} {c.get('p99_ns', 0):>10.0f}")
            else:
                print(f"{label:<16} {name:<28} "
                      f"{b.get('p50_ns', 0):>12.0f} "
                      f"{b.get('p95_ns', 0):>12.0f} "
                      f"{b.get('p99_ns', 0):>12.0f}")


def load(path):
    with open(path) as f:
        records = json.load(f)
    out = {}
    for r in records:
        out[(r["query"], r["config"])] = r
    return out


def metric(record):
    """ns/row when available (scale-independent), else raw milliseconds."""
    if record.get("ns_per_row"):
        return record["ns_per_row"], "ns/row"
    return record["ms"], "ms"


def split_configs(path, config_pair):
    """One file, two configs: baseline = first config, candidate = second."""
    base_cfg, cand_cfg = config_pair.split(",", 1)
    records = load(path)
    base = {(q, base_cfg): r for (q, c), r in records.items() if c == base_cfg}
    cand = {(q, base_cfg): r for (q, c), r in records.items() if c == cand_cfg}
    if not base or not cand:
        print(f"config(s) not found in {path}: {config_pair}")
        sys.exit(2)
    return base, cand


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 0.10
    configs = None
    metrics_base = metrics_cand = metrics_single = None
    for a in argv[1:]:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])
        if a.startswith("--configs="):
            configs = a.split("=", 1)[1]
        if a.startswith("--metrics-baseline="):
            metrics_base = a.split("=", 1)[1]
        if a.startswith("--metrics-candidate="):
            metrics_cand = a.split("=", 1)[1]
        if a.startswith("--metrics="):
            metrics_single = a.split("=", 1)[1]
    if metrics_single is not None and not args:
        # Inspect one sidecar's percentiles without a BENCH_*.json diff.
        print_percentiles(load_metrics(metrics_single), None, metrics_single)
        return 0
    if configs is not None and len(args) == 1:
        base, cand = split_configs(args[0], configs)
    elif len(args) == 2:
        base, cand = load(args[0]), load(args[1])
    else:
        print(__doc__.strip())
        return 2

    common = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    regressions = []

    print(f"{'query':<12} {'config':<16} {'baseline':>12} {'candidate':>12} "
          f"{'change':>8}  unit")
    for key in common:
        b_val, b_unit = metric(base[key])
        c_val, c_unit = metric(cand[key])
        if b_unit != c_unit or b_val <= 0 or c_val <= 0:
            print(f"{key[0]:<12} {key[1]:<16} {'?':>12} {'?':>12} "
                  f"{'n/a':>8}  (incomparable)")
            continue
        change = (c_val - b_val) / b_val
        flag = ""
        if change > threshold:
            flag = "  << REGRESSION"
            regressions.append((key, change))
        print(f"{key[0]:<12} {key[1]:<16} {b_val:>12.1f} {c_val:>12.1f} "
              f"{change:>+7.1%}  {b_unit}{flag}")

    for key in only_base:
        print(f"{key[0]:<12} {key[1]:<16} only in baseline")
    for key in only_cand:
        print(f"{key[0]:<12} {key[1]:<16} only in candidate")

    if metrics_base is not None and metrics_cand is not None:
        print_percentiles(load_metrics(metrics_base),
                          load_metrics(metrics_cand),
                          "baseline vs candidate")
    elif metrics_single is not None:
        print_percentiles(load_metrics(metrics_single), None, metrics_single)

    if regressions:
        worst = max(regressions, key=lambda kv: kv[1])
        print(f"\n{len(regressions)} regression(s) worse than "
              f"{threshold:.0%}; worst: {worst[0][0]}/{worst[0][1]} "
              f"{worst[1]:+.1%}")
        return 1
    print(f"\nno regressions worse than {threshold:.0%} "
          f"across {len(common)} matched measurements")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
