#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file exported by the metrics registry.

Usage:
    python3 bench/validate_trace.py TRACE.json [TRACE2.json ...]
    python3 bench/validate_trace.py --self-test

Checks the structural contract of MetricsRegistry::DumpChromeTrace() /
SinewDb::DumpTrace() output, so the telemetry tests (and CI) can assert that
an exported trace will load in Perfetto / about:tracing with the span tree
intact:

  - top level is an object with a "traceEvents" array (displayTimeUnit is
    optional but must be a string when present);
  - every event is a complete-duration event: ph == "X" with a non-empty
    string "name", numeric pid/tid, and numeric non-negative ts/dur;
  - every event carries args.trace_id / args.span_id / args.parent_span_id
    as non-negative integers, with span_id != 0 and unique across the file;
  - parent_span_id is either 0 (root span) or resolves to the span_id of
    another event in the SAME trace (cross-trace parenting is a bug);
  - a trace with zero events is rejected (an empty export means the span
    ring never saw a span — almost always a wiring bug in the caller).

Exit status 0 when every file passes, 1 otherwise. Stdlib only.
"""

import json
import sys

REQUIRED_ARG_KEYS = ("trace_id", "span_id", "parent_span_id")


def validate(doc, errors):
    """Appends human-readable problems found in the parsed trace `doc` to
    `errors`. Returns the number of events checked."""
    if not isinstance(doc, dict):
        errors.append("top level is not a JSON object")
        return 0
    if "displayTimeUnit" in doc and not isinstance(doc["displayTimeUnit"],
                                                  str):
        errors.append("displayTimeUnit is not a string")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append('missing or non-array "traceEvents"')
        return 0
    if not events:
        errors.append("traceEvents is empty (no spans were recorded)")
        return 0

    # First pass: per-event shape + collect span ids per trace.
    spans_by_trace = {}  # trace_id -> set of span_ids
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty name")
        else:
            where = f"event[{i}] ({name})"
        if ev.get("ph") != "X":
            errors.append(f'{where}: ph is {ev.get("ph")!r}, expected "X"')
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), (int, float)):
                errors.append(f"{where}: missing numeric {key}")
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)):
                errors.append(f"{where}: missing numeric {key}")
            elif v < 0:
                errors.append(f"{where}: negative {key} ({v})")
        args = ev.get("args")
        if not isinstance(args, dict):
            errors.append(f"{where}: missing args object")
            continue
        bad_id = False
        for key in REQUIRED_ARG_KEYS:
            v = args.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(f"{where}: args.{key} is not a non-negative "
                              f"integer ({v!r})")
                bad_id = True
        if bad_id:
            continue
        span_id = args["span_id"]
        if span_id == 0:
            errors.append(f"{where}: span_id is 0 (unassigned)")
            continue
        trace_spans = spans_by_trace.setdefault(args["trace_id"], set())
        if span_id in trace_spans:
            errors.append(f"{where}: duplicate span_id {span_id}")
        trace_spans.add(span_id)

    # Second pass: parent resolution within the same trace.
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            continue
        args = ev.get("args")
        if not isinstance(args, dict):
            continue
        parent = args.get("parent_span_id")
        trace_id = args.get("trace_id")
        if not isinstance(parent, int) or isinstance(parent, bool):
            continue  # already reported above
        if parent == 0:
            continue  # root span
        name = ev.get("name", "?")
        if parent not in spans_by_trace.get(trace_id, set()):
            errors.append(f"event[{i}] ({name}): parent_span_id {parent} "
                          f"does not resolve within trace {trace_id}")
    return len(events)


def validate_file(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: FAIL ({e})")
        return False
    n = validate(doc, errors)
    if errors:
        print(f"{path}: FAIL ({len(errors)} problem(s) in {n} event(s))")
        for e in errors[:20]:
            print(f"  {e}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return False
    traces = len({ev["args"]["trace_id"] for ev in doc["traceEvents"]})
    print(f"{path}: OK ({n} span(s), {traces} trace(s))")
    return True


def self_test():
    """Synthetic traces through the validator: the good one must pass, each
    corruption must be caught."""
    def event(name="query", ts=0, dur=10, trace=1, span=2, parent=0, **kw):
        ev = {"name": name, "cat": "sinew", "ph": "X", "pid": 1, "tid": 7,
              "ts": ts, "dur": dur,
              "args": {"trace_id": trace, "span_id": span,
                       "parent_span_id": parent}}
        ev.update(kw)
        return ev

    good = {"displayTimeUnit": "ms",
            "traceEvents": [event(span=2),
                            event("exec.gather.worker", ts=1, dur=5, span=3,
                                  parent=2)]}
    cases = [
        ("valid two-span trace", good, True),
        ("empty traceEvents", {"traceEvents": []}, False),
        ("missing traceEvents", {"events": []}, False),
        ("wrong ph", {"traceEvents": [event(ph="B")]}, False),
        ("zero span_id", {"traceEvents": [event(span=0)]}, False),
        ("duplicate span_id",
         {"traceEvents": [event(span=2), event(span=2)]}, False),
        ("dangling parent",
         {"traceEvents": [event(span=2, parent=99)]}, False),
        ("cross-trace parent",
         {"traceEvents": [event(trace=1, span=2),
                          event(trace=5, span=3, parent=2)]}, False),
        ("negative dur", {"traceEvents": [event(dur=-1)]}, False),
        ("missing args",
         {"traceEvents": [{"name": "q", "ph": "X", "pid": 1, "tid": 1,
                           "ts": 0, "dur": 1}]}, False),
    ]
    failed = 0
    for label, doc, want_ok in cases:
        errors = []
        validate(doc, errors)
        got_ok = not errors
        status = "ok" if got_ok == want_ok else "MISMATCH"
        if got_ok != want_ok:
            failed += 1
        print(f"  self-test: {label:<24} expect "
              f"{'pass' if want_ok else 'fail'} -> "
              f"{'pass' if got_ok else 'fail'}  {status}")
    if failed:
        print(f"self-test: {failed} case(s) MISMATCHED")
        return 1
    print(f"self-test: all {len(cases)} cases behaved as expected")
    return 0


def main(argv):
    if "--self-test" in argv[1:]:
        return self_test()
    paths = [a for a in argv[1:] if not a.startswith("--")]
    if not paths:
        print(__doc__.strip())
        return 2
    ok = True
    for path in paths:
        ok = validate_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
