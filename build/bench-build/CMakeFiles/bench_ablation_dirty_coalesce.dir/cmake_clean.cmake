file(REMOVE_RECURSE
  "../bench/bench_ablation_dirty_coalesce"
  "../bench/bench_ablation_dirty_coalesce.pdb"
  "CMakeFiles/bench_ablation_dirty_coalesce.dir/bench_ablation_dirty_coalesce.cc.o"
  "CMakeFiles/bench_ablation_dirty_coalesce.dir/bench_ablation_dirty_coalesce.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dirty_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
