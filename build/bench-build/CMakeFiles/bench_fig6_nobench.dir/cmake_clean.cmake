file(REMOVE_RECURSE
  "../bench/bench_fig6_nobench"
  "../bench/bench_fig6_nobench.pdb"
  "CMakeFiles/bench_fig6_nobench.dir/bench_fig6_nobench.cc.o"
  "CMakeFiles/bench_fig6_nobench.dir/bench_fig6_nobench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_nobench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
