file(REMOVE_RECURSE
  "../bench/bench_fig7_join"
  "../bench/bench_fig7_join.pdb"
  "CMakeFiles/bench_fig7_join.dir/bench_fig7_join.cc.o"
  "CMakeFiles/bench_fig7_join.dir/bench_fig7_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
