file(REMOVE_RECURSE
  "../bench/bench_micro_serial"
  "../bench/bench_micro_serial.pdb"
  "CMakeFiles/bench_micro_serial.dir/bench_micro_serial.cc.o"
  "CMakeFiles/bench_micro_serial.dir/bench_micro_serial.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
