# Empty compiler generated dependencies file for bench_micro_serial.
# This may be replaced when dependencies are built.
