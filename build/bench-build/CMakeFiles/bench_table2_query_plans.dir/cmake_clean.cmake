file(REMOVE_RECURSE
  "../bench/bench_table2_query_plans"
  "../bench/bench_table2_query_plans.pdb"
  "CMakeFiles/bench_table2_query_plans.dir/bench_table2_query_plans.cc.o"
  "CMakeFiles/bench_table2_query_plans.dir/bench_table2_query_plans.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_query_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
