# Empty compiler generated dependencies file for bench_table2_query_plans.
# This may be replaced when dependencies are built.
