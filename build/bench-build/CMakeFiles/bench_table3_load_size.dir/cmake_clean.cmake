file(REMOVE_RECURSE
  "../bench/bench_table3_load_size"
  "../bench/bench_table3_load_size.pdb"
  "CMakeFiles/bench_table3_load_size.dir/bench_table3_load_size.cc.o"
  "CMakeFiles/bench_table3_load_size.dir/bench_table3_load_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_load_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
