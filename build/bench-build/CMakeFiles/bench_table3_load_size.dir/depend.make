# Empty dependencies file for bench_table3_load_size.
# This may be replaced when dependencies are built.
