file(REMOVE_RECURSE
  "../bench/bench_table4_serialization"
  "../bench/bench_table4_serialization.pdb"
  "CMakeFiles/bench_table4_serialization.dir/bench_table4_serialization.cc.o"
  "CMakeFiles/bench_table4_serialization.dir/bench_table4_serialization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
