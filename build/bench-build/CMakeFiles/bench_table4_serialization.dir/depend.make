# Empty dependencies file for bench_table4_serialization.
# This may be replaced when dependencies are built.
