file(REMOVE_RECURSE
  "../bench/bench_table5_virtual_overhead"
  "../bench/bench_table5_virtual_overhead.pdb"
  "CMakeFiles/bench_table5_virtual_overhead.dir/bench_table5_virtual_overhead.cc.o"
  "CMakeFiles/bench_table5_virtual_overhead.dir/bench_table5_virtual_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_virtual_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
