file(REMOVE_RECURSE
  "CMakeFiles/textsearch.dir/textsearch.cpp.o"
  "CMakeFiles/textsearch.dir/textsearch.cpp.o.d"
  "textsearch"
  "textsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
