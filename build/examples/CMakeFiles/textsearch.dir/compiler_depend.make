# Empty compiler generated dependencies file for textsearch.
# This may be replaced when dependencies are built.
