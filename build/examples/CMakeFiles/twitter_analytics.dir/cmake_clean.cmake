file(REMOVE_RECURSE
  "CMakeFiles/twitter_analytics.dir/twitter_analytics.cpp.o"
  "CMakeFiles/twitter_analytics.dir/twitter_analytics.cpp.o.d"
  "twitter_analytics"
  "twitter_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
