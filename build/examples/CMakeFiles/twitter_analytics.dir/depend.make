# Empty dependencies file for twitter_analytics.
# This may be replaced when dependencies are built.
