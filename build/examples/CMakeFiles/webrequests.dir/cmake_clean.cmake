file(REMOVE_RECURSE
  "CMakeFiles/webrequests.dir/webrequests.cpp.o"
  "CMakeFiles/webrequests.dir/webrequests.cpp.o.d"
  "webrequests"
  "webrequests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webrequests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
