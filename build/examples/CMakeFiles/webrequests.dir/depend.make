# Empty dependencies file for webrequests.
# This may be replaced when dependencies are built.
