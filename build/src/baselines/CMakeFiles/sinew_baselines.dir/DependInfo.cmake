
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/docstore/bson.cc" "src/baselines/CMakeFiles/sinew_baselines.dir/docstore/bson.cc.o" "gcc" "src/baselines/CMakeFiles/sinew_baselines.dir/docstore/bson.cc.o.d"
  "/root/repo/src/baselines/docstore/collection.cc" "src/baselines/CMakeFiles/sinew_baselines.dir/docstore/collection.cc.o" "gcc" "src/baselines/CMakeFiles/sinew_baselines.dir/docstore/collection.cc.o.d"
  "/root/repo/src/baselines/eav/eav_store.cc" "src/baselines/CMakeFiles/sinew_baselines.dir/eav/eav_store.cc.o" "gcc" "src/baselines/CMakeFiles/sinew_baselines.dir/eav/eav_store.cc.o.d"
  "/root/repo/src/baselines/jsontext/jsontext_db.cc" "src/baselines/CMakeFiles/sinew_baselines.dir/jsontext/jsontext_db.cc.o" "gcc" "src/baselines/CMakeFiles/sinew_baselines.dir/jsontext/jsontext_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/sinew_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/sinew_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sinew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
