file(REMOVE_RECURSE
  "CMakeFiles/sinew_baselines.dir/docstore/bson.cc.o"
  "CMakeFiles/sinew_baselines.dir/docstore/bson.cc.o.d"
  "CMakeFiles/sinew_baselines.dir/docstore/collection.cc.o"
  "CMakeFiles/sinew_baselines.dir/docstore/collection.cc.o.d"
  "CMakeFiles/sinew_baselines.dir/eav/eav_store.cc.o"
  "CMakeFiles/sinew_baselines.dir/eav/eav_store.cc.o.d"
  "CMakeFiles/sinew_baselines.dir/jsontext/jsontext_db.cc.o"
  "CMakeFiles/sinew_baselines.dir/jsontext/jsontext_db.cc.o.d"
  "libsinew_baselines.a"
  "libsinew_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
