file(REMOVE_RECURSE
  "libsinew_baselines.a"
)
