# Empty compiler generated dependencies file for sinew_baselines.
# This may be replaced when dependencies are built.
