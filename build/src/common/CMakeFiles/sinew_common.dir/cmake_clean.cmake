file(REMOVE_RECURSE
  "CMakeFiles/sinew_common.dir/status.cc.o"
  "CMakeFiles/sinew_common.dir/status.cc.o.d"
  "CMakeFiles/sinew_common.dir/str_util.cc.o"
  "CMakeFiles/sinew_common.dir/str_util.cc.o.d"
  "CMakeFiles/sinew_common.dir/value.cc.o"
  "CMakeFiles/sinew_common.dir/value.cc.o.d"
  "libsinew_common.a"
  "libsinew_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
