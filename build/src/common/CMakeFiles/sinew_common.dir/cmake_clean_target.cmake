file(REMOVE_RECURSE
  "libsinew_common.a"
)
