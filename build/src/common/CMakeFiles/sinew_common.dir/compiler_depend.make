# Empty compiler generated dependencies file for sinew_common.
# This may be replaced when dependencies are built.
