
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/sinew_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/datum.cc" "src/engine/CMakeFiles/sinew_engine.dir/datum.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/datum.cc.o.d"
  "/root/repo/src/engine/eval.cc" "src/engine/CMakeFiles/sinew_engine.dir/eval.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/eval.cc.o.d"
  "/root/repo/src/engine/exec.cc" "src/engine/CMakeFiles/sinew_engine.dir/exec.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/exec.cc.o.d"
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/sinew_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/lexer.cc" "src/engine/CMakeFiles/sinew_engine.dir/lexer.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/lexer.cc.o.d"
  "/root/repo/src/engine/parser.cc" "src/engine/CMakeFiles/sinew_engine.dir/parser.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/parser.cc.o.d"
  "/root/repo/src/engine/persist.cc" "src/engine/CMakeFiles/sinew_engine.dir/persist.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/persist.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/engine/CMakeFiles/sinew_engine.dir/plan.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/plan.cc.o.d"
  "/root/repo/src/engine/planner.cc" "src/engine/CMakeFiles/sinew_engine.dir/planner.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/planner.cc.o.d"
  "/root/repo/src/engine/row_codec.cc" "src/engine/CMakeFiles/sinew_engine.dir/row_codec.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/row_codec.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/sinew_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/table.cc.o.d"
  "/root/repo/src/engine/type.cc" "src/engine/CMakeFiles/sinew_engine.dir/type.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/type.cc.o.d"
  "/root/repo/src/engine/udf.cc" "src/engine/CMakeFiles/sinew_engine.dir/udf.cc.o" "gcc" "src/engine/CMakeFiles/sinew_engine.dir/udf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sinew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
