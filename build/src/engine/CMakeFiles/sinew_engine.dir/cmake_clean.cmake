file(REMOVE_RECURSE
  "CMakeFiles/sinew_engine.dir/database.cc.o"
  "CMakeFiles/sinew_engine.dir/database.cc.o.d"
  "CMakeFiles/sinew_engine.dir/datum.cc.o"
  "CMakeFiles/sinew_engine.dir/datum.cc.o.d"
  "CMakeFiles/sinew_engine.dir/eval.cc.o"
  "CMakeFiles/sinew_engine.dir/eval.cc.o.d"
  "CMakeFiles/sinew_engine.dir/exec.cc.o"
  "CMakeFiles/sinew_engine.dir/exec.cc.o.d"
  "CMakeFiles/sinew_engine.dir/expr.cc.o"
  "CMakeFiles/sinew_engine.dir/expr.cc.o.d"
  "CMakeFiles/sinew_engine.dir/lexer.cc.o"
  "CMakeFiles/sinew_engine.dir/lexer.cc.o.d"
  "CMakeFiles/sinew_engine.dir/parser.cc.o"
  "CMakeFiles/sinew_engine.dir/parser.cc.o.d"
  "CMakeFiles/sinew_engine.dir/persist.cc.o"
  "CMakeFiles/sinew_engine.dir/persist.cc.o.d"
  "CMakeFiles/sinew_engine.dir/plan.cc.o"
  "CMakeFiles/sinew_engine.dir/plan.cc.o.d"
  "CMakeFiles/sinew_engine.dir/planner.cc.o"
  "CMakeFiles/sinew_engine.dir/planner.cc.o.d"
  "CMakeFiles/sinew_engine.dir/row_codec.cc.o"
  "CMakeFiles/sinew_engine.dir/row_codec.cc.o.d"
  "CMakeFiles/sinew_engine.dir/table.cc.o"
  "CMakeFiles/sinew_engine.dir/table.cc.o.d"
  "CMakeFiles/sinew_engine.dir/type.cc.o"
  "CMakeFiles/sinew_engine.dir/type.cc.o.d"
  "CMakeFiles/sinew_engine.dir/udf.cc.o"
  "CMakeFiles/sinew_engine.dir/udf.cc.o.d"
  "libsinew_engine.a"
  "libsinew_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
