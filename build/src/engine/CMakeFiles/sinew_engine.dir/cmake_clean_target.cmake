file(REMOVE_RECURSE
  "libsinew_engine.a"
)
