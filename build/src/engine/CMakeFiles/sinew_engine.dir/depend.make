# Empty dependencies file for sinew_engine.
# This may be replaced when dependencies are built.
