file(REMOVE_RECURSE
  "CMakeFiles/sinew_json.dir/json.cc.o"
  "CMakeFiles/sinew_json.dir/json.cc.o.d"
  "libsinew_json.a"
  "libsinew_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
