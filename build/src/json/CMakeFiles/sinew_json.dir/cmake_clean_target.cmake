file(REMOVE_RECURSE
  "libsinew_json.a"
)
