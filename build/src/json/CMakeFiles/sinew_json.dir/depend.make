# Empty dependencies file for sinew_json.
# This may be replaced when dependencies are built.
