
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serial/avrolike.cc" "src/serial/CMakeFiles/sinew_serial.dir/avrolike.cc.o" "gcc" "src/serial/CMakeFiles/sinew_serial.dir/avrolike.cc.o.d"
  "/root/repo/src/serial/protolike.cc" "src/serial/CMakeFiles/sinew_serial.dir/protolike.cc.o" "gcc" "src/serial/CMakeFiles/sinew_serial.dir/protolike.cc.o.d"
  "/root/repo/src/serial/sinew_format.cc" "src/serial/CMakeFiles/sinew_serial.dir/sinew_format.cc.o" "gcc" "src/serial/CMakeFiles/sinew_serial.dir/sinew_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sinew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
