file(REMOVE_RECURSE
  "CMakeFiles/sinew_serial.dir/avrolike.cc.o"
  "CMakeFiles/sinew_serial.dir/avrolike.cc.o.d"
  "CMakeFiles/sinew_serial.dir/protolike.cc.o"
  "CMakeFiles/sinew_serial.dir/protolike.cc.o.d"
  "CMakeFiles/sinew_serial.dir/sinew_format.cc.o"
  "CMakeFiles/sinew_serial.dir/sinew_format.cc.o.d"
  "libsinew_serial.a"
  "libsinew_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
