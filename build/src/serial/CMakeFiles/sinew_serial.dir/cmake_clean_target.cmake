file(REMOVE_RECURSE
  "libsinew_serial.a"
)
