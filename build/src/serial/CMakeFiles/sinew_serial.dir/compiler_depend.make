# Empty compiler generated dependencies file for sinew_serial.
# This may be replaced when dependencies are built.
