
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sinew/array_offload.cc" "src/sinew/CMakeFiles/sinew_core.dir/array_offload.cc.o" "gcc" "src/sinew/CMakeFiles/sinew_core.dir/array_offload.cc.o.d"
  "/root/repo/src/sinew/catalog.cc" "src/sinew/CMakeFiles/sinew_core.dir/catalog.cc.o" "gcc" "src/sinew/CMakeFiles/sinew_core.dir/catalog.cc.o.d"
  "/root/repo/src/sinew/extract_functions.cc" "src/sinew/CMakeFiles/sinew_core.dir/extract_functions.cc.o" "gcc" "src/sinew/CMakeFiles/sinew_core.dir/extract_functions.cc.o.d"
  "/root/repo/src/sinew/loader.cc" "src/sinew/CMakeFiles/sinew_core.dir/loader.cc.o" "gcc" "src/sinew/CMakeFiles/sinew_core.dir/loader.cc.o.d"
  "/root/repo/src/sinew/materializer.cc" "src/sinew/CMakeFiles/sinew_core.dir/materializer.cc.o" "gcc" "src/sinew/CMakeFiles/sinew_core.dir/materializer.cc.o.d"
  "/root/repo/src/sinew/persistence.cc" "src/sinew/CMakeFiles/sinew_core.dir/persistence.cc.o" "gcc" "src/sinew/CMakeFiles/sinew_core.dir/persistence.cc.o.d"
  "/root/repo/src/sinew/rewriter.cc" "src/sinew/CMakeFiles/sinew_core.dir/rewriter.cc.o" "gcc" "src/sinew/CMakeFiles/sinew_core.dir/rewriter.cc.o.d"
  "/root/repo/src/sinew/schema_analyzer.cc" "src/sinew/CMakeFiles/sinew_core.dir/schema_analyzer.cc.o" "gcc" "src/sinew/CMakeFiles/sinew_core.dir/schema_analyzer.cc.o.d"
  "/root/repo/src/sinew/sinew_db.cc" "src/sinew/CMakeFiles/sinew_core.dir/sinew_db.cc.o" "gcc" "src/sinew/CMakeFiles/sinew_core.dir/sinew_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/sinew_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/sinew_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/sinew_json.dir/DependInfo.cmake"
  "/root/repo/build/src/textindex/CMakeFiles/sinew_textindex.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sinew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
