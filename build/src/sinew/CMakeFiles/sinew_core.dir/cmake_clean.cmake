file(REMOVE_RECURSE
  "CMakeFiles/sinew_core.dir/array_offload.cc.o"
  "CMakeFiles/sinew_core.dir/array_offload.cc.o.d"
  "CMakeFiles/sinew_core.dir/catalog.cc.o"
  "CMakeFiles/sinew_core.dir/catalog.cc.o.d"
  "CMakeFiles/sinew_core.dir/extract_functions.cc.o"
  "CMakeFiles/sinew_core.dir/extract_functions.cc.o.d"
  "CMakeFiles/sinew_core.dir/loader.cc.o"
  "CMakeFiles/sinew_core.dir/loader.cc.o.d"
  "CMakeFiles/sinew_core.dir/materializer.cc.o"
  "CMakeFiles/sinew_core.dir/materializer.cc.o.d"
  "CMakeFiles/sinew_core.dir/persistence.cc.o"
  "CMakeFiles/sinew_core.dir/persistence.cc.o.d"
  "CMakeFiles/sinew_core.dir/rewriter.cc.o"
  "CMakeFiles/sinew_core.dir/rewriter.cc.o.d"
  "CMakeFiles/sinew_core.dir/schema_analyzer.cc.o"
  "CMakeFiles/sinew_core.dir/schema_analyzer.cc.o.d"
  "CMakeFiles/sinew_core.dir/sinew_db.cc.o"
  "CMakeFiles/sinew_core.dir/sinew_db.cc.o.d"
  "libsinew_core.a"
  "libsinew_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
