file(REMOVE_RECURSE
  "libsinew_core.a"
)
