# Empty compiler generated dependencies file for sinew_core.
# This may be replaced when dependencies are built.
