file(REMOVE_RECURSE
  "CMakeFiles/sinew_textindex.dir/inverted_index.cc.o"
  "CMakeFiles/sinew_textindex.dir/inverted_index.cc.o.d"
  "libsinew_textindex.a"
  "libsinew_textindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_textindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
