file(REMOVE_RECURSE
  "libsinew_textindex.a"
)
