# Empty dependencies file for sinew_textindex.
# This may be replaced when dependencies are built.
