
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/nobench/generator.cc" "src/workloads/CMakeFiles/sinew_workloads.dir/nobench/generator.cc.o" "gcc" "src/workloads/CMakeFiles/sinew_workloads.dir/nobench/generator.cc.o.d"
  "/root/repo/src/workloads/nobench/runners.cc" "src/workloads/CMakeFiles/sinew_workloads.dir/nobench/runners.cc.o" "gcc" "src/workloads/CMakeFiles/sinew_workloads.dir/nobench/runners.cc.o.d"
  "/root/repo/src/workloads/twitter/twitter.cc" "src/workloads/CMakeFiles/sinew_workloads.dir/twitter/twitter.cc.o" "gcc" "src/workloads/CMakeFiles/sinew_workloads.dir/twitter/twitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sinew/CMakeFiles/sinew_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sinew_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sinew_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/sinew_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/textindex/CMakeFiles/sinew_textindex.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sinew_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/sinew_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
