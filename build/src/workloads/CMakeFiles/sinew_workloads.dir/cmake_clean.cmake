file(REMOVE_RECURSE
  "CMakeFiles/sinew_workloads.dir/nobench/generator.cc.o"
  "CMakeFiles/sinew_workloads.dir/nobench/generator.cc.o.d"
  "CMakeFiles/sinew_workloads.dir/nobench/runners.cc.o"
  "CMakeFiles/sinew_workloads.dir/nobench/runners.cc.o.d"
  "CMakeFiles/sinew_workloads.dir/twitter/twitter.cc.o"
  "CMakeFiles/sinew_workloads.dir/twitter/twitter.cc.o.d"
  "libsinew_workloads.a"
  "libsinew_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
