file(REMOVE_RECURSE
  "libsinew_workloads.a"
)
