# Empty compiler generated dependencies file for sinew_workloads.
# This may be replaced when dependencies are built.
