file(REMOVE_RECURSE
  "CMakeFiles/docstore_test.dir/docstore_test.cc.o"
  "CMakeFiles/docstore_test.dir/docstore_test.cc.o.d"
  "docstore_test"
  "docstore_test.pdb"
  "docstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
