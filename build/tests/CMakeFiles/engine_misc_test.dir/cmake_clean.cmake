file(REMOVE_RECURSE
  "CMakeFiles/engine_misc_test.dir/engine_misc_test.cc.o"
  "CMakeFiles/engine_misc_test.dir/engine_misc_test.cc.o.d"
  "engine_misc_test"
  "engine_misc_test.pdb"
  "engine_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
