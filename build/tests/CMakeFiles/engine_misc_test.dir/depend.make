# Empty dependencies file for engine_misc_test.
# This may be replaced when dependencies are built.
