file(REMOVE_RECURSE
  "CMakeFiles/engine_parser_test.dir/engine_parser_test.cc.o"
  "CMakeFiles/engine_parser_test.dir/engine_parser_test.cc.o.d"
  "engine_parser_test"
  "engine_parser_test.pdb"
  "engine_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
