# Empty dependencies file for engine_parser_test.
# This may be replaced when dependencies are built.
