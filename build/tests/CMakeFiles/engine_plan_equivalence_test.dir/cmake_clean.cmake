file(REMOVE_RECURSE
  "CMakeFiles/engine_plan_equivalence_test.dir/engine_plan_equivalence_test.cc.o"
  "CMakeFiles/engine_plan_equivalence_test.dir/engine_plan_equivalence_test.cc.o.d"
  "engine_plan_equivalence_test"
  "engine_plan_equivalence_test.pdb"
  "engine_plan_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_plan_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
