file(REMOVE_RECURSE
  "CMakeFiles/engine_planner_test.dir/engine_planner_test.cc.o"
  "CMakeFiles/engine_planner_test.dir/engine_planner_test.cc.o.d"
  "engine_planner_test"
  "engine_planner_test.pdb"
  "engine_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
