file(REMOVE_RECURSE
  "CMakeFiles/engine_table_test.dir/engine_table_test.cc.o"
  "CMakeFiles/engine_table_test.dir/engine_table_test.cc.o.d"
  "engine_table_test"
  "engine_table_test.pdb"
  "engine_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
