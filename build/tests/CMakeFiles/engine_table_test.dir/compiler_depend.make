# Empty compiler generated dependencies file for engine_table_test.
# This may be replaced when dependencies are built.
