# Empty dependencies file for integration_cross_system_test.
# This may be replaced when dependencies are built.
