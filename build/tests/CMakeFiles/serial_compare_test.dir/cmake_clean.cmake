file(REMOVE_RECURSE
  "CMakeFiles/serial_compare_test.dir/serial_compare_test.cc.o"
  "CMakeFiles/serial_compare_test.dir/serial_compare_test.cc.o.d"
  "serial_compare_test"
  "serial_compare_test.pdb"
  "serial_compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
