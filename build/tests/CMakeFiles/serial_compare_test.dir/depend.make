# Empty dependencies file for serial_compare_test.
# This may be replaced when dependencies are built.
