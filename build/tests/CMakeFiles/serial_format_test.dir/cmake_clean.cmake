file(REMOVE_RECURSE
  "CMakeFiles/serial_format_test.dir/serial_format_test.cc.o"
  "CMakeFiles/serial_format_test.dir/serial_format_test.cc.o.d"
  "serial_format_test"
  "serial_format_test.pdb"
  "serial_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
