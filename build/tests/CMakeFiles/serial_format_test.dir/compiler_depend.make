# Empty compiler generated dependencies file for serial_format_test.
# This may be replaced when dependencies are built.
