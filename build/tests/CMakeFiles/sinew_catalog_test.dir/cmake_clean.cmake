file(REMOVE_RECURSE
  "CMakeFiles/sinew_catalog_test.dir/sinew_catalog_test.cc.o"
  "CMakeFiles/sinew_catalog_test.dir/sinew_catalog_test.cc.o.d"
  "sinew_catalog_test"
  "sinew_catalog_test.pdb"
  "sinew_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
