# Empty compiler generated dependencies file for sinew_catalog_test.
# This may be replaced when dependencies are built.
