file(REMOVE_RECURSE
  "CMakeFiles/sinew_extract_functions_test.dir/sinew_extract_functions_test.cc.o"
  "CMakeFiles/sinew_extract_functions_test.dir/sinew_extract_functions_test.cc.o.d"
  "sinew_extract_functions_test"
  "sinew_extract_functions_test.pdb"
  "sinew_extract_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_extract_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
