# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sinew_extract_functions_test.
