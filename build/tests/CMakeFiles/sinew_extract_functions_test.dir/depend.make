# Empty dependencies file for sinew_extract_functions_test.
# This may be replaced when dependencies are built.
