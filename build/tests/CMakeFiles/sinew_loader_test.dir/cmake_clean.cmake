file(REMOVE_RECURSE
  "CMakeFiles/sinew_loader_test.dir/sinew_loader_test.cc.o"
  "CMakeFiles/sinew_loader_test.dir/sinew_loader_test.cc.o.d"
  "sinew_loader_test"
  "sinew_loader_test.pdb"
  "sinew_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
