# Empty dependencies file for sinew_loader_test.
# This may be replaced when dependencies are built.
