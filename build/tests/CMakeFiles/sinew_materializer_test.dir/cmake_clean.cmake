file(REMOVE_RECURSE
  "CMakeFiles/sinew_materializer_test.dir/sinew_materializer_test.cc.o"
  "CMakeFiles/sinew_materializer_test.dir/sinew_materializer_test.cc.o.d"
  "sinew_materializer_test"
  "sinew_materializer_test.pdb"
  "sinew_materializer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_materializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
