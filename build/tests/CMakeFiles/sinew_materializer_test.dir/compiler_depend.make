# Empty compiler generated dependencies file for sinew_materializer_test.
# This may be replaced when dependencies are built.
