file(REMOVE_RECURSE
  "CMakeFiles/sinew_persistence_test.dir/sinew_persistence_test.cc.o"
  "CMakeFiles/sinew_persistence_test.dir/sinew_persistence_test.cc.o.d"
  "sinew_persistence_test"
  "sinew_persistence_test.pdb"
  "sinew_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
