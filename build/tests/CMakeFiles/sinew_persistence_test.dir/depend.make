# Empty dependencies file for sinew_persistence_test.
# This may be replaced when dependencies are built.
