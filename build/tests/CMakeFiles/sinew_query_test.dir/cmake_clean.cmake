file(REMOVE_RECURSE
  "CMakeFiles/sinew_query_test.dir/sinew_query_test.cc.o"
  "CMakeFiles/sinew_query_test.dir/sinew_query_test.cc.o.d"
  "sinew_query_test"
  "sinew_query_test.pdb"
  "sinew_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
