# Empty compiler generated dependencies file for sinew_query_test.
# This may be replaced when dependencies are built.
