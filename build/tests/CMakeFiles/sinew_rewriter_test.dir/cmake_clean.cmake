file(REMOVE_RECURSE
  "CMakeFiles/sinew_rewriter_test.dir/sinew_rewriter_test.cc.o"
  "CMakeFiles/sinew_rewriter_test.dir/sinew_rewriter_test.cc.o.d"
  "sinew_rewriter_test"
  "sinew_rewriter_test.pdb"
  "sinew_rewriter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinew_rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
