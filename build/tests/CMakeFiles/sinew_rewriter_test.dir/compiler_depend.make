# Empty compiler generated dependencies file for sinew_rewriter_test.
# This may be replaced when dependencies are built.
