# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/serial_format_test[1]_include.cmake")
include("/root/repo/build/tests/serial_compare_test[1]_include.cmake")
include("/root/repo/build/tests/engine_parser_test[1]_include.cmake")
include("/root/repo/build/tests/engine_table_test[1]_include.cmake")
include("/root/repo/build/tests/engine_exec_test[1]_include.cmake")
include("/root/repo/build/tests/engine_planner_test[1]_include.cmake")
include("/root/repo/build/tests/engine_eval_test[1]_include.cmake")
include("/root/repo/build/tests/engine_plan_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/engine_misc_test[1]_include.cmake")
include("/root/repo/build/tests/sinew_catalog_test[1]_include.cmake")
include("/root/repo/build/tests/sinew_loader_test[1]_include.cmake")
include("/root/repo/build/tests/sinew_materializer_test[1]_include.cmake")
include("/root/repo/build/tests/sinew_rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/sinew_extract_functions_test[1]_include.cmake")
include("/root/repo/build/tests/sinew_query_test[1]_include.cmake")
include("/root/repo/build/tests/sinew_persistence_test[1]_include.cmake")
include("/root/repo/build/tests/engine_property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/textindex_test[1]_include.cmake")
include("/root/repo/build/tests/docstore_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_cross_system_test[1]_include.cmake")
