// Durability: save a Sinew database — catalog, physical design, data — to
// disk and reopen it, as a restart of the paper's Postgres-backed prototype
// would. Text indexes are rebuilt on open (they are external artifacts,
// like the paper's Solr index).

#include <cstdio>
#include <filesystem>

#include "sinew/persistence.h"
#include "sinew/sinew_db.h"

int main() {
  std::string dir =
      (std::filesystem::temp_directory_path() / "sinew_durability_demo")
          .string();
  std::filesystem::remove_all(dir);

  {
    sinew::SinewDb db;
    (void)db.LoadJsonLines("inventory", R"(
{"sku": "A-1", "qty": 12, "tags": ["fragile"], "vendor": {"name": "acme", "tier": 1}}
{"sku": "B-7", "qty": 3, "vendor": {"name": "blorp", "tier": 2}}
{"sku": "C-9", "qty": 40, "tags": ["bulk", "heavy"]}
)");
    (void)db.AnalyzeAndMaterialize("inventory");
    auto st = sinew::SaveDatabase(&db, dir);
    std::printf("saved database to %s: %s\n", dir.c_str(),
                st.ToString().c_str());
  }  // "process exits"

  sinew::SinewDb db;
  if (auto st = sinew::LoadDatabase(&db, dir); !st.ok()) {
    std::printf("reopen failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("reopened; tables:");
  for (const auto& table : db.Tables()) std::printf(" %s", table.c_str());
  std::printf("\n");

  auto r = db.Query(
      "SELECT sku, \"vendor.name\" FROM inventory WHERE qty < 20 "
      "ORDER BY sku");
  for (const auto& row : r->rows) {
    std::printf("  %-6s vendor=%s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // The adaptive physical design survived the restart.
  auto schema = db.LogicalSchema("inventory");
  for (const auto& col : *schema) {
    if (col.materialized) {
      std::printf("physical column restored: %s\n", col.name.c_str());
    }
  }
  // Text search after rebuilding the (external) index.
  (void)db.EnableTextIndex("inventory");
  auto hit = db.Query(
      "SELECT sku FROM inventory WHERE matches('tags', 'fragile')");
  std::printf("text search after reopen: %s\n",
              hit.ok() && !hit->rows.empty()
                  ? hit->rows[0][0].ToString().c_str()
                  : "(no match)");
  std::filesystem::remove_all(dir);
  return 0;
}
