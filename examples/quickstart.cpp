// Quickstart: load schemaless JSON, query it with standard SQL, let Sinew
// adapt the physical schema underneath.
//
//   $ ./quickstart

#include <cstdio>
#include <string>

#include "engine/exec.h"
#include "sinew/sinew_db.h"

namespace {

void PrintResult(const sinew::engine::QueryResult& result) {
  for (const std::string& name : result.column_names) {
    std::printf("%-24s", name.c_str());
  }
  std::printf("\n");
  for (const auto& row : result.rows) {
    for (const auto& cell : row) {
      std::printf("%-24s", cell.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n\n", result.rows.size());
}

}  // namespace

int main() {
  sinew::SinewDb db;

  // 1. Load documents with no schema declaration of any kind.
  const char* jsonl = R"(
{"name": "espresso", "price": 2.5, "origin": "IT", "tags": ["coffee", "hot"]}
{"name": "flat white", "price": 3.5, "origin": "AU", "milk": {"kind": "whole", "foam": true}}
{"name": "cold brew", "price": 4.0, "tags": ["coffee", "cold"], "steep_hours": 16}
{"name": "matcha", "price": 4.5, "origin": "JP", "milk": {"kind": "oat", "foam": false}}
)";
  auto loaded = db.LoadJsonLines("drinks", jsonl);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %llu documents\n\n",
              static_cast<unsigned long long>(*loaded));

  // 2. Standard SQL over the logical universal-relation view. Keys that
  //    appear in only some documents are ordinary nullable columns; nested
  //    keys are referenced with dotted names.
  for (const char* sql : {
           "SELECT name, price FROM drinks WHERE price < 4 ORDER BY price",
           "SELECT name, \"milk.kind\" FROM drinks WHERE \"milk.foam\" = true",
           "SELECT name FROM drinks WHERE array_contains(tags, 'cold')",
           "SELECT COUNT(*), AVG(price) FROM drinks",
       }) {
    std::printf("sql> %s\n", sql);
    auto result = db.Query(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    PrintResult(*result);
  }

  // 3. The logical schema evolved from the data alone.
  auto schema = db.LogicalSchema("drinks");
  std::printf("logical schema of 'drinks':\n");
  for (const auto& col : *schema) {
    std::printf("  %-16s (in %llu docs)%s\n", col.name.c_str(),
                static_cast<unsigned long long>(col.count),
                col.materialized ? "  [physical column]" : "");
  }

  // 4. Let the schema analyzer + materializer adapt the physical layout,
  //    then query again — same SQL, same answers, better plans.
  (void)db.AnalyzeAndMaterialize("drinks");
  auto again = db.Query("SELECT name, price FROM drinks WHERE price < 4");
  std::printf("\nafter materialization: %zu rows (same answer)\n",
              again->rows.size());
  return 0;
}
