// Full-text search over multi-structured data (paper Section 4.3): build an
// inverted index over the loaded documents and mix matches() predicates with
// ordinary SQL — including over completely unstructured text fields.

#include <cstdio>

#include "sinew/sinew_db.h"

int main() {
  sinew::SinewDb db;
  const char* jsonl = R"(
{"title": "Sinew design notes", "body": "hybrid schema with a column reservoir and physical columns", "stars": 12}
{"title": "Query rewriting", "body": "virtual columns become extraction functions over serialized data", "stars": 31}
{"title": "Grocery list", "body": "coffee beans, oat milk, filters", "stars": 1}
{"title": "NoBench results", "body": "projection queries dominated by extraction cost", "stars": 7, "draft": true}
)";
  (void)db.LoadJsonLines("notes", jsonl);

  // Build the inverted index (the paper's external Solr in miniature).
  if (auto st = db.EnableTextIndex("notes"); !st.ok()) {
    std::printf("index build failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // matches(keys, query): conjunctive term search, faceted by attribute.
  for (const char* sql : {
           // search one field
           "SELECT title FROM notes WHERE matches('body', 'extraction')",
           // search everywhere ('*')
           "SELECT title FROM notes WHERE matches('*', 'coffee')",
           // combine text search with ordinary relational predicates
           "SELECT title, stars FROM notes "
           "WHERE matches('body', 'columns') AND stars > 20",
       }) {
    std::printf("sql> %s\n", sql);
    auto result = db.Query(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    for (const auto& row : result->rows) {
      std::printf("  %s", row[0].ToString().c_str());
      if (row.size() > 1) std::printf("  (%s)", row[1].ToString().c_str());
      std::printf("\n");
    }
    std::printf("\n");
  }

  // The rewrite is visible in the plan: matches() became a row-id filter.
  std::printf("plan for the text-search query:\n%s",
              db.Explain("SELECT title FROM notes "
                         "WHERE matches('body', 'extraction')")
                  ->c_str());
  return 0;
}
