// Twitter analytics (paper Tables 1 & 2): load a synthetic firehose sample,
// run the paper's analysis queries over the schemaless view, then
// materialize the hot attributes and watch the optimizer's plans change as
// real statistics appear.

#include <cstdio>

#include "bench/bench_util.h"
#include "sinew/sinew_db.h"
#include "workloads/twitter/twitter.h"

namespace tw = sinew::workloads::twitter;

int main() {
  tw::Config config;
  config.num_tweets = 10000;
  config.num_deletes = 2000;

  sinew::SinewDb db;
  (void)db.LoadDocuments("tweets", tw::GenerateTweets(config));
  (void)db.LoadDocuments("deletes", tw::GenerateDeletes(config));
  std::printf("loaded %llu tweets and %llu delete records\n\n",
              static_cast<unsigned long long>(config.num_tweets),
              static_cast<unsigned long long>(config.num_deletes));

  // Ad-hoc analytics over nested, sparse attributes — no schema declared.
  const char* top_langs =
      "SELECT \"user.lang\", COUNT(*) FROM tweets "
      "GROUP BY \"user.lang\" ORDER BY COUNT(*) DESC LIMIT 5";
  std::printf("sql> %s\n", top_langs);
  auto langs = db.Query(top_langs);
  for (const auto& row : langs->rows) {
    std::printf("  %-6s %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  const char* busiest =
      "SELECT \"user.screen_name\", SUM(retweet_count) rts FROM tweets "
      "GROUP BY \"user.screen_name\" ORDER BY rts DESC LIMIT 3";
  std::printf("\nsql> %s\n", busiest);
  auto rts = db.Query(busiest);
  for (const auto& row : rts->rows) {
    std::printf("  %-12s %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // A join between two document tables (tweets deleted by their authors).
  const char* deleted_join =
      "SELECT COUNT(*) FROM tweets t, deletes d "
      "WHERE t.id_str = d.\"delete.status.id_str\"";
  std::printf("\nsql> %s\n", deleted_join);
  std::printf("  %s deleted tweets matched\n",
              db.Query(deleted_join)->rows[0][0].ToString().c_str());

  // Plans before and after adaptive materialization (the Table 2 story).
  const char* distinct_users = "SELECT DISTINCT \"user.id\" FROM tweets";
  std::printf("\nplan before materialization:\n%s",
              db.Explain(distinct_users)->c_str());
  (void)db.ForceMaterialization("tweets", "user", true);
  (void)db.ForceMaterialization("tweets", "user.id", true);
  (void)db.ForceMaterialization("tweets", "retweet_count", true);
  (void)db.MaterializeAll("tweets");
  std::printf("\nplan after materialization + ANALYZE:\n%s",
              db.Explain(distinct_users)->c_str());
  std::printf("\ndistinct users: %zu\n",
              db.Query(distinct_users)->rows.size());
  return 0;
}
