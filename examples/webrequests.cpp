// The paper's running example (Figures 2 & 3, Section 3.2.2): web-request
// logs with evolving keys. Demonstrates the dynamic logical view, the exact
// query rewrites from the paper, and the dirty-column COALESCE path while
// the materializer runs incrementally.

#include <cstdio>

#include "sinew/sinew_db.h"
#include "workloads/nobench/generator.h"

int main() {
  sinew::SinewDb db;

  // Figure 2's data, plus a second batch that introduces new keys later —
  // the "evolving schema" the paper motivates.
  const char* batch1 = R"(
{"url": "www.sample-site.com", "hits": 22, "avg_site_visit": 128.5, "country": "pl"}
{"url": "www.sample-site2.com", "hits": 15, "date": "8/19/13", "ip": "123.45.67.89", "owner": "John P. Smith"}
)";
  const char* batch2 = R"(
{"url": "www.sample-site3.com", "hits": 42, "country": "de", "referrer": "news.site", "owner": "A. Jones"}
{"url": "www.sample-site4.com", "hits": 7, "mobile": true}
)";
  (void)db.LoadJsonLines("webrequests", batch1);

  // The paper's first query.
  std::printf("sql> SELECT url FROM webrequests WHERE hits > 20\n");
  auto r1 = db.Query("SELECT url FROM webrequests WHERE hits > 20");
  for (const auto& row : r1->rows) {
    std::printf("  %s\n", row[0].ToString().c_str());
  }

  // Load more data with keys never seen before: no DDL, no ETL — the
  // catalog absorbs the new attributes during serialization.
  (void)db.LoadJsonLines("webrequests", batch2);
  std::printf("\nlogical view after the second batch (Figure 3 style):\n");
  auto schema = db.LogicalSchema("webrequests");
  for (const auto& col : *schema) {
    std::printf("  %-16s in %llu/4 docs\n", col.name.c_str(),
                static_cast<unsigned long long>(col.count));
  }

  // Section 3.2.2's rewrite example: 'owner' is virtual, so the reference
  // becomes an extraction function over the column reservoir.
  std::printf("\nsql> SELECT url, owner FROM webrequests WHERE ip IS NOT NULL\n");
  auto r2 = db.Query(
      "SELECT url, owner FROM webrequests WHERE ip IS NOT NULL");
  for (const auto& row : r2->rows) {
    std::printf("  %s  %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }
  std::printf("\nplan over virtual columns:\n%s\n",
              db.Explain("SELECT url, owner FROM webrequests "
                         "WHERE ip IS NOT NULL")
                  ->c_str());

  // Mark 'url' and 'hits' physical but run the materializer only part way:
  // the columns are dirty, and the rewriter reads them through
  // COALESCE(column, extract(reservoir)) — queries stay correct at every
  // intermediate point.
  (void)db.ForceMaterialization("webrequests", "url", true);
  (void)db.ForceMaterialization("webrequests", "hits", true);
  (void)db.MaterializeStep("webrequests", 2);  // stop after 2 of 4 rows
  std::printf("mid-materialization plan (note the COALESCE):\n%s\n",
              db.Explain("SELECT url FROM webrequests WHERE hits > 20")
                  ->c_str());
  auto r3 = db.Query("SELECT url FROM webrequests WHERE hits > 20");
  std::printf("rows mid-materialization: %zu (unchanged)\n",
              r3->rows.size());

  (void)db.MaterializeAll("webrequests");
  std::printf("\nfully materialized plan:\n%s\n",
              db.Explain("SELECT url FROM webrequests WHERE hits > 20")
                  ->c_str());
  auto r4 = db.Query("SELECT url FROM webrequests WHERE hits > 20");
  std::printf("rows fully materialized: %zu (unchanged)\n", r4->rows.size());
  return 0;
}
