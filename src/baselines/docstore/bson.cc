#include "baselines/docstore/bson.h"

#include "common/bytes.h"

namespace sinew::docstore {

namespace {

// Type tags (a subset of real BSON's, same style).
enum BsonTag : uint8_t {
  kDouble = 0x01,
  kString = 0x02,
  kDocument = 0x03,
  kArray = 0x04,
  kBool = 0x08,
  kNull = 0x0a,
  kInt64 = 0x12,
};

Status EncodeDocument(const Value& doc, BufferWriter* w);

Status EncodeElement(std::string_view key, const Value& v, BufferWriter* w) {
  switch (v.type()) {
    case ValueType::kDouble:
      w->PutU8(kDouble);
      break;
    case ValueType::kString:
      w->PutU8(kString);
      break;
    case ValueType::kObject:
      w->PutU8(kDocument);
      break;
    case ValueType::kArray:
      w->PutU8(kArray);
      break;
    case ValueType::kBool:
      w->PutU8(kBool);
      break;
    case ValueType::kNull:
      w->PutU8(kNull);
      break;
    case ValueType::kInt:
      w->PutU8(kInt64);
      break;
  }
  // Key cstring (embedded per element — the BSON size overhead).
  w->PutBytes(key);
  w->PutU8(0);
  switch (v.type()) {
    case ValueType::kDouble:
      w->PutDouble(v.double_value());
      break;
    case ValueType::kInt:
      w->PutI64(v.int_value());
      break;
    case ValueType::kBool:
      w->PutU8(v.bool_value() ? 1 : 0);
      break;
    case ValueType::kString:
      w->PutU32(static_cast<uint32_t>(v.string_value().size()) + 1);
      w->PutBytes(v.string_value());
      w->PutU8(0);
      break;
    case ValueType::kObject:
      RETURN_NOT_OK(EncodeDocument(v, w));
      break;
    case ValueType::kArray: {
      // BSON arrays are documents with "0","1",... keys.
      Value as_doc = Value::Object({});
      for (size_t i = 0; i < v.array().size(); ++i) {
        as_doc.Set(std::to_string(i), v.array()[i]);
      }
      RETURN_NOT_OK(EncodeDocument(as_doc, w));
      break;
    }
    case ValueType::kNull:
      break;
  }
  return Status::OK();
}

Status EncodeDocument(const Value& doc, BufferWriter* w) {
  size_t len_offset = w->size();
  w->PutU32(0);  // patched below
  for (const auto& [key, value] : doc.members()) {
    RETURN_NOT_OK(EncodeElement(key, value, w));
  }
  w->PutU8(0);  // terminator
  w->PatchU32(len_offset, static_cast<uint32_t>(w->size() - len_offset));
  return Status::OK();
}

}  // namespace

Result<std::string> ToBson(const Value& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("BSON encodes objects");
  }
  BufferWriter w;
  RETURN_NOT_OK(EncodeDocument(doc, &w));
  return w.Release();
}

namespace {

/// Element walker over a document body (after the 4-byte length prefix).
class ElementCursor {
 public:
  explicit ElementCursor(std::string_view doc) : data_(doc) {
    // Skip the length prefix.
    pos_ = 4;
  }

  /// Advances to the next element; returns false at terminator/end.
  Result<bool> Next() {
    if (pos_ >= data_.size()) return Status::ParseError("truncated BSON");
    tag_ = static_cast<uint8_t>(data_[pos_++]);
    if (tag_ == 0) return false;
    size_t key_start = pos_;
    while (pos_ < data_.size() && data_[pos_] != '\0') ++pos_;
    if (pos_ >= data_.size()) return Status::ParseError("unterminated key");
    key_ = data_.substr(key_start, pos_ - key_start);
    ++pos_;  // NUL
    size_t value_start = pos_;
    size_t value_len = 0;
    switch (tag_) {
      case kDouble:
      case kInt64:
        value_len = 8;
        break;
      case kBool:
        value_len = 1;
        break;
      case kNull:
        value_len = 0;
        break;
      case kString: {
        if (pos_ + 4 > data_.size()) return Status::ParseError("bad string");
        uint32_t n;
        std::memcpy(&n, data_.data() + pos_, 4);
        value_len = 4 + n;
        break;
      }
      case kDocument:
      case kArray: {
        if (pos_ + 4 > data_.size()) return Status::ParseError("bad subdoc");
        uint32_t n;
        std::memcpy(&n, data_.data() + pos_, 4);
        value_len = n;
        break;
      }
      default:
        return Status::ParseError("bad BSON tag ", static_cast<int>(tag_));
    }
    if (value_start + value_len > data_.size()) {
      return Status::ParseError("truncated BSON value");
    }
    value_ = data_.substr(value_start, value_len);
    pos_ = value_start + value_len;
    return true;
  }

  uint8_t tag() const { return tag_; }
  std::string_view key() const { return key_; }
  std::string_view value() const { return value_; }

  /// Decodes the current element's value.
  Result<Value> Decode() const {
    switch (tag_) {
      case kDouble: {
        double v;
        std::memcpy(&v, value_.data(), 8);
        return Value::Double(v);
      }
      case kInt64: {
        int64_t v;
        std::memcpy(&v, value_.data(), 8);
        return Value::Int(v);
      }
      case kBool:
        return Value::Bool(value_[0] != 0);
      case kNull:
        return Value::Null();
      case kString: {
        // u32 len (includes NUL) + bytes + NUL
        uint32_t n;
        std::memcpy(&n, value_.data(), 4);
        if (n == 0) return Value::String("");
        return Value::String(std::string(value_.substr(4, n - 1)));
      }
      case kDocument:
        return FromBson(value_);
      case kArray: {
        ASSIGN_OR_RETURN(Value as_doc, FromBson(value_));
        std::vector<Value> elements;
        elements.reserve(as_doc.members().size());
        for (auto& [key, v] : as_doc.mutable_members()) {
          (void)key;
          elements.push_back(std::move(v));
        }
        return Value::Array(std::move(elements));
      }
      default:
        return Status::ParseError("bad BSON tag");
    }
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  uint8_t tag_ = 0;
  std::string_view key_;
  std::string_view value_;
};

}  // namespace

Result<Value> FromBson(std::string_view data) {
  if (data.size() < 5) return Status::ParseError("BSON too short");
  ElementCursor cursor(data);
  std::vector<Value::Member> members;
  while (true) {
    ASSIGN_OR_RETURN(bool has, cursor.Next());
    if (!has) break;
    ASSIGN_OR_RETURN(Value v, cursor.Decode());
    members.emplace_back(std::string(cursor.key()), std::move(v));
  }
  return Value::Object(std::move(members));
}

Result<Value> BsonExtract(std::string_view data, std::string_view path) {
  if (data.size() < 5) return Status::ParseError("BSON too short");
  size_t dot = path.find('.');
  std::string_view head = dot == std::string_view::npos ? path : path.substr(0, dot);
  ElementCursor cursor(data);
  while (true) {
    ASSIGN_OR_RETURN(bool has, cursor.Next());
    if (!has) return Value::Null();
    if (cursor.key() != head) continue;
    if (dot == std::string_view::npos) return cursor.Decode();
    if (cursor.tag() != kDocument) return Value::Null();
    return BsonExtract(cursor.value(), path.substr(dot + 1));
  }
}

Result<bool> BsonHasPath(std::string_view data, std::string_view path) {
  if (data.size() < 5) return Status::ParseError("BSON too short");
  size_t dot = path.find('.');
  std::string_view head = dot == std::string_view::npos ? path : path.substr(0, dot);
  ElementCursor cursor(data);
  while (true) {
    ASSIGN_OR_RETURN(bool has, cursor.Next());
    if (!has) return false;
    if (cursor.key() != head) continue;
    if (dot == std::string_view::npos) return cursor.tag() != kNull;
    if (cursor.tag() != kDocument) return false;
    return BsonHasPath(cursor.value(), path.substr(dot + 1));
  }
}

}  // namespace sinew::docstore
