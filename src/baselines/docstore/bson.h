// BSON-like binary document encoding (the MongoDB comparator's storage
// format).
//
// Faithful to the aspects of BSON that drive the paper's observations:
//   - self-describing sequential elements: [u8 type tag][key cstring][value]
//   - a 4-byte total-length prefix per document/array, enabling fast
//     whole-subtree skips but NO random access to a named key: lookup walks
//     elements in order;
//   - type tags + embedded key names make BSON larger than the raw JSON for
//     short keys (the size growth the paper reports at 64M records);
//   - key existence checks are cheaper than value extraction (skip vs.
//     decode), which is why MongoDB does comparatively better on sparse
//     projections (paper Section 6.3).

#ifndef SINEW_BASELINES_DOCSTORE_BSON_H_
#define SINEW_BASELINES_DOCSTORE_BSON_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/value.h"

namespace sinew::docstore {

/// Serializes an object into the BSON-like format.
Result<std::string> ToBson(const Value& doc);

/// Full decode back into the document model.
Result<Value> FromBson(std::string_view data);

/// Sequential lookup of a dotted path. Returns kNull Value if absent.
Result<Value> BsonExtract(std::string_view data, std::string_view path);

/// Existence check (walks tags and skips values without decoding them).
Result<bool> BsonHasPath(std::string_view data, std::string_view path);

}  // namespace sinew::docstore

#endif  // SINEW_BASELINES_DOCSTORE_BSON_H_
