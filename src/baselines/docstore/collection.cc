#include "baselines/docstore/collection.h"

#include <algorithm>
#include <cmath>

namespace sinew::docstore {

namespace {

/// Typed comparison used by find(): numerics compare across int/double;
/// mismatched types never match (MongoDB's BSON type ordering is more
/// elaborate, but the benchmarks only compare within a type class).
std::optional<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_number() && b.is_number()) {
    double x = a.AsDouble(), y = b.AsDouble();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.type() != b.type()) return std::nullopt;
  return Value::Compare(a, b);
}

}  // namespace

Status Collection::Insert(const Value& doc) {
  ASSIGN_OR_RETURN(std::string bson, ToBson(doc));
  return InsertBson(std::move(bson));
}

Status Collection::InsertBson(std::string bson) {
  data_bytes_ += bson.size();
  docs_.push_back(std::move(bson));
  return Status::OK();
}

Result<bool> Collection::Matches(std::string_view doc_bson,
                                 const Filter& filter) {
  for (const Condition& cond : filter) {
    switch (cond.op) {
      case Condition::Op::kExists: {
        ASSIGN_OR_RETURN(bool has, BsonHasPath(doc_bson, cond.path));
        if (!has) return false;
        break;
      }
      case Condition::Op::kContains: {
        ASSIGN_OR_RETURN(Value v, BsonExtract(doc_bson, cond.path));
        if (!v.is_array()) return false;
        bool found = false;
        for (const Value& e : v.array()) {
          std::optional<int> c = CompareValues(e, cond.value);
          if (c.has_value() && *c == 0) {
            found = true;
            break;
          }
        }
        if (!found) return false;
        break;
      }
      default: {
        ASSIGN_OR_RETURN(Value v, BsonExtract(doc_bson, cond.path));
        if (v.is_null()) return false;
        std::optional<int> c = CompareValues(v, cond.value);
        if (!c.has_value()) return false;
        bool ok = false;
        switch (cond.op) {
          case Condition::Op::kEq:
            ok = *c == 0;
            break;
          case Condition::Op::kNe:
            ok = *c != 0;
            break;
          case Condition::Op::kLt:
            ok = *c < 0;
            break;
          case Condition::Op::kLe:
            ok = *c <= 0;
            break;
          case Condition::Op::kGt:
            ok = *c > 0;
            break;
          case Condition::Op::kGe:
            ok = *c >= 0;
            break;
          default:
            break;
        }
        if (!ok) return false;
      }
    }
  }
  return true;
}

Result<std::vector<Value>> Collection::Find(
    const Filter& filter, const std::vector<std::string>& projection) const {
  std::vector<Value> out;
  for (const std::string& doc : docs_) {
    ASSIGN_OR_RETURN(bool match, Matches(doc, filter));
    if (!match) continue;
    if (projection.empty()) {
      ASSIGN_OR_RETURN(Value full, FromBson(doc));
      out.push_back(std::move(full));
    } else {
      Value row = Value::Object({});
      for (const std::string& path : projection) {
        ASSIGN_OR_RETURN(Value v, BsonExtract(doc, path));
        row.Set(path, std::move(v));
      }
      out.push_back(std::move(row));
    }
  }
  return out;
}

Result<uint64_t> Collection::Count(const Filter& filter) const {
  uint64_t n = 0;
  for (const std::string& doc : docs_) {
    ASSIGN_OR_RETURN(bool match, Matches(doc, filter));
    if (match) ++n;
  }
  return n;
}

Result<uint64_t> Collection::UpdateMany(
    const Filter& filter,
    const std::vector<std::pair<std::string, Value>>& sets) {
  uint64_t updated = 0;
  for (std::string& doc : docs_) {
    ASSIGN_OR_RETURN(bool match, Matches(doc, filter));
    if (!match) continue;
    // Decode, mutate, re-encode — MongoDB-style document replacement.
    ASSIGN_OR_RETURN(Value full, FromBson(doc));
    for (const auto& [path, value] : sets) {
      // Only top-level and one-level nested paths are needed by the
      // benchmarks; descend generically anyway.
      Value* node = &full;
      std::string_view rest = path;
      while (true) {
        size_t dot = rest.find('.');
        if (dot == std::string_view::npos) {
          node->Set(rest, value);
          break;
        }
        std::string_view head = rest.substr(0, dot);
        Value* child = nullptr;
        for (auto& [k, v] : node->mutable_members()) {
          if (k == head) {
            child = &v;
            break;
          }
        }
        if (child == nullptr || !child->is_object()) {
          node->Set(head, Value::Object({}));
          for (auto& [k, v] : node->mutable_members()) {
            if (k == head) {
              child = &v;
              break;
            }
          }
        }
        node = child;
        rest = rest.substr(dot + 1);
      }
    }
    ASSIGN_OR_RETURN(std::string bson, ToBson(full));
    data_bytes_ += bson.size();
    data_bytes_ -= doc.size();
    doc = std::move(bson);
    ++updated;
  }
  return updated;
}

Result<std::vector<Value>> Collection::Aggregate(
    const Filter& filter, const std::string& group_path,
    const std::string& agg_fn, const std::string& agg_path) const {
  struct Group {
    Value key;
    int64_t count = 0;
    double sum = 0;
  };
  std::map<std::string, Group> groups;  // keyed by canonical JSON of the key
  for (const std::string& doc : docs_) {
    ASSIGN_OR_RETURN(bool match, Matches(doc, filter));
    if (!match) continue;
    ASSIGN_OR_RETURN(Value key, BsonExtract(doc, group_path));
    Group& g = groups[key.ToJson()];
    g.key = std::move(key);
    ++g.count;
    if (agg_fn == "sum" && !agg_path.empty()) {
      ASSIGN_OR_RETURN(Value v, BsonExtract(doc, agg_path));
      if (v.is_number()) g.sum += v.AsDouble();
    }
  }
  std::vector<Value> out;
  out.reserve(groups.size());
  for (auto& [json, g] : groups) {
    (void)json;
    Value row = Value::Object({});
    row.Set("_id", std::move(g.key));
    if (agg_fn == "sum") {
      row.Set("value", Value::Double(g.sum));
    } else {
      row.Set("value", Value::Int(g.count));
    }
    out.push_back(std::move(row));
  }
  return out;
}

Collection* DocStore::GetOrCreate(const std::string& name) {
  auto& coll = collections_[name];
  if (coll == nullptr) coll = std::make_unique<Collection>(name);
  return coll.get();
}

Result<Collection*> DocStore::Get(const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection ", name, " does not exist");
  }
  return it->second.get();
}

Status DocStore::Drop(const std::string& name) {
  collections_.erase(name);
  return Status::OK();
}

uint64_t DocStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, coll] : collections_) total += coll->DataBytes();
  return total;
}

Result<std::vector<Value>> DocStore::ClientSideJoin(
    const std::string& left, const std::string& left_key,
    const Filter& left_filter, const std::string& right,
    const std::string& right_key, const std::vector<std::string>& projection,
    uint64_t scratch_budget_bytes) {
  ASSIGN_OR_RETURN(Collection * lcoll, Get(left));
  ASSIGN_OR_RETURN(Collection * rcoll, Get(right));

  // Scratch = the explicit temporary collections' storage.
  Collection* tmp_left = GetOrCreate("$tmp_join_left");
  Collection* tmp_out = GetOrCreate("$tmp_join_out");
  auto charge = [&]() -> Status {
    uint64_t bytes = tmp_left->DataBytes() + tmp_out->DataBytes();
    if (scratch_budget_bytes != 0 && bytes > scratch_budget_bytes) {
      return Status::Aborted(
          "client-side join ran out of scratch space (used ", bytes,
          " of ", scratch_budget_bytes, " bytes)");
    }
    return Status::OK();
  };

  // Stage 1: filter the left collection and spill {key, doc} pairs into an
  // explicit temporary collection (re-serialized, like the Mongo pattern).
  for (const std::string& doc : lcoll->raw_docs()) {
    ASSIGN_OR_RETURN(bool match, Collection::Matches(doc, left_filter));
    if (!match) continue;
    ASSIGN_OR_RETURN(Value key, BsonExtract(doc, left_key));
    if (key.is_null()) continue;
    ASSIGN_OR_RETURN(Value full, FromBson(doc));
    Value entry = Value::Object({});
    entry.Set("k", std::move(key));
    entry.Set("d", std::move(full));
    RETURN_NOT_OK(tmp_left->Insert(entry));
    Status budget = charge();
    if (!budget.ok()) {
      (void)Drop("$tmp_join_left");
      (void)Drop("$tmp_join_out");
      return budget;
    }
  }

  // Stage 2: build an in-memory key index over the temporary collection
  // (the "map" phase of the user-code join).
  std::multimap<std::string, size_t> key_index;
  for (size_t i = 0; i < tmp_left->raw_docs().size(); ++i) {
    ASSIGN_OR_RETURN(Value key, BsonExtract(tmp_left->raw_docs()[i], "k"));
    key_index.emplace(key.ToJson(), i);
  }

  // Stage 3: scan the right collection, emitting matched pairs into a
  // second temporary collection.
  Status failure;
  for (const std::string& doc : rcoll->raw_docs()) {
    ASSIGN_OR_RETURN(Value key, BsonExtract(doc, right_key));
    if (key.is_null()) continue;
    auto [begin, end] = key_index.equal_range(key.ToJson());
    if (begin == end) continue;
    ASSIGN_OR_RETURN(Value rdoc, FromBson(doc));
    for (auto it = begin; it != end; ++it) {
      ASSIGN_OR_RETURN(Value ldoc,
                       BsonExtract(tmp_left->raw_docs()[it->second], "d"));
      Value pair = Value::Object({});
      pair.Set("l", std::move(ldoc));
      pair.Set("r", rdoc);
      RETURN_NOT_OK(tmp_out->Insert(pair));
    }
    failure = charge();
    if (!failure.ok()) break;
  }
  if (!failure.ok()) {
    (void)Drop("$tmp_join_left");
    (void)Drop("$tmp_join_out");
    return failure;
  }

  // Stage 4: project results out of the temporary collection.
  std::vector<Value> out;
  for (const std::string& doc : tmp_out->raw_docs()) {
    if (projection.empty()) {
      ASSIGN_OR_RETURN(Value full, FromBson(doc));
      out.push_back(std::move(full));
    } else {
      Value row = Value::Object({});
      for (const std::string& path : projection) {
        ASSIGN_OR_RETURN(Value v, BsonExtract(doc, path));
        row.Set(path, std::move(v));
      }
      out.push_back(std::move(row));
    }
  }
  (void)Drop("$tmp_join_left");
  (void)Drop("$tmp_join_out");
  return out;
}

}  // namespace sinew::docstore
