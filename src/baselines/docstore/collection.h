// MongoDB-like document store (the paper's NoSQL comparator).
//
// Collections hold BSON-like documents and support the primitives MongoDB
// provides: filtered collection scans (find), projections, group
// aggregations, multi-document updates, and — because there is no native
// join — a client-side join that materializes explicit temporary
// collections, exactly the shape of the paper's user-code JavaScript join
// (Section 6.5). There is no query optimizer and no statistics; every
// operation is a full scan with per-document BSON traversal. No
// transactional guarantees (updates are applied document-at-a-time).

#ifndef SINEW_BASELINES_DOCSTORE_COLLECTION_H_
#define SINEW_BASELINES_DOCSTORE_COLLECTION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/docstore/bson.h"
#include "common/result.h"

namespace sinew::docstore {

/// A single find() condition over a dotted path.
struct Condition {
  enum class Op {
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kExists,
    kContains,  // array membership ($in over an array field)
  };
  std::string path;
  Op op = Op::kEq;
  Value value;  // unused for kExists
};

using Filter = std::vector<Condition>;  // conjunction

class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Status Insert(const Value& doc);
  Status InsertBson(std::string bson);

  size_t size() const { return docs_.size(); }
  uint64_t DataBytes() const { return data_bytes_; }
  const std::vector<std::string>& raw_docs() const { return docs_; }

  /// Filtered scan. With a projection list, each result contains only those
  /// dotted paths (named by their full path); otherwise full documents.
  Result<std::vector<Value>> Find(
      const Filter& filter,
      const std::vector<std::string>& projection = {}) const;

  /// Count of matching documents without materializing them.
  Result<uint64_t> Count(const Filter& filter) const;

  /// Sets `sets` on every matching document (document-at-a-time, no
  /// transactional guarantee). Returns the number updated.
  Result<uint64_t> UpdateMany(
      const Filter& filter,
      const std::vector<std::pair<std::string, Value>>& sets);

  /// Aggregation primitive: group matching documents by `group_path` and
  /// compute `count` or `sum of agg_path` per group. Result rows are
  /// objects {_id: group value, value: aggregate}.
  Result<std::vector<Value>> Aggregate(const Filter& filter,
                                       const std::string& group_path,
                                       const std::string& agg_fn,
                                       const std::string& agg_path) const;

  /// True if `doc_bson` matches the filter.
  static Result<bool> Matches(std::string_view doc_bson, const Filter& filter);

 private:
  std::string name_;
  std::vector<std::string> docs_;
  uint64_t data_bytes_ = 0;
};

class DocStore {
 public:
  Collection* GetOrCreate(const std::string& name);
  Result<Collection*> Get(const std::string& name) const;
  Status Drop(const std::string& name);

  uint64_t TotalBytes() const;

  /// Client-side equi-join (MongoDB has no native join): filters `left`,
  /// extracts join keys into an explicit temporary collection, rescans
  /// `right` against it, and materializes matched pairs into a second
  /// temporary collection before projecting results — the paper's
  /// "user code using a custom JavaScript extension combined with multiple
  /// explicitly defined intermediate collections". Scratch usage is capped
  /// by `scratch_budget_bytes` (0 = unlimited); exceeding it aborts like the
  /// paper's out-of-disk joins.
  Result<std::vector<Value>> ClientSideJoin(
      const std::string& left, const std::string& left_key,
      const Filter& left_filter, const std::string& right,
      const std::string& right_key,
      const std::vector<std::string>& projection,
      uint64_t scratch_budget_bytes);

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace sinew::docstore

#endif  // SINEW_BASELINES_DOCSTORE_COLLECTION_H_
