#include "baselines/eav/eav_store.h"

#include <map>
#include <set>

#include "engine/table.h"

namespace sinew::eav {

namespace {

constexpr size_t kOidSlot = 0;
constexpr size_t kKeySlot = 1;
constexpr size_t kSvalSlot = 2;
constexpr size_t kNvalSlot = 3;
constexpr size_t kBvalSlot = 4;

}  // namespace

EavStore::EavStore(engine::PlannerOptions planner_options,
                   engine::ExecOptions exec_options)
    : db_(planner_options, exec_options) {
  engine::Schema schema;
  (void)schema.AddColumn(engine::Column{"oid", engine::ColumnType::kInt});
  (void)schema.AddColumn(engine::Column{"key", engine::ColumnType::kText});
  (void)schema.AddColumn(engine::Column{"sval", engine::ColumnType::kText});
  (void)schema.AddColumn(engine::Column{"nval", engine::ColumnType::kDouble});
  (void)schema.AddColumn(engine::Column{"bval", engine::ColumnType::kBool});
  table_ = *db_.catalog()->CreateTable(kTableName, std::move(schema));
}

const char* EavStore::ValueColumnFor(ValueType type) {
  switch (type) {
    case ValueType::kString:
      return "sval";
    case ValueType::kInt:
    case ValueType::kDouble:
      return "nval";
    case ValueType::kBool:
      return "bval";
    default:
      return "sval";
  }
}

Status EavStore::ShredInto(uint64_t oid, const Value& node,
                           const std::string& prefix, uint64_t* tuples) {
  for (const auto& [key, value] : node.members()) {
    std::string path = prefix + key;
    switch (value.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kObject:
        RETURN_NOT_OK(ShredInto(oid, value, path + ".", tuples));
        break;
      case ValueType::kArray: {
        for (const Value& e : value.array()) {
          if (e.is_object()) {
            RETURN_NOT_OK(ShredInto(oid, e, path + ".", tuples));
            continue;
          }
          engine::DatumRow row(5);
          row[kOidSlot] = engine::Datum::Int(static_cast<int64_t>(oid));
          row[kKeySlot] = engine::Datum::Text(path);
          if (e.is_string()) {
            row[kSvalSlot] = engine::Datum::Text(e.string_value());
          } else if (e.is_number()) {
            row[kNvalSlot] = engine::Datum::Double(e.AsDouble());
          } else if (e.is_bool()) {
            row[kBvalSlot] = engine::Datum::Bool(e.bool_value());
          }
          RETURN_NOT_OK(table_->AppendRow(row).status());
          ++*tuples;
        }
        break;
      }
      default: {
        engine::DatumRow row(5);
        row[kOidSlot] = engine::Datum::Int(static_cast<int64_t>(oid));
        row[kKeySlot] = engine::Datum::Text(path);
        if (value.is_string()) {
          row[kSvalSlot] = engine::Datum::Text(value.string_value());
        } else if (value.is_number()) {
          row[kNvalSlot] = engine::Datum::Double(value.AsDouble());
        } else if (value.is_bool()) {
          row[kBvalSlot] = engine::Datum::Bool(value.bool_value());
        }
        RETURN_NOT_OK(table_->AppendRow(row).status());
        ++*tuples;
      }
    }
  }
  return Status::OK();
}

Result<uint64_t> EavStore::Load(const std::vector<Value>& docs) {
  uint64_t tuples = 0;
  for (const Value& doc : docs) {
    if (!doc.is_object()) {
      return Status::InvalidArgument("EAV load expects objects");
    }
    RETURN_NOT_OK(ShredInto(next_oid_, doc, "", &tuples));
    ++next_oid_;
  }
  return tuples;
}

Result<uint64_t> EavStore::StorageBytes() const { return table_->DataBytes(); }

Status EavStore::Analyze() { return table_->Analyze(); }

Result<std::vector<Value>> EavStore::ReconstructByPredicate(
    const std::string& predicate_sql) {
  // Self-join: m selects matching oids, e fetches all their tuples.
  std::string sql =
      "SELECT e.oid, e.key, e.sval, e.nval, e.bval FROM eav e, eav m "
      "WHERE e.oid = m.oid AND " +
      predicate_sql + " ORDER BY e.oid";
  ASSIGN_OR_RETURN(engine::QueryResult result, db_.Execute(sql));
  std::vector<Value> docs;
  int64_t current_oid = -1;
  std::map<std::string, bool> seen_in_current;
  for (const engine::DatumRow& row : result.rows) {
    int64_t oid = row[0].int_value();
    const std::string& key = row[1].str();
    if (oid != current_oid) {
      docs.push_back(Value::Object({}));
      current_oid = oid;
      seen_in_current.clear();
    }
    Value v;
    if (!row[2].is_null()) {
      v = Value::String(row[2].str());
    } else if (!row[3].is_null()) {
      v = Value::Double(row[3].double_value());
    } else if (!row[4].is_null()) {
      v = Value::Bool(row[4].bool_value());
    }
    Value& doc = docs.back();
    if (seen_in_current[key]) {
      // Repeated key = array element: promote to array.
      Value* existing = nullptr;
      for (auto& [k, val] : doc.mutable_members()) {
        if (k == key) {
          existing = &val;
          break;
        }
      }
      if (existing != nullptr) {
        if (!existing->is_array()) {
          Value arr = Value::Array({*existing});
          *existing = std::move(arr);
        }
        existing->Append(std::move(v));
        continue;
      }
    }
    seen_in_current[key] = true;
    doc.Set(key, std::move(v));
  }
  return docs;
}

Result<uint64_t> EavStore::UpdateWhere(const std::string& match_key,
                                       const std::string& match_value,
                                       const std::string& set_key,
                                       const std::string& set_value) {
  // Find matching oids.
  ASSIGN_OR_RETURN(
      engine::QueryResult match,
      db_.Execute("SELECT oid FROM eav WHERE key = '" + match_key +
                  "' AND sval = '" + match_value + "'"));
  if (match.rows.empty()) return 0;
  std::string oid_list;
  for (const engine::DatumRow& row : match.rows) {
    if (!oid_list.empty()) oid_list += ", ";
    oid_list += std::to_string(row[0].int_value());
  }
  // Update existing tuples for the target key.
  ASSIGN_OR_RETURN(
      engine::QueryResult updated,
      db_.Execute("UPDATE eav SET sval = '" + set_value + "' WHERE key = '" +
                  set_key + "' AND oid IN (" + oid_list + ")"));
  uint64_t n = static_cast<uint64_t>(updated.rows[0][0].int_value());
  // Upsert tuples for oids that lacked the key.
  ASSIGN_OR_RETURN(
      engine::QueryResult have,
      db_.Execute("SELECT oid FROM eav WHERE key = '" + set_key +
                  "' AND oid IN (" + oid_list + ")"));
  std::set<int64_t> have_oids;
  for (const engine::DatumRow& row : have.rows) {
    have_oids.insert(row[0].int_value());
  }
  for (const engine::DatumRow& row : match.rows) {
    int64_t oid = row[0].int_value();
    if (have_oids.count(oid) != 0) continue;
    engine::DatumRow tuple(5);
    tuple[kOidSlot] = engine::Datum::Int(oid);
    tuple[kKeySlot] = engine::Datum::Text(set_key);
    tuple[kSvalSlot] = engine::Datum::Text(set_value);
    RETURN_NOT_OK(table_->AppendRow(tuple).status());
    ++n;
  }
  return n;
}

}  // namespace sinew::eav
