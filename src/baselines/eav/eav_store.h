// Entity-Attribute-Value shredding comparator (paper Section 6.1).
//
// Each document is flattened into (object id, key, typed value) triples in a
// single 5-ish-column relation, exactly as the paper's EAV system:
//
//   eav(oid INT, key TEXT, sval TEXT, nval DOUBLE, bval BOOL)
//
// Nested keys shred under dotted paths; array elements shred as one tuple
// per element under the array's path. A thin mapping layer rewrites logical
// queries into self-joins over this relation (one join per referenced
// attribute) — the structural cost the paper measures.

#ifndef SINEW_BASELINES_EAV_EAV_STORE_H_
#define SINEW_BASELINES_EAV_EAV_STORE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"

namespace sinew::eav {

class EavStore {
 public:
  explicit EavStore(engine::PlannerOptions planner_options = {},
                    engine::ExecOptions exec_options = {});

  engine::Database* engine() { return &db_; }
  static constexpr const char* kTableName = "eav";

  /// Shreds and loads documents; returns the number of EAV tuples produced.
  Result<uint64_t> Load(const std::vector<Value>& docs);

  uint64_t document_count() const { return next_oid_; }
  /// Encoded storage volume of the EAV relation.
  Result<uint64_t> StorageBytes() const;

  /// Refreshes optimizer statistics.
  Status Analyze();

  /// The value column name an attribute of a given type shreds into.
  static const char* ValueColumnFor(ValueType type);

  /// Reconstructs whole documents for a set of matching oids: the mapping
  /// layer's SELECT * path (scan + client-side regrouping).
  Result<std::vector<Value>> ReconstructByPredicate(
      const std::string& predicate_sql);

  /// Upsert used by the update task: sets `set_key` to a string value on
  /// every object matching (match_key = match_value).
  Result<uint64_t> UpdateWhere(const std::string& match_key,
                               const std::string& match_value,
                               const std::string& set_key,
                               const std::string& set_value);

 private:
  Status ShredInto(uint64_t oid, const Value& node, const std::string& prefix,
                   uint64_t* tuples);

  engine::Database db_;
  engine::Table* table_ = nullptr;
  uint64_t next_oid_ = 0;
};

}  // namespace sinew::eav

#endif  // SINEW_BASELINES_EAV_EAV_STORE_H_
