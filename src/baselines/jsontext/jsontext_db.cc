#include "baselines/jsontext/jsontext_db.h"

#include "engine/table.h"
#include "json/json.h"

namespace sinew::jsontext {

namespace {

using engine::Datum;

/// Full parse + path descent: the per-call cost profile of text JSON.
Result<Value> ParseAndExtract(const std::string& text,
                              std::string_view path) {
  ASSIGN_OR_RETURN(Value doc, json::Parse(text));
  const Value* node = &doc;
  std::string_view rest = path;
  while (!rest.empty()) {
    size_t dot = rest.find('.');
    std::string_view head =
        dot == std::string_view::npos ? rest : rest.substr(0, dot);
    if (!node->is_object()) return Value::Null();
    const Value* child = node->Find(head);
    if (child == nullptr) return Value::Null();
    node = child;
    if (dot == std::string_view::npos) break;
    rest = rest.substr(dot + 1);
  }
  return *node;
}

Status CheckArgs(const engine::UdfArgs& args, const char* fn) {
  if (args.size() != 2) {
    return Status::InvalidArgument(fn, " expects (data, path)");
  }
  if (!args[0]->is_null() && !args[0]->is_text()) {
    return Status::TypeError(fn, ": data must be text");
  }
  if (!args[1]->is_text()) return Status::TypeError(fn, ": path must be text");
  return Status::OK();
}

}  // namespace

void RegisterJsonTextFunctions(engine::UdfRegistry* registry) {
  registry->Register(
      "json_extract_any",
      [](const engine::UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckArgs(args, "json_extract_any"));
        if (args[0]->is_null()) return Datum::Null();
        ASSIGN_OR_RETURN(Value v, ParseAndExtract(args[0]->str(), args[1]->str()));
        if (v.is_object() || v.is_array()) return Datum::Text(v.ToJson());
        return Datum::FromValue(v);
      });
  registry->Register(
      "json_extract_text",
      [](const engine::UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckArgs(args, "json_extract_text"));
        if (args[0]->is_null()) return Datum::Null();
        ASSIGN_OR_RETURN(Value v, ParseAndExtract(args[0]->str(), args[1]->str()));
        if (v.is_null()) return Datum::Null();
        if (!v.is_string()) {
          // ->> semantics: any scalar renders as text.
          if (v.is_object() || v.is_array()) return Datum::Text(v.ToJson());
          return Datum::Text(v.ToJson());
        }
        return Datum::Text(v.string_value());
      });
  // Typed casts: Postgres raises on a malformed cast, so a key that maps to
  // values of two types makes the whole query fail (the Q7 anecdote).
  registry->Register(
      "json_extract_int",
      [](const engine::UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckArgs(args, "json_extract_int"));
        if (args[0]->is_null()) return Datum::Null();
        ASSIGN_OR_RETURN(Value v, ParseAndExtract(args[0]->str(), args[1]->str()));
        if (v.is_null()) return Datum::Null();
        if (!v.is_int()) {
          return Status::TypeError("invalid input syntax for integer: \"",
                                   v.ToJson(), "\"");
        }
        return Datum::Int(v.int_value());
      });
  registry->Register(
      "json_extract_double",
      [](const engine::UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckArgs(args, "json_extract_double"));
        if (args[0]->is_null()) return Datum::Null();
        ASSIGN_OR_RETURN(Value v, ParseAndExtract(args[0]->str(), args[1]->str()));
        if (v.is_null()) return Datum::Null();
        if (!v.is_number()) {
          return Status::TypeError(
              "invalid input syntax for double precision: \"", v.ToJson(),
              "\"");
        }
        return Datum::Double(v.AsDouble());
      });
  registry->Register(
      "json_extract_bool",
      [](const engine::UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckArgs(args, "json_extract_bool"));
        if (args[0]->is_null()) return Datum::Null();
        ASSIGN_OR_RETURN(Value v, ParseAndExtract(args[0]->str(), args[1]->str()));
        if (v.is_null()) return Datum::Null();
        if (!v.is_bool()) {
          return Status::TypeError("invalid input syntax for boolean: \"",
                                   v.ToJson(), "\"");
        }
        return Datum::Bool(v.bool_value());
      });
  // Array rendered as JSON text (the paper resorts to LIKE over this, since
  // Postgres JSON arrays and SQL arrays don't interoperate).
  registry->Register(
      "json_array_text",
      [](const engine::UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckArgs(args, "json_array_text"));
        if (args[0]->is_null()) return Datum::Null();
        ASSIGN_OR_RETURN(Value v, ParseAndExtract(args[0]->str(), args[1]->str()));
        if (v.is_null()) return Datum::Null();
        return Datum::Text(v.ToJson());
      });
  // json_set_text(data, path, value): parse, set, re-render the whole
  // document — the only way to update one key of a text-stored JSON value.
  registry->Register(
      "json_set_text",
      [](const engine::UdfArgs& args) -> Result<Datum> {
        if (args.size() != 3) {
          return Status::InvalidArgument(
              "json_set_text expects (data, path, value)");
        }
        if (args[0]->is_null()) return Datum::Null();
        if (!args[0]->is_text() || !args[1]->is_text()) {
          return Status::TypeError("json_set_text(text, text, value)");
        }
        ASSIGN_OR_RETURN(Value doc, json::Parse(args[0]->str()));
        Value* node = &doc;
        std::string_view rest = args[1]->str();
        while (true) {
          size_t dot = rest.find('.');
          if (dot == std::string_view::npos) break;
          std::string_view head = rest.substr(0, dot);
          Value* child = nullptr;
          for (auto& [k, v] : node->mutable_members()) {
            if (k == head) {
              child = &v;
              break;
            }
          }
          if (child == nullptr || !child->is_object()) {
            node->Set(head, Value::Object({}));
            for (auto& [k, v] : node->mutable_members()) {
              if (k == head) {
                child = &v;
                break;
              }
            }
          }
          node = child;
          rest = rest.substr(dot + 1);
        }
        node->Set(rest, args[2]->ToValue());
        return Datum::Text(doc.ToJson());
      });
}

JsonTextDb::JsonTextDb(engine::PlannerOptions planner_options,
                       engine::ExecOptions exec_options)
    : db_(planner_options, exec_options) {
  RegisterJsonTextFunctions(db_.udfs());
}

Result<uint64_t> JsonTextDb::Load(const std::string& table,
                                  const std::vector<Value>& docs) {
  std::vector<std::string> lines;
  lines.reserve(docs.size());
  for (const Value& doc : docs) lines.push_back(doc.ToJson());
  return LoadJsonLines(table, lines);
}

Result<uint64_t> JsonTextDb::LoadJsonLines(
    const std::string& table, const std::vector<std::string>& lines) {
  engine::Table* t;
  Result<engine::Table*> existing = db_.catalog()->GetTable(table);
  if (existing.ok()) {
    t = *existing;
  } else {
    engine::Schema schema;
    RETURN_NOT_OK(
        schema.AddColumn(engine::Column{"data", engine::ColumnType::kText}));
    ASSIGN_OR_RETURN(t, db_.catalog()->CreateTable(table, std::move(schema)));
  }
  uint64_t loaded = 0;
  for (const std::string& line : lines) {
    // Load-time work is syntax validation only (the paper's fast load).
    RETURN_NOT_OK(json::Parse(line).status());
    engine::DatumRow row(t->schema().num_slots());
    std::optional<size_t> slot = t->schema().FindColumn("data");
    row[*slot] = engine::Datum::Text(line);
    RETURN_NOT_OK(t->AppendRow(row).status());
    ++loaded;
  }
  return loaded;
}

Result<uint64_t> JsonTextDb::StorageBytes(const std::string& table) {
  ASSIGN_OR_RETURN(engine::Table * t, db_.catalog()->GetTable(table));
  return t->DataBytes();
}

}  // namespace sinew::jsontext
