// Postgres-JSON-style comparator (paper Section 6.1, "PG JSON").
//
// Documents are stored as raw JSON text in a single TEXT column; extraction
// UDFs re-parse the text on every call (the CPU cost the paper measures),
// and the optimizer has no per-key statistics, so every predicate over an
// extraction falls back to the planner's fixed default estimate — the
// mechanism behind the Q10 sub-optimal-plan anecdote.
//
// Typed extraction raises a TypeError when the stored value has a different
// type (Postgres cast semantics), which is why the multi-typed Q7 cannot
// complete on this system (Section 6.4).

#ifndef SINEW_BASELINES_JSONTEXT_JSONTEXT_DB_H_
#define SINEW_BASELINES_JSONTEXT_JSONTEXT_DB_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"

namespace sinew::jsontext {

class JsonTextDb {
 public:
  explicit JsonTextDb(engine::PlannerOptions planner_options = {},
                      engine::ExecOptions exec_options = {});

  engine::Database* engine() { return &db_; }

  /// Creates `table(data TEXT)` if needed and appends one JSON text row per
  /// document (only syntax validation, hence the paper's fast load).
  Result<uint64_t> Load(const std::string& table,
                        const std::vector<Value>& docs);
  /// Loads pre-rendered JSON lines without re-serializing.
  Result<uint64_t> LoadJsonLines(const std::string& table,
                                 const std::vector<std::string>& lines);

  /// Raw SQL passthrough; queries use json_extract_*(data, 'path').
  Result<engine::QueryResult> Execute(std::string_view sql) {
    return db_.Execute(sql);
  }

  Result<uint64_t> StorageBytes(const std::string& table);

 private:
  engine::Database db_;
};

/// Registers json_extract_text/int/double/bool/any(data_text, 'path') plus
/// json_array_text(data, 'path') — all of which fully parse the JSON text
/// per invocation.
void RegisterJsonTextFunctions(engine::UdfRegistry* registry);

}  // namespace sinew::jsontext

#endif  // SINEW_BASELINES_JSONTEXT_JSONTEXT_DB_H_
