// Bump-pointer arena: one allocation stream for objects whose lifetimes end
// together. The query engine uses it for plan-time bytecode programs
// (instructions, operand pools, interned literals — see engine/bytecode.h)
// and for per-execution lane scratch, replacing the per-query malloc storm
// of many small std::vector temporaries with pointer bumps into block-sized
// chunks.
//
// Non-trivially-destructible objects are supported through an intrusive
// destructor list (Create/CreateArray); trivially-destructible arrays take
// the unregistered fast path (AllocateArray). Reset() runs pending
// destructors, keeps the first block and rewinds — the shape the executor
// wants for per-batch scratch. Not thread-safe: each arena belongs to one
// compiler invocation or one operator instance.

#ifndef SINEW_COMMON_ARENA_H_
#define SINEW_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sinew {

class Arena {
 public:
  explicit Arena(size_t first_block_bytes = 4096)
      : first_block_bytes_(first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() { DestroyObjects(); }

  /// Raw storage, aligned; never returns nullptr (throws std::bad_alloc on
  /// exhaustion like operator new).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    uintptr_t p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      AddBlock(bytes + align);
      p = (cursor_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Uninitialized array of a trivially-destructible type.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "use CreateArray for types with destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Constructs one object; registers its destructor when non-trivial.
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    T* obj = new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back({obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  /// Value-initialized array; element destructors run at Reset/destruction.
  template <typename T>
  T* CreateArray(size_t n) {
    T* arr = static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
    for (size_t i = 0; i < n; ++i) new (arr + i) T();
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (size_t i = 0; i < n; ++i) {
        dtors_.push_back(
            {arr + i, [](void* p) { static_cast<T*>(p)->~T(); }});
      }
    }
    return arr;
  }

  /// Runs registered destructors, frees all blocks but the first, rewinds.
  void Reset() {
    DestroyObjects();
    if (blocks_.size() > 1) blocks_.resize(1);
    if (!blocks_.empty()) {
      cursor_ = reinterpret_cast<uintptr_t>(blocks_[0].data.get());
      limit_ = cursor_ + blocks_[0].size;
    } else {
      cursor_ = limit_ = 0;
    }
    bytes_used_ = 0;
  }

  /// Bytes handed out since construction/Reset (excludes alignment waste).
  size_t bytes_used() const { return bytes_used_; }
  /// Bytes reserved from the system across all live blocks.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };
  struct Dtor {
    void* obj;
    void (*fn)(void*);
  };

  void AddBlock(size_t min_bytes) {
    size_t size = blocks_.empty() ? first_block_bytes_
                                  : blocks_.back().size * 2;
    if (size < min_bytes) size = min_bytes;
    Block block;
    block.data = std::make_unique<char[]>(size);
    block.size = size;
    cursor_ = reinterpret_cast<uintptr_t>(block.data.get());
    limit_ = cursor_ + size;
    blocks_.push_back(std::move(block));
  }

  void DestroyObjects() {
    // Reverse construction order, matching stack teardown expectations.
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
      it->fn(it->obj);
    }
    dtors_.clear();
  }

  size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::vector<Dtor> dtors_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t bytes_used_ = 0;
};

}  // namespace sinew

#endif  // SINEW_COMMON_ARENA_H_
