// Little-endian byte buffer writer/reader used by every serialization format
// in the repo (Sinew reservoir format, BSON-like, Avro-like, Protobuf-like,
// table persistence).

#ifndef SINEW_COMMON_BYTES_H_
#define SINEW_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace sinew {

/// Appends fixed-width little-endian primitives and length-delimited payloads
/// to an owned std::string.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// LEB128 unsigned varint (Protocol-Buffers wire format).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      PutU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutU8(static_cast<uint8_t>(v));
  }

  /// Zigzag-encoded signed varint.
  void PutSignedVarint(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  void PutBytes(std::string_view s) { buf_.append(s.data(), s.size()); }

  /// Varint length prefix followed by the raw bytes.
  void PutLengthPrefixed(std::string_view s) {
    PutVarint(s.size());
    PutBytes(s);
  }

  /// Overwrites 4 bytes at `offset` with `v` (for back-patching headers).
  void PatchU32(size_t offset, uint32_t v) {
    std::memcpy(buf_.data() + offset, &v, sizeof(v));
  }

  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buf_;
};

/// Bounds-checked sequential reader over a non-owned byte range.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

  Status Seek(size_t pos) {
    if (pos > data_.size()) return Status::OutOfRange("seek past end");
    pos_ = pos;
    return Status::OK();
  }

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) return ShortRead("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> ReadU32() { return ReadRaw<uint32_t>("u32"); }
  Result<uint64_t> ReadU64() { return ReadRaw<uint64_t>("u64"); }
  Result<int64_t> ReadI64() { return ReadRaw<int64_t>("i64"); }
  Result<double> ReadDouble() { return ReadRaw<double>("double"); }

  Result<uint64_t> ReadVarint() {
    uint64_t result = 0;
    int shift = 0;
    while (true) {
      if (AtEnd()) return ShortRead("varint");
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      if (shift >= 64) return Status::ParseError("varint too long");
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return result;
  }

  Result<int64_t> ReadSignedVarint() {
    ASSIGN_OR_RETURN(uint64_t raw, ReadVarint());
    return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

  Result<std::string_view> ReadBytes(size_t n) {
    if (remaining() < n) return ShortRead("bytes");
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  Result<std::string_view> ReadLengthPrefixed() {
    ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    return ReadBytes(n);
  }

 private:
  template <typename T>
  Result<T> ReadRaw(const char* what) {
    if (remaining() < sizeof(T)) return ShortRead(what);
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  Status ShortRead(const char* what) const {
    return Status::ParseError("short read (", what, ") at offset ", pos_,
                              " of ", data_.size());
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace sinew

#endif  // SINEW_COMMON_BYTES_H_
