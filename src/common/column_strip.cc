#include "common/column_strip.h"

#include <cmath>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32c.h"

namespace sinew {

namespace {

constexpr uint8_t kStripFormatVersion = 1;
constexpr uint8_t kFlagHasNan = 0x1;

bool IsStrippableType(ValueType t) {
  return t == ValueType::kBool || t == ValueType::kInt ||
         t == ValueType::kDouble || t == ValueType::kString;
}

}  // namespace

std::string EncodeColumnStrip(const ColumnStrip& strip) {
  const uint32_t non_null = strip.non_null();
  BufferWriter w(64 + strip.presence.size() * 8 + non_null * 8 +
                 strip.str_blob.size());
  w.PutU8(kStripFormatVersion);
  w.PutU64(strip.first_row);
  w.PutU32(strip.row_count);
  w.PutU8(static_cast<uint8_t>(strip.type));
  w.PutU8(strip.has_nan ? kFlagHasNan : 0);
  w.PutU32(non_null);
  for (uint64_t word : strip.presence) w.PutU64(word);
  switch (strip.type) {
    case ValueType::kBool:
      for (uint8_t v : strip.bools) w.PutU8(v);
      break;
    case ValueType::kInt:
      for (int64_t v : strip.ints) w.PutI64(v);
      break;
    case ValueType::kDouble:
      for (double v : strip.doubles) w.PutDouble(v);
      break;
    case ValueType::kString:
      for (uint32_t off : strip.str_offsets) w.PutU32(off);
      w.PutBytes(strip.str_blob);
      break;
    default:
      break;  // caller bug; decoder rejects the type byte anyway
  }
  if (non_null > 0) {
    switch (strip.type) {
      case ValueType::kBool:
        w.PutU8(strip.zone_min_bool);
        w.PutU8(strip.zone_max_bool);
        break;
      case ValueType::kInt:
        w.PutI64(strip.zone_min_int);
        w.PutI64(strip.zone_max_int);
        break;
      case ValueType::kDouble:
        w.PutDouble(strip.zone_min_double);
        w.PutDouble(strip.zone_max_double);
        break;
      case ValueType::kString:
        w.PutLengthPrefixed(strip.zone_min_str);
        w.PutLengthPrefixed(strip.zone_max_str);
        break;
      default:
        break;
    }
  }
  const uint32_t crc = crc32c::Mask(crc32c::Value(w.buffer()));
  w.PutU32(crc);
  return w.Release();
}

Result<ColumnStrip> DecodeColumnStrip(std::string_view data) {
  if (data.size() < sizeof(uint32_t)) {
    return Status::IOError("column strip shorter than its checksum");
  }
  const size_t payload_size = data.size() - sizeof(uint32_t);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + payload_size, sizeof(stored_crc));
  const uint32_t actual = crc32c::Value(data.data(), payload_size);
  if (crc32c::Unmask(stored_crc) != actual) {
    return Status::IOError("column strip checksum mismatch");
  }

  BufferReader r(data.substr(0, payload_size));
  ColumnStrip strip;
  ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kStripFormatVersion) {
    return Status::IOError("unknown column strip version ", version);
  }
  ASSIGN_OR_RETURN(strip.first_row, r.ReadU64());
  ASSIGN_OR_RETURN(strip.row_count, r.ReadU32());
  if (strip.row_count == 0 || strip.row_count > kMaxStripRowCount) {
    return Status::IOError("column strip row_count ", strip.row_count,
                              " out of range");
  }
  ASSIGN_OR_RETURN(uint8_t type_byte, r.ReadU8());
  strip.type = static_cast<ValueType>(type_byte);
  if (!IsStrippableType(strip.type)) {
    return Status::IOError("column strip type ", type_byte,
                              " is not strippable");
  }
  ASSIGN_OR_RETURN(uint8_t flags, r.ReadU8());
  if (flags & ~kFlagHasNan) {
    return Status::IOError("column strip has unknown flag bits");
  }
  strip.has_nan = (flags & kFlagHasNan) != 0;
  if (strip.has_nan && strip.type != ValueType::kDouble) {
    return Status::IOError("has_nan flag on non-double strip");
  }
  ASSIGN_OR_RETURN(uint32_t non_null, r.ReadU32());
  if (non_null > strip.row_count) {
    return Status::IOError("column strip non_null ", non_null,
                              " exceeds row_count ", strip.row_count);
  }
  const size_t words = (strip.row_count + 63) / 64;
  strip.presence.resize(words);
  for (size_t i = 0; i < words; ++i) {
    ASSIGN_OR_RETURN(strip.presence[i], r.ReadU64());
  }
  // Bits past row_count in the last word must be clear, and the popcount
  // must match the declared value count exactly.
  if (strip.row_count % 64 != 0) {
    const uint64_t tail_mask = ~uint64_t{0} << (strip.row_count % 64);
    if (strip.presence.back() & tail_mask) {
      return Status::IOError("column strip presence bits past row_count");
    }
  }
  if (strip.non_null() != non_null) {
    return Status::IOError("column strip presence popcount != non_null");
  }
  switch (strip.type) {
    case ValueType::kBool: {
      strip.bools.resize(non_null);
      for (uint32_t i = 0; i < non_null; ++i) {
        ASSIGN_OR_RETURN(strip.bools[i], r.ReadU8());
        if (strip.bools[i] > 1) {
          return Status::IOError("column strip bool value > 1");
        }
      }
      break;
    }
    case ValueType::kInt: {
      strip.ints.resize(non_null);
      for (uint32_t i = 0; i < non_null; ++i) {
        ASSIGN_OR_RETURN(strip.ints[i], r.ReadI64());
      }
      break;
    }
    case ValueType::kDouble: {
      strip.doubles.resize(non_null);
      bool saw_nan = false;
      for (uint32_t i = 0; i < non_null; ++i) {
        ASSIGN_OR_RETURN(strip.doubles[i], r.ReadDouble());
        saw_nan |= std::isnan(strip.doubles[i]);
      }
      if (saw_nan != strip.has_nan) {
        return Status::IOError("column strip has_nan flag inconsistent");
      }
      break;
    }
    case ValueType::kString: {
      if (non_null > 0) {
        strip.str_offsets.resize(non_null + 1);
        for (uint32_t i = 0; i <= non_null; ++i) {
          ASSIGN_OR_RETURN(strip.str_offsets[i], r.ReadU32());
        }
        if (strip.str_offsets[0] != 0) {
          return Status::IOError("column strip string offsets not 0-based");
        }
        for (uint32_t i = 0; i < non_null; ++i) {
          if (strip.str_offsets[i + 1] < strip.str_offsets[i]) {
            return Status::IOError(
                "column strip string offsets not monotone");
          }
        }
        ASSIGN_OR_RETURN(std::string_view blob,
                         r.ReadBytes(strip.str_offsets[non_null]));
        strip.str_blob.assign(blob);
      }
      break;
    }
    default:
      return Status::IOError("unreachable strip type");
  }
  if (non_null > 0) {
    strip.zone_valid = true;
    switch (strip.type) {
      case ValueType::kBool: {
        ASSIGN_OR_RETURN(strip.zone_min_bool, r.ReadU8());
        ASSIGN_OR_RETURN(strip.zone_max_bool, r.ReadU8());
        if (strip.zone_min_bool > 1 || strip.zone_max_bool > 1 ||
            strip.zone_min_bool > strip.zone_max_bool) {
          return Status::IOError("column strip bool zone map invalid");
        }
        break;
      }
      case ValueType::kInt: {
        ASSIGN_OR_RETURN(strip.zone_min_int, r.ReadI64());
        ASSIGN_OR_RETURN(strip.zone_max_int, r.ReadI64());
        if (strip.zone_min_int > strip.zone_max_int) {
          return Status::IOError("column strip int zone map inverted");
        }
        break;
      }
      case ValueType::kDouble: {
        ASSIGN_OR_RETURN(strip.zone_min_double, r.ReadDouble());
        ASSIGN_OR_RETURN(strip.zone_max_double, r.ReadDouble());
        if (!strip.has_nan && strip.zone_min_double > strip.zone_max_double) {
          return Status::IOError("column strip double zone map inverted");
        }
        break;
      }
      case ValueType::kString: {
        ASSIGN_OR_RETURN(std::string_view mn, r.ReadLengthPrefixed());
        ASSIGN_OR_RETURN(std::string_view mx, r.ReadLengthPrefixed());
        strip.zone_min_str.assign(mn);
        strip.zone_max_str.assign(mx);
        if (strip.zone_min_str > strip.zone_max_str) {
          return Status::IOError("column strip string zone map inverted");
        }
        break;
      }
      default:
        return Status::IOError("unreachable strip type");
    }
  }
  if (!r.AtEnd()) {
    return Status::IOError("column strip has ", r.remaining(),
                              " trailing bytes");
  }
  return strip;
}

}  // namespace sinew
