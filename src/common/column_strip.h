// Column strip codec: the serialized unit of the columnar reservoir
// segments. A strip covers a fixed-size run of rows for one (attribute,
// type) pair of a cold table segment and stores, column-major:
//
//   - a presence bitmap (bit i set = row first_row+i has the attribute),
//   - a rank-dense typed value vector (fixed-width bools/ints/doubles, or
//     offset+blob packed strings) holding only the present rows' values,
//   - a zone map: the min/max value among present rows, plus a has_nan
//     flag for double strips (NaN poisons ordered comparison, so a strip
//     containing NaN is never zone-skippable),
//   - a masked CRC32C over everything above, so torn or bit-flipped strips
//     are detected and the reader falls back to the row reservoir instead
//     of misdecoding.
//
// The codec is deliberately engine-agnostic (no Datum/Table types): the
// engine layer wraps decoded strips with rank indexes and Datum zone
// bounds, and the persistence layer concatenates encoded strips into the
// `table_<t>.strips` generation sidecar.

#ifndef SINEW_COMMON_COLUMN_STRIP_H_
#define SINEW_COMMON_COLUMN_STRIP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace sinew {

/// One decoded column strip. Only scalar types are strippable — objects,
/// arrays and multi-typed attributes stay in the row reservoir.
struct ColumnStrip {
  uint64_t first_row = 0;  ///< rid of the strip's first covered row
  uint32_t row_count = 0;  ///< rows covered (present or not), >= 1

  ValueType type = ValueType::kNull;  ///< kBool/kInt/kDouble/kString only

  /// Presence bitmap, ceil(row_count/64) words; bit i of word i/64 set when
  /// row first_row+i carries a value in this strip.
  std::vector<uint64_t> presence;

  /// Rank-dense values: exactly one entry per set presence bit, in row
  /// order. Only the vector matching `type` is populated.
  std::vector<uint8_t> bools;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  /// Strings pack as non_null+1 offsets into str_blob (offsets[0] == 0,
  /// monotone, offsets.back() == str_blob.size()); empty when non_null == 0.
  std::vector<uint32_t> str_offsets;
  std::string str_blob;

  /// True when a double strip contains any NaN value; such strips are never
  /// zone-skippable because NaN breaks ordered comparison.
  bool has_nan = false;

  /// Zone map over present rows; meaningless (and not serialized) when the
  /// strip is all-null. For strings these hold the raw bytes.
  bool zone_valid = false;
  uint8_t zone_min_bool = 0, zone_max_bool = 0;
  int64_t zone_min_int = 0, zone_max_int = 0;
  double zone_min_double = 0, zone_max_double = 0;
  std::string zone_min_str, zone_max_str;

  uint32_t non_null() const {
    uint32_t n = 0;
    for (uint64_t w : presence) n += static_cast<uint32_t>(__builtin_popcountll(w));
    return n;
  }

  bool Present(uint32_t i) const {
    return (presence[i / 64] >> (i % 64)) & 1;
  }

  void SetPresent(uint32_t i) { presence[i / 64] |= uint64_t{1} << (i % 64); }
};

/// Hard ceiling on row_count accepted by the decoder; engine strips use
/// 1024, the cap just bounds allocations on adversarial input.
inline constexpr uint32_t kMaxStripRowCount = 1u << 20;

/// Serializes a strip: fixed header, presence words, typed values, zone map,
/// masked CRC32C footer. The strip must be structurally valid (presence
/// sized to row_count, value vectors rank-dense).
std::string EncodeColumnStrip(const ColumnStrip& strip);

/// Decodes and fully validates a strip. Any corruption — bit flip,
/// truncation, trailing garbage, internal inconsistency — yields an error
/// status, never a wrong value: the CRC covers every preceding byte, and
/// structural invariants (popcount == value count, monotone string offsets,
/// scalar type, flag bits) are re-checked after the CRC passes.
Result<ColumnStrip> DecodeColumnStrip(std::string_view data);

}  // namespace sinew

#endif  // SINEW_COMMON_COLUMN_STRIP_H_
