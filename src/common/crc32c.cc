#include "common/crc32c.h"

#include <array>

namespace sinew::crc32c {

namespace {

// Slice-by-4 lookup tables, generated once at startup. Table [0] is the
// classic byte-at-a-time table for the reflected Castagnoli polynomial;
// tables [1..3] extend it so the hot loop consumes 4 bytes per iteration.
struct Tables {
  uint32_t t[4][256];

  Tables() {
    constexpr uint32_t kPoly = 0x82f63b78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  while (n >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = tb.t[3][c & 0xff] ^ tb.t[2][(c >> 8) & 0xff] ^
        tb.t[1][(c >> 16) & 0xff] ^ tb.t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *p++) & 0xff];
  }
  return c ^ 0xffffffffu;
}

}  // namespace sinew::crc32c
