// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every persisted image footer. Chosen over CRC32 (zlib)
// for its better error-detection properties and because it is what LevelDB /
// RocksDB / Kafka use for the same job, which keeps the on-disk convention
// familiar.

#ifndef SINEW_COMMON_CRC32C_H_
#define SINEW_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sinew::crc32c {

/// Continues a CRC over more data. `crc` is the value returned by a previous
/// Extend/Value call (not masked).
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// CRC32C of a buffer.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }
inline uint32_t Value(std::string_view s) { return Value(s.data(), s.size()); }

/// Masked CRCs are what gets stored in files. Storing raw CRCs of payloads
/// that themselves embed CRCs weakens the check (CRC of a string containing
/// its own CRC is a constant); the rotate-and-add mask breaks that identity.
/// Same constant as LevelDB for familiarity.
constexpr uint32_t kMaskDelta = 0xa282ead8ul;

inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace sinew::crc32c

#endif  // SINEW_COMMON_CRC32C_H_
