#include "common/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/metrics.h"

namespace sinew {

namespace {

namespace fs = std::filesystem;

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  return Status::IOError(op, " ", path, ": ", std::strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IOError("append to closed file ", path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    static metrics::Counter* bytes_written =
        metrics::GetCounter("env.bytes_written_total");
    bytes_written->Add(data.size());
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("sync of closed file ", path_);
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    static metrics::Counter* fsyncs =
        metrics::GetCounter("env.fsyncs_total");
    fsyncs->Increment();
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) return ErrnoStatus("open for write", path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(path, fd));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open ", path);
    std::string out((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    if (in.bad()) return Status::IOError("read error on ", path);
    return out;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    // Make the rename itself durable: fsync the containing directory.
    // Best-effort — some filesystems reject O_RDONLY dir fsync.
    fs::path parent = fs::path(to).parent_path();
    if (parent.empty()) parent = ".";
    int dfd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
      (void)::fsync(dfd);
      ::close(dfd);
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("unlink", path, errno);
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("mkdir -p ", path, ": ", ec.message());
    return Status::OK();
  }

  Status RemoveAll(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) return Status::IOError("rm -rf ", path, ": ", ec.message());
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    fs::directory_iterator it(path, ec);
    if (ec) return Status::IOError("list ", path, ": ", ec.message());
    std::vector<std::string> names;
    for (const fs::directory_entry& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    return names;
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents) {
  const std::string tmp = path + ".tmp";
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                   env->NewWritableFile(tmp));
  Status st = file->Append(contents);
  if (st.ok()) st = file->Sync();
  Status close_st = file->Close();
  if (st.ok()) st = close_st;
  if (!st.ok()) {
    (void)env->DeleteFile(tmp);  // best-effort; crash GC handles leftovers
    return st;
  }
  Status rename_st = env->RenameFile(tmp, path);
  if (!rename_st.ok()) {
    // The fully written temp file is now garbage; surface a failed cleanup
    // instead of swallowing it, so callers know a stray "*.tmp" remains
    // until directory GC (and tests can assert the combined failure).
    Status cleanup = env->DeleteFile(tmp);
    if (!cleanup.ok()) {
      return Status::IOError(rename_st.message(),
                             "; additionally failed to remove temp file ",
                             tmp, ": ", cleanup.message());
    }
  }
  return rename_st;
}

}  // namespace sinew
