// Env: the filesystem abstraction behind all persistence I/O.
//
// Production code uses Env::Default() (POSIX files, real fsync). Tests swap
// in a FaultInjectionEnv (fault_env.h) to inject short writes, I/O errors and
// hard crash cut-offs, which is how the crash-safety of the generation commit
// protocol (sinew/persistence.h) is verified. Every persistence path must
// route through an Env — never raw fstream — so that (a) close/flush errors
// are actually checked and (b) the path is testable under faults.

#ifndef SINEW_COMMON_ENV_H_
#define SINEW_COMMON_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sinew {

/// A sequentially written file. Append/Sync/Close all report errors; a
/// WritableFile must be Close()d explicitly — the destructor only releases
/// the descriptor and cannot report a failed final flush.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  /// Flushes application and OS buffers to durable storage (fsync).
  virtual Status Sync() = 0;
  /// Closes the file; idempotent. Returns the first close-time error.
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment.
  static Env* Default();

  /// Creates (or truncates) `path` for sequential writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Reads an entire file.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Atomically renames `from` to `to`, replacing `to` if it exists.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  /// mkdir -p.
  virtual Status CreateDirs(const std::string& path) = 0;

  /// rm -rf (no error if `path` does not exist).
  virtual Status RemoveAll(const std::string& path) = 0;

  /// Names (not paths) of entries directly inside `path`.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
};

/// Writes `contents` to `path` through a same-directory temp file + Sync +
/// atomic rename: after a crash at any point `path` holds either its previous
/// contents or the complete new contents, never a torn mix. The temp file
/// (`path` + ".tmp") may survive a crash; writers of a directory should
/// garbage-collect "*.tmp" entries. On a failed rename the temp file is
/// deleted; if that cleanup itself fails the returned status reports both
/// errors (the stray temp file is left for directory GC).
Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents);

}  // namespace sinew

#endif  // SINEW_COMMON_ENV_H_
