#include "common/fault_env.h"

#include <algorithm>

namespace sinew {

namespace {

Status SimulatedCrash() {
  return Status::IOError("simulated crash: I/O cut off by FaultInjectionEnv");
}

}  // namespace

/// Wraps the underlying file so Append/Sync/Close go through the fault
/// machinery. On crash the descriptor is released by the destructor; Close
/// still reports the crash so callers cannot mistake the file for durable.
///
/// In sync-buffered mode (CrashAfterSyncs armed when the file was opened)
/// appends land in `buffer_` — the simulated OS page cache — and only reach
/// the base file when Sync() flushes them, so a crash drops everything not
/// yet fsynced. A clean Close() also flushes (a live OS writes its cache
/// back eventually); only a crash loses the buffer.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::unique_ptr<WritableFile> base,
                    bool buffered)
      : env_(env), base_(std::move(base)), buffered_(buffered) {}

  Status Append(std::string_view data) override {
    int64_t allowed = 0;
    bool short_write = false;
    {
      std::lock_guard lock(env_->mutex_);
      RETURN_NOT_OK(env_->BeginOpLocked());
      if (env_->fail_writes_) {
        return Status::IOError("injected write error");
      }
      allowed = static_cast<int64_t>(data.size());
      if (env_->short_append_ >= 0) {
        allowed = std::min(allowed, env_->short_append_);
        env_->short_append_ = -1;
        short_write = allowed < static_cast<int64_t>(data.size());
      } else if (env_->bytes_until_crash_ >= 0) {
        if (allowed > env_->bytes_until_crash_) {
          allowed = env_->bytes_until_crash_;
          env_->bytes_until_crash_ = 0;
          env_->crashed_ = true;
        } else {
          env_->bytes_until_crash_ -= allowed;
        }
      }
    }
    // The surviving prefix really reaches the base file (or, in buffered
    // mode, the in-memory cache): this is the torn tail a crash leaves.
    std::string_view prefix = data.substr(0, static_cast<size_t>(allowed));
    Status st;
    if (buffered_) {
      buffer_.append(prefix.data(), prefix.size());
      st = Status::OK();
    } else {
      st = base_->Append(prefix);
    }
    {
      std::lock_guard lock(env_->mutex_);
      if (st.ok()) env_->bytes_appended_ += allowed;
      if (env_->crashed_) return SimulatedCrash();
    }
    if (short_write) {
      return Status::IOError("injected short write (", allowed, " of ",
                             data.size(), " bytes)");
    }
    return st;
  }

  Status Sync() override {
    {
      std::lock_guard lock(env_->mutex_);
      RETURN_NOT_OK(env_->BeginOpLocked());
      if (env_->fail_syncs_) return Status::IOError("injected sync error");
    }
    RETURN_NOT_OK(FlushBuffer());
    RETURN_NOT_OK(base_->Sync());
    {
      std::lock_guard lock(env_->mutex_);
      ++env_->syncs_completed_;
      if (env_->syncs_until_crash_ > 0 && --env_->syncs_until_crash_ == 0) {
        // The n-th sync itself completed — its bytes are durable — but the
        // machine dies right after: later ops fail, unsynced buffers drop.
        env_->crashed_ = true;
      }
    }
    return Status::OK();
  }

  Status Close() override {
    {
      std::lock_guard lock(env_->mutex_);
      // A crashed close drops the buffered cache — BeginOpLocked errors.
      RETURN_NOT_OK(env_->BeginOpLocked());
    }
    RETURN_NOT_OK(FlushBuffer());
    return base_->Close();
  }

 private:
  /// Writes the simulated page cache through to the base file.
  Status FlushBuffer() {
    if (!buffered_ || buffer_.empty()) return Status::OK();
    Status st = base_->Append(buffer_);
    if (st.ok()) buffer_.clear();
    return st;
  }

  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
  const bool buffered_;
  std::string buffer_;  // appended-but-not-fsynced bytes (buffered mode)
};

Status FaultInjectionEnv::BeginOpLocked() {
  if (crashed_) return SimulatedCrash();
  if (ops_until_crash_ == 0 || syncs_until_crash_ == 0) {
    crashed_ = true;
    return SimulatedCrash();
  }
  if (ops_until_crash_ > 0) --ops_until_crash_;
  ++ops_issued_;
  return Status::OK();
}

Status FaultInjectionEnv::BeginOp() {
  std::lock_guard lock(mutex_);
  return BeginOpLocked();
}

void FaultInjectionEnv::FailWrites(bool on) {
  std::lock_guard lock(mutex_);
  fail_writes_ = on;
}

void FaultInjectionEnv::FailSyncs(bool on) {
  std::lock_guard lock(mutex_);
  fail_syncs_ = on;
}

void FaultInjectionEnv::FailRenames(bool on) {
  std::lock_guard lock(mutex_);
  fail_renames_ = on;
}

void FaultInjectionEnv::LimitNextAppend(int64_t n) {
  std::lock_guard lock(mutex_);
  short_append_ = n;
}

void FaultInjectionEnv::CrashAfterOps(int64_t n) {
  std::lock_guard lock(mutex_);
  ops_until_crash_ = n;
}

void FaultInjectionEnv::CrashAfterBytes(int64_t n) {
  std::lock_guard lock(mutex_);
  bytes_until_crash_ = n;
}

void FaultInjectionEnv::CrashAfterSyncs(int64_t n) {
  std::lock_guard lock(mutex_);
  syncs_until_crash_ = n;
  sync_buffer_mode_ = n >= 0;
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard lock(mutex_);
  fail_writes_ = fail_syncs_ = fail_renames_ = false;
  crashed_ = false;
  short_append_ = ops_until_crash_ = bytes_until_crash_ = -1;
  syncs_until_crash_ = -1;
  sync_buffer_mode_ = false;
  ops_issued_ = 0;
  bytes_appended_ = 0;
  syncs_completed_ = 0;
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard lock(mutex_);
  return crashed_;
}

int64_t FaultInjectionEnv::ops_issued() const {
  std::lock_guard lock(mutex_);
  return ops_issued_;
}

int64_t FaultInjectionEnv::bytes_appended() const {
  std::lock_guard lock(mutex_);
  return bytes_appended_;
}

int64_t FaultInjectionEnv::syncs_completed() const {
  std::lock_guard lock(mutex_);
  return syncs_completed_;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  bool buffered;
  {
    std::lock_guard lock(mutex_);
    RETURN_NOT_OK(BeginOpLocked());
    buffered = sync_buffer_mode_;
  }
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                   base_->NewWritableFile(path));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, std::move(base), buffered));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  RETURN_NOT_OK(BeginOp());
  return base_->ReadFileToString(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  {
    std::lock_guard lock(mutex_);
    RETURN_NOT_OK(BeginOpLocked());
    if (fail_renames_) return Status::IOError("injected rename error");
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  RETURN_NOT_OK(BeginOp());
  return base_->DeleteFile(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  RETURN_NOT_OK(BeginOp());
  return base_->CreateDirs(path);
}

Status FaultInjectionEnv::RemoveAll(const std::string& path) {
  RETURN_NOT_OK(BeginOp());
  return base_->RemoveAll(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  RETURN_NOT_OK(BeginOp());
  return base_->ListDir(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  // Existence probes are free: a crashed process cannot "fail" to stat, and
  // counting them would make sweep offsets depend on read-only control flow.
  return base_->FileExists(path);
}

}  // namespace sinew
