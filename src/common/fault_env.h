// FaultInjectionEnv: an Env decorator that injects I/O failures and hard
// crash cut-offs, used to verify crash safety of the persistence layer.
//
// Fault model:
//  - Error injection: FailWrites/FailSyncs/FailRenames make the matching
//    operations return IOError without touching the filesystem.
//  - Short writes: LimitNextAppend(n) makes the next Append persist only its
//    first n bytes and then report an error (a torn write).
//  - Crash cut-offs: CrashAfterOps(n) / CrashAfterBytes(n) simulate the
//    process dying mid-save. Every Env call counts as one op; once n ops have
//    completed (or n appended bytes have been written) the env enters the
//    crashed state: the op that hits the byte limit persists only the bytes
//    before the cut (a torn tail) and every subsequent call fails with
//    "simulated crash".
//  - Sync cut-offs: CrashAfterSyncs(n) simulates a *power* failure rather
//    than a process death. It switches writable files into sync-buffered
//    mode (appends accumulate in memory — the "OS page cache" — and only
//    reach the underlying file when Sync() flushes them); after the n-th
//    successful Sync() the env crashes and every unsynced buffer is dropped.
//    This is how sweeps distinguish "buffered but not fsynced" (lost) from
//    "durable" (survives): the ops/bytes modes write through, so data a real
//    power cut would lose still lands on disk there.
//
// Because the env writes through to the real filesystem, the on-disk state
// after a crash IS the post-crash view: whatever was appended before the
// cut-off survives, everything after never happened. A test "reboots" by
// reading the directory with a fresh env (or after ClearFaults()).
//
// Counters (ops_issued / bytes_appended) from a clean run bound the sweep:
// for every i in [0, ops_issued] a CrashAfterOps(i) run must leave a
// recoverable directory.

#ifndef SINEW_COMMON_FAULT_ENV_H_
#define SINEW_COMMON_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/env.h"

namespace sinew {

class FaultInjectionEnv final : public Env {
 public:
  /// Wraps `base` (not owned); pass Env::Default() for real files.
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // --- fault controls ---
  void FailWrites(bool on);
  void FailSyncs(bool on);
  void FailRenames(bool on);
  /// The next Append persists only its first `n` bytes, then errors.
  void LimitNextAppend(int64_t n);
  /// Crash once `n` further Env calls have completed (-1 disables).
  void CrashAfterOps(int64_t n);
  /// Crash once `n` further bytes have been appended (-1 disables).
  void CrashAfterBytes(int64_t n);
  /// Power-failure mode: files opened after this call buffer appends until
  /// Sync(); the env crashes once `n` further Sync() calls have completed
  /// (the n-th sync IS durable; n = 0 crashes on the next op) and unsynced
  /// buffers never reach the underlying filesystem. -1 disables and returns
  /// to write-through mode for new files.
  void CrashAfterSyncs(int64_t n);
  /// Clears all faults and the crashed state (the "reboot").
  void ClearFaults();

  bool crashed() const;
  /// Total Env calls issued since construction/ClearFaults.
  int64_t ops_issued() const;
  /// Total bytes successfully appended since construction/ClearFaults.
  int64_t bytes_appended() const;
  /// Total successful WritableFile::Sync() calls since construction/
  /// ClearFaults (sizes CrashAfterSyncs sweeps, like ops_issued for ops).
  int64_t syncs_completed() const;

  // --- Env ---
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveAll(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  bool FileExists(const std::string& path) override;

 private:
  friend class FaultWritableFile;

  /// Accounts one op; returns the crash error if the env is (or just became)
  /// crashed, in which case the op must not run.
  Status BeginOp();
  Status BeginOpLocked();  // requires mutex_ held

  Env* base_;
  mutable std::mutex mutex_;
  bool fail_writes_ = false;
  bool fail_syncs_ = false;
  bool fail_renames_ = false;
  bool crashed_ = false;
  int64_t short_append_ = -1;      // -1 = off
  int64_t ops_until_crash_ = -1;   // -1 = off
  int64_t bytes_until_crash_ = -1;  // -1 = off
  int64_t syncs_until_crash_ = -1;  // -1 = off
  bool sync_buffer_mode_ = false;   // armed by CrashAfterSyncs
  int64_t ops_issued_ = 0;
  int64_t bytes_appended_ = 0;
  int64_t syncs_completed_ = 0;
};

}  // namespace sinew

#endif  // SINEW_COMMON_FAULT_ENV_H_
