#include "common/image_io.h"

#include "common/bytes.h"
#include "common/crc32c.h"

namespace sinew {

void AppendImageFooter(std::string* image) {
  uint64_t len = image->size();
  uint32_t crc = crc32c::Mask(crc32c::Value(*image));
  BufferWriter w;
  w.PutU64(len);
  w.PutU32(crc);
  w.PutU32(kImageFooterMagic);
  image->append(w.buffer());
}

Result<std::string_view> VerifyImageFooter(std::string_view file_bytes) {
  if (file_bytes.size() < kImageFooterSize) {
    return Status::IOError("image too short for footer (", file_bytes.size(),
                           " bytes)");
  }
  BufferReader r(file_bytes.substr(file_bytes.size() - kImageFooterSize));
  ASSIGN_OR_RETURN(uint64_t len, r.ReadU64());
  ASSIGN_OR_RETURN(uint32_t stored_crc, r.ReadU32());
  ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kImageFooterMagic) {
    return Status::IOError("bad image footer magic");
  }
  if (len != file_bytes.size() - kImageFooterSize) {
    return Status::IOError("image length mismatch: footer says ", len,
                           ", file holds ",
                           file_bytes.size() - kImageFooterSize);
  }
  std::string_view payload = file_bytes.substr(0, len);
  uint32_t actual = crc32c::Value(payload);
  if (crc32c::Unmask(stored_crc) != actual) {
    return Status::IOError("image checksum mismatch (corrupt or torn write)");
  }
  return payload;
}

Status WriteImageFile(Env* env, const std::string& path, std::string payload) {
  AppendImageFooter(&payload);
  return AtomicWriteFile(env, path, payload);
}

Result<std::string> ReadImageFile(Env* env, const std::string& path) {
  ASSIGN_OR_RETURN(std::string file_bytes, env->ReadFileToString(path));
  auto payload = VerifyImageFooter(file_bytes);
  if (!payload.ok()) {
    return Status::IOError("cannot load image ", path, ": ",
                           payload.status().message());
  }
  file_bytes.resize(payload->size());
  return file_bytes;
}

}  // namespace sinew
