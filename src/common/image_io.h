// Checksummed image files: every persisted image (table image, catalog
// image, MANIFEST) carries a fixed 16-byte footer that load verifies before
// any byte of the payload is parsed, so torn writes and bit flips surface as
// a clean IOError instead of garbage state.
//
// File layout:
//   payload bytes | u64 payload length | u32 masked CRC32C(payload) |
//   u32 footer magic "SINF"
//
// The length field catches truncation/extension, the CRC catches
// corruption, and the trailing magic distinguishes "not an image file at
// all" from "damaged image". All fields are little-endian (BufferWriter
// convention).

#ifndef SINEW_COMMON_IMAGE_IO_H_
#define SINEW_COMMON_IMAGE_IO_H_

#include <string>
#include <string_view>

#include "common/env.h"
#include "common/result.h"

namespace sinew {

inline constexpr size_t kImageFooterSize = 16;
inline constexpr uint32_t kImageFooterMagic = 0x464e4953;  // "SINF"

/// Appends the footer to `image` in place.
void AppendImageFooter(std::string* image);

/// Verifies the footer and returns the payload view (into `file_bytes`).
Result<std::string_view> VerifyImageFooter(std::string_view file_bytes);

/// Appends the footer to `payload` and writes it to `path` atomically
/// (AtomicWriteFile: temp file + fsync + rename).
Status WriteImageFile(Env* env, const std::string& path, std::string payload);

/// Reads `path`, verifies the footer and returns the payload.
Result<std::string> ReadImageFile(Env* env, const std::string& path);

}  // namespace sinew

#endif  // SINEW_COMMON_IMAGE_IO_H_
