#include "common/metrics.h"

#if !defined(SINEW_METRICS_DISABLED)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace sinew::metrics {

namespace {

/// JSON string escaping for metric names and trace details.
void AppendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

namespace internal {

uint64_t NextId() {
  // 0 is the "unset" sentinel, so the first allocated ID is 1.
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

SpanIds* TlsSpan() {
  thread_local SpanIds current;
  return &current;
}

uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

SpanIds BeginSpan(TraceEvent* event) {
  SpanIds* tls = TlsSpan();
  const SpanIds saved = *tls;
  event->trace_id = saved.trace_id != 0 ? saved.trace_id : NextId();
  event->parent_span_id = saved.span_id;
  event->span_id = NextId();
  event->tid = CurrentTid();
  *tls = SpanIds{event->trace_id, event->span_id};
  return saved;
}

void EndSpan(const SpanIds& saved) { *TlsSpan() = saved; }

}  // namespace internal

uint64_t Histogram::ApproxQuantile(double p) const {
  uint64_t total = count();
  if (total == 0) return 0;
  uint64_t target = static_cast<uint64_t>(std::ceil(p * total));
  target = std::max<uint64_t>(1, std::min(target, total));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Bucket i holds values with bit_width == i, upper bound 2^i - 1.
      return i == 0 ? 0 : (uint64_t{1} << std::min<size_t>(i, 63)) - 1;
    }
  }
  return sum();  // racing Reset(); any answer is fine
}

double Histogram::QuantileInterpolated(double p) const {
  uint64_t total = count();
  if (total == 0) return 0;
  double target = p * static_cast<double>(total);
  target = std::max(1.0, std::min(target, static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(seen + in_bucket) >= target && in_bucket > 0) {
      if (i == 0) return 0;  // bucket 0 holds only the value 0
      // Bucket i covers [2^(i-1), 2^i); place the quantile by its rank
      // position inside the bucket, assuming a uniform spread.
      const double lower =
          static_cast<double>(uint64_t{1} << std::min<size_t>(i - 1, 62));
      const double upper = 2.0 * lower;
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
    }
    seen += in_bucket;
  }
  return static_cast<double>(sum());  // racing Reset(); any answer is fine
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(kBuckets);
  for (size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::vector<Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  std::lock_guard lock(mu_);
  out.reserve(counters_.size() + gauges_.size() + 5 * histograms_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back(Sample{name, "counter", static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back(Sample{name, "gauge", static_cast<double>(g->value())});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back(
        Sample{name + ".count", "histogram", static_cast<double>(h->count())});
    out.push_back(
        Sample{name + ".sum_ns", "histogram", static_cast<double>(h->sum())});
    out.push_back(Sample{name + ".p50_ns", "histogram",
                         h->QuantileInterpolated(0.5)});
    out.push_back(Sample{name + ".p95_ns", "histogram",
                         h->QuantileInterpolated(0.95)});
    out.push_back(Sample{name + ".p99_ns", "histogram",
                         h->QuantileInterpolated(0.99)});
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::ostringstream out;
  std::lock_guard lock(mu_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": " << c->value();
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": " << g->value();
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(out, name);
    out << ": {\"count\": " << h->count() << ", \"sum_ns\": " << h->sum()
        << ", \"p50_ns\": " << h->QuantileInterpolated(0.5)
        << ", \"p95_ns\": " << h->QuantileInterpolated(0.95)
        << ", \"p99_ns\": " << h->QuantileInterpolated(0.99) << "}";
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"trace\": [";
  first = true;
  // Oldest-first walk of the ring.
  const size_t n = trace_.size();
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& e =
        trace_[n < kTraceCapacity ? i : (trace_next_ + i) % n];
    out << (first ? "\n    " : ",\n    ");
    first = false;
    out << "{\"name\": ";
    AppendJsonString(out, e.name);
    out << ", \"detail\": ";
    AppendJsonString(out, e.detail);
    out << ", \"start_ns\": " << e.start_ns
        << ", \"duration_ns\": " << e.duration_ns << ", \"rows\": " << e.rows
        << "}";
  }
  out << (first ? "],\n" : "\n  ],\n");
  out << "  \"trace_dropped\": " << trace_dropped_ << "\n}";
  return out.str();
}

void MetricsRegistry::AddTrace(TraceEvent event) {
  std::lock_guard lock(mu_);
  if (trace_.size() < kTraceCapacity) {
    trace_.push_back(std::move(event));
  } else {
    trace_[trace_next_] = std::move(event);
    trace_next_ = (trace_next_ + 1) % kTraceCapacity;
    ++trace_dropped_;
  }
}

std::vector<TraceEvent> MetricsRegistry::TraceEvents() const {
  std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(trace_.size());
  const size_t n = trace_.size();
  for (size_t i = 0; i < n; ++i) {
    out.push_back(trace_[n < kTraceCapacity ? i : (trace_next_ + i) % n]);
  }
  return out;
}

void MetricsRegistry::AddSpan(TraceEvent event) {
  std::lock_guard lock(mu_);
  if (spans_.size() < kSpanCapacity) {
    spans_.push_back(std::move(event));
  } else {
    spans_[spans_next_] = std::move(event);
    spans_next_ = (spans_next_ + 1) % kSpanCapacity;
    ++spans_dropped_;
  }
}

std::vector<TraceEvent> MetricsRegistry::SpanEvents() const {
  std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(spans_.size());
  const size_t n = spans_.size();
  for (size_t i = 0; i < n; ++i) {
    out.push_back(spans_[n < kSpanCapacity ? i : (spans_next_ + i) % n]);
  }
  return out;
}

std::string MetricsRegistry::DumpChromeTrace() const {
  std::vector<TraceEvent> spans = SpanEvents();
  // Rebase timestamps to the earliest span: the viewer only needs relative
  // time, and absolute steady-clock nanoseconds overflow the default stream
  // precision (every ts would round to the same value).
  uint64_t base_ns = 0;
  for (const TraceEvent& e : spans) {
    if (base_ns == 0 || e.start_ns < base_ns) base_ns = e.start_ns;
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : spans) {
    out << (first ? "\n" : ",\n") << "  {\"name\": ";
    first = false;
    AppendJsonString(out, e.name);
    // Complete ("X") events in microseconds, the trace-event format's unit.
    out << ", \"cat\": \"sinew\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << e.tid << ", \"ts\": "
        << static_cast<double>(e.start_ns - base_ns) / 1e3
        << ", \"dur\": " << static_cast<double>(e.duration_ns) / 1e3
        << ", \"args\": {\"trace_id\": " << e.trace_id
        << ", \"span_id\": " << e.span_id
        << ", \"parent_span_id\": " << e.parent_span_id
        << ", \"rows\": " << e.rows << ", \"detail\": ";
    AppendJsonString(out, e.detail);
    out << "}}";
  }
  out << (first ? "]}\n" : "\n]}\n");
  return out.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  trace_.clear();
  trace_next_ = 0;
  trace_dropped_ = 0;
  spans_.clear();
  spans_next_ = 0;
  spans_dropped_ = 0;
}

MetricsRegistry* MetricsRegistry::Global() {
  // Immortal: instrumentation in static destructors must stay safe.
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace sinew::metrics

#else  // SINEW_METRICS_DISABLED

namespace sinew::metrics {

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace sinew::metrics

#endif  // SINEW_METRICS_DISABLED
