// Process-wide observability: lock-cheap counters, gauges and fixed-bucket
// latency histograms in a named registry, plus a lightweight trace layer.
//
// All metric updates are single relaxed atomic operations — safe (and cheap)
// to call from Gather workers, the shared thread pool and background
// maintenance concurrently. Registration (first lookup of a name) takes a
// mutex; hot paths cache the returned pointer, which stays valid for the
// process lifetime.
//
// Naming scheme: `<layer>.<component>.<what>[_<unit>]`, monotonic counters
// end in `_total`, accumulated wall-clock counters in `_ns_total`. Examples:
// `exec.gather.morsels_total`, `rewriter.virtual_refs_total`,
// `threadpool.busy_ns_total`.
//
// Surfaced three ways:
//  - `SELECT * FROM sinew_metrics` (engine/database.cc): Snapshot() rows
//    (name, type, value), so observability composes with the engine's SQL;
//  - `EXPLAIN ANALYZE` (engine/exec.h PlanStats): per-operator actuals,
//    independent of this registry;
//  - DumpJson(): machine-readable sidecar for benches (--metrics-out).
//
// Compile-out: configure with -DSINEW_METRICS=OFF to define
// SINEW_METRICS_DISABLED; every class keeps its API but all operations
// become no-ops, so instrumented call sites build unchanged.

#ifndef SINEW_COMMON_METRICS_H_
#define SINEW_COMMON_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sinew::metrics {

/// Monotonic wall clock in nanoseconds (steady; only differences matter).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One (name, type, value) row of the registry, the sinew_metrics schema.
/// Histograms expand into `<name>.count`, `<name>.sum_ns`, `<name>.p50_ns`
/// and `<name>.p99_ns` samples.
struct Sample {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram"
  double value = 0;
};

/// One trace event: a completed span (begin/end wall clock) or an audit
/// record (e.g. a materializer promotion decision, duration 0).
struct TraceEvent {
  std::string name;
  std::string detail;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t rows = 0;
  /// Structured span identity. Spans (TraceContext::Span, ScopedSpan) stamp
  /// all four from the thread-local span stack; audit records appended via
  /// AddTrace may leave them 0. trace_id groups every span of one logical
  /// operation (a query, a flush); parent_span_id = 0 marks a root span.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint32_t tid = 0;  // small per-thread ordinal, stable for the thread's life
};

/// The (trace, span) pair identifying the span currently open on a thread.
/// Captured on one thread and adopted on another (SpanIdScope), it stitches
/// cross-thread work — Gather workers, pool-run background passes — into the
/// trace of the operation that spawned it.
struct SpanIds {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

#if !defined(SINEW_METRICS_DISABLED)

namespace internal {
/// Process-unique span/trace ID allocator (never returns 0).
uint64_t NextId();
/// The thread's current span (the parent of any span started here).
SpanIds* TlsSpan();
/// Small stable per-thread ordinal for trace display.
uint32_t CurrentTid();
/// Stamps trace/span/parent/tid onto `event` from the thread-local span
/// stack (allocating a fresh trace ID when none is open), installs the new
/// span as current, and returns the previous value for EndSpan to restore.
SpanIds BeginSpan(TraceEvent* event);
void EndSpan(const SpanIds& saved);
}  // namespace internal

/// The span IDs a child thread should adopt to join this thread's trace.
inline SpanIds CurrentSpanIds() { return *internal::TlsSpan(); }

/// RAII adoption of a parent span captured on another thread: spans started
/// inside the scope parent to it (and share its trace ID). Restores the
/// thread's previous span state on destruction.
class SpanIdScope {
 public:
  explicit SpanIdScope(SpanIds parent) : prev_(*internal::TlsSpan()) {
    *internal::TlsSpan() = parent;
  }
  SpanIdScope(const SpanIdScope&) = delete;
  SpanIdScope& operator=(const SpanIdScope&) = delete;
  ~SpanIdScope() { *internal::TlsSpan() = prev_; }

 private:
  SpanIds prev_;
};

class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed power-of-two buckets: bucket i counts observations v with
/// bit_width(v) == i, i.e. v in [2^(i-1), 2^i). 48 buckets cover ~39 hours
/// in nanoseconds. Quantiles are bucket upper bounds (factor-of-2 accuracy —
/// enough to tell a 10us operator from a 10ms one).
class Histogram {
 public:
  static constexpr size_t kBuckets = 48;

  void Observe(uint64_t v) {
    size_t idx = std::min<size_t>(kBuckets - 1, std::bit_width(v));
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// `n` observations of the same value in three atomic adds instead of 3n —
  /// how batch-granularity call sites (one value per batch lane) report.
  void ObserveN(uint64_t v, uint64_t n) {
    if (n == 0) return;
    size_t idx = std::min<size_t>(kBuckets - 1, std::bit_width(v));
    buckets_[idx].fetch_add(n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
    sum_.fetch_add(v * n, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Upper bound of the bucket holding the p-quantile (0 < p <= 1).
  uint64_t ApproxQuantile(double p) const;
  /// Like ApproxQuantile but linearly interpolated inside the bucket's
  /// [2^(i-1), 2^i) range by the quantile's rank position, so reported
  /// percentiles move smoothly instead of jumping between powers of two.
  double QuantileInterpolated(double p) const;
  /// Per-bucket counts (index = bit width of the observed value).
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

class MetricsRegistry {
 public:
  /// Finds or creates the named metric. The pointer is stable for the
  /// process lifetime — cache it on hot paths.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// All metrics as (name, type, value) rows, sorted by name.
  std::vector<Sample> Snapshot() const;
  /// Machine-readable dump: counters/gauges/histograms plus the trace ring.
  std::string DumpJson() const;

  /// Appends to the bounded audit ring (last kTraceCapacity events).
  void AddTrace(TraceEvent event);
  std::vector<TraceEvent> TraceEvents() const;

  /// Appends a completed span to the bounded span ring — larger than the
  /// audit ring so a whole bench run's worth of query/worker/background
  /// spans survives for export. Spans record here on End().
  void AddSpan(TraceEvent event);
  std::vector<TraceEvent> SpanEvents() const;

  /// The span ring as Chrome trace-event JSON ({"traceEvents": [...]}),
  /// loadable directly in Perfetto / chrome://tracing. Span identity rides
  /// in each event's args (trace_id / span_id / parent_span_id).
  std::string DumpChromeTrace() const;

  /// Zeroes every registered metric and clears the trace ring. Metric
  /// pointers stay valid (tests reset between queries without re-fetching).
  void Reset();

  /// The process-wide registry all instrumentation reports to.
  static MetricsRegistry* Global();

 private:
  static constexpr size_t kTraceCapacity = 256;
  static constexpr size_t kSpanCapacity = 4096;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<TraceEvent> trace_;  // ring; trace_next_ is the write cursor
  size_t trace_next_ = 0;
  uint64_t trace_dropped_ = 0;
  std::vector<TraceEvent> spans_;  // ring; spans_next_ is the write cursor
  size_t spans_next_ = 0;
  uint64_t spans_dropped_ = 0;
};

/// Standalone RAII span recording straight into the global span ring —
/// for work that has no TraceContext at hand (Gather workers, DurableDb
/// flushes, shredder/materializer passes). Stamps trace/span/parent IDs
/// from the thread-local span stack exactly like TraceContext::Span, so a
/// ScopedSpan opened under an adopted SpanIdScope parents correctly into
/// the originating query's trace. Spans must end LIFO per thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, std::string detail = "")
      : start_ns_(NowNanos()) {
    event_.name = std::move(name);
    event_.detail = std::move(detail);
    event_.start_ns = start_ns_;
    saved_ = internal::BeginSpan(&event_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  void SetRows(uint64_t rows) { event_.rows = rows; }
  void SetDetail(std::string detail) { event_.detail = std::move(detail); }
  void End() {
    if (done_) return;
    done_ = true;
    event_.duration_ns = NowNanos() - start_ns_;
    internal::EndSpan(saved_);
    MetricsRegistry::Global()->AddSpan(std::move(event_));
  }

 private:
  bool done_ = false;
  SpanIds saved_;
  uint64_t start_ns_;
  TraceEvent event_;
};

/// Per-query trace context: spans with begin/end wall clock and row counts.
/// Gather workers do not carry the context itself — per-operator actuals
/// flow through the shared atomic PlanStats (engine/exec.h) instead; the
/// context records the query-level phases (rewrite, plan, execute). Spans
/// carry trace/span/parent IDs from the thread-local span stack (nested
/// spans parent to the enclosing one; workers adopt via SpanIdScope), and
/// every recorded span is also forwarded to the global span ring so
/// DumpChromeTrace() sees query phases next to worker/background spans.
/// Spans must end LIFO per thread.
class TraceContext {
 public:
  /// RAII span: records on destruction (or explicit End()).
  class Span {
   public:
    Span(TraceContext* ctx, std::string name)
        : ctx_(ctx), start_ns_(NowNanos()) {
      event_.name = std::move(name);
      event_.start_ns = start_ns_;
      saved_ = internal::BeginSpan(&event_);
    }
    Span(Span&& other) noexcept
        : ctx_(std::exchange(other.ctx_, nullptr)),
          start_ns_(other.start_ns_),
          saved_(other.saved_),
          event_(std::move(other.event_)) {}
    Span& operator=(Span&&) = delete;
    ~Span() { End(); }

    void SetRows(uint64_t rows) { event_.rows = rows; }
    void SetDetail(std::string detail) { event_.detail = std::move(detail); }
    /// The IDs under which this span is current (for handing to workers).
    SpanIds ids() const { return SpanIds{event_.trace_id, event_.span_id}; }
    void End() {
      if (ctx_ == nullptr) return;
      event_.duration_ns = NowNanos() - start_ns_;
      internal::EndSpan(saved_);
      std::exchange(ctx_, nullptr)->Record(std::move(event_));
    }

   private:
    TraceContext* ctx_;
    uint64_t start_ns_;
    SpanIds saved_;
    TraceEvent event_;
  };

  Span StartSpan(std::string name) { return Span(this, std::move(name)); }
  void Record(TraceEvent event) {
    MetricsRegistry::Global()->AddSpan(event);
    std::lock_guard lock(mu_);
    events_.push_back(std::move(event));
  }
  std::vector<TraceEvent> events() const {
    std::lock_guard lock(mu_);
    return events_;
  }
  void Clear() {
    std::lock_guard lock(mu_);
    events_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

#else  // SINEW_METRICS_DISABLED: same API, every operation a no-op.

inline SpanIds CurrentSpanIds() { return SpanIds{}; }

class SpanIdScope {
 public:
  explicit SpanIdScope(SpanIds) {}
  SpanIdScope(const SpanIdScope&) = delete;
  SpanIdScope& operator=(const SpanIdScope&) = delete;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string, std::string = "") {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void SetRows(uint64_t) {}
  void SetDetail(std::string) {}
  void End() {}
};

class Counter {
 public:
  void Add(uint64_t) {}
  void Increment() {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  void Sub(int64_t) {}
  int64_t value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  static constexpr size_t kBuckets = 48;
  void Observe(uint64_t) {}
  void ObserveN(uint64_t, uint64_t) {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  uint64_t ApproxQuantile(double) const { return 0; }
  double QuantileInterpolated(double) const { return 0; }
  std::vector<uint64_t> BucketCounts() const { return {}; }
  void Reset() {}
};

class MetricsRegistry {
 public:
  Counter* counter(std::string_view) { return &counter_; }
  Gauge* gauge(std::string_view) { return &gauge_; }
  Histogram* histogram(std::string_view) { return &histogram_; }
  std::vector<Sample> Snapshot() const { return {}; }
  std::string DumpJson() const { return "{}"; }
  void AddTrace(TraceEvent) {}
  std::vector<TraceEvent> TraceEvents() const { return {}; }
  void AddSpan(TraceEvent) {}
  std::vector<TraceEvent> SpanEvents() const { return {}; }
  std::string DumpChromeTrace() const { return "{\"traceEvents\": []}\n"; }
  void Reset() {}
  static MetricsRegistry* Global();

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

class TraceContext {
 public:
  class Span {
   public:
    Span(TraceContext*, std::string) {}
    Span(Span&&) noexcept = default;
    Span& operator=(Span&&) = delete;
    void SetRows(uint64_t) {}
    void SetDetail(std::string) {}
    SpanIds ids() const { return SpanIds{}; }
    void End() {}
  };
  Span StartSpan(std::string name) { return Span(this, std::move(name)); }
  void Record(TraceEvent) {}
  std::vector<TraceEvent> events() const { return {}; }
  void Clear() {}
};

#endif  // SINEW_METRICS_DISABLED

/// Conveniences over the global registry.
inline Counter* GetCounter(std::string_view name) {
  return MetricsRegistry::Global()->counter(name);
}
inline Gauge* GetGauge(std::string_view name) {
  return MetricsRegistry::Global()->gauge(name);
}
inline Histogram* GetHistogram(std::string_view name) {
  return MetricsRegistry::Global()->histogram(name);
}

}  // namespace sinew::metrics

#endif  // SINEW_COMMON_METRICS_H_
