#include "common/query_log.h"

#include <cctype>

namespace sinew::qlog {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsNumberStart(char c, char prev_significant) {
  if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  // A digit continuing an identifier (t2, col_3) is not a literal.
  return !IsIdentChar(prev_significant);
}

}  // namespace

std::string NormalizeFingerprint(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  char prev = '\0';  // last significant (non-space) char emitted
  bool pending_space = false;
  auto emit = [&](char c) {
    if (pending_space) {
      // Collapse runs of whitespace to one space, and drop it entirely at
      // token boundaries where it carries no meaning ("a , b" == "a,b").
      if (!out.empty() && (IsIdentChar(prev) || prev == '?') &&
          (IsIdentChar(c) || c == '?')) {
        out.push_back(' ');
      }
      pending_space = false;
    }
    out.push_back(c);
    prev = c;
  };
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = true;
      ++i;
      continue;
    }
    if (c == '\'' || c == '"') {
      // Quoted literal (or quoted identifier — normalizing both to '?' errs
      // toward merging, which is what a workload fingerprint wants for
      // values; doubled quotes escape).
      const char quote = c;
      ++i;
      while (i < sql.size()) {
        if (sql[i] == quote) {
          if (i + 1 < sql.size() && sql[i + 1] == quote) {
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
      emit('?');
      continue;
    }
    // Whitespace is a token break: in "LIMIT 10" the digit starts a literal
    // even though the last significant char is an identifier's.
    if (IsNumberStart(c, pending_space ? ' ' : prev)) {
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) != 0 ||
              sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
              ((sql[i] == '+' || sql[i] == '-') &&
               (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        ++i;
      }
      // A preceding unary minus folds into the literal: "x > -5" and
      // "x > 7" must share a fingerprint.
      if (prev == '-' && !out.empty() && out.back() == '-' &&
          (out.size() < 2 || !IsIdentChar(out[out.size() - 2]))) {
        out.pop_back();
        prev = out.empty() ? '\0' : out.back();
      }
      emit('?');
      continue;
    }
    emit(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
    ++i;
  }
  // Trailing statement terminator is noise.
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

uint64_t HashFingerprint(std::string_view fingerprint) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (char c : fingerprint) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

#if !defined(SINEW_METRICS_DISABLED)

void QueryLog::Append(QueryRecord record) {
  std::lock_guard lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else if (capacity_ > 0) {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  } else {
    ++dropped_;
  }
}

std::vector<QueryRecord> QueryLog::Records() const {
  std::lock_guard lock(mu_);
  std::vector<QueryRecord> out;
  out.reserve(ring_.size());
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[n < capacity_ ? i : (next_ + i) % n]);
  }
  return out;
}

uint64_t QueryLog::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void QueryLog::SetCapacity(size_t capacity) {
  std::lock_guard lock(mu_);
  capacity_ = capacity;
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

void QueryLog::Clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

#endif  // !SINEW_METRICS_DISABLED

QueryLog* QueryLog::Global() {
  // Immortal, like MetricsRegistry::Global(): safe from static destructors.
  static QueryLog* log = new QueryLog();
  return log;
}

}  // namespace sinew::qlog
