// Workload telemetry: a bounded ring of per-query records, the signal the
// workload-adaptive materializer (ROADMAP item 3) and any external tooling
// read to learn what the workload actually does.
//
// Each record carries a literal-normalized statement fingerprint (so
// parameter-varied statements collapse onto one workload class), a plan
// hash, the parse/plan/exec timing breakdown, cardinality actuals (rows
// in/out, batches, zone skips), the replan-retry count and the final
// status. SinewDb::Query appends one record per call; the engine surfaces
// the ring as the queryable `sinew_query_log` system table next to
// `sinew_metrics` (engine/database.cc).
//
// Compile-out: under SINEW_METRICS_DISABLED the ring keeps its API but
// stores nothing (the system table plans against an empty relation).
// NormalizeFingerprint/HashFingerprint are pure string functions with no
// retained state and stay live in every build.

#ifndef SINEW_COMMON_QUERY_LOG_H_
#define SINEW_COMMON_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sinew::qlog {

/// One executed statement, as remembered by the query log.
struct QueryRecord {
  uint64_t ordinal = 0;        // global query sequence number (from 1)
  std::string fingerprint;     // NormalizeFingerprint(sql)
  uint64_t fingerprint_hash = 0;
  uint64_t plan_hash = 0;      // hash of the plan tree text; 0 = no plan
  uint64_t trace_id = 0;       // joins against the span ring / trace export
  uint64_t parse_ns = 0;       // rewrite + parse phase
  uint64_t plan_ns = 0;
  uint64_t exec_ns = 0;
  uint64_t total_ns = 0;
  uint64_t rows_in = 0;        // rows produced by base-table scans
  uint64_t rows_out = 0;
  uint64_t batches = 0;        // RowBatches emitted by the plan root
  uint64_t zone_skips = 0;     // strips skipped via zone maps
  uint64_t replans = 0;        // aborted-for-replan retries before this run
  std::string status;          // "ok" or the Status code name
  std::string error;           // message when status != "ok"
};

/// Literal-normalized statement fingerprint: whitespace collapsed, keywords
/// and identifiers case-folded, string and numeric literals replaced by '?'.
/// Statements differing only in parameter values share a fingerprint.
std::string NormalizeFingerprint(std::string_view sql);

/// FNV-1a 64-bit over the fingerprint (stable across runs and platforms).
uint64_t HashFingerprint(std::string_view fingerprint);

class QueryLog {
 public:
  /// Claims the next global query ordinal (monotone from 1). Works in every
  /// build mode — attribute heat stats stamp it even when the ring is
  /// compiled out.
  uint64_t BeginQuery() {
    return ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// The ordinal of the most recently begun query (0 before any).
  uint64_t CurrentOrdinal() const {
    return ordinal_.load(std::memory_order_relaxed);
  }

#if !defined(SINEW_METRICS_DISABLED)
  void Append(QueryRecord record);
  /// Records oldest-first (at most `capacity` of them).
  std::vector<QueryRecord> Records() const;
  uint64_t dropped() const;
  /// Resizes the ring (drops current contents; tests and long-running
  /// servers tune this before traffic).
  void SetCapacity(size_t capacity);
  void Clear();
#else
  void Append(QueryRecord) {}
  std::vector<QueryRecord> Records() const { return {}; }
  uint64_t dropped() const { return 0; }
  void SetCapacity(size_t) {}
  void Clear() {}
#endif

  /// The process-wide log SinewDb::Query appends to.
  static QueryLog* Global();

 private:
  std::atomic<uint64_t> ordinal_{0};
#if !defined(SINEW_METRICS_DISABLED)
  static constexpr size_t kDefaultCapacity = 1024;

  mutable std::mutex mu_;
  size_t capacity_ = kDefaultCapacity;
  std::vector<QueryRecord> ring_;  // ring; next_ is the write cursor
  size_t next_ = 0;
  uint64_t dropped_ = 0;
#endif
};

}  // namespace sinew::qlog

#endif  // SINEW_COMMON_QUERY_LOG_H_
