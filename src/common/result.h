// Result<T>: a value-or-Status, the return type of fallible value-producing
// functions (the Arrow idiom).
//
//   Result<int> ParsePort(std::string_view s);
//
//   Status Use() {
//     ASSIGN_OR_RETURN(int port, ParsePort(text));
//     ...
//   }

#ifndef SINEW_COMMON_RESULT_H_
#define SINEW_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace sinew {

template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK Status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    return ok() ? std::move(*value_) : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Internal helpers for ASSIGN_OR_RETURN.
#define SINEW_CONCAT_IMPL(a, b) a##b
#define SINEW_CONCAT(a, b) SINEW_CONCAT_IMPL(a, b)

/// ASSIGN_OR_RETURN(lhs, rexpr): evaluates `rexpr` (a Result<T>); on error
/// returns its Status from the enclosing function, otherwise assigns the
/// value to `lhs` (which may be a declaration).
#define ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto SINEW_CONCAT(_result_, __LINE__) = (rexpr);              \
  if (!SINEW_CONCAT(_result_, __LINE__).ok()) {                 \
    return SINEW_CONCAT(_result_, __LINE__).status();           \
  }                                                             \
  lhs = std::move(SINEW_CONCAT(_result_, __LINE__)).value()

}  // namespace sinew

#endif  // SINEW_COMMON_RESULT_H_
