// Deterministic pseudo-random generator used by the workload generators and
// property tests. A fixed algorithm (splitmix64 seeded xorshift) rather than
// std::mt19937 so that generated datasets are stable across standard library
// implementations.

#ifndef SINEW_COMMON_RNG_H_
#define SINEW_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace sinew {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5d3f7a1ec9b02u) {
    // splitmix64 scramble so nearby seeds diverge immediately.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    state_ = z ^ (z >> 31);
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ull;
  }

  uint64_t Next() {
    // xorshift64*
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool() { return (Next() & 1) != 0; }

  /// True with probability p.
  bool WithProbability(double p) { return NextDouble() < p; }

  /// Random alphanumeric string of length n.
  std::string AlphaNumeric(size_t n) {
    static constexpr char kChars[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    std::string out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(kChars[Uniform(sizeof(kChars) - 1)]);
    }
    return out;
  }

 private:
  uint64_t state_;
};

}  // namespace sinew

#endif  // SINEW_COMMON_RNG_H_
