#include "common/status.h"

namespace sinew {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(state_->code);
  result += ": ";
  result += state_->message;
  return result;
}

}  // namespace sinew
