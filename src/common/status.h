// Status: the error model used across the Sinew codebase.
//
// Library code does not throw; fallible functions return Status (or
// Result<T>, see result.h). The idiom follows Apache Arrow / RocksDB:
//
//   Status DoThing() {
//     RETURN_NOT_OK(Step1());
//     if (bad) return Status::InvalidArgument("bad thing: ", detail);
//     return Status::OK();
//   }

#ifndef SINEW_COMMON_STATUS_H_
#define SINEW_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace sinew {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kParseError = 8,
  kTypeError = 9,
  kAborted = 10,
};

/// Returns a human-readable name for a status code ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. OK status carries no allocation.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status TypeError(Args&&... args) {
    return Make(StatusCode::kTypeError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Aborted(Args&&... args) {
    return Make(StatusCode::kAborted, std::forward<Args>(args)...);
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message, or "" for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream oss;
    (oss << ... << args);
    return Status(code, oss.str());
  }

  std::unique_ptr<State> state_;  // nullptr means OK
};

inline const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : state_->message;
}

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define RETURN_NOT_OK(expr)                \
  do {                                     \
    ::sinew::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace sinew

#endif  // SINEW_COMMON_STATUS_H_
