#include "common/str_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace sinew {

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

std::string FormatDouble(double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  std::string out(buf, ptr);
  (void)ec;
  // Ensure the value reads back as a double, not an int.
  if (std::isfinite(v) && out.find_first_of(".eE") == std::string::npos) {
    out += ".0";
  }
  return out;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard match: % = any run, _ = any single char.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace sinew
