// Small string helpers shared across modules.

#ifndef SINEW_COMMON_STR_UTIL_H_
#define SINEW_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sinew {

/// Appends `s` to `out` with JSON string escaping (quotes not included).
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Renders a double with shortest round-trip precision; integral values get a
/// trailing ".0" so the JSON type survives a round trip.
std::string FormatDouble(double v);

/// ASCII lowercase copy.
std::string AsciiLower(std::string_view s);

/// Splits on a delimiter character; no empty-segment suppression.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// SQL LIKE pattern match (% and _ wildcards, no escape support).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace sinew

#endif  // SINEW_COMMON_STR_UTIL_H_
