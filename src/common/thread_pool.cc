#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/metrics.h"

namespace sinew {

namespace {

struct PoolMetrics {
  metrics::Counter* tasks_queued =
      metrics::GetCounter("threadpool.tasks_queued_total");
  metrics::Counter* tasks_run =
      metrics::GetCounter("threadpool.tasks_run_total");
  metrics::Counter* busy_ns = metrics::GetCounter("threadpool.busy_ns_total");
  metrics::Gauge* queue_depth = metrics::GetGauge("threadpool.queue_depth");

  static PoolMetrics& Get() {
    static PoolMetrics m;
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<Status()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    PoolMetrics& pm = PoolMetrics::Get();
    pm.queue_depth->Sub(1);
    const uint64_t start = metrics::NowNanos();
    task();
    pm.busy_ns->Add(metrics::NowNanos() - start);
    pm.tasks_run->Increment();
  }
}

std::future<Status> ThreadPool::Submit(std::function<Status()> fn) {
  std::packaged_task<Status()> task(std::move(fn));
  std::future<Status> future = task.get_future();
  {
    std::lock_guard lock(mu_);
    if (!shutdown_ && !workers_.empty()) {
      queue_.push_back(std::move(task));
      PoolMetrics& pm = PoolMetrics::Get();
      pm.tasks_queued->Increment();
      pm.queue_depth->Add(1);
      cv_.notify_one();
      return future;
    }
  }
  PoolMetrics::Get().tasks_run->Increment();
  task();  // no workers (or shut down): run inline, future already wired
  return future;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Status ThreadPool::ParallelFor(
    uint64_t begin, uint64_t end, uint64_t chunk, size_t degree,
    const std::function<Status(uint64_t, uint64_t)>& fn) {
  if (begin >= end) return Status::OK();
  chunk = std::max<uint64_t>(chunk, 1);
  const uint64_t total_chunks = (end - begin + chunk - 1) / chunk;
  degree = std::min<size_t>({degree, worker_count(), total_chunks});
  if (degree <= 1) {
    for (uint64_t lo = begin; lo < end; lo += chunk) {
      RETURN_NOT_OK(fn(lo, std::min(end, lo + chunk)));
    }
    return Status::OK();
  }

  // Shared-cursor claims: each task loops taking the next chunk until the
  // range is drained or some task failed.
  auto cursor = std::make_shared<std::atomic<uint64_t>>(begin);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto body = [cursor, failed, begin, end, chunk, &fn]() -> Status {
    (void)begin;
    while (!failed->load(std::memory_order_relaxed)) {
      uint64_t lo = cursor->fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return Status::OK();
      Status st = fn(lo, std::min(end, lo + chunk));
      if (!st.ok()) {
        failed->store(true, std::memory_order_relaxed);
        return st;
      }
    }
    return Status::OK();
  };
  std::vector<std::future<Status>> futures;
  futures.reserve(degree);
  for (size_t i = 0; i < degree; ++i) futures.push_back(Submit(body));
  Status first;
  for (std::future<Status>& f : futures) {
    Status st = f.get();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    size_t n = 0;
    if (const char* env = std::getenv("SINEW_THREADS")) {
      long parsed = std::atol(env);
      if (parsed > 0) n = static_cast<size_t>(parsed);
    }
    if (n == 0) {
      n = std::max<size_t>(2, std::thread::hardware_concurrency());
    }
    return new ThreadPool(std::min<size_t>(n, 64));
  }();
  return pool;
}

}  // namespace sinew
