// Fixed-size worker thread pool shared by query execution (morsel-driven
// parallel scans, see engine/exec.cc), the bulk loader (parallel document
// serialization) and the column materializer (parallel backfill).
//
// Semantics:
//  - Submit() enqueues a Status-returning task and hands back a future that
//    carries the task's Status; an exception thrown by the task propagates
//    through std::future::get().
//  - Shutdown() (and the destructor) drains every already-queued task before
//    joining the workers — queued work is never dropped. After Shutdown,
//    Submit runs the task inline on the calling thread, so returned futures
//    are always satisfied.
//  - ParallelFor() is the morsel helper: it splits [begin, end) into chunks
//    and runs them on up to `degree` concurrent tasks, claiming chunks from
//    a shared cursor so fast workers steal the remainder. degree <= 1 (or a
//    pool with no workers) runs inline on the caller — the serial fallback.
//    Tasks must not call ParallelFor on the pool that runs them (a saturated
//    pool would make the inner wait depend on the outer task's own slot).
//
// ThreadPool::Shared() is the process-wide instance; its size comes from
// SINEW_THREADS or std::thread::hardware_concurrency. Per-query parallelism
// degrees are chosen by the planner (PlannerOptions::parallelism) and only
// bound how many tasks a query submits — the pool itself is fixed.

#ifndef SINEW_COMMON_THREAD_POOL_H_
#define SINEW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"

namespace sinew {

class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 workers is legal: every Submit runs inline.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Enqueues a task; the future resolves to the task's Status (or rethrows
  /// the task's exception from get()).
  std::future<Status> Submit(std::function<Status()> fn);

  /// Runs every queued task, then joins the workers. Idempotent.
  void Shutdown();

  /// Splits [begin, end) into chunks of up to `chunk` elements and runs
  /// fn(lo, hi) over them on up to `degree` concurrent tasks. Returns the
  /// first non-OK Status (remaining chunks are skipped once an error is
  /// seen). Runs inline when degree <= 1 or the pool has no workers.
  Status ParallelFor(uint64_t begin, uint64_t end, uint64_t chunk,
                     size_t degree,
                     const std::function<Status(uint64_t, uint64_t)>& fn);

  /// The process-wide shared pool (created on first use; never destroyed
  /// before exit). Sized from SINEW_THREADS when set, else
  /// hardware_concurrency, with a floor of 2 so single-core machines still
  /// interleave tasks.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<Status()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

}  // namespace sinew

#endif  // SINEW_COMMON_THREAD_POOL_H_
