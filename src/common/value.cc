#include "common/value.h"

#include <algorithm>

#include "common/str_util.h"

namespace sinew {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kArray:
      return "array";
    case ValueType::kObject:
      return "object";
  }
  return "unknown";
}

Value Value::Bool(bool v) {
  Value out;
  out.type_ = ValueType::kBool;
  out.bool_ = v;
  return out;
}

Value Value::Int(int64_t v) {
  Value out;
  out.type_ = ValueType::kInt;
  out.int_ = v;
  return out;
}

Value Value::Double(double v) {
  Value out;
  out.type_ = ValueType::kDouble;
  out.double_ = v;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.type_ = ValueType::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::Array(std::vector<Value> elements) {
  Value out;
  out.type_ = ValueType::kArray;
  out.array_ = std::move(elements);
  return out;
}

Value Value::Object(std::vector<Member> members) {
  Value out;
  out.type_ = ValueType::kObject;
  out.members_ = std::move(members);
  return out;
}

const Value* Value::Find(std::string_view key) const {
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void Value::Set(std::string_view key, Value value) {
  type_ = ValueType::kObject;
  for (Member& m : members_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

bool Value::operator==(const Value& other) const {
  return Compare(*this, other) == 0;
}

namespace {

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return Cmp(static_cast<int>(a.type()), static_cast<int>(b.type()));
  }
  switch (a.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return Cmp(a.bool_value(), b.bool_value());
    case ValueType::kInt:
      return Cmp(a.int_value(), b.int_value());
    case ValueType::kDouble:
      return Cmp(a.double_value(), b.double_value());
    case ValueType::kString:
      return a.string_value().compare(b.string_value());
    case ValueType::kArray: {
      const auto& av = a.array();
      const auto& bv = b.array();
      size_t n = std::min(av.size(), bv.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(av[i], bv[i]);
        if (c != 0) return c;
      }
      return Cmp(av.size(), bv.size());
    }
    case ValueType::kObject: {
      const auto& am = a.members();
      const auto& bm = b.members();
      size_t n = std::min(am.size(), bm.size());
      for (size_t i = 0; i < n; ++i) {
        int c = am[i].first.compare(bm[i].first);
        if (c != 0) return c;
        c = Compare(am[i].second, bm[i].second);
        if (c != 0) return c;
      }
      return Cmp(am.size(), bm.size());
    }
  }
  return 0;
}

namespace {

void AppendJson(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->append("null");
      break;
    case ValueType::kBool:
      out->append(v.bool_value() ? "true" : "false");
      break;
    case ValueType::kInt:
      out->append(std::to_string(v.int_value()));
      break;
    case ValueType::kDouble:
      out->append(FormatDouble(v.double_value()));
      break;
    case ValueType::kString:
      out->push_back('"');
      AppendJsonEscaped(v.string_value(), out);
      out->push_back('"');
      break;
    case ValueType::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& e : v.array()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJson(e, out);
      }
      out->push_back(']');
      break;
    }
    case ValueType::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        AppendJsonEscaped(key, out);
        out->append("\":");
        AppendJson(member, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string Value::ToJson() const {
  std::string out;
  AppendJson(*this, &out);
  return out;
}

}  // namespace sinew
