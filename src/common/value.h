// Value: the in-memory document model (what JSON parses into and what the
// loaders/serializers consume). Hot query paths operate on the binary
// reservoir format, not on Value, so this type favours clarity over
// compactness.

#ifndef SINEW_COMMON_VALUE_H_
#define SINEW_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sinew {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  kArray = 5,
  kObject = 6,
};

/// Returns "null" / "bool" / ... for a value type.
const char* ValueTypeName(ValueType type);

/// A JSON-like dynamically typed value. Objects preserve member insertion
/// order (like JSON documents); lookup is linear, which is fine for the
/// document sizes this repo manipulates (tens of keys).
class Value {
 public:
  using Member = std::pair<std::string, Value>;

  Value() : type_(ValueType::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool v);
  static Value Int(int64_t v);
  static Value Double(double v);
  static Value String(std::string v);
  static Value Array(std::vector<Value> elements = {});
  static Value Object(std::vector<Member> members = {});

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_bool() const { return type_ == ValueType::kBool; }
  bool is_int() const { return type_ == ValueType::kInt; }
  bool is_double() const { return type_ == ValueType::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == ValueType::kString; }
  bool is_array() const { return type_ == ValueType::kArray; }
  bool is_object() const { return type_ == ValueType::kObject; }

  // Accessors: preconditions are the corresponding is_*() checks.
  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  /// Numeric value widened to double (valid for kInt and kDouble).
  double AsDouble() const { return is_int() ? static_cast<double>(int_) : double_; }
  const std::string& string_value() const { return string_; }
  const std::vector<Value>& array() const { return array_; }
  std::vector<Value>& mutable_array() { return array_; }
  const std::vector<Member>& members() const { return members_; }
  std::vector<Member>& mutable_members() { return members_; }

  /// Object member lookup; returns nullptr if absent (or not an object).
  const Value* Find(std::string_view key) const;
  /// Adds (or replaces) an object member.
  void Set(std::string_view key, Value value);
  /// Appends an array element.
  void Append(Value element) { array_.push_back(std::move(element)); }

  /// Deep structural equality. Ints and doubles compare as distinct types
  /// (Value::Int(1) != Value::Double(1.0)), matching the paper's
  /// attribute = (key, type) model.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Deterministic total order (by type, then by content); used by sort-based
  /// test assertions.
  static int Compare(const Value& a, const Value& b);

  /// Compact JSON rendering (delegates to json/writer).
  std::string ToJson() const;

 private:
  ValueType type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> members_;
};

}  // namespace sinew

#endif  // SINEW_COMMON_VALUE_H_
