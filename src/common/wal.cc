#include "common/wal.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/metrics.h"

namespace sinew {

namespace {

enum FragmentType : uint8_t {
  kFull = 1,
  kFirst = 2,
  kMiddle = 3,
  kLast = 4,
  kMaxFragmentType = kLast,
};

uint32_t FragmentCrc(uint8_t type, std::string_view payload) {
  char type_byte = static_cast<char>(type);
  uint32_t crc = crc32c::Extend(0, &type_byte, 1);
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  return crc32c::Mask(crc);
}

void EncodeHeader(char* dst, uint32_t masked_crc, uint16_t len, uint8_t type) {
  std::memcpy(dst, &masked_crc, sizeof(masked_crc));
  std::memcpy(dst + 4, &len, sizeof(len));
  dst[6] = static_cast<char>(type);
}

metrics::Counter* AppendsCounter() {
  static metrics::Counter* c = metrics::GetCounter("wal.appends_total");
  return c;
}

metrics::Counter* FsyncsCounter() {
  static metrics::Counter* c = metrics::GetCounter("wal.fsyncs_total");
  return c;
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Create(Env* env,
                                                     const std::string& path,
                                                     WalWriterOptions options) {
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                   env->NewWritableFile(path));
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), options));
}

Status WalWriter::AppendRecord(std::string_view payload) {
  if (closed_) return Status::IOError("append to closed WAL");
  size_t left = payload.size();
  const char* p = payload.data();
  bool first_fragment = true;
  do {
    size_t block_room = kWalBlockSize - block_offset_;
    if (block_room < kWalHeaderSize) {
      // Not even a header fits: pad the block with zeros and start fresh.
      static const char kZeros[kWalHeaderSize] = {0};
      RETURN_NOT_OK(file_->Append(std::string_view(kZeros, block_room)));
      appended_bytes_ += block_room;
      pending_bytes_ += block_room;
      block_offset_ = 0;
      block_room = kWalBlockSize;
    }
    size_t fragment_len = std::min(left, block_room - kWalHeaderSize);
    bool last_fragment = fragment_len == left;
    uint8_t type;
    if (first_fragment && last_fragment) {
      type = kFull;
    } else if (first_fragment) {
      type = kFirst;
    } else if (last_fragment) {
      type = kLast;
    } else {
      type = kMiddle;
    }
    std::string_view fragment(p, fragment_len);
    char header[kWalHeaderSize];
    EncodeHeader(header, FragmentCrc(type, fragment),
                 static_cast<uint16_t>(fragment_len), type);
    // One Append per fragment piece keeps torn-write cut points realistic
    // under FaultInjectionEnv byte sweeps.
    std::string buf;
    buf.reserve(kWalHeaderSize + fragment_len);
    buf.append(header, kWalHeaderSize);
    buf.append(fragment.data(), fragment.size());
    RETURN_NOT_OK(file_->Append(buf));
    appended_bytes_ += buf.size();
    pending_bytes_ += buf.size();
    block_offset_ += buf.size();
    p += fragment_len;
    left -= fragment_len;
    first_fragment = false;
  } while (left > 0);
  ++appended_records_;
  AppendsCounter()->Increment();
  return Status::OK();
}

Status WalWriter::Commit() {
  if (closed_) return Status::IOError("commit on closed WAL");
  ++pending_commits_;
  bool sync_now = false;
  switch (options_.sync_policy) {
    case WalSyncPolicy::kEveryCommit:
      sync_now = true;
      break;
    case WalSyncPolicy::kGrouped:
      sync_now = pending_commits_ >= options_.group_commits ||
                 pending_bytes_ >= options_.group_bytes;
      break;
    case WalSyncPolicy::kNever:
      break;
  }
  if (!sync_now) return Status::OK();
  return Sync();
}

Status WalWriter::Sync() {
  if (closed_) return Status::IOError("sync of closed WAL");
  if (pending_commits_ == 0 && pending_bytes_ == 0) return Status::OK();
  RETURN_NOT_OK(file_->Sync());
  FsyncsCounter()->Increment();
  pending_commits_ = 0;
  pending_bytes_ = 0;
  return Status::OK();
}

Status WalWriter::Close() {
  if (closed_) return Status::OK();
  // Flush the pending group so a clean shutdown never loses acknowledged
  // commits, whatever the policy.
  Status sync_st =
      (pending_commits_ > 0 || pending_bytes_ > 0) ? file_->Sync()
                                                   : Status::OK();
  if (sync_st.ok() && (pending_commits_ > 0 || pending_bytes_ > 0)) {
    FsyncsCounter()->Increment();
  }
  pending_commits_ = 0;
  pending_bytes_ = 0;
  closed_ = true;
  Status close_st = file_->Close();
  return sync_st.ok() ? close_st : sync_st;
}

namespace {

struct FragmentHeader {
  uint32_t masked_crc = 0;
  uint16_t len = 0;
  uint8_t type = 0;
};

FragmentHeader DecodeHeader(const char* src) {
  FragmentHeader h;
  std::memcpy(&h.masked_crc, src, sizeof(h.masked_crc));
  std::memcpy(&h.len, src + 4, sizeof(h.len));
  h.type = static_cast<uint8_t>(src[6]);
  return h;
}

/// Tries to parse a checksum-valid fragment at `pos` that also fits inside
/// its block. Used to distinguish "garbage then EOF" (torn tail) from
/// "garbage then more valid data" (mid-log corruption).
bool ValidFragmentAt(std::string_view data, size_t pos) {
  if (pos + kWalHeaderSize > data.size()) return false;
  FragmentHeader h = DecodeHeader(data.data() + pos);
  if (h.type < kFull || h.type > kMaxFragmentType) return false;
  size_t block_room = kWalBlockSize - pos % kWalBlockSize;
  if (block_room < kWalHeaderSize ||
      static_cast<size_t>(h.len) > block_room - kWalHeaderSize) {
    return false;
  }
  if (pos + kWalHeaderSize + h.len > data.size()) return false;
  std::string_view payload = data.substr(pos + kWalHeaderSize, h.len);
  return FragmentCrc(h.type, payload) == h.masked_crc;
}

bool AnyValidFragmentAfter(std::string_view data, size_t pos) {
  for (size_t p = pos + 1; p + kWalHeaderSize <= data.size(); ++p) {
    if (ValidFragmentAt(data, p)) return true;
  }
  return false;
}

}  // namespace

Result<WalReadResult> ParseWal(std::string_view data) {
  WalReadResult out;
  std::string pending;        // reassembly buffer for FIRST..LAST chains
  bool in_fragmented = false;
  size_t pos = 0;

  // On a bad fragment: a crash can only tear the tail, so any valid fragment
  // *after* the bad bytes means the damage is mid-log — a hard error. With
  // nothing valid after, the tail is dropped as torn.
  auto bad = [&](size_t at, std::string reason) -> Result<WalReadResult> {
    if (AnyValidFragmentAfter(data, at)) {
      return Status::IOError("WAL corrupted mid-log at offset ", at, ": ",
                             reason, " (valid records follow the damage)");
    }
    out.truncated_tail = true;
    out.truncation_reason =
        "torn tail at offset " + std::to_string(at) + ": " + reason;
    return out;
  };

  while (pos < data.size()) {
    size_t block_room = kWalBlockSize - pos % kWalBlockSize;
    if (block_room < kWalHeaderSize) {
      // Block trailer: too small for a header, skipped by the writer.
      pos += block_room;
      continue;
    }
    if (pos + kWalHeaderSize > data.size()) {
      // Header cut off at EOF: torn unless it is pure zero padding (a crash
      // exactly on a fragment boundary after trailer zeros).
      bool all_zero = true;
      for (size_t p = pos; p < data.size(); ++p) {
        if (data[p] != 0) all_zero = false;
      }
      if (!all_zero || in_fragmented) {
        return bad(pos, "incomplete fragment header at EOF");
      }
      break;
    }
    FragmentHeader h = DecodeHeader(data.data() + pos);
    if (h.type < kFull || h.type > kMaxFragmentType) {
      return bad(pos, "bad fragment type " + std::to_string(h.type));
    }
    if (static_cast<size_t>(h.len) > block_room - kWalHeaderSize) {
      return bad(pos, "fragment overruns its block");
    }
    if (pos + kWalHeaderSize + h.len > data.size()) {
      return bad(pos, "fragment payload cut off at EOF");
    }
    std::string_view payload = data.substr(pos + kWalHeaderSize, h.len);
    if (FragmentCrc(h.type, payload) != h.masked_crc) {
      return bad(pos, "fragment checksum mismatch");
    }
    switch (h.type) {
      case kFull:
        if (in_fragmented) return bad(pos, "FULL inside a fragmented record");
        out.records.emplace_back(payload);
        break;
      case kFirst:
        if (in_fragmented) return bad(pos, "FIRST inside a fragmented record");
        pending.assign(payload);
        in_fragmented = true;
        break;
      case kMiddle:
        if (!in_fragmented) return bad(pos, "MIDDLE without FIRST");
        pending.append(payload);
        break;
      case kLast:
        if (!in_fragmented) return bad(pos, "LAST without FIRST");
        pending.append(payload);
        out.records.push_back(std::move(pending));
        pending.clear();
        in_fragmented = false;
        break;
    }
    pos += kWalHeaderSize + h.len;
  }
  if (in_fragmented) {
    // The log ended inside a FIRST..LAST chain — the tail record is torn.
    out.truncated_tail = true;
    out.truncation_reason = "record fragment chain cut off at EOF";
  }
  return out;
}

Result<WalReadResult> ReadWalFile(Env* env, const std::string& path) {
  ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  return ParseWal(data);
}

}  // namespace sinew
