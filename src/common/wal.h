// Write-ahead log: an append-only stream of checksummed, length-prefixed
// records over an Env file, built for crash recovery of the persistence
// layer (sinew/durable_db.h layers a memtable + generation images on top).
//
// File layout — fixed 4 KiB blocks, each record split into one or more
// fragments so a fragment never crosses a block boundary:
//
//   block := fragment* trailer
//   fragment := u32 masked CRC32C(type byte + payload)   (little-endian)
//             | u16 payload length
//             | u8  type (1=FULL, 2=FIRST, 3=MIDDLE, 4=LAST)
//             | payload bytes
//   trailer := 0..6 zero bytes (when < 7 bytes remain in the block)
//
// The per-fragment CRC covers the type byte too, so a FIRST fragment spliced
// onto the wrong LAST is detected. A record larger than one block spans the
// writer's internal block boundary as FIRST/MIDDLE*/LAST fragments.
//
// Torn tails vs. mid-log corruption (the recovery contract):
//  - A crash mid-append leaves a partial fragment (or a fragment with a bad
//    CRC) at the tail and nothing after it. The reader drops the torn record
//    and reports `truncated_tail` — every complete record before it is
//    returned. This is the expected shape after a crash and is NOT an error.
//  - A bad fragment *followed by more valid fragments* cannot be produced by
//    a crash (appends are sequential); it means the log was corrupted in the
//    middle (bit rot, manual truncation). The reader returns an IOError and
//    the caller must treat the whole log as untrustworthy.
//
// Durability (group commit): AppendRecord only buffers into the OS file;
// Commit() marks a commit boundary and fsyncs per the configured policy —
// kEveryCommit fsyncs each boundary, kGrouped amortizes one fsync over N
// commits / B bytes (a batched group commit), kNever leaves flushing to the
// OS. A commit is acknowledged durable only once its fsync has happened;
// under kGrouped/kNever an acknowledged-but-unsynced commit can be lost to a
// power failure — the standard tradeoff (cf. synchronous_commit=off).
//
// All I/O goes through an Env, so FaultInjectionEnv crash sweeps (including
// CrashAfterSyncs, which drops buffered-but-unsynced bytes) apply directly.

#ifndef SINEW_COMMON_WAL_H_
#define SINEW_COMMON_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/result.h"

namespace sinew {

inline constexpr size_t kWalBlockSize = 4096;
inline constexpr size_t kWalHeaderSize = 7;  // u32 crc + u16 len + u8 type

enum class WalSyncPolicy {
  kEveryCommit,  // fsync at every Commit() — every acknowledged commit durable
  kGrouped,      // fsync every group_commits commits or group_bytes bytes
  kNever,        // never fsync; durability deferred to the OS / next flush
};

struct WalWriterOptions {
  WalSyncPolicy sync_policy = WalSyncPolicy::kEveryCommit;
  /// kGrouped: fsync once this many Commit() boundaries are pending...
  uint64_t group_commits = 8;
  /// ...or once this many bytes have been appended since the last fsync.
  uint64_t group_bytes = 256 * 1024;
};

class WalWriter {
 public:
  /// Creates (truncating) `path` and returns a writer positioned at offset 0.
  static Result<std::unique_ptr<WalWriter>> Create(Env* env,
                                                   const std::string& path,
                                                   WalWriterOptions options);

  /// Appends one record (any size, including empty). The record is in the OS
  /// buffer on return, not yet durable — call Commit().
  Status AppendRecord(std::string_view payload);

  /// Marks a commit boundary; fsyncs per the sync policy. On OK under
  /// kEveryCommit (or when the group threshold was hit) everything appended
  /// so far is durable.
  Status Commit();

  /// Unconditional fsync barrier.
  Status Sync();

  /// Closes the file (final group fsync under kGrouped). Idempotent.
  Status Close();

  uint64_t appended_records() const { return appended_records_; }
  /// Physical bytes appended (fragment headers + padding included).
  uint64_t appended_bytes() const { return appended_bytes_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, WalWriterOptions options)
      : file_(std::move(file)), options_(options) {}

  std::unique_ptr<WritableFile> file_;
  WalWriterOptions options_;
  size_t block_offset_ = 0;  // write position within the current block
  uint64_t appended_records_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t pending_commits_ = 0;  // commits since the last fsync
  uint64_t pending_bytes_ = 0;    // bytes appended since the last fsync
  bool closed_ = false;
};

struct WalReadResult {
  std::vector<std::string> records;
  /// True when a torn record at the tail was dropped (normal after a crash).
  bool truncated_tail = false;
  /// Why the tail was truncated ("" when truncated_tail is false).
  std::string truncation_reason;
};

/// Reads every complete record of the log at `path`. A missing file is an
/// error (callers treat absence as an empty log via Env::FileExists); an
/// empty file yields zero records. Torn tails truncate (see header comment);
/// mid-log corruption returns IOError.
Result<WalReadResult> ReadWalFile(Env* env, const std::string& path);

/// Parses an in-memory log image (exposed for tests and corruption sweeps).
Result<WalReadResult> ParseWal(std::string_view data);

}  // namespace sinew

#endif  // SINEW_COMMON_WAL_H_
