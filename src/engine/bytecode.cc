#include "engine/bytecode.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <optional>

#include "common/metrics.h"
#include "common/str_util.h"
#include "engine/eval.h"
#include "engine/typed_kernels.h"

namespace sinew::engine::bytecode {

namespace {
std::atomic<bool> g_typed_kernels{true};
}  // namespace

bool TypedKernelsEnabled() {
  return g_typed_kernels.load(std::memory_order_relaxed);
}

void SetTypedKernelsEnabled(bool enabled) {
  g_typed_kernels.store(enabled, std::memory_order_relaxed);
}

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kColCmpLit: return "col_cmp_lit";
    case OpCode::kUdfCmpLit: return "udf_cmp_lit";
    case OpCode::kColBetweenLits: return "col_between_lits";
    case OpCode::kColIsNull: return "col_is_null";
    case OpCode::kBoolFork: return "bool_fork";
    case OpCode::kBoolJoin: return "bool_join";
    case OpCode::kCompare: return "compare";
    case OpCode::kArith: return "arith";
    case OpCode::kLike: return "like";
    case OpCode::kConcat: return "concat";
    case OpCode::kNot: return "not";
    case OpCode::kNeg: return "neg";
    case OpCode::kBetween: return "between";
    case OpCode::kIsNull: return "is_null";
    case OpCode::kInList: return "in_list";
    case OpCode::kCallUdf: return "call_udf";
    case OpCode::kFallbackLane: return "fallback_lane";
  }
  return "?";
}

namespace {

// Register/literal pools are uint16-indexed; real expressions sit far below
// these, so hitting a cap means "stay on the tree walk", not an error.
constexpr size_t kMaxRegs = 4096;
constexpr size_t kMaxLiterals = 4096;
constexpr size_t kMaxAux = 0xFFFF;

/// Interning equality: exact kind + exact value. Doubles compare bit-exact
/// so 0.0 and -0.0 (distinct in rendering) keep separate pool entries, and
/// Int(1) never merges with Double(1.0) (distinct arithmetic semantics).
bool SameLiteral(const Datum& a, const Datum& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Datum::Kind::kNull: return true;
    case Datum::Kind::kBool: return a.bool_value() == b.bool_value();
    case Datum::Kind::kInt: return a.int_value() == b.int_value();
    case Datum::Kind::kDouble:
      return std::bit_cast<uint64_t>(a.double_value()) ==
             std::bit_cast<uint64_t>(b.double_value());
    case Datum::Kind::kText:
    case Datum::Kind::kBytes: return a.str() == b.str();
  }
  return false;
}

bool IsCompareBop(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: return true;
    default: return false;
  }
}

bool IsArithBop(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: return true;
    default: return false;
  }
}

/// `a op b` == `b Flip(op) a` for comparisons; used to normalize lit-cmp-col
/// into the fused col-cmp-lit form.
BinaryOp FlipCompare(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // Eq / Ne are symmetric
  }
}

void CollectSlots(const Expr& e, std::vector<int>* slots) {
  if (e.kind == ExprKind::kColumnRef && e.bound_slot >= 0) {
    slots->push_back(e.bound_slot);
  }
  for (const ExprPtr& arg : e.args) CollectSlots(*arg, slots);
}

/// The fallback-free operand forms: operands that cannot error and carry no
/// evaluation-order footprint (same rule as the tree walk's IsSimpleOperand).
bool IsSimpleOperand(const Expr& e) {
  return e.kind == ExprKind::kLiteral ||
         (e.kind == ExprKind::kColumnRef && e.bound_slot >= 0);
}

class Compiler {
 public:
  Compiler(size_t input_width, const UdfRegistry* udfs)
      : width_(input_width), udfs_(udfs) {}

  std::shared_ptr<const Program> Run(const Expr& expr) {
    std::optional<Operand> result = CompileNode(expr);
    if (!result.has_value() || failed_) return nullptr;
    return Finish(*result);
  }

 private:
  static Operand Reg(uint16_t index) {
    return Operand{Operand::Kind::kReg, index};
  }

  /// Result register with stack discipline: consumed register operands are
  /// the top of the virtual stack; the result reuses the lowest of them (or
  /// a fresh register when all operands are columns/literals), and
  /// everything above is freed.
  uint16_t AllocResult(std::initializer_list<Operand> consumed) {
    uint16_t lowest = next_reg_;
    for (const Operand& op : consumed) {
      if (op.is_reg() && op.index < lowest) lowest = op.index;
    }
    next_reg_ = static_cast<uint16_t>(lowest + 1);
    if (next_reg_ > num_regs_) num_regs_ = next_reg_;
    if (num_regs_ > kMaxRegs) failed_ = true;
    return lowest;
  }

  uint16_t InternLiteral(const Datum& d) {
    for (size_t i = 0; i < literals_.size(); ++i) {
      if (SameLiteral(literals_[i], d)) return static_cast<uint16_t>(i);
    }
    if (literals_.size() >= kMaxLiterals) {
      failed_ = true;
      return 0;
    }
    literals_.push_back(d);
    return static_cast<uint16_t>(literals_.size() - 1);
  }

  /// Operand for a simple (literal / bound colref) expression. Bails when a
  /// bound slot lies outside the compile-time schema — the tree walk owns
  /// the error text for that.
  std::optional<Operand> SimpleOperand(const Expr& e) {
    if (e.kind == ExprKind::kLiteral) {
      return Operand{Operand::Kind::kLit, InternLiteral(e.literal)};
    }
    if (e.bound_slot < 0 || static_cast<size_t>(e.bound_slot) >= width_ ||
        e.bound_slot > 0xFFFF) {
      return std::nullopt;
    }
    return Operand{Operand::Kind::kCol, static_cast<uint16_t>(e.bound_slot)};
  }

  /// Everything without a vector kernel becomes one per-lane scalar escape;
  /// the subtree's bound slots are collected once, here, at compile time.
  Operand EmitFallback(const Expr& e) {
    Instr ins;
    ins.op = OpCode::kFallbackLane;
    ins.fallback = &e;
    std::vector<int> slots;
    CollectSlots(e, &slots);
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    if (slots.size() > 0xFFFF) failed_ = true;
    fb_slot_sets_.push_back(std::move(slots));
    ins.dst = AllocResult({});
    instrs_.push_back(ins);
    return Reg(ins.dst);
  }

  std::optional<Operand> CompileBinary(const Expr& e) {
    if (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr) {
      std::optional<Operand> lhs = CompileNode(*e.args[0]);
      if (!lhs) return std::nullopt;
      Instr fork;
      fork.op = OpCode::kBoolFork;
      fork.is_and = e.bop == BinaryOp::kAnd;
      fork.a = *lhs;
      fork.dst = AllocResult({*lhs});
      const size_t fork_pc = instrs_.size();
      instrs_.push_back(fork);
      // The right-side region runs over the undecided lane subset; its
      // registers sit above the fork's dst, so outer per-lane values (all in
      // registers <= dst by stack discipline) survive the region.
      const uint16_t region_base = next_reg_;
      std::optional<Operand> rhs = CompileNode(*e.args[1]);
      if (!rhs) return std::nullopt;
      Instr join;
      join.op = OpCode::kBoolJoin;
      join.is_and = fork.is_and;
      join.a = *rhs;
      join.dst = instrs_[fork_pc].dst;
      instrs_.push_back(join);
      instrs_[fork_pc].jump = static_cast<uint32_t>(instrs_.size());
      next_reg_ = region_base;  // free the region's registers
      return Reg(join.dst);
    }
    std::optional<Operand> lhs = CompileNode(*e.args[0]);
    if (!lhs) return std::nullopt;
    std::optional<Operand> rhs = CompileNode(*e.args[1]);
    if (!rhs) return std::nullopt;
    Instr ins;
    ins.bop = e.bop;
    if (IsCompareBop(e.bop)) {
      if (lhs->is_col() && rhs->is_lit()) {
        ins.op = OpCode::kColCmpLit;
        ins.a = *lhs;
        ins.b = *rhs;
      } else if (lhs->is_lit() && rhs->is_col()) {
        ins.op = OpCode::kColCmpLit;
        ins.bop = FlipCompare(e.bop);
        ins.a = *rhs;
        ins.b = *lhs;
      } else if (rhs->is_lit() && lhs->is_reg() && !instrs_.empty() &&
                 instrs_.back().op == OpCode::kCallUdf &&
                 instrs_.back().dst == lhs->index) {
        // Peephole: the comparison consumes the UDF value where it is
        // produced — extract-then-compare becomes one opcode.
        Instr& udf = instrs_.back();
        udf.op = OpCode::kUdfCmpLit;
        udf.bop = e.bop;
        udf.b = *rhs;
        return Reg(udf.dst);
      } else if (lhs->is_lit() && rhs->is_reg() && !instrs_.empty() &&
                 instrs_.back().op == OpCode::kCallUdf &&
                 instrs_.back().dst == rhs->index) {
        Instr& udf = instrs_.back();
        udf.op = OpCode::kUdfCmpLit;
        udf.bop = FlipCompare(e.bop);
        udf.b = *lhs;
        return Reg(udf.dst);
      } else {
        ins.op = OpCode::kCompare;
        ins.a = *lhs;
        ins.b = *rhs;
      }
    } else if (IsArithBop(e.bop)) {
      ins.op = OpCode::kArith;
      ins.a = *lhs;
      ins.b = *rhs;
    } else if (e.bop == BinaryOp::kLike) {
      ins.op = OpCode::kLike;
      ins.a = *lhs;
      ins.b = *rhs;
    } else if (e.bop == BinaryOp::kConcat) {
      ins.op = OpCode::kConcat;
      ins.a = *lhs;
      ins.b = *rhs;
    } else {
      return std::nullopt;
    }
    ins.dst = AllocResult({*lhs, *rhs});
    instrs_.push_back(ins);
    return Reg(ins.dst);
  }

  std::optional<Operand> CompileNode(const Expr& e) {
    if (failed_) return std::nullopt;
    switch (e.kind) {
      case ExprKind::kLiteral:
      case ExprKind::kColumnRef:
        return SimpleOperand(e);
      case ExprKind::kStar:
        return std::nullopt;
      case ExprKind::kUnary: {
        std::optional<Operand> v = CompileNode(*e.args[0]);
        if (!v) return std::nullopt;
        Instr ins;
        ins.op = e.uop == UnaryOp::kNot ? OpCode::kNot : OpCode::kNeg;
        ins.a = *v;
        ins.dst = AllocResult({*v});
        instrs_.push_back(ins);
        return Reg(ins.dst);
      }
      case ExprKind::kBinary:
        return CompileBinary(e);
      case ExprKind::kBetween: {
        std::optional<Operand> t = CompileNode(*e.args[0]);
        if (!t) return std::nullopt;
        std::optional<Operand> lo = CompileNode(*e.args[1]);
        if (!lo) return std::nullopt;
        std::optional<Operand> hi = CompileNode(*e.args[2]);
        if (!hi) return std::nullopt;
        Instr ins;
        ins.op = t->is_col() && lo->is_lit() && hi->is_lit()
                     ? OpCode::kColBetweenLits
                     : OpCode::kBetween;
        ins.a = *t;
        ins.b = *lo;
        ins.c = *hi;
        ins.negated = e.negated;
        ins.dst = AllocResult({*t, *lo, *hi});
        instrs_.push_back(ins);
        return Reg(ins.dst);
      }
      case ExprKind::kInList: {
        // The row path stops evaluating list items after a match, so only
        // items that cannot error may run eagerly — the same rule as the
        // tree walk's batch kernel.
        for (size_t i = 1; i < e.args.size(); ++i) {
          if (!IsSimpleOperand(*e.args[i])) return EmitFallback(e);
        }
        std::optional<Operand> t = CompileNode(*e.args[0]);
        if (!t) return std::nullopt;
        if (e.args.size() - 1 > kMaxAux) return std::nullopt;
        Instr ins;
        ins.op = OpCode::kInList;
        ins.a = *t;
        ins.negated = e.negated;
        ins.aux_begin = static_cast<uint32_t>(aux_.size());
        ins.aux_count = static_cast<uint16_t>(e.args.size() - 1);
        for (size_t i = 1; i < e.args.size(); ++i) {
          std::optional<Operand> item = SimpleOperand(*e.args[i]);
          if (!item) return std::nullopt;
          aux_.push_back(*item);
        }
        ins.dst = AllocResult({*t});
        instrs_.push_back(ins);
        return Reg(ins.dst);
      }
      case ExprKind::kIsNull: {
        std::optional<Operand> v = CompileNode(*e.args[0]);
        if (!v) return std::nullopt;
        Instr ins;
        ins.op = v->is_col() ? OpCode::kColIsNull : OpCode::kIsNull;
        ins.a = *v;
        ins.negated = e.negated;
        ins.dst = AllocResult({*v});
        instrs_.push_back(ins);
        return Reg(ins.dst);
      }
      case ExprKind::kFunction: {
        // coalesce short-circuits its arguments and aggregates never belong
        // here — both stay on the scalar evaluator. A registered UDF
        // compiles to a direct call only when every argument is simple
        // (cannot error), so within-lane argument evaluation order has no
        // observable footprint; anything else falls back per lane.
        if (e.fname == "coalesce" || e.IsAggregateCall()) {
          return EmitFallback(e);
        }
        const UdfFn* fn = udfs_ != nullptr ? udfs_->Find(e.fname) : nullptr;
        if (fn == nullptr) return EmitFallback(e);
        for (const ExprPtr& arg : e.args) {
          if (!IsSimpleOperand(*arg)) return EmitFallback(e);
        }
        if (e.args.size() > kMaxAux) return std::nullopt;
        Instr ins;
        ins.op = OpCode::kCallUdf;
        ins.fn = fn;
        ins.aux_begin = static_cast<uint32_t>(aux_.size());
        ins.aux_count = static_cast<uint16_t>(e.args.size());
        for (const ExprPtr& arg : e.args) {
          std::optional<Operand> a = SimpleOperand(*arg);
          if (!a) return std::nullopt;
          aux_.push_back(*a);
        }
        ins.dst = AllocResult({});
        instrs_.push_back(ins);
        return Reg(ins.dst);
      }
      case ExprKind::kCase:
        return EmitFallback(e);
    }
    return std::nullopt;
  }

  std::shared_ptr<const Program> Finish(Operand result) {
    auto prog = std::make_shared<Program>();
    Arena& arena = prog->arena;
    Instr* instrs =
        arena.AllocateArray<Instr>(std::max<size_t>(instrs_.size(), 1));
    std::copy(instrs_.begin(), instrs_.end(), instrs);
    size_t next_set = 0;
    for (size_t i = 0; i < instrs_.size(); ++i) {
      Instr& ins = instrs[i];
      switch (ins.op) {
        case OpCode::kColCmpLit:
        case OpCode::kUdfCmpLit:
        case OpCode::kColBetweenLits:
        case OpCode::kColIsNull:
        case OpCode::kBoolFork:
          ++prog->num_fused;
          break;
        case OpCode::kFallbackLane: {
          ++prog->num_fallback;
          const std::vector<int>& slots = fb_slot_sets_[next_set++];
          int* arr =
              arena.AllocateArray<int>(std::max<size_t>(slots.size(), 1));
          std::copy(slots.begin(), slots.end(), arr);
          ins.fb_slots = arr;
          ins.fb_slot_count = static_cast<uint16_t>(slots.size());
          break;
        }
        default:
          break;
      }
    }
    Operand* aux =
        arena.AllocateArray<Operand>(std::max<size_t>(aux_.size(), 1));
    std::copy(aux_.begin(), aux_.end(), aux);
    Datum* literals =
        arena.CreateArray<Datum>(std::max<size_t>(literals_.size(), 1));
    for (size_t i = 0; i < literals_.size(); ++i) literals[i] = literals_[i];
    prog->instrs = instrs;
    prog->num_instrs = static_cast<uint32_t>(instrs_.size());
    prog->aux = aux;
    prog->literals = literals;
    prog->num_literals = static_cast<uint16_t>(literals_.size());
    prog->num_regs = num_regs_;
    prog->result = result;
    prog->min_width = static_cast<uint32_t>(width_);
    return prog;
  }

  size_t width_;
  const UdfRegistry* udfs_;
  std::vector<Instr> instrs_;
  std::vector<Operand> aux_;
  std::vector<Datum> literals_;
  std::vector<std::vector<int>> fb_slot_sets_;  // per kFallbackLane, in order
  uint16_t next_reg_ = 0;
  uint16_t num_regs_ = 0;
  bool failed_ = false;
};

// ----------------------------------------------------------- interpretation

/// Column access for batch execution: cols[slot][lane].
struct BatchSrc {
  const RowBatch* batch;
  static constexpr bool kIsRow = false;
  const Datum& Col(uint16_t slot, uint32_t lane) const {
    return batch->cols[slot][lane];
  }
  size_t width() const { return batch->num_cols(); }
  const DatumRow* full_row() const { return nullptr; }
};

/// Column access for row execution (scan phase-1 filters): one lane, lane
/// index ignored.
struct RowSrc {
  const DatumRow* row;
  static constexpr bool kIsRow = true;
  const Datum& Col(uint16_t slot, uint32_t) const { return (*row)[slot]; }
  size_t width() const { return row->size(); }
  const DatumRow* full_row() const { return row; }
};

template <typename Src>
const Datum& ReadOperand(const Operand& op, const Program& prog,
                         const Src& src, const ExecState& st,
                         const std::vector<uint32_t>& lanes, size_t i) {
  switch (op.kind) {
    case Operand::Kind::kReg: return st.regs[op.index][i];
    case Operand::Kind::kCol: return src.Col(op.index, lanes[i]);
    default: return prog.literals[op.index];
  }
}

void CountFallbackLanes(ExecState* st, size_t n) {
  st->fallback_lanes += n;
  static metrics::Counter* fallback_lanes =
      metrics::GetCounter("eval.fallback_lanes");
  fallback_lanes->Add(n);
}

void CountTypedLanes(ExecState* st, size_t n) {
  st->typed_lanes += n;
  static metrics::Counter* typed_lanes =
      metrics::GetCounter("eval.typed_lanes");
  typed_lanes->Add(n);
}

void CountBoxedLanes(ExecState* st, size_t n) {
  st->boxed_lanes += n;
  static metrics::Counter* boxed_lanes =
      metrics::GetCounter("eval.boxed_lanes");
  boxed_lanes->Add(n);
}

// ------------------------------------------------------------ typed kernels
//
// Dispatch for the monomorphic kernel loops (engine/typed_kernels.h). Each
// Typed* function decides once per batch — from the column's ColTag, the
// literal's kind and (for register operands) the producing instruction's
// RegTag — whether an unboxed loop reproduces the boxed semantics exactly,
// runs it and returns true, or returns false so the caller falls through to
// the per-lane Datum loop. Error texts and NULL verdicts are byte-identical
// by construction; the only permitted deviation is which lane's runtime
// error surfaces first (same contract as batch vs. row evaluation).

/// The batch type proof for one column operand, with the profile-cost gate:
/// an unprofiled column is only worth a full-column pass when the lane set
/// covers at least half the batch (tags are cached on the batch, so any
/// later instruction or operator reuses the proof for free).
const ColTag* TagOf(const RowBatch* batch, uint16_t slot, size_t num_lanes) {
  if (batch == nullptr || !TypedKernelsEnabled()) return nullptr;
  if (slot >= batch->cols.size()) return nullptr;
  if (const ColTag* t = batch->TagFor(slot)) return t->typed() ? t : nullptr;
  if (num_lanes * 2 < batch->size) return nullptr;
  const ColTag* t = batch->ProfileColumn(slot);
  return t != nullptr && t->typed() ? t : nullptr;
}

void SetRegTag(ExecState* st, uint16_t reg, ColTag::Type type) {
  if (reg < st->reg_tags.size()) st->reg_tags[reg].type = type;
  st->reg_tag_set = true;
}

/// col cmp lit, select mode: refines `sel` in place. Handles every literal
/// kind against a proven column — an incomparable or NULL literal makes the
/// comparison NULL for every lane, which filters everything.
bool TypedSelCmpLit(BinaryOp bop, const RowBatch& batch, uint16_t slot,
                    const ColTag& tag, const Datum& lit, ExecState* st,
                    std::vector<uint32_t>* sel) {
  const size_t n = sel->size();
  bool handled = false;
  switch (tag.type) {
    case ColTag::Type::kInt:
      if (lit.is_int()) {
        handled = typed::WithCmpPred(bop, [&](auto p) {
          typed::SelectCmp(tag.ints.data(), tag, lit.int_value(), p, sel);
        });
      } else if (lit.is_double()) {
        handled = typed::WithCmpPred(bop, [&](auto p) {
          typed::SelectCmp(tag.ints.data(), tag, lit.double_value(), p, sel);
        });
      } else {
        sel->clear();
        handled = true;
      }
      break;
    case ColTag::Type::kDouble:
      if (lit.is_numeric()) {
        handled = typed::WithCmpPred(bop, [&](auto p) {
          typed::SelectCmp(tag.doubles.data(), tag, lit.AsDouble(), p, sel);
        });
      } else {
        sel->clear();
        handled = true;
      }
      break;
    case ColTag::Type::kBool:
      if (lit.is_bool()) {
        handled = typed::WithCmpPred(bop, [&](auto p) {
          typed::SelectCmp(tag.bools.data(), tag,
                           static_cast<uint8_t>(lit.bool_value() ? 1 : 0), p,
                           sel);
        });
      } else {
        sel->clear();
        handled = true;
      }
      break;
    case ColTag::Type::kText:
      if (lit.is_text()) {
        handled = typed::WithCmpPred(bop, [&](auto p) {
          typed::SelectCmpStr(batch.cols[slot], tag, lit.str(), p, sel);
        });
      } else {
        sel->clear();
        handled = true;
      }
      break;
    default:
      break;
  }
  if (handled) CountTypedLanes(st, n);
  return handled;
}

/// col cmp lit, value mode: one Bool/NULL per lane into the dst register.
bool TypedValCmpLit(const Instr& ins, const RowBatch& batch,
                    const ColTag& tag, const Datum& lit,
                    const std::vector<uint32_t>& lanes, ExecState* st) {
  std::vector<Datum>& dst = st->regs[ins.dst];
  const size_t n = lanes.size();
  bool handled = false;
  auto all_null = [&]() {
    for (size_t i = 0; i < n; ++i) dst[i] = Datum::Null();
    handled = true;
  };
  switch (tag.type) {
    case ColTag::Type::kInt:
      if (lit.is_int()) {
        handled = typed::WithCmpPred(ins.bop, [&](auto p) {
          typed::ValueCmp(tag.ints.data(), tag, lit.int_value(), p, lanes,
                          &dst);
        });
      } else if (lit.is_double()) {
        handled = typed::WithCmpPred(ins.bop, [&](auto p) {
          typed::ValueCmp(tag.ints.data(), tag, lit.double_value(), p, lanes,
                          &dst);
        });
      } else {
        all_null();
      }
      break;
    case ColTag::Type::kDouble:
      if (lit.is_numeric()) {
        handled = typed::WithCmpPred(ins.bop, [&](auto p) {
          typed::ValueCmp(tag.doubles.data(), tag, lit.AsDouble(), p, lanes,
                          &dst);
        });
      } else {
        all_null();
      }
      break;
    case ColTag::Type::kBool:
      if (lit.is_bool()) {
        handled = typed::WithCmpPred(ins.bop, [&](auto p) {
          typed::ValueCmp(tag.bools.data(), tag,
                          static_cast<uint8_t>(lit.bool_value() ? 1 : 0), p,
                          lanes, &dst);
        });
      } else {
        all_null();
      }
      break;
    case ColTag::Type::kText:
      if (lit.is_text()) {
        handled = typed::WithCmpPred(ins.bop, [&](auto p) {
          typed::ValueCmpStr(batch.cols[ins.a.index], tag, lit.str(), p,
                             lanes, &dst);
        });
      } else {
        all_null();
      }
      break;
    default:
      break;
  }
  if (handled) {
    CountTypedLanes(st, n);
    SetRegTag(st, ins.dst, ColTag::Type::kBool);
  }
  return handled;
}

/// col BETWEEN lits over a proven numeric column. A NULL or non-numeric
/// bound makes one side's comparison NULL for every lane, hence the whole
/// BETWEEN NULL (negation included), so select mode drops everything and
/// value mode fills NULL.
bool TypedSelBetween(const Instr& ins, const ColTag& tag, const Datum& lo,
                     const Datum& hi, ExecState* st,
                     std::vector<uint32_t>* sel) {
  if (tag.type != ColTag::Type::kInt && tag.type != ColTag::Type::kDouble) {
    return false;
  }
  const size_t n = sel->size();
  if (!lo.is_numeric() || !hi.is_numeric()) {
    sel->clear();
  } else if (tag.type == ColTag::Type::kInt) {
    typed::SelectBetween(tag.ints.data(), tag, typed::MakeBound<int64_t>(lo),
                         typed::MakeBound<int64_t>(hi), ins.negated, sel);
  } else {
    typed::SelectBetween(tag.doubles.data(), tag, typed::MakeBound<double>(lo),
                         typed::MakeBound<double>(hi), ins.negated, sel);
  }
  CountTypedLanes(st, n);
  return true;
}

bool TypedValBetween(const Instr& ins, const ColTag& tag, const Datum& lo,
                     const Datum& hi, const std::vector<uint32_t>& lanes,
                     ExecState* st) {
  if (tag.type != ColTag::Type::kInt && tag.type != ColTag::Type::kDouble) {
    return false;
  }
  std::vector<Datum>& dst = st->regs[ins.dst];
  const size_t n = lanes.size();
  if (!lo.is_numeric() || !hi.is_numeric()) {
    for (size_t i = 0; i < n; ++i) dst[i] = Datum::Null();
  } else if (tag.type == ColTag::Type::kInt) {
    typed::ValueBetween(tag.ints.data(), tag, typed::MakeBound<int64_t>(lo),
                        typed::MakeBound<int64_t>(hi), ins.negated, lanes,
                        &dst);
  } else {
    typed::ValueBetween(tag.doubles.data(), tag, typed::MakeBound<double>(lo),
                        typed::MakeBound<double>(hi), ins.negated, lanes,
                        &dst);
  }
  CountTypedLanes(st, n);
  SetRegTag(st, ins.dst, ColTag::Type::kBool);
  return true;
}

// --- generic kCompare / kArith over register results ---

/// One numeric operand of a generic instruction, resolved once per batch:
/// a proven int/double column (raw array + bitmap), a register a typed
/// kernel filled (monomorphic Datums), or a numeric literal.
struct NumSrc {
  enum class Kind : uint8_t {
    kIntCol, kDblCol, kIntReg, kDblReg, kIntLit, kDblLit
  };
  Kind kind = Kind::kIntLit;
  const int64_t* iv = nullptr;
  const double* dv = nullptr;
  const ColTag* tag = nullptr;
  const std::vector<Datum>* reg = nullptr;
  int64_t li = 0;
  double ld = 0;

  bool is_int() const {
    return kind == Kind::kIntCol || kind == Kind::kIntReg ||
           kind == Kind::kIntLit;
  }
};

/// 1 = resolved, 0 = not provably numeric (boxed path), -1 = NULL literal
/// (the whole instruction is NULL for every lane).
int ResolveNum(const Operand& op, const Program& prog, const RowBatch* batch,
               ExecState* st, size_t num_lanes, NumSrc* out) {
  switch (op.kind) {
    case Operand::Kind::kLit: {
      const Datum& lit = prog.literals[op.index];
      if (lit.is_null()) return -1;
      if (lit.is_int()) {
        out->kind = NumSrc::Kind::kIntLit;
        out->li = lit.int_value();
        out->ld = static_cast<double>(lit.int_value());
        return 1;
      }
      if (lit.is_double()) {
        out->kind = NumSrc::Kind::kDblLit;
        out->ld = lit.double_value();
        return 1;
      }
      return 0;
    }
    case Operand::Kind::kCol: {
      const ColTag* tag = TagOf(batch, op.index, num_lanes);
      if (tag == nullptr) return 0;
      if (tag->type == ColTag::Type::kInt) {
        out->kind = NumSrc::Kind::kIntCol;
        out->iv = tag->ints.data();
        out->tag = tag;
        return 1;
      }
      if (tag->type == ColTag::Type::kDouble) {
        out->kind = NumSrc::Kind::kDblCol;
        out->dv = tag->doubles.data();
        out->tag = tag;
        return 1;
      }
      return 0;
    }
    case Operand::Kind::kReg: {
      if (op.index >= st->reg_tags.size()) return 0;
      const ColTag::Type t = st->reg_tags[op.index].type;
      if (t != ColTag::Type::kInt && t != ColTag::Type::kDouble) return 0;
      out->kind = t == ColTag::Type::kInt ? NumSrc::Kind::kIntReg
                                          : NumSrc::Kind::kDblReg;
      out->reg = &st->regs[op.index];
      return 1;
    }
    default:
      return 0;
  }
}

/// Fetches lane i as int64; only valid when is_int(). False = NULL lane.
inline bool FetchInt(const NumSrc& s, const std::vector<uint32_t>& lanes,
                     size_t i, int64_t* out) {
  switch (s.kind) {
    case NumSrc::Kind::kIntCol: {
      const uint32_t lane = lanes[i];
      if (s.tag->IsNull(lane)) return false;
      *out = s.iv[lane];
      return true;
    }
    case NumSrc::Kind::kIntReg: {
      const Datum& d = (*s.reg)[i];
      if (d.is_null()) return false;
      *out = d.int_value();
      return true;
    }
    default:  // kIntLit
      *out = s.li;
      return true;
  }
}

/// Fetches lane i promoted to double (any source kind). False = NULL lane.
inline bool FetchDouble(const NumSrc& s, const std::vector<uint32_t>& lanes,
                        size_t i, double* out) {
  switch (s.kind) {
    case NumSrc::Kind::kIntCol: {
      const uint32_t lane = lanes[i];
      if (s.tag->IsNull(lane)) return false;
      *out = static_cast<double>(s.iv[lane]);
      return true;
    }
    case NumSrc::Kind::kDblCol: {
      const uint32_t lane = lanes[i];
      if (s.tag->IsNull(lane)) return false;
      *out = s.dv[lane];
      return true;
    }
    case NumSrc::Kind::kIntReg:
    case NumSrc::Kind::kDblReg: {
      const Datum& d = (*s.reg)[i];
      if (d.is_null()) return false;
      *out = d.AsDouble();
      return true;
    }
    default:  // kIntLit / kDblLit (ld carries both)
      *out = s.ld;
      return true;
  }
}

/// Generic comparison with both operands provably numeric: int/int compares
/// exact, anything else in double — Datum::Compare's pairing.
bool TypedCompare(const Instr& ins, const Program& prog, const RowBatch* batch,
                  const std::vector<uint32_t>& lanes, ExecState* st) {
  NumSrc a, b;
  const int ra = ResolveNum(ins.a, prog, batch, st, lanes.size(), &a);
  const int rb = ResolveNum(ins.b, prog, batch, st, lanes.size(), &b);
  if (ra == 0 || rb == 0) return false;
  std::vector<Datum>& dst = st->regs[ins.dst];
  const size_t n = lanes.size();
  if (ra < 0 || rb < 0) {
    for (size_t i = 0; i < n; ++i) dst[i] = Datum::Null();
  } else if (a.is_int() && b.is_int()) {
    typed::WithCmpPred(ins.bop, [&](auto p) {
      for (size_t i = 0; i < n; ++i) {
        int64_t x, y;
        dst[i] = FetchInt(a, lanes, i, &x) && FetchInt(b, lanes, i, &y)
                     ? Datum::Bool(p(x, y))
                     : Datum::Null();
      }
    });
  } else {
    typed::WithCmpPred(ins.bop, [&](auto p) {
      for (size_t i = 0; i < n; ++i) {
        double x, y;
        dst[i] = FetchDouble(a, lanes, i, &x) && FetchDouble(b, lanes, i, &y)
                     ? Datum::Bool(p(x, y))
                     : Datum::Null();
      }
    });
  }
  CountTypedLanes(st, n);
  SetRegTag(st, ins.dst, ColTag::Type::kBool);
  return true;
}

/// Generic arithmetic with both operands provably numeric. int⊗int stays
/// int64, anything else promotes to double; division/modulo by zero carry
/// the boxed path's exact error texts. Which lane's error surfaces first is
/// the one permitted deviation.
bool TypedArith(const Instr& ins, const Program& prog, const RowBatch* batch,
                const std::vector<uint32_t>& lanes, ExecState* st,
                Status* status) {
  NumSrc a, b;
  const int ra = ResolveNum(ins.a, prog, batch, st, lanes.size(), &a);
  const int rb = ResolveNum(ins.b, prog, batch, st, lanes.size(), &b);
  if (ra == 0 || rb == 0) return false;
  std::vector<Datum>& dst = st->regs[ins.dst];
  const size_t n = lanes.size();
  const bool as_int = a.is_int() && b.is_int();
  if (ra < 0 || rb < 0) {
    for (size_t i = 0; i < n; ++i) dst[i] = Datum::Null();
    CountTypedLanes(st, n);
    SetRegTag(st, ins.dst,
              as_int ? ColTag::Type::kInt : ColTag::Type::kDouble);
    return true;
  }
  if (as_int) {
    for (size_t i = 0; i < n; ++i) {
      int64_t x, y;
      if (!FetchInt(a, lanes, i, &x) || !FetchInt(b, lanes, i, &y)) {
        dst[i] = Datum::Null();
        continue;
      }
      switch (ins.bop) {
        case BinaryOp::kAdd: dst[i] = Datum::Int(x + y); break;
        case BinaryOp::kSub: dst[i] = Datum::Int(x - y); break;
        case BinaryOp::kMul: dst[i] = Datum::Int(x * y); break;
        case BinaryOp::kDiv:
          if (y == 0) {
            *status = Status::InvalidArgument("division by zero");
            return true;
          }
          dst[i] = Datum::Int(x / y);
          break;
        default:  // kMod (the compiler only emits arithmetic bops here)
          if (y == 0) {
            *status = Status::InvalidArgument("modulo by zero");
            return true;
          }
          dst[i] = Datum::Int(x % y);
          break;
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      double x, y;
      if (!FetchDouble(a, lanes, i, &x) || !FetchDouble(b, lanes, i, &y)) {
        dst[i] = Datum::Null();
        continue;
      }
      switch (ins.bop) {
        case BinaryOp::kAdd: dst[i] = Datum::Double(x + y); break;
        case BinaryOp::kSub: dst[i] = Datum::Double(x - y); break;
        case BinaryOp::kMul: dst[i] = Datum::Double(x * y); break;
        case BinaryOp::kDiv:
          if (y == 0) {
            *status = Status::InvalidArgument("division by zero");
            return true;
          }
          dst[i] = Datum::Double(x / y);
          break;
        default:  // kMod
          if (y == 0) {
            *status = Status::InvalidArgument("modulo by zero");
            return true;
          }
          dst[i] = Datum::Double(std::fmod(x, y));
          break;
      }
    }
  }
  CountTypedLanes(st, n);
  SetRegTag(st, ins.dst, as_int ? ColTag::Type::kInt : ColTag::Type::kDouble);
  return true;
}

/// The switch loop: executes every instruction over the current lane set,
/// leaving per-lane values in registers. kBoolFork narrows the lane set to
/// the undecided rows (frame stack); the matching kBoolJoin restores it.
template <typename Src>
Status RunProgram(const Program& prog, const Src& src,
                  const std::vector<uint32_t>& lanes_in,
                  const UdfRegistry* udfs, ExecState* st) {
  if (prog.min_width > src.width()) {
    return Status::Internal("bytecode program compiled for wider input");
  }
  st->regs.resize(prog.num_regs);
  if constexpr (!Src::kIsRow) {
    // Row mode never runs typed kernels, so the tag vector is batch-only.
    st->reg_tags.assign(prog.num_regs, {});
  }
  st->frame_depth = 0;
  auto cur_lanes = [&]() -> const std::vector<uint32_t>& {
    return st->frame_depth == 0 ? lanes_in
                                : st->frames[st->frame_depth - 1].lanes;
  };
  for (uint32_t pc = 0; pc < prog.num_instrs; ++pc) {
    const Instr& ins = prog.instrs[pc];
    if constexpr (!Src::kIsRow) st->reg_tag_set = false;
    switch (ins.op) {
      case OpCode::kColCmpLit: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        const Datum& lit = prog.literals[ins.b.index];
        if constexpr (!Src::kIsRow) {
          const ColTag* tag = TagOf(src.batch, ins.a.index, n);
          if (tag != nullptr && TypedValCmpLit(ins, *src.batch, *tag, lit, L,
                                               st)) {
            break;
          }
          CountBoxedLanes(st, n);
        }
        for (size_t i = 0; i < n; ++i) {
          dst[i] = eval_detail::CompareOp(ins.bop, src.Col(ins.a.index, L[i]),
                                          lit);
        }
        break;
      }
      case OpCode::kUdfCmpLit:
      case OpCode::kCallUdf: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        UdfArgs& args = st->udf_args;
        args.resize(ins.aux_count);
        const Datum* lit = ins.op == OpCode::kUdfCmpLit
                               ? &prog.literals[ins.b.index]
                               : nullptr;
        for (size_t i = 0; i < n; ++i) {
          for (uint16_t j = 0; j < ins.aux_count; ++j) {
            args[j] =
                &ReadOperand(prog.aux[ins.aux_begin + j], prog, src, *st, L, i);
          }
          ASSIGN_OR_RETURN(Datum v, (*ins.fn)(args));
          if (lit != nullptr) {
            dst[i] = eval_detail::CompareOp(ins.bop, v, *lit);
          } else {
            dst[i] = std::move(v);
          }
        }
        break;
      }
      case OpCode::kColBetweenLits: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        const Datum& lo = prog.literals[ins.b.index];
        const Datum& hi = prog.literals[ins.c.index];
        if constexpr (!Src::kIsRow) {
          const ColTag* tag = TagOf(src.batch, ins.a.index, n);
          if (tag != nullptr && TypedValBetween(ins, *tag, lo, hi, L, st)) {
            break;
          }
          CountBoxedLanes(st, n);
        }
        for (size_t i = 0; i < n; ++i) {
          const Datum& t = src.Col(ins.a.index, L[i]);
          Datum ge = eval_detail::CompareOp(BinaryOp::kGe, t, lo);
          Datum le = eval_detail::CompareOp(BinaryOp::kLe, t, hi);
          if (ge.is_null() || le.is_null()) {
            dst[i] = Datum::Null();
          } else {
            bool in_range = ge.bool_value() && le.bool_value();
            dst[i] = Datum::Bool(ins.negated ? !in_range : in_range);
          }
        }
        break;
      }
      case OpCode::kColIsNull: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        if constexpr (!Src::kIsRow) {
          const ColTag* tag = TagOf(src.batch, ins.a.index, n);
          if (tag != nullptr) {
            typed::ValueIsNull(*tag, ins.negated, L, &dst);
            CountTypedLanes(st, n);
            SetRegTag(st, ins.dst, ColTag::Type::kBool);
            break;
          }
          CountBoxedLanes(st, n);
        }
        for (size_t i = 0; i < n; ++i) {
          bool null = src.Col(ins.a.index, L[i]).is_null();
          dst[i] = Datum::Bool(ins.negated ? !null : null);
        }
        break;
      }
      case OpCode::kBoolFork: {
        // Reserve the frame before binding the lane set: growing the frame
        // vector moves enclosing frames (and their lane vectors).
        if (st->frame_depth == st->frames.size()) st->frames.emplace_back();
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        ExecState::Frame& f = st->frames[st->frame_depth];
        f.lanes.clear();
        f.pos.clear();
        f.lhs.clear();
        f.dst = ins.dst;
        f.is_and = ins.is_and;
        for (size_t i = 0; i < n; ++i) {
          const Datum& l = ReadOperand(ins.a, prog, src, *st, L, i);
          if (!l.is_null() && l.is_bool() && l.bool_value() != ins.is_and) {
            dst[i] = Datum::Bool(!ins.is_and);  // false AND _, true OR _
          } else {
            f.lanes.push_back(L[i]);
            f.pos.push_back(static_cast<uint32_t>(i));
            f.lhs.push_back(l);
          }
        }
        if (f.lanes.empty()) {
          pc = ins.jump - 1;  // every lane decided: skip region and join
        } else {
          ++st->frame_depth;
        }
        break;
      }
      case OpCode::kBoolJoin: {
        ExecState::Frame& f = st->frames[st->frame_depth - 1];
        const std::vector<uint32_t>& L = f.lanes;
        std::vector<Datum>& dst = st->regs[ins.dst];
        for (size_t k = 0; k < L.size(); ++k) {
          const Datum& r = ReadOperand(ins.a, prog, src, *st, L, k);
          const Datum& l = f.lhs[k];
          Datum& o = dst[f.pos[k]];
          if (!r.is_null() && r.is_bool() && r.bool_value() != ins.is_and) {
            o = Datum::Bool(!ins.is_and);
          } else if (l.is_null() || r.is_null()) {
            o = Datum::Null();
          } else if (!l.is_bool() || !r.is_bool()) {
            return Status::TypeError("AND/OR on non-boolean");
          } else {
            o = Datum::Bool(ins.is_and);
          }
        }
        --st->frame_depth;
        break;
      }
      case OpCode::kCompare: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        if constexpr (!Src::kIsRow) {
          if (TypedKernelsEnabled() &&
              TypedCompare(ins, prog, src.batch, L, st)) {
            break;
          }
          CountBoxedLanes(st, n);
        }
        for (size_t i = 0; i < n; ++i) {
          dst[i] = eval_detail::CompareOp(
              ins.bop, ReadOperand(ins.a, prog, src, *st, L, i),
              ReadOperand(ins.b, prog, src, *st, L, i));
        }
        break;
      }
      case OpCode::kArith: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        if constexpr (!Src::kIsRow) {
          if (TypedKernelsEnabled()) {
            Status typed_status = Status::OK();
            if (TypedArith(ins, prog, src.batch, L, st, &typed_status)) {
              RETURN_NOT_OK(typed_status);
              break;
            }
          }
          CountBoxedLanes(st, n);
        }
        for (size_t i = 0; i < n; ++i) {
          ASSIGN_OR_RETURN(
              Datum v, eval_detail::ArithmeticOp(
                           ins.bop, ReadOperand(ins.a, prog, src, *st, L, i),
                           ReadOperand(ins.b, prog, src, *st, L, i)));
          dst[i] = std::move(v);
        }
        break;
      }
      case OpCode::kLike: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          const Datum& l = ReadOperand(ins.a, prog, src, *st, L, i);
          const Datum& r = ReadOperand(ins.b, prog, src, *st, L, i);
          if (l.is_null() || r.is_null()) {
            dst[i] = Datum::Null();
          } else if (!l.is_text() || !r.is_text()) {
            return Status::TypeError("LIKE on non-text values");
          } else {
            dst[i] = Datum::Bool(LikeMatch(l.str(), r.str()));
          }
        }
        break;
      }
      case OpCode::kConcat: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          const Datum& l = ReadOperand(ins.a, prog, src, *st, L, i);
          const Datum& r = ReadOperand(ins.b, prog, src, *st, L, i);
          dst[i] = l.is_null() || r.is_null()
                       ? Datum::Null()
                       : Datum::Text(l.ToString() + r.ToString());
        }
        break;
      }
      case OpCode::kNot: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          const Datum& v = ReadOperand(ins.a, prog, src, *st, L, i);
          if (v.is_null()) {
            dst[i] = Datum::Null();
          } else if (!v.is_bool()) {
            return Status::TypeError("NOT on non-boolean");
          } else {
            dst[i] = Datum::Bool(!v.bool_value());
          }
        }
        break;
      }
      case OpCode::kNeg: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          const Datum& v = ReadOperand(ins.a, prog, src, *st, L, i);
          if (v.is_null()) {
            dst[i] = Datum::Null();
          } else if (v.is_int()) {
            dst[i] = Datum::Int(-v.int_value());
          } else if (v.is_double()) {
            dst[i] = Datum::Double(-v.double_value());
          } else {
            return Status::TypeError("unary minus on non-numeric");
          }
        }
        break;
      }
      case OpCode::kBetween: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          const Datum& t = ReadOperand(ins.a, prog, src, *st, L, i);
          Datum ge = eval_detail::CompareOp(
              BinaryOp::kGe, t, ReadOperand(ins.b, prog, src, *st, L, i));
          Datum le = eval_detail::CompareOp(
              BinaryOp::kLe, t, ReadOperand(ins.c, prog, src, *st, L, i));
          if (ge.is_null() || le.is_null()) {
            dst[i] = Datum::Null();
          } else {
            bool in_range = ge.bool_value() && le.bool_value();
            dst[i] = Datum::Bool(ins.negated ? !in_range : in_range);
          }
        }
        break;
      }
      case OpCode::kIsNull: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          bool null = ReadOperand(ins.a, prog, src, *st, L, i).is_null();
          dst[i] = Datum::Bool(ins.negated ? !null : null);
        }
        break;
      }
      case OpCode::kInList: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        for (size_t i = 0; i < n; ++i) {
          const Datum& t = ReadOperand(ins.a, prog, src, *st, L, i);
          if (t.is_null()) {
            dst[i] = Datum::Null();
            continue;
          }
          bool matched = false, saw_null = false;
          for (uint16_t j = 0; j < ins.aux_count; ++j) {
            const Datum& item =
                ReadOperand(prog.aux[ins.aux_begin + j], prog, src, *st, L, i);
            Datum eq = eval_detail::CompareOp(BinaryOp::kEq, t, item);
            if (eq.is_null()) {
              saw_null = true;
            } else if (eq.bool_value()) {
              matched = true;
              break;
            }
          }
          if (matched) {
            dst[i] = Datum::Bool(!ins.negated);
          } else if (saw_null) {
            dst[i] = Datum::Null();
          } else {
            dst[i] = Datum::Bool(ins.negated);
          }
        }
        break;
      }
      case OpCode::kFallbackLane: {
        const std::vector<uint32_t>& L = cur_lanes();
        const size_t n = L.size();
        std::vector<Datum>& dst = st->regs[ins.dst];
        dst.resize(n);
        CountFallbackLanes(st, n);
        if constexpr (Src::kIsRow) {
          for (size_t i = 0; i < n; ++i) {
            ASSIGN_OR_RETURN(Datum v,
                             EvalExpr(*ins.fallback, *src.full_row(), udfs));
            dst[i] = std::move(v);
          }
        } else {
          DatumRow& scratch = st->scratch;
          scratch.resize(src.width());
          for (size_t i = 0; i < n; ++i) {
            for (uint16_t k = 0; k < ins.fb_slot_count; ++k) {
              const int s = ins.fb_slots[k];
              // Out-of-range slots stay uncopied; the scalar evaluator
              // reports them with the row path's own error text.
              if (static_cast<size_t>(s) < scratch.size()) {
                scratch[s] = src.Col(static_cast<uint16_t>(s), L[i]);
              }
            }
            ASSIGN_OR_RETURN(Datum v, EvalExpr(*ins.fallback, scratch, udfs));
            dst[i] = std::move(v);
          }
        }
        break;
      }
    }
    if constexpr (!Src::kIsRow) {
      // A dst written by an untyped path loses any stale tag. This must run
      // *after* the instruction: the compiler's stack discipline routinely
      // reuses an operand register as dst, so clearing up front would erase
      // an operand's tag before the typed kernels could read it.
      if (!st->reg_tag_set && ins.dst < st->reg_tags.size()) {
        st->reg_tags[ins.dst].type = ColTag::Type::kUnknown;
      }
    }
  }
  return Status::OK();
}

}  // namespace

std::shared_ptr<const Program> Compile(const Expr& expr, size_t input_width,
                                       const UdfRegistry* udfs) {
  static metrics::Counter* programs_total =
      metrics::GetCounter("bytecode.programs_total");
  static metrics::Counter* compile_ns_total =
      metrics::GetCounter("bytecode.compile_ns_total");
  const uint64_t start = metrics::NowNanos();
  Compiler compiler(input_width, udfs);
  std::shared_ptr<const Program> program = compiler.Run(expr);
  if (program != nullptr) {
    programs_total->Increment();
    compile_ns_total->Add(metrics::NowNanos() - start);
  }
  return program;
}

Status ExecBatch(const Program& program, const RowBatch& batch,
                 const std::vector<uint32_t>& lanes, const UdfRegistry* udfs,
                 ExecState* state, std::vector<Datum>* out) {
  out->clear();
  BatchSrc src{&batch};
  RETURN_NOT_OK(RunProgram(program, src, lanes, udfs, state));
  const size_t n = lanes.size();
  if (program.result.is_reg()) {
    // The register holds exactly one datum per lane; hand the whole vector
    // over instead of moving datums one by one (the old contents of *out
    // become next call's register storage, keeping capacity warm).
    std::vector<Datum>& reg = state->regs[program.result.index];
    out->swap(reg);
  } else {
    out->reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out->push_back(
          ReadOperand(program.result, program, src, *state, lanes, i));
    }
  }
  return Status::OK();
}

Status ExecPredicateBatch(const Program& program, const RowBatch& batch,
                          const UdfRegistry* udfs, ExecState* state,
                          std::vector<uint32_t>* sel) {
  if (sel->empty()) return Status::OK();
  BatchSrc src{&batch};
  if (program.min_width > batch.num_cols()) {
    return Status::Internal("bytecode program compiled for wider input");
  }
  // Select mode: a single fused instruction refines the selection vector in
  // place — the dominant predicate shapes never materialize a boolean column.
  if (program.num_instrs == 1 && program.result.is_reg()) {
    const Instr& ins = program.instrs[0];
    switch (ins.op) {
      case OpCode::kColCmpLit: {
        const std::vector<Datum>& col = batch.cols[ins.a.index];
        const Datum& lit = program.literals[ins.b.index];
        if (const ColTag* tag = TagOf(&batch, ins.a.index, sel->size())) {
          if (TypedSelCmpLit(ins.bop, batch, ins.a.index, *tag, lit, state,
                             sel)) {
            return Status::OK();
          }
        }
        CountBoxedLanes(state, sel->size());
        size_t kept = 0;
        for (uint32_t lane : *sel) {
          Datum v = eval_detail::CompareOp(ins.bop, col[lane], lit);
          if (!v.is_null() && v.bool_value()) (*sel)[kept++] = lane;
        }
        sel->resize(kept);
        return Status::OK();
      }
      case OpCode::kColBetweenLits: {
        const std::vector<Datum>& col = batch.cols[ins.a.index];
        const Datum& lo = program.literals[ins.b.index];
        const Datum& hi = program.literals[ins.c.index];
        if (const ColTag* tag = TagOf(&batch, ins.a.index, sel->size())) {
          if (TypedSelBetween(ins, *tag, lo, hi, state, sel)) {
            return Status::OK();
          }
        }
        CountBoxedLanes(state, sel->size());
        size_t kept = 0;
        for (uint32_t lane : *sel) {
          const Datum& t = col[lane];
          Datum ge = eval_detail::CompareOp(BinaryOp::kGe, t, lo);
          Datum le = eval_detail::CompareOp(BinaryOp::kLe, t, hi);
          if (ge.is_null() || le.is_null()) continue;
          bool in_range = ge.bool_value() && le.bool_value();
          if (ins.negated ? !in_range : in_range) (*sel)[kept++] = lane;
        }
        sel->resize(kept);
        return Status::OK();
      }
      case OpCode::kColIsNull: {
        const std::vector<Datum>& col = batch.cols[ins.a.index];
        if (const ColTag* tag = TagOf(&batch, ins.a.index, sel->size())) {
          const size_t n = sel->size();
          typed::SelectIsNull(*tag, ins.negated, sel);
          CountTypedLanes(state, n);
          return Status::OK();
        }
        CountBoxedLanes(state, sel->size());
        size_t kept = 0;
        for (uint32_t lane : *sel) {
          bool null = col[lane].is_null();
          if (ins.negated ? !null : null) (*sel)[kept++] = lane;
        }
        sel->resize(kept);
        return Status::OK();
      }
      case OpCode::kUdfCmpLit: {
        const Datum& lit = program.literals[ins.b.index];
        UdfArgs& args = state->udf_args;
        args.resize(ins.aux_count);
        size_t kept = 0;
        const size_t n = sel->size();
        for (size_t i = 0; i < n; ++i) {
          for (uint16_t j = 0; j < ins.aux_count; ++j) {
            args[j] = &ReadOperand(program.aux[ins.aux_begin + j], program,
                                   src, *state, *sel, i);
          }
          ASSIGN_OR_RETURN(Datum v, (*ins.fn)(args));
          Datum c = eval_detail::CompareOp(ins.bop, v, lit);
          if (!c.is_null() && c.bool_value()) (*sel)[kept++] = (*sel)[i];
        }
        sel->resize(kept);
        return Status::OK();
      }
      default:
        break;
    }
  }
  RETURN_NOT_OK(RunProgram(program, src, *sel, udfs, state));
  size_t kept = 0;
  for (size_t i = 0; i < sel->size(); ++i) {
    const Datum& v =
        ReadOperand(program.result, program, src, *state, *sel, i);
    if (v.is_null()) continue;  // NULL filters, as in EvalPredicate
    if (!v.is_bool()) {
      return Status::TypeError("predicate did not evaluate to a boolean");
    }
    if (v.bool_value()) (*sel)[kept++] = (*sel)[i];
  }
  sel->resize(kept);
  return Status::OK();
}

Result<bool> ExecPredicateRow(const Program& program, const DatumRow& row,
                              const UdfRegistry* udfs, ExecState* state) {
  RowSrc src{&row};
  if (program.min_width > row.size()) {
    return Status::Internal("bytecode program compiled for wider input");
  }
  if (program.num_instrs == 1 && program.result.is_reg()) {
    const Instr& ins = program.instrs[0];
    if (ins.op == OpCode::kColCmpLit) {
      Datum v = eval_detail::CompareOp(ins.bop, row[ins.a.index],
                                       program.literals[ins.b.index]);
      return !v.is_null() && v.bool_value();
    }
  }
  static const std::vector<uint32_t> kLane0{0};
  Status s = RunProgram(program, src, kLane0, udfs, state);
  if (!s.ok()) return s;
  const Datum& v =
      ReadOperand(program.result, program, src, *state, kLane0, 0);
  if (v.is_null()) return false;
  if (!v.is_bool()) {
    return Status::TypeError("predicate did not evaluate to a boolean");
  }
  return v.bool_value();
}

}  // namespace sinew::engine::bytecode
