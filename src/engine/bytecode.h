// Query compilation: bound expression trees flattened into postfix bytecode
// executed over RowBatch columns.
//
// At plan time `Compile` walks a bound Expr once and emits a flat array of
// tagged-union instructions (`Instr`) that reference batch column slots,
// interned literal-pool entries and virtual registers. Execution is a single
// switch loop over the instruction array per batch — no tree recursion, no
// per-node std::vector<Datum> temporaries for the dominant shapes:
//
//   - kColCmpLit / kColBetweenLits / kColIsNull fuse the extract-then-compare
//     and colref-cmp-literal predicate forms into one opcode; in predicate
//     position a single-instruction program refines the selection vector in
//     place without materializing a boolean column at all.
//   - kUdfCmpLit fuses a simple-argument UDF call (e.g. a sinew_extract_*
//     chain over the reservoir column) with the literal comparison above it,
//     so the extracted value is consumed where it is produced.
//   - kBoolFork/kBoolJoin implement Kleene AND/OR by lane partitioning: the
//     fork evaluates the left side, writes decided lanes (false AND _,
//     true OR _) and narrows the lane set to the undecided rows for the
//     right-side region, exactly mirroring the tree-walk EvalBinaryBatch —
//     a right-side runtime error fires for the same rows it would
//     row-at-a-time.
//   - kFallbackLane covers everything without a vector kernel (CASE,
//     coalesce, UDF calls with non-trivial arguments, IN lists with
//     evaluable items): it runs the scalar evaluator per lane over a scratch
//     row built from compile-time-collected slots, so short-circuit order,
//     which argument's error fires and Kleene NULL handling stay exact by
//     construction. Fallback lanes are counted (ExecState::fallback_lanes,
//     `eval.fallback_lanes`) so interpreter residue is visible.
//
// All program memory — instructions, operand pools, interned literals,
// fallback slot arrays — lives in a bump-pointer arena owned by the Program
// (common/arena.h). Programs are immutable after Compile and attached to the
// PlanNode as shared_ptr<const Program>, so Gather workers building operator
// instances over the same plan share one program; all mutable execution
// scratch lives in the per-operator-instance ExecState.
//
// `Compile` returns nullptr when the expression contains a shape the
// compiler does not handle (unbound references, stars, pathological depth);
// callers then stay on the tree-walk evaluator, whose error text is the
// contract.

#ifndef SINEW_ENGINE_BYTECODE_H_
#define SINEW_ENGINE_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "engine/datum.h"
#include "engine/expr.h"
#include "engine/row_batch.h"
#include "engine/udf.h"

namespace sinew::engine::bytecode {

/// One instruction input: a virtual register (per-lane values produced by an
/// earlier instruction), a batch column slot, or a literal-pool entry.
struct Operand {
  enum class Kind : uint8_t { kNone = 0, kReg, kCol, kLit };
  Kind kind = Kind::kNone;
  uint16_t index = 0;

  bool is_reg() const { return kind == Kind::kReg; }
  bool is_col() const { return kind == Kind::kCol; }
  bool is_lit() const { return kind == Kind::kLit; }
};

enum class OpCode : uint8_t {
  // --- fused shapes ---
  kColCmpLit,       // dst = cmp(col[a], lit[b])
  kUdfCmpLit,       // dst = cmp(fn(aux...), lit[b]); aux operands are col/lit
  kColBetweenLits,  // dst = col[a] [NOT] BETWEEN lit[b] AND lit[c]
  kColIsNull,       // dst = col[a] IS [NOT] NULL
  kBoolFork,        // Kleene AND/OR: decide lanes from lhs `a`, narrow to the
                    // undecided subset; jump past the matching join when none
  kBoolJoin,        // combine saved lhs with rhs `a`, restore the lane set
  // --- generic kernels (operands may be registers) ---
  kCompare,         // dst = cmp(a, b)
  kArith,           // dst = a <cmp-as-arith-op> b (kAdd..kMod)
  kLike,            // dst = a [NOT] LIKE b  (negated unused; parser lowers)
  kConcat,          // dst = a || b
  kNot,             // dst = NOT a
  kNeg,             // dst = -a
  kBetween,         // dst = a [NOT] BETWEEN b AND c
  kIsNull,          // dst = a IS [NOT] NULL
  kInList,          // dst = a [NOT] IN (aux...); aux operands are col/lit
  kCallUdf,         // dst = fn(aux...); aux operands are col/lit
  // --- escape hatch ---
  kFallbackLane,    // dst = EvalExpr(*fallback, scratch-row) per lane
};

const char* OpCodeName(OpCode op);

/// Flat tagged-union instruction. Every field is trivially destructible so
/// the instruction array can live in the raw (unregistered) arena path.
struct Instr {
  OpCode op = OpCode::kCompare;
  BinaryOp bop = BinaryOp::kEq;  // comparison op / arithmetic op
  bool negated = false;          // BETWEEN / IN / IS NULL variants
  bool is_and = false;           // kBoolFork / kBoolJoin: AND vs OR
  uint16_t dst = 0;              // result register
  Operand a, b, c;
  uint32_t aux_begin = 0;        // kInList / kCallUdf / kUdfCmpLit arguments
  uint16_t aux_count = 0;
  uint32_t jump = 0;             // kBoolFork: pc after the matching join
  const UdfFn* fn = nullptr;     // kCallUdf / kUdfCmpLit
  const Expr* fallback = nullptr;    // kFallbackLane: the original subtree
  const int* fb_slots = nullptr;     // sorted unique bound slots of fallback
  uint16_t fb_slot_count = 0;
};

/// A compiled, immutable expression program. All referenced memory (instrs,
/// aux, literals, fallback slot arrays) is owned by `arena`; `fallback`
/// pointers alias the Expr tree the program was compiled from, which the
/// owning PlanNode keeps alive.
struct Program {
  Arena arena{512};
  const Instr* instrs = nullptr;
  uint32_t num_instrs = 0;
  const Operand* aux = nullptr;
  const Datum* literals = nullptr;
  uint16_t num_literals = 0;
  uint16_t num_regs = 0;
  /// Where the final value lives after the last instruction (may be a bare
  /// column or literal for trivial programs with num_instrs == 0).
  Operand result;
  /// Input width the program was compiled against; executing over a narrower
  /// batch is an internal error.
  uint32_t min_width = 0;

  // Static shape counters for EXPLAIN ANALYZE.
  uint32_t num_fused = 0;     // fused opcodes incl. kBoolFork
  uint32_t num_fallback = 0;  // kFallbackLane instructions
};

/// Per-operator-instance execution scratch, reused across batches so the
/// steady state allocates nothing. Not thread-safe; Gather workers each own
/// one per operator instance.
struct ExecState {
  std::vector<std::vector<Datum>> regs;

  /// Per-register type evidence within one RunProgram call: a typed kernel
  /// that fills a register with exactly one Datum kind (plus NULLs) records
  /// it so downstream kCompare/kArith can stay monomorphic on register
  /// operands. Cleared at the top of every program run and whenever an
  /// untyped instruction writes the register.
  struct RegTag {
    ColTag::Type type = ColTag::Type::kUnknown;
  };
  std::vector<RegTag> reg_tags;
  /// Did the instruction currently executing record a tag for its dst
  /// register? Set by the typed kernels, checked (and reset) by the
  /// interpreter loop after each instruction — a dst written by a boxed
  /// path must lose any stale tag, but only *after* the instruction ran,
  /// because stack discipline routinely reuses an operand register as dst.
  bool reg_tag_set = false;

  /// One kBoolFork/kBoolJoin nesting level: the undecided lane subset, each
  /// undecided lane's position in the enclosing lane set, and its saved
  /// left-side value for the join's Kleene combine.
  struct Frame {
    std::vector<uint32_t> lanes;
    std::vector<uint32_t> pos;
    std::vector<Datum> lhs;
    uint16_t dst = 0;
    bool is_and = false;
  };
  std::vector<Frame> frames;  // high-water storage; frame_depth is live size
  size_t frame_depth = 0;

  DatumRow scratch;        // kFallbackLane scratch row (batch source)
  UdfArgs udf_args;        // kCallUdf / kUdfCmpLit argument pointers
  std::vector<Datum> vals; // predicate-mode value column (generic path)

  /// Lanes routed through kFallbackLane since the last flush; the owning
  /// operator drains this into its OperatorStats.
  uint64_t fallback_lanes = 0;
  /// Lanes served by monomorphic typed kernels vs. the boxed per-lane Datum
  /// loops, counted over the specializable opcodes only (kColCmpLit,
  /// kColBetweenLits, kColIsNull, kCompare, kArith). Drained like
  /// fallback_lanes.
  uint64_t typed_lanes = 0;
  uint64_t boxed_lanes = 0;

  /// Returns the state to its post-construction shape, releasing any scratch
  /// vector whose capacity exceeds `shrink_threshold` datums. Register
  /// vectors high-water to the widest batch ever executed and would
  /// otherwise pin that memory for the lifetime of a pooled operator or a
  /// long-lived session; call this at operator close (after draining the
  /// lane counters) or between queries on a reused state.
  void Reset(size_t shrink_threshold = 0) {
    frame_depth = 0;
    fallback_lanes = 0;
    typed_lanes = 0;
    boxed_lanes = 0;
    auto shrink = [shrink_threshold](auto& v) {
      if (v.capacity() > shrink_threshold) {
        // Swap with a fresh temporary: `v = {}` would pick the
        // initializer-list assignment, which clears but keeps capacity.
        std::remove_reference_t<decltype(v)>().swap(v);
      } else {
        v.clear();
      }
    };
    for (auto& reg : regs) shrink(reg);
    shrink(regs);
    for (Frame& f : frames) {
      shrink(f.lanes);
      shrink(f.pos);
      shrink(f.lhs);
    }
    shrink(frames);
    shrink(reg_tags);
    shrink(scratch);
    shrink(udf_args);
    shrink(vals);
  }
};

/// Process-wide kill switch for the typed kernels (default on). Off forces
/// every instruction onto the boxed per-lane Datum loops — the PR 9
/// behavior — used by the differential suite and the boxed/typed bench
/// configs. Reads are relaxed; flip it only from test/bench setup code.
bool TypedKernelsEnabled();
void SetTypedKernelsEnabled(bool enabled);

/// Compiles a bound expression into a program executable over batches whose
/// columns match the schema the expression was bound against (`input_width`
/// slots). `udfs` resolves function calls at compile time; the resolved
/// UdfFn pointers stay valid for the registry's lifetime (std::map nodes).
/// Returns nullptr when the expression cannot be compiled — the caller keeps
/// using the tree-walk evaluator.
std::shared_ptr<const Program> Compile(const Expr& expr, size_t input_width,
                                       const UdfRegistry* udfs);

/// Evaluates the program for every lane in `lanes` (physical row indices
/// into `batch`), one datum per lane into `*out` — the compiled counterpart
/// of EvalExprBatch.
Status ExecBatch(const Program& program, const RowBatch& batch,
                 const std::vector<uint32_t>& lanes, const UdfRegistry* udfs,
                 ExecState* state, std::vector<Datum>* out);

/// Predicate mode: evaluates over the lanes in `*sel` and keeps only the
/// TRUE lanes (NULL filters, non-boolean errors), preserving order — the
/// compiled EvalPredicateBatch. Single-instruction fused programs refine the
/// selection vector directly without materializing a boolean column.
Status ExecPredicateBatch(const Program& program, const RowBatch& batch,
                          const UdfRegistry* udfs, ExecState* state,
                          std::vector<uint32_t>* sel);

/// Row mode: the compiled EvalPredicate, used by the scan's phase-1 decode
/// filter where rows are materialized one at a time.
Result<bool> ExecPredicateRow(const Program& program, const DatumRow& row,
                              const UdfRegistry* udfs, ExecState* state);

}  // namespace sinew::engine::bytecode

#endif  // SINEW_ENGINE_BYTECODE_H_
