// The engine's system catalog of tables.

#ifndef SINEW_ENGINE_CATALOG_H_
#define SINEW_ENGINE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "engine/table.h"

namespace sinew::engine {

class Catalog {
 public:
  Result<Table*> CreateTable(std::string name, Schema schema) {
    std::lock_guard lock(mutex_);
    if (tables_.count(name) != 0) {
      return Status::AlreadyExists("table ", name, " already exists");
    }
    auto table = std::make_unique<Table>(name, std::move(schema));
    Table* ptr = table.get();
    tables_.emplace(std::move(name), std::move(table));
    return ptr;
  }

  Result<Table*> GetTable(std::string_view name) const {
    std::lock_guard lock(mutex_);
    auto it = tables_.find(std::string(name));
    if (it == tables_.end()) {
      return Status::NotFound("table ", name, " does not exist");
    }
    return it->second.get();
  }

  Status DropTable(std::string_view name) {
    std::lock_guard lock(mutex_);
    auto it = tables_.find(std::string(name));
    if (it == tables_.end()) {
      return Status::NotFound("table ", name, " does not exist");
    }
    tables_.erase(it);
    return Status::OK();
  }

  std::vector<std::string> TableNames() const {
    std::lock_guard lock(mutex_);
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, table] : tables_) names.push_back(name);
    return names;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_CATALOG_H_
