#include "engine/columnar.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"

namespace sinew::engine {

namespace {

constexpr uint8_t kSegmentFormatVersion = 1;

Datum StripValueAt(const ColumnStrip& s, uint32_t dense_idx) {
  switch (s.type) {
    case ValueType::kBool:
      return Datum::Bool(s.bools[dense_idx] != 0);
    case ValueType::kInt:
      return Datum::Int(s.ints[dense_idx]);
    case ValueType::kDouble:
      return Datum::Double(s.doubles[dense_idx]);
    case ValueType::kString: {
      const uint32_t begin = s.str_offsets[dense_idx];
      const uint32_t end = s.str_offsets[dense_idx + 1];
      return Datum::Text(s.str_blob.substr(begin, end - begin));
    }
    default:
      return Datum::Null();
  }
}

}  // namespace

Datum StripRef::GetDatum(uint32_t i) const {
  const uint64_t word = strip.presence[i / 64];
  const uint32_t bit = i % 64;
  if (((word >> bit) & 1) == 0) return Datum::Null();
  const uint32_t dense_idx =
      rank[i / 64] +
      static_cast<uint32_t>(__builtin_popcountll(word & ((uint64_t{1} << bit) - 1)));
  return StripValueAt(strip, dense_idx);
}

StripRef MakeStripRef(ColumnStrip strip) {
  StripRef ref;
  ref.rank.resize(strip.presence.size());
  uint32_t running = 0;
  for (size_t w = 0; w < strip.presence.size(); ++w) {
    ref.rank[w] = running;
    running += static_cast<uint32_t>(__builtin_popcountll(strip.presence[w]));
  }
  ref.non_null = running;
  if (running > 0) {
    switch (strip.type) {
      case ValueType::kBool:
        ref.zone_min = Datum::Bool(strip.zone_min_bool != 0);
        ref.zone_max = Datum::Bool(strip.zone_max_bool != 0);
        break;
      case ValueType::kInt:
        ref.zone_min = Datum::Int(strip.zone_min_int);
        ref.zone_max = Datum::Int(strip.zone_max_int);
        break;
      case ValueType::kDouble:
        ref.zone_min = Datum::Double(strip.zone_min_double);
        ref.zone_max = Datum::Double(strip.zone_max_double);
        break;
      case ValueType::kString:
        ref.zone_min = Datum::Text(strip.zone_min_str);
        ref.zone_max = Datum::Text(strip.zone_max_str);
        break;
      default:
        break;
    }
  }
  ref.strip = std::move(strip);
  return ref;
}

void StripAppend(ColumnStrip* s, uint32_t i, bool v) {
  s->SetPresent(i);
  s->bools.push_back(v ? 1 : 0);
  const uint8_t b = v ? 1 : 0;
  if (!s->zone_valid) {
    s->zone_valid = true;
    s->zone_min_bool = s->zone_max_bool = b;
  } else {
    if (b < s->zone_min_bool) s->zone_min_bool = b;
    if (b > s->zone_max_bool) s->zone_max_bool = b;
  }
}

void StripAppend(ColumnStrip* s, uint32_t i, int64_t v) {
  s->SetPresent(i);
  s->ints.push_back(v);
  if (!s->zone_valid) {
    s->zone_valid = true;
    s->zone_min_int = s->zone_max_int = v;
  } else {
    if (v < s->zone_min_int) s->zone_min_int = v;
    if (v > s->zone_max_int) s->zone_max_int = v;
  }
}

void StripAppend(ColumnStrip* s, uint32_t i, double v) {
  s->SetPresent(i);
  s->doubles.push_back(v);
  if (std::isnan(v)) {
    // NaN poisons ordered comparison: flag it and keep the bounds over the
    // remaining values (ZoneCanSkip refuses to skip NaN strips regardless).
    s->has_nan = true;
    return;
  }
  if (!s->zone_valid) {
    s->zone_valid = true;
    s->zone_min_double = s->zone_max_double = v;
  } else {
    if (v < s->zone_min_double) s->zone_min_double = v;
    if (v > s->zone_max_double) s->zone_max_double = v;
  }
}

void StripAppend(ColumnStrip* s, uint32_t i, std::string_view v) {
  s->SetPresent(i);
  if (s->str_offsets.empty()) s->str_offsets.push_back(0);
  s->str_blob.append(v);
  s->str_offsets.push_back(static_cast<uint32_t>(s->str_blob.size()));
  if (!s->zone_valid) {
    s->zone_valid = true;
    s->zone_min_str.assign(v);
    s->zone_max_str.assign(v);
  } else {
    if (v < s->zone_min_str) s->zone_min_str.assign(v);
    if (v > s->zone_max_str) s->zone_max_str.assign(v);
  }
}

bool ZoneCanSkip(const StripRef& strip, BinaryOp op, const Datum& literal) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return false;
  }
  // Comparison against NULL is NULL for every row: nothing matches.
  if (literal.is_null()) return true;
  // All-null strip: every comparison is NULL, nothing matches.
  if (strip.non_null == 0) return true;
  // NaN anywhere defeats ordered bounds — Datum::Compare treats NaN as equal
  // to everything, so a NaN row (or literal) can satisfy any comparison.
  if (strip.strip.has_nan) return false;
  if (literal.is_double() && std::isnan(literal.double_value())) return false;
  // SqlCompare yields NULL unless both sides are numeric or same-kind; an
  // incomparable literal therefore matches nothing.
  const bool comparable =
      (strip.zone_min.is_numeric() && literal.is_numeric()) ||
      strip.zone_min.kind() == literal.kind();
  if (!comparable) return true;
  const int cl_min = Datum::Compare(literal, strip.zone_min);
  const int cl_max = Datum::Compare(literal, strip.zone_max);
  switch (op) {
    case BinaryOp::kEq:  // value == L impossible when L outside [min, max]
      return cl_min < 0 || cl_max > 0;
    case BinaryOp::kNe:  // value != L impossible when min == L == max
      return cl_min == 0 && cl_max == 0;
    case BinaryOp::kLt:  // value < L impossible when L <= min
      return cl_min <= 0;
    case BinaryOp::kLe:  // value <= L impossible when L < min
      return cl_min < 0;
    case BinaryOp::kGt:  // value > L impossible when L >= max
      return cl_max >= 0;
    case BinaryOp::kGe:  // value >= L impossible when L > max
      return cl_max > 0;
    default:
      return false;
  }
}

Datum StripColumn::GetDatum(uint64_t rid) const {
  const uint64_t s = rid / kStripRows;
  if (s >= strips.size()) return Datum::Null();
  const StripRef& ref = strips[s];
  const uint64_t offset = rid - ref.strip.first_row;
  if (offset >= ref.strip.row_count) return Datum::Null();
  return ref.GetDatum(static_cast<uint32_t>(offset));
}

const StripColumn* ColumnarSegment::Find(std::string_view source_column,
                                         const std::vector<uint32_t>& prefix_ids,
                                         uint32_t attr_id,
                                         ValueType type) const {
  for (const StripColumn& col : columns_) {
    if (col.attr_id == attr_id && col.type == type &&
        col.source_column == source_column && col.prefix_ids == prefix_ids) {
      return &col;
    }
  }
  return nullptr;
}

std::string ColumnarSegment::Serialize() const {
  BufferWriter w;
  w.PutU8(kSegmentFormatVersion);
  w.PutU64(row_count_);
  w.PutVarint(columns_.size());
  for (const StripColumn& col : columns_) {
    w.PutLengthPrefixed(col.source_column);
    w.PutVarint(col.prefix_ids.size());
    for (uint32_t id : col.prefix_ids) w.PutVarint(id);
    w.PutVarint(col.attr_id);
    w.PutU8(static_cast<uint8_t>(col.type));
    w.PutVarint(col.strips.size());
    for (const StripRef& ref : col.strips) {
      w.PutLengthPrefixed(EncodeColumnStrip(ref.strip));
    }
  }
  return w.Release();
}

Result<std::shared_ptr<const ColumnarSegment>> ColumnarSegment::Deserialize(
    std::string_view payload) {
  BufferReader r(payload);
  ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kSegmentFormatVersion) {
    return Status::IOError("unknown columnar segment version ", version);
  }
  ASSIGN_OR_RETURN(uint64_t row_count, r.ReadU64());
  ASSIGN_OR_RETURN(uint64_t num_columns, r.ReadVarint());
  const uint64_t expected_strips =
      (row_count + kStripRows - 1) / kStripRows;
  std::vector<StripColumn> columns;
  columns.reserve(num_columns);
  for (uint64_t c = 0; c < num_columns; ++c) {
    StripColumn col;
    ASSIGN_OR_RETURN(std::string_view source, r.ReadLengthPrefixed());
    col.source_column.assign(source);
    ASSIGN_OR_RETURN(uint64_t num_prefixes, r.ReadVarint());
    col.prefix_ids.reserve(num_prefixes);
    for (uint64_t p = 0; p < num_prefixes; ++p) {
      ASSIGN_OR_RETURN(uint64_t id, r.ReadVarint());
      col.prefix_ids.push_back(static_cast<uint32_t>(id));
    }
    ASSIGN_OR_RETURN(uint64_t attr_id, r.ReadVarint());
    col.attr_id = static_cast<uint32_t>(attr_id);
    ASSIGN_OR_RETURN(uint8_t type_byte, r.ReadU8());
    col.type = static_cast<ValueType>(type_byte);
    ASSIGN_OR_RETURN(uint64_t num_strips, r.ReadVarint());
    if (num_strips != expected_strips) {
      return Status::IOError("columnar segment strip count ", num_strips,
                                " != expected ", expected_strips);
    }
    col.strips.reserve(num_strips);
    for (uint64_t s = 0; s < num_strips; ++s) {
      ASSIGN_OR_RETURN(std::string_view encoded, r.ReadLengthPrefixed());
      ASSIGN_OR_RETURN(ColumnStrip strip, DecodeColumnStrip(encoded));
      if (strip.first_row != s * kStripRows) {
        return Status::IOError("columnar segment strip first_row ",
                                  strip.first_row, " misaligned");
      }
      const uint64_t expected_rows =
          std::min<uint64_t>(kStripRows, row_count - strip.first_row);
      if (strip.row_count != expected_rows) {
        return Status::IOError("columnar segment strip covers ",
                                  strip.row_count, " rows, expected ",
                                  expected_rows);
      }
      if (strip.type != col.type) {
        return Status::IOError("columnar segment strip type mismatch");
      }
      col.strips.push_back(MakeStripRef(std::move(strip)));
    }
    columns.push_back(std::move(col));
  }
  if (!r.AtEnd()) {
    return Status::IOError("columnar segment has trailing bytes");
  }
  return std::make_shared<const ColumnarSegment>(row_count,
                                                 std::move(columns));
}

}  // namespace sinew::engine
