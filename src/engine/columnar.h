// Columnar segment: the engine-side view of a cold table segment's shredded
// column strips. At flush/compaction time the sinew layer shreds frequent
// reservoir attributes of rows [0, row_count) into kStripRows-sized
// ColumnStrips; this header wraps the decoded strips with rank indexes and
// Datum zone bounds so the executor can
//
//   - serve SinewExtract targets for cold rows straight out of the typed
//     value vectors (dense move when a strip has no nulls, bitmap-rank
//     scatter otherwise) without touching the row reservoir, and
//   - skip whole strips whose zone map proves no row can match a pushed
//     comparison predicate (ZoneCanSkip).
//
// The row reservoir stays authoritative: any attribute/row not covered here
// (hot memtable tail, rare or multi-typed attributes, a missing or corrupt
// sidecar) falls back to reservoir decode, so a segment is purely an
// accelerator and dropping it is always correct.

#ifndef SINEW_ENGINE_COLUMNAR_H_
#define SINEW_ENGINE_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/column_strip.h"
#include "common/result.h"
#include "engine/datum.h"
#include "engine/expr.h"
#include "engine/row_batch.h"

namespace sinew::engine {

/// Rows per strip. Matches kScanChunk so one scan chunk is one strip and the
/// zone-map check in the scan loop lands exactly on strip boundaries.
inline constexpr uint32_t kStripRows = 1024;

/// A decoded strip plus the access structures the executor needs: Datum zone
/// bounds and a per-word rank index into the rank-dense value vectors.
struct StripRef {
  ColumnStrip strip;
  Datum zone_min;  ///< NULL when the strip is all-null
  Datum zone_max;
  /// rank[w] = number of presence bits set in words [0, w).
  std::vector<uint32_t> rank;
  uint32_t non_null = 0;

  bool AllPresent() const { return non_null == strip.row_count; }

  /// Value of row (strip.first_row + i), NULL when absent. `i` must be
  /// < strip.row_count.
  Datum GetDatum(uint32_t i) const;
};

/// Builds the rank index and zone Datums for a finished strip.
StripRef MakeStripRef(ColumnStrip strip);

/// Append helpers for strip construction (shredder, tests): mark row-offset
/// `i` present, push the value rank-dense, and fold it into the zone map.
/// The strip's presence vector must already be sized for its row_count.
void StripAppend(ColumnStrip* s, uint32_t i, bool v);
void StripAppend(ColumnStrip* s, uint32_t i, int64_t v);
void StripAppend(ColumnStrip* s, uint32_t i, double v);
void StripAppend(ColumnStrip* s, uint32_t i, std::string_view v);

/// True when the zone map proves no row of the strip can satisfy
/// `value <op> literal` (op a comparison; everything else returns false).
/// Sound against the executor's SQL comparison semantics: all-null strips
/// and kind-incomparable literals always skip (the comparison is NULL for
/// every row), double strips containing NaN and NaN literals never skip
/// (NaN defeats ordered bounds), and the bound checks reuse Datum::Compare
/// exactly as SqlCompare does.
bool ZoneCanSkip(const StripRef& strip, BinaryOp op, const Datum& literal);

/// All strips of one shredded attribute. Keyed by the reservoir source
/// column plus the canonical attribute-id descent chain, so lookups from
/// plan ExtractTargets are exact: an ancestor-sourced chain (different
/// source column / suffix chain) simply misses and falls back to the row
/// reservoir.
struct StripColumn {
  std::string source_column;        ///< reservoir column, e.g. "_data"
  std::vector<uint32_t> prefix_ids; ///< object-typed ids of dotted prefixes
  uint32_t attr_id = 0;
  ValueType type = ValueType::kNull;
  /// strips[s] covers rows [s*kStripRows, min((s+1)*kStripRows, row_count)).
  std::vector<StripRef> strips;

  Datum GetDatum(uint64_t rid) const;
};

/// Maps a strip's declared value type onto the batch ColTag domain, for
/// seeding RowBatch type tags when an extract output column is filled
/// entirely from strips of this column (plus NULLs for uncovered lanes).
/// Types without a monomorphic kernel map to kUnknown so the VM's profile
/// pass classifies on its own.
inline ColTag::Type StripTagType(ValueType type) {
  switch (type) {
    case ValueType::kBool: return ColTag::Type::kBool;
    case ValueType::kInt: return ColTag::Type::kInt;
    case ValueType::kDouble: return ColTag::Type::kDouble;
    case ValueType::kString: return ColTag::Type::kText;
    default: return ColTag::Type::kUnknown;
  }
}

/// Immutable shredded image of rows [0, row_count) of one table, attached to
/// the Table as a shared_ptr snapshot. Readers snapshot the pointer under
/// the table latch; UpdateRow detaches the whole segment before mutating any
/// covered row, so a non-null snapshot is always consistent with the row
/// bytes it was shredded from.
class ColumnarSegment {
 public:
  ColumnarSegment(uint64_t row_count, std::vector<StripColumn> columns)
      : row_count_(row_count), columns_(std::move(columns)) {}

  uint64_t row_count() const { return row_count_; }
  const std::vector<StripColumn>& columns() const { return columns_; }

  /// Exact-key lookup; nullptr = not shredded, use the row reservoir.
  const StripColumn* Find(std::string_view source_column,
                          const std::vector<uint32_t>& prefix_ids,
                          uint32_t attr_id, ValueType type) const;

  /// Payload for the generation sidecar (persistence wraps it in a
  /// checksummed image footer; each strip additionally carries its own CRC).
  std::string Serialize() const;

  /// Strict inverse of Serialize: any corruption or inconsistency rejects
  /// the whole segment (callers fall back to the row reservoir).
  static Result<std::shared_ptr<const ColumnarSegment>> Deserialize(
      std::string_view payload);

 private:
  uint64_t row_count_ = 0;
  std::vector<StripColumn> columns_;
};

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_COLUMNAR_H_
