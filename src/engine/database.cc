#include "engine/database.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/metrics.h"
#include "common/query_log.h"

namespace sinew::engine {

namespace {

/// Virtual system tables: SELECT-ing from them serves a snapshot of the
/// global metrics registry / workload query log through the ordinary
/// planner/executor. `sinew_attribute_stats` is refreshed by the Sinew
/// layer (it owns the attribute dictionary), but its name is reserved here
/// so user DDL can never squat on it.
constexpr std::string_view kMetricsTableName = "sinew_metrics";
constexpr std::string_view kQueryLogTableName = "sinew_query_log";
constexpr std::string_view kAttributeStatsTableName = "sinew_attribute_stats";

bool ReferencesTable(const SelectStatement& stmt, std::string_view name) {
  return std::any_of(stmt.from.begin(), stmt.from.end(),
                     [name](const TableRef& ref) {
                       return ref.table_name == name;
                     });
}

/// Delete + re-append refresh idiom for system tables: concurrent readers
/// may hold the Table*, and plans are built against it, so the table object
/// must survive refreshes.
Status ClearTableRows(Table* table) {
  const uint64_t end = table->RowSlotCount();
  for (uint64_t rid = 0; rid < end; ++rid) {
    if (table->IsLive(rid)) RETURN_NOT_OK(table->DeleteRow(rid));
  }
  return Status::OK();
}

/// Walks the plan tree summing base-scan actuals into the exec info.
void AccumulateScanStats(const PlanNode& node, const PlanStats& stats,
                         QueryExecInfo* info) {
  if (node.kind == PlanKind::kSeqScan) {
    if (OperatorStats* s = stats.For(node)) {
      info->rows_in += s->rows.load(std::memory_order_relaxed);
      info->zone_skips += s->zone_skips.load(std::memory_order_relaxed);
    }
  }
  for (const auto& child : node.children) {
    AccumulateScanStats(*child, stats, info);
  }
}

/// Splits multi-line text into one QueryResult text row per line, the shape
/// EXPLAIN output takes.
QueryResult TextResult(const std::string& column, const std::string& text) {
  QueryResult result;
  result.column_names.push_back(column);
  result.column_types.push_back(ColumnType::kText);
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    result.rows.push_back(
        DatumRow{Datum::Text(text.substr(start, end - start))});
    start = end + 1;
  }
  return result;
}

QueryResult CountResult(int64_t n) {
  QueryResult result;
  result.column_names.push_back("count");
  result.column_types.push_back(ColumnType::kInt);
  result.rows.push_back(DatumRow{Datum::Int(n)});
  return result;
}

/// Implicit store coercions (int literal into a double column, text into
/// bytes). Anything else is left for the row codec to type-check.
Datum CoerceForColumn(Datum value, ColumnType type) {
  if (value.is_null()) return value;
  if (type == ColumnType::kDouble && value.is_int()) {
    return Datum::Double(static_cast<double>(value.int_value()));
  }
  if (type == ColumnType::kBytes && value.is_text()) {
    return Datum::Bytes(value.str());
  }
  if (type == ColumnType::kText && value.is_bytes()) {
    return Datum::Text(value.str());
  }
  return value;
}

/// Builds the scan-visible ExecSchema (live columns + __rid) and the
/// corresponding live slot list for programmatic row iteration.
void ScanSchemaFor(const Table& table, const std::string& alias,
                   ExecSchema* schema, std::vector<size_t>* live_slots) {
  const Schema s = table.SchemaSnapshot();
  *live_slots = s.LiveSlots();
  for (size_t slot : *live_slots) {
    const Column& col = s.columns()[slot];
    schema->cols.push_back(ExecSchema::Col{alias, col.name, col.type});
  }
  schema->cols.push_back(ExecSchema::Col{alias, "__rid", ColumnType::kInt});
}

}  // namespace

Database::Database(PlannerOptions planner_options, ExecOptions exec_options)
    : planner_options_(planner_options), exec_options_(exec_options) {
  RegisterBuiltinFunctions(&udfs_);
}

Result<QueryResult> Database::Execute(std::string_view sql) {
  ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  return ExecuteStatement(stmt);
}

Result<PlanPtr> Database::PlanStatement(const SelectStatement& stmt) {
  RETURN_NOT_OK(MaybeRefreshSystemTables(stmt));
  Planner planner(&catalog_, &udfs_, planner_options_);
  return planner.PlanSelect(stmt);
}

Result<QueryResult> Database::ExecuteStatement(const Statement& stmt) {
  return ExecuteStatement(stmt, nullptr);
}

Result<QueryResult> Database::ExecuteStatement(const Statement& stmt,
                                               QueryExecInfo* info) {
  if (info != nullptr && stmt.kind != StatementKind::kSelect) {
    // Non-SELECT statements get wall-clock + affected-rows telemetry only.
    const uint64_t start = metrics::NowNanos();
    Result<QueryResult> result = ExecuteStatement(stmt);
    info->exec_ns = metrics::NowNanos() - start;
    if (result.ok()) {
      if (result->rows.size() == 1 && result->column_names.size() == 1 &&
          result->column_names[0] == "count" &&
          result->rows[0][0].is_int()) {
        info->rows_out =
            static_cast<uint64_t>(result->rows[0][0].int_value());
      } else {
        info->rows_out = result->rows.size();
      }
    }
    return result;
  }
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*stmt.select, info);
    case StatementKind::kExplain:
      return ExecuteExplain(stmt);
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(*stmt.create_table);
    case StatementKind::kInsert:
      return ExecuteInsert(*stmt.insert);
    case StatementKind::kUpdate:
      return ExecuteUpdate(*stmt.update);
    case StatementKind::kDelete:
      return ExecuteDelete(*stmt.del);
    case StatementKind::kAnalyze: {
      ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.analyze->table));
      RETURN_NOT_OK(table->Analyze());
      return CountResult(static_cast<int64_t>(table->LiveRowCount()));
    }
  }
  return Status::Internal("unknown statement kind");
}

Result<PlanPtr> Database::Plan(std::string_view sql) {
  ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (stmt.kind != StatementKind::kSelect &&
      stmt.kind != StatementKind::kExplain) {
    return Status::InvalidArgument("Plan() requires a SELECT");
  }
  return PlanStatement(*stmt.select);
}

Result<std::string> Database::Explain(std::string_view sql) {
  ASSIGN_OR_RETURN(PlanPtr plan, Plan(sql));
  return plan->DebugString();
}

Result<QueryResult> Database::ExecuteSelect(const SelectStatement& stmt,
                                            QueryExecInfo* info) {
  const uint64_t plan_start = metrics::NowNanos();
  ASSIGN_OR_RETURN(PlanPtr plan, PlanStatement(stmt));
  const uint64_t plan_ns = metrics::NowNanos() - plan_start;
  if (info == nullptr) {
    return ExecutePlan(*plan, &udfs_, exec_options_);
  }
  info->plan_ns = plan_ns;
  info->plan_hash = qlog::HashFingerprint(plan->DebugString());
  // Collect per-node actuals with counters only; operator wall-clock timing
  // (time_operators) stays off — two clock reads per batch per operator is
  // the overhead the telemetry budget doesn't spend on every query.
  PlanStats stats(*plan);
  ExecOptions options = exec_options_;
  options.stats = &stats;
  const uint64_t exec_start = metrics::NowNanos();
  Result<QueryResult> result = ExecutePlan(*plan, &udfs_, options);
  info->exec_ns = metrics::NowNanos() - exec_start;
  AccumulateScanStats(*plan, stats, info);
  if (OperatorStats* root = stats.For(*plan)) {
    info->batches = root->batches.load(std::memory_order_relaxed);
  }
  if (result.ok()) info->rows_out = result->rows.size();
  if (slow_query_threshold_ns_ > 0 &&
      info->exec_ns > slow_query_threshold_ns_ && result.ok()) {
    // Slow query: dump the annotated plan tree into the trace ring. Per-op
    // times print as 0 (timing off, see above); cardinality actuals are live.
    metrics::MetricsRegistry::Global()->AddTrace(metrics::TraceEvent{
        "query.slow", ExplainAnalyzeText(*plan, stats), exec_start,
        info->exec_ns, info->rows_out});
  }
  return result;
}

Result<QueryResult> Database::ExecuteExplain(const Statement& stmt) {
  const uint64_t plan_start = metrics::NowNanos();
  ASSIGN_OR_RETURN(PlanPtr plan, PlanStatement(*stmt.select));
  const uint64_t plan_ns = metrics::NowNanos() - plan_start;
  if (!stmt.explain_analyze) {
    return TextResult("QUERY PLAN", plan->DebugString());
  }
  // EXPLAIN ANALYZE: run the plan for real, with every operator wrapped to
  // record actuals, then print the tree annotated with them. Result rows
  // are discarded — side effects (metric counters) still land.
  PlanStats stats(*plan);
  ExecOptions options = exec_options_;
  options.stats = &stats;
  options.time_operators = true;
  RETURN_NOT_OK(ExecutePlan(*plan, &udfs_, options).status());
  std::ostringstream text;
  text << ExplainAnalyzeText(*plan, stats);
  text << "Planning Time: " << std::fixed << std::setprecision(3)
       << static_cast<double>(plan_ns) / 1e6 << " ms\n";
  text << "Execution Time: " << std::fixed << std::setprecision(3)
       << static_cast<double>(stats.total_ns) / 1e6 << " ms\n";
  return TextResult("QUERY PLAN", text.str());
}

Status Database::MaybeRefreshSystemTables(const SelectStatement& stmt) {
  if (ReferencesTable(stmt, kMetricsTableName)) {
    RETURN_NOT_OK(RefreshMetricsTable());
  }
  if (ReferencesTable(stmt, kQueryLogTableName)) {
    RETURN_NOT_OK(RefreshQueryLogTable());
  }
  return Status::OK();
}

Status Database::RefreshMetricsTable() {
  std::lock_guard lock(system_table_mu_);
  Table* table = nullptr;
  Result<Table*> existing = catalog_.GetTable(std::string(kMetricsTableName));
  if (existing.ok()) {
    table = *existing;
  } else {
    Schema schema;
    RETURN_NOT_OK(schema.AddColumn(Column{"name", ColumnType::kText, false}));
    RETURN_NOT_OK(schema.AddColumn(Column{"type", ColumnType::kText, false}));
    RETURN_NOT_OK(
        schema.AddColumn(Column{"value", ColumnType::kDouble, false}));
    ASSIGN_OR_RETURN(table, catalog_.CreateTable(
                                std::string(kMetricsTableName),
                                std::move(schema)));
  }
  RETURN_NOT_OK(ClearTableRows(table));
  for (const metrics::Sample& s : metrics::MetricsRegistry::Global()
                                      ->Snapshot()) {
    DatumRow row;
    row.push_back(Datum::Text(s.name));
    row.push_back(Datum::Text(s.type));
    row.push_back(Datum::Double(s.value));
    RETURN_NOT_OK(table->AppendRow(row).status());
  }
  return Status::OK();
}

Status Database::RefreshQueryLogTable() {
  std::lock_guard lock(system_table_mu_);
  Table* table = nullptr;
  Result<Table*> existing = catalog_.GetTable(std::string(kQueryLogTableName));
  if (existing.ok()) {
    table = *existing;
  } else {
    Schema schema;
    auto add_int = [&schema](const char* name) {
      return schema.AddColumn(Column{name, ColumnType::kInt, false});
    };
    RETURN_NOT_OK(add_int("ordinal"));
    RETURN_NOT_OK(
        schema.AddColumn(Column{"fingerprint", ColumnType::kText, false}));
    RETURN_NOT_OK(add_int("fingerprint_hash"));
    RETURN_NOT_OK(add_int("plan_hash"));
    RETURN_NOT_OK(add_int("trace_id"));
    RETURN_NOT_OK(add_int("parse_ns"));
    RETURN_NOT_OK(add_int("plan_ns"));
    RETURN_NOT_OK(add_int("exec_ns"));
    RETURN_NOT_OK(add_int("total_ns"));
    RETURN_NOT_OK(add_int("rows_in"));
    RETURN_NOT_OK(add_int("rows_out"));
    RETURN_NOT_OK(add_int("batches"));
    RETURN_NOT_OK(add_int("zone_skips"));
    RETURN_NOT_OK(add_int("replans"));
    RETURN_NOT_OK(
        schema.AddColumn(Column{"status", ColumnType::kText, false}));
    RETURN_NOT_OK(schema.AddColumn(Column{"error", ColumnType::kText, false}));
    ASSIGN_OR_RETURN(table, catalog_.CreateTable(
                                std::string(kQueryLogTableName),
                                std::move(schema)));
  }
  RETURN_NOT_OK(ClearTableRows(table));
  // uint64 hashes are stored as the bit-equivalent signed value; joins and
  // equality comparisons against other logged hashes stay exact.
  auto as_int = [](uint64_t v) {
    return Datum::Int(static_cast<int64_t>(v));
  };
  for (const qlog::QueryRecord& r : qlog::QueryLog::Global()->Records()) {
    DatumRow row;
    row.push_back(as_int(r.ordinal));
    row.push_back(Datum::Text(r.fingerprint));
    row.push_back(as_int(r.fingerprint_hash));
    row.push_back(as_int(r.plan_hash));
    row.push_back(as_int(r.trace_id));
    row.push_back(as_int(r.parse_ns));
    row.push_back(as_int(r.plan_ns));
    row.push_back(as_int(r.exec_ns));
    row.push_back(as_int(r.total_ns));
    row.push_back(as_int(r.rows_in));
    row.push_back(as_int(r.rows_out));
    row.push_back(as_int(r.batches));
    row.push_back(as_int(r.zone_skips));
    row.push_back(as_int(r.replans));
    row.push_back(Datum::Text(r.status));
    row.push_back(Datum::Text(r.error));
    RETURN_NOT_OK(table->AppendRow(row).status());
  }
  return Status::OK();
}

Result<QueryResult> Database::ExecuteCreateTable(
    const CreateTableStatement& stmt) {
  if (stmt.table == kMetricsTableName || stmt.table == kQueryLogTableName ||
      stmt.table == kAttributeStatsTableName) {
    return Status::InvalidArgument(stmt.table,
                                   " is a reserved system table name");
  }
  Schema schema;
  for (const Column& col : stmt.columns) {
    RETURN_NOT_OK(schema.AddColumn(col));
  }
  RETURN_NOT_OK(catalog_.CreateTable(stmt.table, std::move(schema)).status());
  return CountResult(0);
}

Result<QueryResult> Database::ExecuteInsert(const InsertStatement& stmt) {
  ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  const Schema schema = table->SchemaSnapshot();
  std::vector<size_t> live = schema.LiveSlots();
  // Target slots, in VALUES order.
  std::vector<size_t> targets;
  if (stmt.columns.empty()) {
    targets = live;
  } else {
    for (const std::string& name : stmt.columns) {
      std::optional<size_t> slot = schema.FindColumn(name);
      if (!slot.has_value()) {
        return Status::NotFound("column ", name, " does not exist");
      }
      targets.push_back(*slot);
    }
  }
  int64_t inserted = 0;
  for (const std::vector<ExprPtr>& value_row : stmt.values) {
    if (value_row.size() != targets.size()) {
      return Status::InvalidArgument("INSERT value count mismatch");
    }
    DatumRow row(schema.num_slots());
    for (size_t i = 0; i < targets.size(); ++i) {
      ASSIGN_OR_RETURN(Datum v, EvalExpr(*value_row[i], {}, &udfs_));
      row[targets[i]] =
          CoerceForColumn(std::move(v), schema.columns()[targets[i]].type);
    }
    RETURN_NOT_OK(table->AppendRow(row).status());
    ++inserted;
  }
  return CountResult(inserted);
}

Result<QueryResult> Database::ExecuteUpdate(const UpdateStatement& stmt) {
  ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  ExecSchema scan_schema;
  std::vector<size_t> live_slots;
  ScanSchemaFor(*table, stmt.table, &scan_schema, &live_slots);

  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    RETURN_NOT_OK(BindExpr(where.get(), scan_schema, {stmt.table}));
  }
  struct BoundAssignment {
    size_t slot;  // physical slot in the table schema
    ExprPtr expr;
  };
  std::vector<BoundAssignment> assignments;
  for (const auto& [column, expr] : stmt.assignments) {
    std::optional<size_t> slot = table->FindColumnLatched(column);
    if (!slot.has_value()) {
      return Status::NotFound("column ", column, " does not exist");
    }
    BoundAssignment bound;
    bound.slot = *slot;
    bound.expr = expr->Clone();
    RETURN_NOT_OK(BindExpr(bound.expr.get(), scan_schema, {stmt.table}));
    assignments.push_back(std::move(bound));
  }

  // Snapshot the schema for decoding (the table latch serializes row-level
  // access; the snapshot keeps decoding consistent if DDL lands mid-scan).
  Schema schema_snapshot = table->SchemaSnapshot();

  // Projection pushdown for the predicate pass: decode only the slots the
  // WHERE clause references; full rows are read for matches only.
  std::vector<size_t> where_slots;
  if (where != nullptr) {
    std::vector<const Expr*> refs;
    where->CollectColumnRefs(&refs);
    for (const Expr* ref : refs) {
      if (ref->bound_slot >= 0 &&
          static_cast<size_t>(ref->bound_slot) < live_slots.size()) {
        where_slots.push_back(live_slots[ref->bound_slot]);
      }
    }
    std::sort(where_slots.begin(), where_slots.end());
    where_slots.erase(std::unique(where_slots.begin(), where_slots.end()),
                      where_slots.end());
  }

  uint64_t end = table->RowSlotCount();
  int64_t updated = 0;
  for (uint64_t rid = 0; rid < end; ++rid) {
    if (where != nullptr) {
      Result<DatumRow> partial = table->ReadRowSlots(rid, where_slots);
      if (!partial.ok()) continue;  // deleted row
      DatumRow visible;
      visible.reserve(live_slots.size() + 1);
      for (size_t slot : live_slots) {
        visible.push_back(std::move((*partial)[slot]));
      }
      visible.push_back(Datum::Int(static_cast<int64_t>(rid)));
      ASSIGN_OR_RETURN(bool match, EvalPredicate(*where, visible, &udfs_));
      if (!match) continue;
    } else if (!table->IsLive(rid)) {
      continue;
    }
    ASSIGN_OR_RETURN(DatumRow full, table->ReadRow(rid));
    DatumRow visible;
    visible.reserve(live_slots.size() + 1);
    for (size_t slot : live_slots) visible.push_back(full[slot]);
    visible.push_back(Datum::Int(static_cast<int64_t>(rid)));
    for (const BoundAssignment& a : assignments) {
      ASSIGN_OR_RETURN(Datum v, EvalExpr(*a.expr, visible, &udfs_));
      full[a.slot] = CoerceForColumn(
          std::move(v), schema_snapshot.columns()[a.slot].type);
    }
    RETURN_NOT_OK(table->UpdateRow(rid, full));
    ++updated;
  }
  return CountResult(updated);
}

Result<QueryResult> Database::ExecuteDelete(const DeleteStatement& stmt) {
  ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  ExecSchema scan_schema;
  std::vector<size_t> live_slots;
  ScanSchemaFor(*table, stmt.table, &scan_schema, &live_slots);
  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    RETURN_NOT_OK(BindExpr(where.get(), scan_schema, {stmt.table}));
  }
  uint64_t end = table->RowSlotCount();
  int64_t deleted = 0;
  for (uint64_t rid = 0; rid < end; ++rid) {
    if (!table->IsLive(rid)) continue;
    if (where != nullptr) {
      ASSIGN_OR_RETURN(DatumRow full, table->ReadRow(rid));
      DatumRow visible;
      visible.reserve(live_slots.size() + 1);
      for (size_t slot : live_slots) visible.push_back(std::move(full[slot]));
      visible.push_back(Datum::Int(static_cast<int64_t>(rid)));
      ASSIGN_OR_RETURN(bool match, EvalPredicate(*where, visible, &udfs_));
      if (!match) continue;
    }
    RETURN_NOT_OK(table->DeleteRow(rid));
    ++deleted;
  }
  return CountResult(deleted);
}

}  // namespace sinew::engine
