// Database: the embeddable facade over microdb — catalog + UDF registry +
// parser + planner + executor. This is the component Sinew treats as "the
// RDBMS" (paper Figure 1): Sinew sits above it and never reaches around it.

#ifndef SINEW_ENGINE_DATABASE_H_
#define SINEW_ENGINE_DATABASE_H_

#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "engine/catalog.h"
#include "engine/exec.h"
#include "engine/parser.h"
#include "engine/planner.h"
#include "engine/udf.h"

namespace sinew::engine {

/// Per-execution telemetry filled by the ExecuteStatement overload that
/// takes one; the Sinew layer folds it into the workload query log
/// (common/query_log.h). All fields are zero for non-SELECT statements
/// except exec_ns/rows_out.
struct QueryExecInfo {
  uint64_t plan_hash = 0;  // FNV-1a of the plan tree text (SELECT only)
  uint64_t plan_ns = 0;
  uint64_t exec_ns = 0;
  uint64_t rows_in = 0;     // rows produced by base-table scans
  uint64_t rows_out = 0;
  uint64_t batches = 0;     // batches emitted by the plan root
  uint64_t zone_skips = 0;  // strips skipped via zone maps
};

class Database {
 public:
  explicit Database(PlannerOptions planner_options = {},
                    ExecOptions exec_options = {});

  Catalog* catalog() { return &catalog_; }
  UdfRegistry* udfs() { return &udfs_; }
  const PlannerOptions& planner_options() const { return planner_options_; }
  void set_planner_options(PlannerOptions options) {
    planner_options_ = options;
  }
  void set_exec_options(ExecOptions options) { exec_options_ = options; }

  /// Parses and executes one SQL statement. DML statements return a single
  /// "count" row with the number of affected rows; EXPLAIN returns one text
  /// row per plan line.
  Result<QueryResult> Execute(std::string_view sql);

  /// Executes an already-parsed (possibly rewritten) statement.
  Result<QueryResult> ExecuteStatement(const Statement& stmt);

  /// As above, but also reports execution telemetry into *info. SELECTs run
  /// with per-node stats collection (cheap relaxed-atomic counters; operator
  /// wall-clock timing stays off) so cardinality actuals reach the query
  /// log. When a slow-query threshold is set and exec time exceeds it, the
  /// full EXPLAIN ANALYZE tree is emitted into the metrics trace ring.
  Result<QueryResult> ExecuteStatement(const Statement& stmt,
                                       QueryExecInfo* info);

  /// Queries slower than this (exec wall clock, nanoseconds) dump their
  /// EXPLAIN ANALYZE tree as a "query.slow" trace event. 0 disables.
  void set_slow_query_threshold_ns(uint64_t ns) {
    slow_query_threshold_ns_ = ns;
  }
  uint64_t slow_query_threshold_ns() const { return slow_query_threshold_ns_; }

  /// Plans an already-parsed SELECT.
  Result<PlanPtr> PlanStatement(const SelectStatement& stmt);

  /// Plans a SELECT without running it.
  Result<PlanPtr> Plan(std::string_view sql);

  /// EXPLAIN convenience: the plan tree as text.
  Result<std::string> Explain(std::string_view sql);

 private:
  Result<QueryResult> ExecuteSelect(const SelectStatement& stmt,
                                    QueryExecInfo* info);
  Result<QueryResult> ExecuteExplain(const Statement& stmt);
  Result<QueryResult> ExecuteCreateTable(const CreateTableStatement& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStatement& stmt);
  Result<QueryResult> ExecuteUpdate(const UpdateStatement& stmt);
  Result<QueryResult> ExecuteDelete(const DeleteStatement& stmt);

  /// If the SELECT references a system table (`sinew_metrics`,
  /// `sinew_query_log`), (lazily creates it and) replaces its rows with a
  /// fresh snapshot, so a plain scan — with any WHERE / join / projection on
  /// top — sees current values. Must run before the statement is planned.
  Status MaybeRefreshSystemTables(const SelectStatement& stmt);
  Status RefreshMetricsTable();
  Status RefreshQueryLogTable();

  Catalog catalog_;
  UdfRegistry udfs_;
  PlannerOptions planner_options_;
  ExecOptions exec_options_;
  uint64_t slow_query_threshold_ns_ = 0;
  std::mutex system_table_mu_;  // serializes system-table refreshes
};

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_DATABASE_H_
