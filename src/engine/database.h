// Database: the embeddable facade over microdb — catalog + UDF registry +
// parser + planner + executor. This is the component Sinew treats as "the
// RDBMS" (paper Figure 1): Sinew sits above it and never reaches around it.

#ifndef SINEW_ENGINE_DATABASE_H_
#define SINEW_ENGINE_DATABASE_H_

#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "engine/catalog.h"
#include "engine/exec.h"
#include "engine/parser.h"
#include "engine/planner.h"
#include "engine/udf.h"

namespace sinew::engine {

class Database {
 public:
  explicit Database(PlannerOptions planner_options = {},
                    ExecOptions exec_options = {});

  Catalog* catalog() { return &catalog_; }
  UdfRegistry* udfs() { return &udfs_; }
  const PlannerOptions& planner_options() const { return planner_options_; }
  void set_planner_options(PlannerOptions options) {
    planner_options_ = options;
  }
  void set_exec_options(ExecOptions options) { exec_options_ = options; }

  /// Parses and executes one SQL statement. DML statements return a single
  /// "count" row with the number of affected rows; EXPLAIN returns one text
  /// row per plan line.
  Result<QueryResult> Execute(std::string_view sql);

  /// Executes an already-parsed (possibly rewritten) statement.
  Result<QueryResult> ExecuteStatement(const Statement& stmt);

  /// Plans an already-parsed SELECT.
  Result<PlanPtr> PlanStatement(const SelectStatement& stmt);

  /// Plans a SELECT without running it.
  Result<PlanPtr> Plan(std::string_view sql);

  /// EXPLAIN convenience: the plan tree as text.
  Result<std::string> Explain(std::string_view sql);

 private:
  Result<QueryResult> ExecuteSelect(const SelectStatement& stmt);
  Result<QueryResult> ExecuteExplain(const Statement& stmt);
  Result<QueryResult> ExecuteCreateTable(const CreateTableStatement& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStatement& stmt);
  Result<QueryResult> ExecuteUpdate(const UpdateStatement& stmt);
  Result<QueryResult> ExecuteDelete(const DeleteStatement& stmt);

  /// If the SELECT references the `sinew_metrics` system table, (lazily
  /// creates it and) replaces its rows with a fresh registry snapshot, so a
  /// plain scan — with any WHERE / join / projection on top — sees current
  /// values. Must run before the statement is planned.
  Status MaybeRefreshMetricsTable(const SelectStatement& stmt);

  Catalog catalog_;
  UdfRegistry udfs_;
  PlannerOptions planner_options_;
  ExecOptions exec_options_;
  std::mutex metrics_table_mu_;  // serializes sinew_metrics refreshes
};

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_DATABASE_H_
