#include "engine/datum.h"

#include <functional>

#include "common/str_util.h"

namespace sinew::engine {

namespace {

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Datum::Compare(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) {
    return Cmp(static_cast<int>(!a.is_null()), static_cast<int>(!b.is_null()));
  }
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) return Cmp(a.int_value(), b.int_value());
    return Cmp(a.AsDouble(), b.AsDouble());
  }
  if (a.kind() != b.kind()) {
    return Cmp(static_cast<int>(a.kind()), static_cast<int>(b.kind()));
  }
  switch (a.kind()) {
    case Kind::kBool:
      return Cmp(a.bool_value(), b.bool_value());
    case Kind::kText:
    case Kind::kBytes:
      return a.str().compare(b.str());
    default:
      return 0;
  }
}

size_t Datum::Hash() const {
  switch (kind_) {
    case Kind::kNull:
      return 0x9e3779b9;
    case Kind::kBool:
      return bool_ ? 0x517cc1b7 : 0x27220a95;
    case Kind::kInt:
      // Ints and doubles representing the same value hash identically so that
      // cross-type numeric equality (1 = 1.0) groups correctly.
      return std::hash<double>()(static_cast<double>(int_));
    case Kind::kDouble:
      return std::hash<double>()(double_);
    case Kind::kText:
    case Kind::kBytes:
      return std::hash<std::string_view>()(str_);
  }
  return 0;
}

std::string Datum::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble:
      return FormatDouble(double_);
    case Kind::kText:
      return str_;
    case Kind::kBytes:
      return "\\x<" + std::to_string(str_.size()) + " bytes>";
  }
  return "";
}

Value Datum::ToValue() const {
  switch (kind_) {
    case Kind::kNull:
      return Value::Null();
    case Kind::kBool:
      return Value::Bool(bool_);
    case Kind::kInt:
      return Value::Int(int_);
    case Kind::kDouble:
      return Value::Double(double_);
    case Kind::kText:
    case Kind::kBytes:
      return Value::String(str_);
  }
  return Value::Null();
}

Result<Datum> Datum::FromValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return Datum::Null();
    case ValueType::kBool:
      return Datum::Bool(value.bool_value());
    case ValueType::kInt:
      return Datum::Int(value.int_value());
    case ValueType::kDouble:
      return Datum::Double(value.double_value());
    case ValueType::kString:
      return Datum::Text(value.string_value());
    case ValueType::kArray:
    case ValueType::kObject:
      return Status::TypeError("cannot convert ", ValueTypeName(value.type()),
                               " to a scalar datum");
  }
  return Status::Internal("unreachable");
}

ColumnType Datum::TypeOrDefault(ColumnType if_null) const {
  switch (kind_) {
    case Kind::kNull:
      return if_null;
    case Kind::kBool:
      return ColumnType::kBool;
    case Kind::kInt:
      return ColumnType::kInt;
    case Kind::kDouble:
      return ColumnType::kDouble;
    case Kind::kText:
      return ColumnType::kText;
    case Kind::kBytes:
      return ColumnType::kBytes;
  }
  return if_null;
}

size_t HashDatums(const DatumRow& row) {
  size_t h = 0xcbf29ce484222325ull;
  for (const Datum& d : row) {
    h ^= d.Hash();
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace sinew::engine
