// Datum: a runtime cell value flowing through the executor.

#ifndef SINEW_ENGINE_DATUM_H_
#define SINEW_ENGINE_DATUM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "engine/type.h"

namespace sinew::engine {

class Datum {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kBool = 1,
    kInt = 2,
    kDouble = 3,
    kText = 4,
    kBytes = 5,
  };

  Datum() : kind_(Kind::kNull) {}

  static Datum Null() { return Datum(); }
  static Datum Bool(bool v) {
    Datum d;
    d.kind_ = Kind::kBool;
    d.bool_ = v;
    return d;
  }
  static Datum Int(int64_t v) {
    Datum d;
    d.kind_ = Kind::kInt;
    d.int_ = v;
    return d;
  }
  static Datum Double(double v) {
    Datum d;
    d.kind_ = Kind::kDouble;
    d.double_ = v;
    return d;
  }
  static Datum Text(std::string v) {
    Datum d;
    d.kind_ = Kind::kText;
    d.str_ = std::move(v);
    return d;
  }
  static Datum Bytes(std::string v) {
    Datum d;
    d.kind_ = Kind::kBytes;
    d.str_ = std::move(v);
    return d;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_text() const { return kind_ == Kind::kText; }
  bool is_bytes() const { return kind_ == Kind::kBytes; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  double AsDouble() const { return is_int() ? static_cast<double>(int_) : double_; }
  const std::string& str() const { return str_; }
  std::string& mutable_str() { return str_; }

  /// Total order: NULL < everything; numerics compare cross-kind by value;
  /// mismatched non-numeric kinds order by kind tag (deterministic, never
  /// "undefined"). SQL comparison semantics live in eval.cc, which
  /// type-checks before calling this.
  static int Compare(const Datum& a, const Datum& b);

  bool operator==(const Datum& other) const { return Compare(*this, other) == 0; }
  bool operator!=(const Datum& other) const { return !(*this == other); }
  bool operator<(const Datum& other) const { return Compare(*this, other) < 0; }

  size_t Hash() const;

  /// Display rendering (result printing, EXPLAIN literals).
  std::string ToString() const;

  /// Lossless for scalars; kBytes renders as a string value.
  Value ToValue() const;

  /// Scalars only; arrays/objects are an error (they live in BYTES columns
  /// in their serialized form, see engine/type.h).
  static Result<Datum> FromValue(const Value& value);

  /// The natural column type of this datum, if not null.
  ColumnType TypeOrDefault(ColumnType if_null) const;

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
};

using DatumRow = std::vector<Datum>;

/// Hash of a row prefix (used by hash join/aggregate key grouping).
size_t HashDatums(const DatumRow& row);

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_DATUM_H_
