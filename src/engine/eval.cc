#include "engine/eval.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/str_util.h"
#include "engine/bytecode.h"

namespace sinew::engine {

namespace {

void CollectBoundSlots(const Expr& expr, std::vector<int>* slots) {
  if (expr.kind == ExprKind::kColumnRef && expr.bound_slot >= 0) {
    slots->push_back(expr.bound_slot);
  }
  for (const ExprPtr& arg : expr.args) CollectBoundSlots(*arg, slots);
}

/// (Re)computes Expr::cached_fallback_slots: the subtree's sorted unique
/// bound slots, consumed by per-lane batch fallbacks.
void CacheFallbackSlots(Expr* expr) {
  expr->cached_fallback_slots.clear();
  CollectBoundSlots(*expr, &expr->cached_fallback_slots);
  std::sort(expr->cached_fallback_slots.begin(),
            expr->cached_fallback_slots.end());
  expr->cached_fallback_slots.erase(
      std::unique(expr->cached_fallback_slots.begin(),
                  expr->cached_fallback_slots.end()),
      expr->cached_fallback_slots.end());
  expr->fallback_slots_cached = true;
}

}  // namespace

Result<size_t> ExecSchema::Resolve(const std::string& table,
                                   const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name != name) continue;
    if (!table.empty() && cols[i].table != table) continue;
    if (found.has_value()) {
      return Status::InvalidArgument("ambiguous column reference ", name);
    }
    found = i;
  }
  if (!found.has_value()) {
    return Status::NotFound("column ", table.empty() ? "" : table + ".", name,
                            " does not exist");
  }
  return *found;
}

Status BindExpr(Expr* expr, const ExecSchema& schema,
                const std::vector<std::string>& aliases) {
  if (expr->kind == ExprKind::kColumnRef) {
    std::string table = expr->table;
    std::string column = expr->column;
    if (table.empty()) {
      // Peel "alias." off the front of a dotted chain if the first segment
      // names a table alias in scope.
      size_t dot = column.find('.');
      if (dot != std::string::npos) {
        std::string head = column.substr(0, dot);
        if (std::find(aliases.begin(), aliases.end(), head) != aliases.end()) {
          table = head;
          column = column.substr(dot + 1);
        }
      }
    }
    ASSIGN_OR_RETURN(size_t slot, schema.Resolve(table, column));
    // Normalize the reference to the resolved column's canonical
    // qualification so later passes (classification, re-binding against a
    // different operator's schema) are unambiguous.
    expr->table = schema.cols[slot].table;
    expr->column = schema.cols[slot].name;
    expr->bound_slot = static_cast<int>(slot);
    return Status::OK();
  }
  for (ExprPtr& arg : expr->args) {
    RETURN_NOT_OK(BindExpr(arg.get(), schema, aliases));
  }
  // Nodes the batch path evaluates per lane cache their subtree's bound
  // slots here, once, instead of re-collecting them every batch. Later
  // passes may replace argument subtrees with literals (constant folding),
  // leaving a stale superset — harmless: the extra lanes copy an unused
  // column. Rewrites that *redirect* slots (extraction hoisting) must call
  // RefreshFallbackSlotCaches afterwards; re-binding also overwrites.
  if (expr->kind == ExprKind::kFunction || expr->kind == ExprKind::kCase ||
      expr->kind == ExprKind::kInList) {
    CacheFallbackSlots(expr);
  }
  return Status::OK();
}

void RefreshFallbackSlotCaches(Expr* expr) {
  for (ExprPtr& arg : expr->args) RefreshFallbackSlotCaches(arg.get());
  if (expr->kind == ExprKind::kFunction || expr->kind == ExprKind::kCase ||
      expr->kind == ExprKind::kInList) {
    CacheFallbackSlots(expr);
  }
}

namespace {

/// Evaluates `expr` to a datum reference without copying when the
/// expression is a bound column ref or a literal; otherwise evaluates into
/// `*storage` and returns a pointer to it. This keeps the per-row hot path
/// (scan filters) free of string copies.
Result<const Datum*> EvalRef(const Expr& expr, const DatumRow& row,
                             const UdfRegistry* udfs, Datum* storage) {
  if (expr.kind == ExprKind::kLiteral) return &expr.literal;
  if (expr.kind == ExprKind::kColumnRef && expr.bound_slot >= 0 &&
      static_cast<size_t>(expr.bound_slot) < row.size()) {
    return &row[expr.bound_slot];
  }
  ASSIGN_OR_RETURN(*storage, EvalExpr(expr, row, udfs));
  return storage;
}

Result<Datum> EvalBinary(const Expr& expr, const DatumRow& row,
                         const UdfRegistry* udfs);

Result<Datum> EvalCompareOp(BinaryOp op, const Datum& lhs, const Datum& rhs) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return eval_detail::CompareOp(op, lhs, rhs);
    default:
      return Status::Internal("not a comparison op");
  }
}

Result<Datum> EvalArithmetic(BinaryOp op, const Datum& lhs, const Datum& rhs) {
  return eval_detail::ArithmeticOp(op, lhs, rhs);
}

}  // namespace

namespace eval_detail {

Datum CompareOp(BinaryOp op, const Datum& lhs, const Datum& rhs) {
  // SQL comparison: NULL if either side is NULL or the kinds are not
  // comparable; otherwise the verdict.
  if (lhs.is_null() || rhs.is_null()) return Datum::Null();
  bool comparable =
      (lhs.is_numeric() && rhs.is_numeric()) || lhs.kind() == rhs.kind();
  if (!comparable) return Datum::Null();
  int cmp = Datum::Compare(lhs, rhs);
  switch (op) {
    case BinaryOp::kEq:
      return Datum::Bool(cmp == 0);
    case BinaryOp::kNe:
      return Datum::Bool(cmp != 0);
    case BinaryOp::kLt:
      return Datum::Bool(cmp < 0);
    case BinaryOp::kLe:
      return Datum::Bool(cmp <= 0);
    case BinaryOp::kGt:
      return Datum::Bool(cmp > 0);
    default:  // kGe; callers guarantee a comparison op
      return Datum::Bool(cmp >= 0);
  }
}

Result<Datum> ArithmeticOp(BinaryOp op, const Datum& lhs, const Datum& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Datum::Null();
  if (!lhs.is_numeric() || !rhs.is_numeric()) {
    return Status::TypeError("arithmetic on non-numeric values");
  }
  bool as_int = lhs.is_int() && rhs.is_int();
  if (as_int) {
    int64_t a = lhs.int_value(), b = rhs.int_value();
    switch (op) {
      case BinaryOp::kAdd:
        return Datum::Int(a + b);
      case BinaryOp::kSub:
        return Datum::Int(a - b);
      case BinaryOp::kMul:
        return Datum::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Datum::Int(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Datum::Int(a % b);
      default:
        break;
    }
  } else {
    double a = lhs.AsDouble(), b = rhs.AsDouble();
    switch (op) {
      case BinaryOp::kAdd:
        return Datum::Double(a + b);
      case BinaryOp::kSub:
        return Datum::Double(a - b);
      case BinaryOp::kMul:
        return Datum::Double(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Datum::Double(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Datum::Double(std::fmod(a, b));
      default:
        break;
    }
  }
  return Status::Internal("not an arithmetic op");
}

}  // namespace eval_detail

Result<Datum> EvalExpr(const Expr& expr, const DatumRow& row,
                       const UdfRegistry* udfs) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      if (expr.bound_slot < 0 ||
          static_cast<size_t>(expr.bound_slot) >= row.size()) {
        return Status::Internal("unbound column reference ", expr.column);
      }
      return row[expr.bound_slot];
    }
    case ExprKind::kStar:
      return Status::Internal("star expression reached the evaluator");
    case ExprKind::kUnary: {
      ASSIGN_OR_RETURN(Datum v, EvalExpr(*expr.args[0], row, udfs));
      if (expr.uop == UnaryOp::kNot) {
        if (v.is_null()) return Datum::Null();
        if (!v.is_bool()) return Status::TypeError("NOT on non-boolean");
        return Datum::Bool(!v.bool_value());
      }
      if (v.is_null()) return Datum::Null();
      if (v.is_int()) return Datum::Int(-v.int_value());
      if (v.is_double()) return Datum::Double(-v.double_value());
      return Status::TypeError("unary minus on non-numeric");
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, row, udfs);
    case ExprKind::kBetween: {
      Datum ts, ls, hs;
      ASSIGN_OR_RETURN(const Datum* target,
                       EvalRef(*expr.args[0], row, udfs, &ts));
      ASSIGN_OR_RETURN(const Datum* lo, EvalRef(*expr.args[1], row, udfs, &ls));
      ASSIGN_OR_RETURN(const Datum* hi, EvalRef(*expr.args[2], row, udfs, &hs));
      ASSIGN_OR_RETURN(Datum ge, EvalCompareOp(BinaryOp::kGe, *target, *lo));
      ASSIGN_OR_RETURN(Datum le, EvalCompareOp(BinaryOp::kLe, *target, *hi));
      if (ge.is_null() || le.is_null()) return Datum::Null();
      bool in_range = ge.bool_value() && le.bool_value();
      return Datum::Bool(expr.negated ? !in_range : in_range);
    }
    case ExprKind::kInList: {
      Datum ts;
      ASSIGN_OR_RETURN(const Datum* target,
                       EvalRef(*expr.args[0], row, udfs, &ts));
      if (target->is_null()) return Datum::Null();
      bool saw_null = false;
      for (size_t i = 1; i < expr.args.size(); ++i) {
        Datum is;
        ASSIGN_OR_RETURN(const Datum* item,
                         EvalRef(*expr.args[i], row, udfs, &is));
        ASSIGN_OR_RETURN(Datum eq, EvalCompareOp(BinaryOp::kEq, *target, *item));
        if (eq.is_null()) {
          saw_null = true;
        } else if (eq.bool_value()) {
          return Datum::Bool(!expr.negated);
        }
      }
      if (saw_null) return Datum::Null();
      return Datum::Bool(expr.negated);
    }
    case ExprKind::kIsNull: {
      Datum vs;
      ASSIGN_OR_RETURN(const Datum* v, EvalRef(*expr.args[0], row, udfs, &vs));
      return Datum::Bool(expr.negated ? !v->is_null() : v->is_null());
    }
    case ExprKind::kFunction: {
      if (expr.fname == "coalesce") {
        for (const ExprPtr& arg : expr.args) {
          ASSIGN_OR_RETURN(Datum v, EvalExpr(*arg, row, udfs));
          if (!v.is_null()) return v;
        }
        return Datum::Null();
      }
      if (expr.IsAggregateCall()) {
        return Status::Internal("aggregate ", expr.fname,
                                " reached the scalar evaluator");
      }
      if (udfs == nullptr) {
        return Status::NotFound("no UDF registry for function ", expr.fname);
      }
      const UdfFn* fn = udfs->Find(expr.fname);
      if (fn == nullptr) {
        return Status::NotFound("unknown function ", expr.fname);
      }
      // Arguments pass by pointer: column values (e.g. the reservoir blob)
      // reach the UDF without a per-row copy. `storage` is pre-sized so the
      // pointers stay stable.
      UdfArgs args;
      args.reserve(expr.args.size());
      std::vector<Datum> storage(expr.args.size());
      for (size_t i = 0; i < expr.args.size(); ++i) {
        ASSIGN_OR_RETURN(const Datum* v,
                         EvalRef(*expr.args[i], row, udfs, &storage[i]));
        args.push_back(v);
      }
      return (*fn)(args);
    }
    case ExprKind::kCase: {
      size_t i = 0;
      for (; i + 1 < expr.args.size(); i += 2) {
        ASSIGN_OR_RETURN(Datum cond, EvalExpr(*expr.args[i], row, udfs));
        if (!cond.is_null() && cond.is_bool() && cond.bool_value()) {
          return EvalExpr(*expr.args[i + 1], row, udfs);
        }
      }
      if (i < expr.args.size()) return EvalExpr(*expr.args[i], row, udfs);
      return Datum::Null();
    }
  }
  return Status::Internal("unreachable expression kind");
}

namespace {

Result<Datum> EvalBinary(const Expr& expr, const DatumRow& row,
                         const UdfRegistry* udfs) {
  // Kleene AND/OR need special null handling and benefit from
  // short-circuiting.
  if (expr.bop == BinaryOp::kAnd || expr.bop == BinaryOp::kOr) {
    ASSIGN_OR_RETURN(Datum lhs, EvalExpr(*expr.args[0], row, udfs));
    bool is_and = expr.bop == BinaryOp::kAnd;
    if (!lhs.is_null() && lhs.is_bool() && lhs.bool_value() != is_and) {
      return Datum::Bool(!is_and);  // false AND _, true OR _
    }
    ASSIGN_OR_RETURN(Datum rhs, EvalExpr(*expr.args[1], row, udfs));
    if (!rhs.is_null() && rhs.is_bool() && rhs.bool_value() != is_and) {
      return Datum::Bool(!is_and);
    }
    if (lhs.is_null() || rhs.is_null()) return Datum::Null();
    if (!lhs.is_bool() || !rhs.is_bool()) {
      return Status::TypeError("AND/OR on non-boolean");
    }
    return Datum::Bool(is_and);
  }
  Datum ls, rs;
  ASSIGN_OR_RETURN(const Datum* lhs, EvalRef(*expr.args[0], row, udfs, &ls));
  ASSIGN_OR_RETURN(const Datum* rhs, EvalRef(*expr.args[1], row, udfs, &rs));
  switch (expr.bop) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return EvalCompareOp(expr.bop, *lhs, *rhs);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return EvalArithmetic(expr.bop, *lhs, *rhs);
    case BinaryOp::kLike: {
      if (lhs->is_null() || rhs->is_null()) return Datum::Null();
      if (!lhs->is_text() || !rhs->is_text()) {
        return Status::TypeError("LIKE on non-text values");
      }
      return Datum::Bool(LikeMatch(lhs->str(), rhs->str()));
    }
    case BinaryOp::kConcat: {
      if (lhs->is_null() || rhs->is_null()) return Datum::Null();
      return Datum::Text(lhs->ToString() + rhs->ToString());
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

// ------------------------------------------------------------- batch eval

/// Lane-addressable view of one operand of a vectorized kernel. Literals and
/// bound column refs are served by reference (the batch analogue of EvalRef:
/// no per-lane string copies); anything else evaluates into owned storage.
class BatchArg {
 public:
  Status Init(const Expr& expr, const RowBatch& batch,
              const std::vector<uint32_t>& lanes, const UdfRegistry* udfs) {
    if (expr.kind == ExprKind::kLiteral) {
      literal_ = &expr.literal;
      return Status::OK();
    }
    if (expr.kind == ExprKind::kColumnRef && expr.bound_slot >= 0 &&
        static_cast<size_t>(expr.bound_slot) < batch.num_cols()) {
      col_ = &batch.cols[expr.bound_slot];
      return Status::OK();
    }
    return EvalExprBatch(expr, batch, lanes, udfs, &storage_);
  }

  /// Operand value for the i-th lane (physical row `lane`).
  const Datum& At(size_t i, uint32_t lane) const {
    if (literal_ != nullptr) return *literal_;
    if (col_ != nullptr) return (*col_)[lane];
    return storage_[i];
  }

 private:
  const Datum* literal_ = nullptr;
  const std::vector<Datum>* col_ = nullptr;
  std::vector<Datum> storage_;
};

/// Exact per-lane fallback for nodes without a column kernel (functions,
/// CASE, IN lists with evaluable items): copies only the slots the subtree
/// references into a scratch row and runs the scalar evaluator, so
/// evaluation order *within* a lane — short-circuits, which argument's error
/// fires — is identical to the row path by construction.
Status EvalBatchPerLane(const Expr& expr, const RowBatch& batch,
                        const std::vector<uint32_t>& lanes,
                        const UdfRegistry* udfs, std::vector<Datum>* out) {
  static metrics::Counter* fallback_lanes =
      metrics::GetCounter("eval.fallback_lanes");
  fallback_lanes->Add(lanes.size());
  // BindExpr caches the sorted slot set on the node; collecting here only
  // covers expressions evaluated without a binding pass (tests, ad hoc).
  std::vector<int> local_slots;
  if (!expr.fallback_slots_cached) {
    CollectBoundSlots(expr, &local_slots);
    std::sort(local_slots.begin(), local_slots.end());
    local_slots.erase(std::unique(local_slots.begin(), local_slots.end()),
                      local_slots.end());
  }
  const std::vector<int>& slots =
      expr.fallback_slots_cached ? expr.cached_fallback_slots : local_slots;
  DatumRow scratch(batch.num_cols());
  out->reserve(lanes.size());
  for (uint32_t lane : lanes) {
    for (int s : slots) {
      // Out-of-range slots stay uncopied; the scalar evaluator reports them
      // with the row path's own "unbound column reference" error.
      if (static_cast<size_t>(s) < batch.num_cols()) {
        scratch[s] = batch.cols[s][lane];
      }
    }
    ASSIGN_OR_RETURN(Datum v, EvalExpr(expr, scratch, udfs));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

/// True when the expression cannot error and has no evaluation-order
/// footprint (literal or bound column ref) — the precondition for running
/// short-circuiting constructs' operands eagerly as columns.
bool IsSimpleOperand(const Expr& expr) {
  return expr.kind == ExprKind::kLiteral ||
         (expr.kind == ExprKind::kColumnRef && expr.bound_slot >= 0);
}

Status EvalBinaryBatch(const Expr& expr, const RowBatch& batch,
                       const std::vector<uint32_t>& lanes,
                       const UdfRegistry* udfs, std::vector<Datum>* out) {
  const size_t n = lanes.size();
  if (expr.bop == BinaryOp::kAnd || expr.bop == BinaryOp::kOr) {
    // Kleene AND/OR with the row path's short-circuit: lanes the left side
    // decides (false AND _, true OR _) never evaluate the right side, so a
    // right-side runtime error fires for exactly the same rows it would
    // row-at-a-time.
    const bool is_and = expr.bop == BinaryOp::kAnd;
    std::vector<Datum> lhs;
    RETURN_NOT_OK(EvalExprBatch(*expr.args[0], batch, lanes, udfs, &lhs));
    std::vector<uint32_t> undecided;
    std::vector<size_t> undecided_pos;
    out->assign(n, Datum::Null());
    for (size_t i = 0; i < n; ++i) {
      const Datum& l = lhs[i];
      if (!l.is_null() && l.is_bool() && l.bool_value() != is_and) {
        (*out)[i] = Datum::Bool(!is_and);
      } else {
        undecided.push_back(lanes[i]);
        undecided_pos.push_back(i);
      }
    }
    if (undecided.empty()) return Status::OK();
    std::vector<Datum> rhs;
    RETURN_NOT_OK(EvalExprBatch(*expr.args[1], batch, undecided, udfs, &rhs));
    for (size_t k = 0; k < undecided_pos.size(); ++k) {
      const Datum& l = lhs[undecided_pos[k]];
      const Datum& r = rhs[k];
      Datum& o = (*out)[undecided_pos[k]];
      if (!r.is_null() && r.is_bool() && r.bool_value() != is_and) {
        o = Datum::Bool(!is_and);
      } else if (l.is_null() || r.is_null()) {
        o = Datum::Null();
      } else if (!l.is_bool() || !r.is_bool()) {
        return Status::TypeError("AND/OR on non-boolean");
      } else {
        o = Datum::Bool(is_and);
      }
    }
    return Status::OK();
  }
  // The row path evaluates both operands unconditionally, so eager column
  // evaluation preserves semantics for every remaining binary op.
  BatchArg lhs, rhs;
  RETURN_NOT_OK(lhs.Init(*expr.args[0], batch, lanes, udfs));
  RETURN_NOT_OK(rhs.Init(*expr.args[1], batch, lanes, udfs));
  out->reserve(n);
  switch (expr.bop) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      for (size_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(
            Datum v, EvalCompareOp(expr.bop, lhs.At(i, lanes[i]),
                                   rhs.At(i, lanes[i])));
        out->push_back(std::move(v));
      }
      return Status::OK();
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      for (size_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(
            Datum v, EvalArithmetic(expr.bop, lhs.At(i, lanes[i]),
                                    rhs.At(i, lanes[i])));
        out->push_back(std::move(v));
      }
      return Status::OK();
    case BinaryOp::kLike:
      for (size_t i = 0; i < n; ++i) {
        const Datum& l = lhs.At(i, lanes[i]);
        const Datum& r = rhs.At(i, lanes[i]);
        if (l.is_null() || r.is_null()) {
          out->push_back(Datum::Null());
          continue;
        }
        if (!l.is_text() || !r.is_text()) {
          return Status::TypeError("LIKE on non-text values");
        }
        out->push_back(Datum::Bool(LikeMatch(l.str(), r.str())));
      }
      return Status::OK();
    case BinaryOp::kConcat:
      for (size_t i = 0; i < n; ++i) {
        const Datum& l = lhs.At(i, lanes[i]);
        const Datum& r = rhs.At(i, lanes[i]);
        if (l.is_null() || r.is_null()) {
          out->push_back(Datum::Null());
          continue;
        }
        out->push_back(Datum::Text(l.ToString() + r.ToString()));
      }
      return Status::OK();
    default:
      return Status::Internal("unhandled binary op");
  }
}

}  // namespace

Status EvalExprBatch(const Expr& expr, const RowBatch& batch,
                     const std::vector<uint32_t>& lanes,
                     const UdfRegistry* udfs, std::vector<Datum>* out) {
  out->clear();
  const size_t n = lanes.size();
  switch (expr.kind) {
    case ExprKind::kLiteral:
      out->assign(n, expr.literal);
      return Status::OK();
    case ExprKind::kColumnRef: {
      if (expr.bound_slot < 0 ||
          static_cast<size_t>(expr.bound_slot) >= batch.num_cols()) {
        return Status::Internal("unbound column reference ", expr.column);
      }
      const std::vector<Datum>& col = batch.cols[expr.bound_slot];
      out->reserve(n);
      for (uint32_t lane : lanes) out->push_back(col[lane]);
      return Status::OK();
    }
    case ExprKind::kStar:
      return Status::Internal("star expression reached the evaluator");
    case ExprKind::kUnary: {
      std::vector<Datum> vals;
      RETURN_NOT_OK(EvalExprBatch(*expr.args[0], batch, lanes, udfs, &vals));
      out->reserve(n);
      for (Datum& v : vals) {
        if (expr.uop == UnaryOp::kNot) {
          if (v.is_null()) {
            out->push_back(Datum::Null());
          } else if (!v.is_bool()) {
            return Status::TypeError("NOT on non-boolean");
          } else {
            out->push_back(Datum::Bool(!v.bool_value()));
          }
          continue;
        }
        if (v.is_null()) {
          out->push_back(Datum::Null());
        } else if (v.is_int()) {
          out->push_back(Datum::Int(-v.int_value()));
        } else if (v.is_double()) {
          out->push_back(Datum::Double(-v.double_value()));
        } else {
          return Status::TypeError("unary minus on non-numeric");
        }
      }
      return Status::OK();
    }
    case ExprKind::kBinary:
      return EvalBinaryBatch(expr, batch, lanes, udfs, out);
    case ExprKind::kBetween: {
      // The row path evaluates target, lo and hi unconditionally, so column
      // evaluation of all three preserves semantics.
      BatchArg target, lo, hi;
      RETURN_NOT_OK(target.Init(*expr.args[0], batch, lanes, udfs));
      RETURN_NOT_OK(lo.Init(*expr.args[1], batch, lanes, udfs));
      RETURN_NOT_OK(hi.Init(*expr.args[2], batch, lanes, udfs));
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const Datum& t = target.At(i, lanes[i]);
        ASSIGN_OR_RETURN(Datum ge,
                         EvalCompareOp(BinaryOp::kGe, t, lo.At(i, lanes[i])));
        ASSIGN_OR_RETURN(Datum le,
                         EvalCompareOp(BinaryOp::kLe, t, hi.At(i, lanes[i])));
        if (ge.is_null() || le.is_null()) {
          out->push_back(Datum::Null());
          continue;
        }
        bool in_range = ge.bool_value() && le.bool_value();
        out->push_back(Datum::Bool(expr.negated ? !in_range : in_range));
      }
      return Status::OK();
    }
    case ExprKind::kInList: {
      // The row path stops evaluating list items after a match; only items
      // that cannot error (literals/column refs) may be evaluated eagerly.
      for (size_t i = 1; i < expr.args.size(); ++i) {
        if (!IsSimpleOperand(*expr.args[i])) {
          return EvalBatchPerLane(expr, batch, lanes, udfs, out);
        }
      }
      BatchArg target;
      RETURN_NOT_OK(target.Init(*expr.args[0], batch, lanes, udfs));
      std::vector<BatchArg> items(expr.args.size() - 1);
      for (size_t i = 1; i < expr.args.size(); ++i) {
        RETURN_NOT_OK(items[i - 1].Init(*expr.args[i], batch, lanes, udfs));
      }
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const Datum& t = target.At(i, lanes[i]);
        if (t.is_null()) {
          out->push_back(Datum::Null());
          continue;
        }
        bool matched = false, saw_null = false;
        for (const BatchArg& item : items) {
          ASSIGN_OR_RETURN(
              Datum eq, EvalCompareOp(BinaryOp::kEq, t, item.At(i, lanes[i])));
          if (eq.is_null()) {
            saw_null = true;
          } else if (eq.bool_value()) {
            matched = true;
            break;
          }
        }
        if (matched) {
          out->push_back(Datum::Bool(!expr.negated));
        } else if (saw_null) {
          out->push_back(Datum::Null());
        } else {
          out->push_back(Datum::Bool(expr.negated));
        }
      }
      return Status::OK();
    }
    case ExprKind::kIsNull: {
      BatchArg arg;
      RETURN_NOT_OK(arg.Init(*expr.args[0], batch, lanes, udfs));
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        bool null = arg.At(i, lanes[i]).is_null();
        out->push_back(Datum::Bool(expr.negated ? !null : null));
      }
      return Status::OK();
    }
    case ExprKind::kFunction:
    case ExprKind::kCase:
      // Argument short-circuits (coalesce, CASE branches) and UDF dispatch
      // stay on the scalar evaluator, one lane at a time.
      return EvalBatchPerLane(expr, batch, lanes, udfs, out);
  }
  return Status::Internal("unreachable expression kind");
}

Status EvalPredicateBatch(const Expr& expr, const RowBatch& batch,
                          const UdfRegistry* udfs,
                          std::vector<uint32_t>* sel) {
  if (sel->empty()) return Status::OK();
  std::vector<Datum> vals;
  RETURN_NOT_OK(EvalExprBatch(expr, batch, *sel, udfs, &vals));
  size_t kept = 0;
  for (size_t i = 0; i < sel->size(); ++i) {
    const Datum& v = vals[i];
    if (v.is_null()) continue;  // NULL filters, as in EvalPredicate
    if (!v.is_bool()) {
      return Status::TypeError("predicate did not evaluate to a boolean");
    }
    if (v.bool_value()) (*sel)[kept++] = (*sel)[i];
  }
  sel->resize(kept);
  return Status::OK();
}

Status EvalExprBatch(const Expr& expr, const bytecode::Program* program,
                     bytecode::ExecState* state, const RowBatch& batch,
                     const std::vector<uint32_t>& lanes,
                     const UdfRegistry* udfs, std::vector<Datum>* out) {
  if (program != nullptr && state != nullptr) {
    return bytecode::ExecBatch(*program, batch, lanes, udfs, state, out);
  }
  return EvalExprBatch(expr, batch, lanes, udfs, out);
}

Status EvalPredicateBatch(const Expr& expr, const bytecode::Program* program,
                          bytecode::ExecState* state, const RowBatch& batch,
                          const UdfRegistry* udfs,
                          std::vector<uint32_t>* sel) {
  if (program != nullptr && state != nullptr) {
    return bytecode::ExecPredicateBatch(*program, batch, udfs, state, sel);
  }
  return EvalPredicateBatch(expr, batch, udfs, sel);
}

Result<bool> EvalPredicate(const Expr& expr, const DatumRow& row,
                           const UdfRegistry* udfs) {
  ASSIGN_OR_RETURN(Datum v, EvalExpr(expr, row, udfs));
  if (v.is_null()) return false;
  if (!v.is_bool()) {
    return Status::TypeError("predicate did not evaluate to a boolean");
  }
  return v.bool_value();
}

ColumnType InferType(const Expr& expr, const ExecSchema& schema) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal.TypeOrDefault(ColumnType::kText);
    case ExprKind::kColumnRef:
      if (expr.bound_slot >= 0 &&
          static_cast<size_t>(expr.bound_slot) < schema.cols.size()) {
        return schema.cols[expr.bound_slot].type;
      }
      return ColumnType::kText;
    case ExprKind::kUnary:
      return expr.uop == UnaryOp::kNot ? ColumnType::kBool
                                       : InferType(*expr.args[0], schema);
    case ExprKind::kBinary:
      switch (expr.bop) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          ColumnType a = InferType(*expr.args[0], schema);
          ColumnType b = InferType(*expr.args[1], schema);
          return (a == ColumnType::kDouble || b == ColumnType::kDouble)
                     ? ColumnType::kDouble
                     : ColumnType::kInt;
        }
        case BinaryOp::kConcat:
          return ColumnType::kText;
        default:
          return ColumnType::kBool;
      }
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
      return ColumnType::kBool;
    case ExprKind::kFunction: {
      if (expr.fname == "count") return ColumnType::kInt;
      if (expr.fname == "sum" || expr.fname == "min" || expr.fname == "max") {
        return expr.args.empty() ? ColumnType::kDouble
                                 : InferType(*expr.args[0], schema);
      }
      if (expr.fname == "avg") return ColumnType::kDouble;
      if (expr.fname == "coalesce" && !expr.args.empty()) {
        return InferType(*expr.args[0], schema);
      }
      if (expr.fname.find("_int") != std::string::npos) return ColumnType::kInt;
      if (expr.fname.find("_double") != std::string::npos ||
          expr.fname.find("_real") != std::string::npos) {
        return ColumnType::kDouble;
      }
      if (expr.fname.find("_bool") != std::string::npos) return ColumnType::kBool;
      if (expr.fname.find("_bytes") != std::string::npos) {
        return ColumnType::kBytes;
      }
      return ColumnType::kText;
    }
    case ExprKind::kCase:
      return expr.args.size() >= 2 ? InferType(*expr.args[1], schema)
                                   : ColumnType::kText;
    default:
      return ColumnType::kText;
  }
}

}  // namespace sinew::engine
