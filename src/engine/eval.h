// Expression binding and evaluation.

#ifndef SINEW_ENGINE_EVAL_H_
#define SINEW_ENGINE_EVAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/datum.h"
#include "engine/expr.h"
#include "engine/row_batch.h"
#include "engine/udf.h"

namespace sinew::engine {

namespace bytecode {
struct Program;
struct ExecState;
}  // namespace bytecode

/// The column layout flowing between executor operators. Every operator
/// declares one; expressions bind against it by (table alias, column name).
struct ExecSchema {
  struct Col {
    std::string table;  // producing table alias ("" for computed columns)
    std::string name;
    ColumnType type = ColumnType::kText;
  };
  std::vector<Col> cols;

  /// Resolves a (possibly unqualified) column reference to a slot.
  /// Ambiguous unqualified references are an error.
  Result<size_t> Resolve(const std::string& table,
                         const std::string& name) const;
};

/// Binds column references in `expr` (in place) against `schema`.
/// `aliases` lists the table aliases in scope, used to peel a leading
/// "alias." segment off dotted, unqualified names the parser could not
/// disambiguate (e.g. t1."user.lang" and plain "user.lang").
Status BindExpr(Expr* expr, const ExecSchema& schema,
                const std::vector<std::string>& aliases);

/// Recomputes the cached fallback slot sets (Expr::cached_fallback_slots)
/// for every kFunction/kCase/kInList node in the tree. BindExpr fills the
/// caches as it binds; plan rewrites that change bound slots afterwards
/// (e.g. extraction hoisting redirecting colrefs at extract-node outputs)
/// must refresh them — the planner runs this over every expression slot as
/// a final pass, after all rewrites.
void RefreshFallbackSlotCaches(Expr* expr);

/// Evaluates a bound expression over a row. SQL three-valued logic: NULL
/// operands propagate through comparisons and arithmetic; AND/OR implement
/// Kleene logic. Cross-kind comparisons between non-numeric kinds yield NULL
/// (so a predicate over a multi-typed attribute filters rather than errors —
/// paper Section 3.2.2).
Result<Datum> EvalExpr(const Expr& expr, const DatumRow& row,
                       const UdfRegistry* udfs);

/// Evaluates a bound predicate to a filter decision (NULL => false).
Result<bool> EvalPredicate(const Expr& expr, const DatumRow& row,
                           const UdfRegistry* udfs);

/// Batch evaluation: computes `expr` for every lane in `lanes` (physical row
/// indices into `batch`), writing one datum per lane into `*out`. Literals,
/// column refs, comparisons, arithmetic, LIKE/concat, BETWEEN, IS NULL and
/// literal-only IN lists run as column kernels; AND/OR recurse on the
/// undecided lane subset so short-circuit semantics (including which side's
/// runtime errors can fire) match the row evaluator; functions and CASE fall
/// back to the scalar evaluator per lane, so semantics are identical by
/// construction. The only permitted deviation from row-at-a-time execution
/// is *which* lane's error surfaces first when several lanes would error.
Status EvalExprBatch(const Expr& expr, const RowBatch& batch,
                     const std::vector<uint32_t>& lanes,
                     const UdfRegistry* udfs, std::vector<Datum>* out);

/// Batch predicate: evaluates `expr` over the lanes in `*sel` and keeps only
/// the lanes where it is TRUE (NULL filters, non-boolean errors), preserving
/// order — the vectorized EvalPredicate.
Status EvalPredicateBatch(const Expr& expr, const RowBatch& batch,
                          const UdfRegistry* udfs,
                          std::vector<uint32_t>* sel);

/// Program-aware dispatch: runs the compiled bytecode program when one is
/// attached (engine/bytecode.h), else the tree-walk kernels above. The two
/// paths agree lane-for-lane; the only permitted deviation is *which* lane's
/// error surfaces first.
Status EvalExprBatch(const Expr& expr, const bytecode::Program* program,
                     bytecode::ExecState* state, const RowBatch& batch,
                     const std::vector<uint32_t>& lanes,
                     const UdfRegistry* udfs, std::vector<Datum>* out);

/// Program-aware EvalPredicateBatch: single-instruction fused programs
/// refine `*sel` in place without materializing a boolean column.
Status EvalPredicateBatch(const Expr& expr, const bytecode::Program* program,
                          bytecode::ExecState* state, const RowBatch& batch,
                          const UdfRegistry* udfs,
                          std::vector<uint32_t>* sel);

/// Result type inference for a bound expression (best effort; used to label
/// output columns).
ColumnType InferType(const Expr& expr, const ExecSchema& schema);

namespace eval_detail {

/// SQL comparison kernel shared with the bytecode VM: NULL if either side is
/// NULL or the kinds are incomparable, else the boolean verdict of `op`
/// (which must be kEq..kGe).
Datum CompareOp(BinaryOp op, const Datum& lhs, const Datum& rhs);

/// Arithmetic kernel shared with the bytecode VM (op must be kAdd..kMod):
/// NULL propagates, int op int stays int (division/modulo by zero error),
/// any double operand promotes to double.
Result<Datum> ArithmeticOp(BinaryOp op, const Datum& lhs, const Datum& rhs);

}  // namespace eval_detail

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_EVAL_H_
