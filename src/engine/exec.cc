#include "engine/exec.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <iomanip>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <unordered_map>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "engine/bytecode.h"
#include "engine/columnar.h"

namespace sinew::engine {

namespace {

uint64_t RowBytes(const DatumRow& row) {
  uint64_t bytes = sizeof(DatumRow) + row.capacity() * sizeof(Datum);
  for (const Datum& d : row) bytes += d.str().size();
  return bytes;
}

struct ExecContext {
  const UdfRegistry* udfs = nullptr;
  uint64_t mem_limit = 0;
  ThreadPool* pool = nullptr;
  // Per-node actuals (EXPLAIN ANALYZE); nullptr = don't instrument.
  PlanStats* stats = nullptr;
  // Rows per RowBatch; 1 = row-at-a-time Volcano (see ExecOptions).
  size_t batch_size = 1;
  // Record per-call wall clock into OperatorStats.next_ns.
  bool time_ops = false;
  // Shared across Gather workers, so the budget covers the whole query.
  std::atomic<uint64_t> mem_used{0};

  Status Charge(uint64_t bytes) {
    uint64_t used =
        mem_used.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (mem_limit != 0 && used > mem_limit) {
      return Status::Aborted(
          "query aborted: intermediate results exceeded the ", mem_limit,
          "-byte budget (needed more scratch space)");
    }
    return Status::OK();
  }
};

/// Shared work queue of row ranges for a parallel base-table scan: worker
/// pipelines claim fixed-size morsels from an atomic cursor, so fast workers
/// steal the tail instead of idling behind a static partition.
struct MorselSource {
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> claims{0};  // successful claims, across all workers
  uint64_t end = 0;  // set once by GatherOp before workers start

  bool Claim(uint64_t* lo, uint64_t* hi) {
    uint64_t claimed = next.fetch_add(kMorselRows, std::memory_order_relaxed);
    if (claimed >= end) return false;
    claims.fetch_add(1, std::memory_order_relaxed);
    *lo = claimed;
    *hi = std::min(end, claimed + kMorselRows);
    return true;
  }
};

class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  /// Fills `row` and returns true, or returns false at end-of-stream.
  virtual Result<bool> Next(DatumRow* row) = 0;

  /// Fills `batch` with up to batch_capacity() rows and returns true, or
  /// returns false at end-of-stream. Batches may return with an empty
  /// selection (every row filtered out); callers keep pulling until false.
  /// The default adapts row-only operators (sort, joins, aggregates) to
  /// batch consumers by draining Next(), so plan coverage is total without
  /// touching the blocking operators.
  virtual Result<bool> NextBatch(RowBatch* batch) {
    batch->Reset(batch->num_cols());
    DatumRow row;
    while (batch->size < batch_capacity_) {
      ASSIGN_OR_RETURN(bool has, Next(&row));
      if (!has) break;
      batch->AppendRow(std::move(row));
    }
    return batch->size > 0;
  }

  size_t batch_capacity() const { return batch_capacity_; }
  void set_batch_capacity(size_t rows) {
    batch_capacity_ = std::max<size_t>(1, rows);
  }

 protected:
  /// Row-at-a-time view over this operator's own NextBatch output.
  /// Batch-native operators implement Next() with this when running in
  /// batch mode, so row-only parents (a sort above a filter, a join build
  /// side) transparently drain the vectorized pipeline below them. Only
  /// operators that override NextBatch may call it (the default NextBatch
  /// calls Next, which would recurse).
  Result<bool> NextFromOwnBatch(DatumRow* out) {
    while (drain_pos_ >= drain_batch_.active()) {
      ASSIGN_OR_RETURN(bool has, NextBatch(&drain_batch_));
      if (!has) return false;
      drain_pos_ = 0;
    }
    drain_batch_.MoveRow(drain_batch_.sel[drain_pos_++], out);
    return true;
  }

  size_t batch_capacity_ = 1;

 private:
  RowBatch drain_batch_;
  size_t drain_pos_ = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// EXPLAIN ANALYZE shim: times Open/Next and counts emitted rows into the
/// plan node's shared OperatorStats. Gather worker clones of the same plan
/// subtree all wrap the same stats object (fields are atomic), so per-worker
/// activity aggregates onto the one printed tree node. Times are inclusive
/// of children, PostgreSQL-style.
class InstrumentedOp : public Operator {
 public:
  InstrumentedOp(OperatorPtr inner, OperatorStats* stats, bool time_ops)
      : inner_(std::move(inner)), stats_(stats), time_(time_ops) {}

  Status Open() override {
    stats_->instances.fetch_add(1, std::memory_order_relaxed);
    const uint64_t start = metrics::NowNanos();
    Status st = inner_->Open();
    stats_->open_ns.fetch_add(metrics::NowNanos() - start,
                              std::memory_order_relaxed);
    return st;
  }

  Result<bool> Next(DatumRow* row) override {
    stats_->next_calls.fetch_add(1, std::memory_order_relaxed);
    if (!time_) {
      Result<bool> has = inner_->Next(row);
      if (has.ok() && *has) {
        stats_->rows.fetch_add(1, std::memory_order_relaxed);
      }
      return has;
    }
    const uint64_t start = metrics::NowNanos();
    Result<bool> has = inner_->Next(row);
    stats_->next_ns.fetch_add(metrics::NowNanos() - start,
                              std::memory_order_relaxed);
    if (has.ok() && *has) stats_->rows.fetch_add(1, std::memory_order_relaxed);
    return has;
  }

  /// Batch-granularity accounting: one next_calls tick, one timing pair and
  /// one rows/batches update per batch, not per row.
  Result<bool> NextBatch(RowBatch* batch) override {
    stats_->next_calls.fetch_add(1, std::memory_order_relaxed);
    const uint64_t start = time_ ? metrics::NowNanos() : 0;
    Result<bool> has = inner_->NextBatch(batch);
    if (time_) {
      stats_->next_ns.fetch_add(metrics::NowNanos() - start,
                                std::memory_order_relaxed);
    }
    if (has.ok() && *has) {
      stats_->rows.fetch_add(batch->active(), std::memory_order_relaxed);
      stats_->batches.fetch_add(1, std::memory_order_relaxed);
    }
    return has;
  }

 private:
  OperatorPtr inner_;
  OperatorStats* stats_;
  bool time_;
};

/// ExecState scratch above this many datums of capacity is released at
/// operator close instead of kept; register vectors high-water to the widest
/// batch ever executed, so without the cap a pooled operator (or a session
/// reusing plans) pins that memory forever. One default batch is the natural
/// working set.
constexpr size_t kExecStateShrinkThreshold = 4096;

/// Drains an operator's bytecode lane counters into its plan node's stats
/// and returns the state's scratch memory; operators with a compiled program
/// call this from their destructor.
void FlushBytecodeState(const PlanNode& node, ExecContext* ctx,
                        bytecode::ExecState* st) {
  if (ctx->stats != nullptr &&
      (st->fallback_lanes != 0 || st->typed_lanes != 0 ||
       st->boxed_lanes != 0)) {
    if (OperatorStats* s = ctx->stats->For(node)) {
      s->bc_fallback_lanes.fetch_add(st->fallback_lanes,
                                     std::memory_order_relaxed);
      s->bc_typed_lanes.fetch_add(st->typed_lanes, std::memory_order_relaxed);
      s->bc_boxed_lanes.fetch_add(st->boxed_lanes, std::memory_order_relaxed);
    }
  }
  st->Reset(kExecStateShrinkThreshold);
}

// ---------------------------------------------------------------- SeqScan

class ScanOp : public Operator {
 public:
  /// With a MorselSource the scan claims row ranges from it instead of
  /// walking the whole table — the shape each Gather worker runs.
  ScanOp(const PlanNode& node, ExecContext* ctx,
         MorselSource* morsels = nullptr)
      : node_(node), ctx_(ctx), morsels_(morsels) {}

  ~ScanOp() override {
    if (ctx_->stats != nullptr && zone_skips_ != 0) {
      if (OperatorStats* s = ctx_->stats->For(node_)) {
        s->zone_skips.fetch_add(zone_skips_, std::memory_order_relaxed);
      }
    }
    FlushBytecodeState(node_, ctx_, &bc_state_);
  }

  Status Open() override {
    Table* table = node_.table;
    std::shared_lock lock(table->latch());
    schema_ = table->SchemaUnlocked();  // snapshot
    live_slots_ = schema_.LiveSlots();
    end_ = morsels_ != nullptr ? 0 : table->RowSlotCountUnlocked();
    rid_ = 0;
    const size_t rid_position = live_slots_.size();
    // The plan was built against an earlier schema snapshot; if a
    // concurrent ADD/DROP COLUMN changed the live layout in between,
    // silently decoding would misalign columns — fail fast instead (the
    // caller retries with a fresh plan).
    if (node_.scan_projected) {
      if (live_slots_.size() + 1 != node_.output_schema.cols.size()) {
        return Status::Aborted("schema changed concurrently; replan");
      }
      for (size_t i = 0; i < live_slots_.size(); ++i) {
        if (schema_.columns()[live_slots_[i]].name !=
            node_.output_schema.cols[i].name) {
          return Status::Aborted("schema changed concurrently; replan");
        }
      }
    }
    // Map scan output positions to physical table slots for the pushed-down
    // projection (the __rid pseudo-column is computed, not decoded).
    auto to_table_slots = [&](const std::vector<size_t>& positions) {
      std::vector<size_t> slots;
      for (size_t pos : positions) {
        if (pos < rid_position) slots.push_back(live_slots_[pos]);
      }
      std::sort(slots.begin(), slots.end());
      return slots;
    };
    if (node_.scan_projected) {
      filter_slots_ = to_table_slots(node_.scan_filter_cols);
      output_slots_ = to_table_slots(node_.scan_output_cols);
    } else {
      filter_slots_ = live_slots_;
      std::sort(filter_slots_.begin(), filter_slots_.end());
      output_slots_.clear();
    }
    // With no dropped columns, output position == table slot, so rows can be
    // decoded in place without the intermediate full-width buffer.
    identity_ = live_slots_.size() == schema_.num_slots();
    for (size_t i = 0; identity_ && i < live_slots_.size(); ++i) {
      identity_ = live_slots_[i] == i;
    }
    // Deferred-bytes pushdown: a lazy source survives Open only when its
    // column is decoded exclusively in phase 2 (the pushed-down filter never
    // reads it), so skipping the decode cannot change which rows survive.
    lazy_eligible_ = false;
    lazy_positions_.clear();
    lazy_req_.clear();
    output_slots_lazy_.clear();
    for (const LazyScanSource& src : node_.lazy_sources) {
      if (src.output_pos < 0 ||
          static_cast<size_t>(src.output_pos) >= live_slots_.size()) {
        continue;
      }
      const size_t table_slot = live_slots_[src.output_pos];
      if (std::binary_search(filter_slots_.begin(), filter_slots_.end(),
                             table_slot) ||
          !std::binary_search(output_slots_.begin(), output_slots_.end(),
                              table_slot)) {
        continue;
      }
      lazy_positions_.push_back(src.output_pos);
      lazy_req_.emplace_back(node_.output_schema.cols[src.output_pos].name,
                             &src);
      lazy_table_slots_.push_back(table_slot);
    }
    if (!lazy_req_.empty()) {
      lazy_eligible_ = true;
      for (size_t s : output_slots_) {
        if (std::find(lazy_table_slots_.begin(), lazy_table_slots_.end(),
                      s) == lazy_table_slots_.end()) {
          output_slots_lazy_.push_back(s);
        }
      }
    }
    return Status::OK();
  }

  Result<bool> Next(DatumRow* out) override {
    Table* table = node_.table;
    lazy_active_ = false;  // row-at-a-time consumers always get real bytes
    while (rid_ < end_ ||
           (morsels_ != nullptr && morsels_->Claim(&rid_, &end_))) {
      // Chunked shared latching: hold the latch for up to kScanChunk rows so
      // the background materializer's row updates can interleave.
      std::shared_lock lock(table->latch());
      if (!node_.zone_filters.empty()) {
        SkipZonedStripsUnlocked(table);
        if (rid_ >= end_) continue;
      }
      uint64_t chunk_end = std::min(end_, rid_ + kScanChunk);
      for (; rid_ < chunk_end; ++rid_) {
        ASSIGN_OR_RETURN(bool has, DecodeRowUnlocked(rid_, out));
        if (!has) continue;
        ++rid_;
        return true;
      }
    }
    return false;
  }

  /// Batch scan: one latch acquisition covers a whole batch worth of rows
  /// (the row path re-latches per emitted row), decoding straight into the
  /// batch's columns.
  Result<bool> NextBatch(RowBatch* batch) override {
    Table* table = node_.table;
    const size_t rid_position = live_slots_.size();
    batch->Reset(rid_position + 1);
    DatumRow row;
    while (batch->size < batch_capacity_ &&
           (rid_ < end_ ||
            (morsels_ != nullptr && morsels_->Claim(&rid_, &end_)))) {
      std::shared_lock lock(table->latch());
      if (!node_.zone_filters.empty()) {
        SkipZonedStripsUnlocked(table);
        if (rid_ >= end_) continue;
      }
      RefreshLazyStateUnlocked(table, batch);
      uint64_t chunk_end = std::min(end_, rid_ + kScanChunk);
      for (; rid_ < chunk_end && batch->size < batch_capacity_; ++rid_) {
        ASSIGN_OR_RETURN(bool has, DecodeRowUnlocked(rid_, &row));
        if (has) batch->AppendRow(std::move(row));
      }
    }
    lazy_active_ = false;
    return batch->size > 0;
  }

 private:
  /// Advances rid_ past leading column strips whose zone maps prove no row
  /// can pass the pushed-down filter. Caller holds the table latch, which is
  /// what makes the consult sound: mutators detach the columnar segment
  /// before rewriting a covered row, so under one latch acquisition an
  /// attached segment and the row bytes it summarizes agree.
  void SkipZonedStripsUnlocked(Table* table) {
    static metrics::Counter* zonemap_skips =
        metrics::GetCounter("strips.skipped_by_zonemap");
    const std::shared_ptr<const ColumnarSegment>& seg =
        table->ColumnarSegmentUnlocked();
    if (seg == nullptr || rid_ >= seg->row_count()) return;
    resolved_zones_.clear();
    for (const ZoneFilter& zf : node_.zone_filters) {
      const StripColumn* col =
          seg->Find(zf.source_column, zf.prefix_ids, zf.attr_id,
                    static_cast<ValueType>(zf.type_tag));
      if (col != nullptr) resolved_zones_.emplace_back(col, &zf);
    }
    if (resolved_zones_.empty()) return;
    while (rid_ < end_ && rid_ < seg->row_count()) {
      const size_t strip = static_cast<size_t>(rid_ / kStripRows);
      bool skip = false;
      for (const auto& [col, zf] : resolved_zones_) {
        if (strip >= col->strips.size()) continue;
        if (ZoneCanSkip(col->strips[strip], zf->op, zf->literal)) {
          skip = true;
          break;
        }
      }
      if (!skip) return;
      ++zone_skips_;
      zonemap_skips->Increment();
      rid_ = std::min(
          end_, std::min<uint64_t>(
                    static_cast<uint64_t>(strip + 1) * kStripRows,
                    seg->row_count()));
    }
  }

  /// Decides, per latch chunk, whether phase-2 decode may skip the lazy
  /// bytes columns: the attached columnar segment must resolve every
  /// extract target the plan routed through them, and one batch defers
  /// against exactly one segment (pointer identity, recorded on the batch —
  /// the extract above re-verifies it before serving). Caller holds the
  /// table latch.
  void RefreshLazyStateUnlocked(Table* table, RowBatch* batch) {
    lazy_active_ = false;
    if (!lazy_eligible_) return;
    const std::shared_ptr<const ColumnarSegment>& seg =
        table->ColumnarSegmentUnlocked();
    if (seg == nullptr) return;
    if (batch->lazy_seg != nullptr && batch->lazy_seg != seg.get()) return;
    if (seg != lazy_resolved_hold_) {
      lazy_resolved_hold_ = seg;  // pins the address the cache is keyed on
      lazy_resolved_ok_ = true;
      for (const auto& [name, src] : lazy_req_) {
        for (const ExtractTarget& t : src->targets) {
          if (seg->Find(name, t.prefix_ids, t.attr_id,
                        static_cast<ValueType>(t.type_tag)) == nullptr) {
            lazy_resolved_ok_ = false;
            break;
          }
        }
        if (!lazy_resolved_ok_) break;
      }
    }
    if (!lazy_resolved_ok_) return;
    lazy_active_ = true;
    lazy_limit_ = seg->row_count();
    if (batch->lazy_seg == nullptr) {
      batch->lazy_seg = seg.get();
      batch->lazy_limit = seg->row_count();
      batch->lazy_cols.assign(lazy_positions_.begin(), lazy_positions_.end());
    }
  }

  /// Decodes row slot `rid` into `*out` (survivor of the deleted-row check
  /// and the pushed-down filter), exactly the row-at-a-time inner loop.
  /// Caller holds the table latch.
  Result<bool> DecodeRowUnlocked(uint64_t rid, DatumRow* out) {
    Table* table = node_.table;
    const size_t rid_position = live_slots_.size();
    const std::string& raw = table->RawRowUnlocked(rid);
    if (raw.empty()) return false;  // deleted
    // Decode straight into the caller's buffer — the batch path hands the
    // same scratch row back in every iteration, so the steady state reuses
    // its capacity instead of allocating a fresh row per decode.
    DatumRow& row = *out;
    row.assign(rid_position + 1, Datum());
    // Phase 1: decode only the columns the pushed-down filter touches.
    if (identity_) {
      RETURN_NOT_OK(DecodeRowSlots(schema_, raw, filter_slots_, &row));
    } else {
      full_scratch_.assign(schema_.num_slots(), Datum());
      RETURN_NOT_OK(
          DecodeRowSlots(schema_, raw, filter_slots_, &full_scratch_));
      for (size_t i = 0; i < rid_position; ++i) {
        row[i] = std::move(full_scratch_[live_slots_[i]]);
      }
    }
    row[rid_position] = Datum::Int(static_cast<int64_t>(rid));
    if (node_.scan_filter != nullptr) {
      bool keep;
      if (node_.scan_filter_program != nullptr) {
        ASSIGN_OR_RETURN(keep,
                         bytecode::ExecPredicateRow(*node_.scan_filter_program,
                                                    row, ctx_->udfs,
                                                    &bc_state_));
      } else {
        ASSIGN_OR_RETURN(keep,
                         EvalPredicate(*node_.scan_filter, row, ctx_->udfs));
      }
      if (!keep) return false;
    }
    // Phase 2: decode the remaining referenced columns for survivors. A
    // deferring chunk (RefreshLazyStateUnlocked) narrows the slot list for
    // segment-covered rows: the strips above serve those columns instead.
    const std::vector<size_t>& out_slots =
        lazy_active_ && rid < lazy_limit_ ? output_slots_lazy_
                                          : output_slots_;
    if (!out_slots.empty()) {
      if (identity_) {
        RETURN_NOT_OK(DecodeRowSlots(schema_, raw, out_slots, &row));
      } else {
        full_scratch_.assign(schema_.num_slots(), Datum());
        RETURN_NOT_OK(
            DecodeRowSlots(schema_, raw, out_slots, &full_scratch_));
        for (size_t i = 0; i < rid_position; ++i) {
          if (row[i].is_null()) {
            row[i] = std::move(full_scratch_[live_slots_[i]]);
          }
        }
      }
    }
    return true;
  }
  const PlanNode& node_;
  ExecContext* ctx_;
  MorselSource* morsels_;
  Schema schema_;
  std::vector<size_t> live_slots_;
  std::vector<size_t> filter_slots_;
  std::vector<size_t> output_slots_;
  bool identity_ = false;
  /// Full-width decode buffer for non-identity layouts, reused across rows.
  DatumRow full_scratch_;
  uint64_t rid_ = 0;
  uint64_t end_ = 0;
  /// Zone filter -> strip column resolution, rebuilt per latch acquisition
  /// (the attached segment may change between acquisitions, never within).
  std::vector<std::pair<const StripColumn*, const ZoneFilter*>>
      resolved_zones_;
  uint64_t zone_skips_ = 0;  // strips skipped; flushed to stats on destroy
  /// Bytecode scratch for the compiled scan filter (per operator instance;
  /// the program itself is shared across Gather workers via the plan node).
  bytecode::ExecState bc_state_;
  // Deferred-bytes pushdown state (node_.lazy_sources; batch path only).
  bool lazy_eligible_ = false;      // Open-time checks passed
  bool lazy_active_ = false;        // current chunk skips the lazy columns
  uint64_t lazy_limit_ = 0;         // segment row_count for current chunk
  std::vector<int> lazy_positions_;        // scan output positions deferred
  std::vector<size_t> lazy_table_slots_;   // their physical table slots
  std::vector<std::pair<std::string, const LazyScanSource*>> lazy_req_;
  std::vector<size_t> output_slots_lazy_;  // output_slots_ minus lazy slots
  /// Target-resolution cache, keyed on (and pinning) the segment snapshot.
  std::shared_ptr<const ColumnarSegment> lazy_resolved_hold_;
  bool lazy_resolved_ok_ = false;
};

// ---------------------------------------------------------------- Filter

class FilterOp : public Operator {
 public:
  FilterOp(const PlanNode& node, OperatorPtr child, ExecContext* ctx)
      : node_(node), child_(std::move(child)), ctx_(ctx) {}

  ~FilterOp() override { FlushBytecodeState(node_, ctx_, &bc_state_); }

  Status Open() override { return child_->Open(); }

  Result<bool> Next(DatumRow* out) override {
    if (batch_capacity_ > 1) return NextFromOwnBatch(out);
    while (true) {
      ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      bool keep;
      if (node_.predicate_program != nullptr) {
        ASSIGN_OR_RETURN(keep,
                         bytecode::ExecPredicateRow(*node_.predicate_program,
                                                    *out, ctx_->udfs,
                                                    &bc_state_));
      } else {
        ASSIGN_OR_RETURN(keep,
                         EvalPredicate(*node_.predicate, *out, ctx_->udfs));
      }
      if (keep) return true;
    }
  }

  /// Vectorized filter: refines the selection vector in place. Batches that
  /// end up with an empty selection are still passed through (downstream
  /// operators must handle them; the root drain skips them).
  Result<bool> NextBatch(RowBatch* batch) override {
    ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    if (!has) return false;
    RETURN_NOT_OK(EvalPredicateBatch(*node_.predicate,
                                     node_.predicate_program.get(), &bc_state_,
                                     *batch, ctx_->udfs, &batch->sel));
    return true;
  }

 private:
  const PlanNode& node_;
  OperatorPtr child_;
  ExecContext* ctx_;
  bytecode::ExecState bc_state_;
};

// ---------------------------------------------------------------- Project

class ProjectOp : public Operator {
 public:
  ProjectOp(const PlanNode& node, OperatorPtr child, ExecContext* ctx)
      : node_(node), child_(std::move(child)), ctx_(ctx) {}

  ~ProjectOp() override { FlushBytecodeState(node_, ctx_, &bc_state_); }

  Status Open() override { return child_->Open(); }

  Result<bool> Next(DatumRow* out) override {
    if (batch_capacity_ > 1) return NextFromOwnBatch(out);
    DatumRow in;
    ASSIGN_OR_RETURN(bool has, child_->Next(&in));
    if (!has) return false;
    DatumRow row;
    row.reserve(node_.projections.size());
    for (const ExprPtr& p : node_.projections) {
      ASSIGN_OR_RETURN(Datum v, EvalExpr(*p, in, ctx_->udfs));
      row.push_back(std::move(v));
    }
    *out = std::move(row);
    return true;
  }

  /// Vectorized projection: each projection expression runs once over the
  /// input batch's selected lanes into one output column. The output batch
  /// is compacted (identity selection), since dead input lanes carry nothing
  /// worth preserving past a projection.
  Result<bool> NextBatch(RowBatch* batch) override {
    ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in_));
    if (!has) return false;
    batch->Reset(node_.projections.size());
    // Dense input (selection vector == identity, the no-filter common case):
    // a bare column-ref projection can take the whole input column instead
    // of copying per lane — moved on its last referencing projection, copied
    // before that. The selection vector is always an ascending subset of the
    // physical lanes, so dense implies identity.
    const bool dense = in_.active() == in_.size;
    for (size_t c = 0; c < node_.projections.size(); ++c) {
      const Expr& p = *node_.projections[c];
      if (dense && p.kind == ExprKind::kColumnRef && p.bound_slot >= 0 &&
          static_cast<size_t>(p.bound_slot) < in_.num_cols()) {
        // The column travels verbatim (dense implies identical physical
        // rows), so its batch type proof stays valid — carry the tag across
        // and downstream programs skip re-profiling.
        const bool used_after = SlotUsedAfter(c, p.bound_slot);
        const ColTag* tag = in_.TagFor(p.bound_slot);
        if (tag != nullptr && batch->tags.size() < node_.projections.size()) {
          batch->tags.resize(node_.projections.size());
        }
        if (used_after) {
          batch->cols[c] = in_.cols[p.bound_slot];
          if (tag != nullptr) batch->tags[c] = *tag;
        } else {
          batch->cols[c] = std::move(in_.cols[p.bound_slot]);
          if (tag != nullptr) {
            batch->tags[c] = std::move(in_.tags[p.bound_slot]);
            in_.InvalidateTag(p.bound_slot);
          }
        }
        continue;
      }
      const bytecode::Program* prog =
          c < node_.projection_programs.size()
              ? node_.projection_programs[c].get()
              : nullptr;
      RETURN_NOT_OK(EvalExprBatch(p, prog, &bc_state_, in_, in_.sel,
                                  ctx_->udfs, &batch->cols[c]));
    }
    batch->size = in_.active();
    batch->sel.resize(batch->size);
    for (size_t i = 0; i < batch->size; ++i) {
      batch->sel[i] = static_cast<uint32_t>(i);
    }
    return true;
  }

 private:
  static bool UsesSlot(const Expr& e, int slot) {
    if (e.kind == ExprKind::kColumnRef) return e.bound_slot == slot;
    for (const ExprPtr& a : e.args) {
      if (UsesSlot(*a, slot)) return true;
    }
    return false;
  }

  bool SlotUsedAfter(size_t c, int slot) const {
    for (size_t k = c + 1; k < node_.projections.size(); ++k) {
      if (UsesSlot(*node_.projections[k], slot)) return true;
    }
    return false;
  }

  const PlanNode& node_;
  OperatorPtr child_;
  ExecContext* ctx_;
  RowBatch in_;
  bytecode::ExecState bc_state_;
};

// ---------------------------------------------------------------- Extract

// Batched virtual-attribute extraction (kExtract): appends one computed
// column per target to each child row, decoding every serialized source
// column once per row through the registered batch-extract function. The
// operator itself is stateless across rows, so Gather worker clones are
// safe; decode tallies accumulate locally and flush into the plan node's
// OperatorStats on destruction (like GatherOp's morsel counts).
class ExtractOp : public Operator {
 public:
  ExtractOp(const PlanNode& node, OperatorPtr child, ExecContext* ctx)
      : node_(node), child_(std::move(child)), ctx_(ctx) {}

  ~ExtractOp() override {
    if (ctx_->stats != nullptr) {
      if (OperatorStats* s = ctx_->stats->For(node_)) {
        s->decodes.fetch_add(stats_.decodes, std::memory_order_relaxed);
        s->attrs.fetch_add(stats_.attrs, std::memory_order_relaxed);
        s->columnar_hits.fetch_add(columnar_hits_,
                                   std::memory_order_relaxed);
      }
    }
    FlushHeat();
  }

  Status Open() override {
    fn_ = ctx_->udfs == nullptr
              ? nullptr
              : ctx_->udfs->FindBatchExtract(node_.extract_fn);
    if (fn_ == nullptr) {
      return Status::Internal("batch extract function ", node_.extract_fn,
                              " is not registered");
    }
    rows_fn_ = ctx_->udfs->FindBatchExtractRows(node_.extract_fn);
    BindColumnarSegment();
    // Attribute heat telemetry is armed only when a sink is installed and
    // the extraction is attributable to a base table; otherwise every
    // per-batch accounting branch below is a single predicted-false check.
    heat_enabled_ = node_.extract_table != nullptr &&
                    ctx_->udfs->heat_sink() != nullptr;
    if (heat_enabled_) {
      heat_.assign(node_.extract_targets.size(), TargetHeat{});
    }
    return child_->Open();
  }

  Result<bool> Next(DatumRow* out) override {
    if (batch_capacity_ > 1) return NextFromOwnBatch(out);
    ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    const uint64_t heat_t0 = heat_enabled_ ? metrics::NowNanos() : 0;
    RETURN_NOT_OK((*fn_)(*out, node_.extract_targets, &outs_, &stats_));
    if (heat_enabled_) {
      decode_ns_ += metrics::NowNanos() - heat_t0;
      for (TargetHeat& h : heat_) {
        ++h.requests;
        ++h.reservoir_served;
      }
    }
    out->reserve(out->size() + outs_.size());
    for (Datum& d : outs_) out->push_back(std::move(d));
    return true;
  }

  /// Vectorized extraction: one batch-of-rows call serves every selected
  /// lane (amortizing the std::function dispatch and, per source column,
  /// decoding each reservoir once). Extracted values scatter into full-size
  /// NULL-padded output columns so physical lane indices stay aligned with
  /// the child batch — the selection vector may be sparse here when the
  /// extraction sits above a filter.
  Result<bool> NextBatch(RowBatch* batch) override {
    ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    if (!has) return false;
    const size_t num_targets = node_.extract_targets.size();
    if (batch->active() == 0) {
      for (size_t t = 0; t < num_targets; ++t) {
        batch->cols.emplace_back(batch->size);  // all-NULL, width stays right
      }
      return true;
    }
    strips_pure_ = false;
    if (rows_fn_ != nullptr) {
      ASSIGN_OR_RETURN(bool columnar, TryServeFromStrips(batch));
      // Every selected lane either came from a strip or is NULL (no hot
      // reservoir rows): servable output columns carry the strip's declared
      // type, so the batch tags can be seeded below.
      strips_pure_ = columnar && hot_k_.empty();
      if (!columnar) {
        const uint64_t heat_t0 = heat_enabled_ ? metrics::NowNanos() : 0;
        RETURN_NOT_OK((*rows_fn_)(*batch, batch->sel, node_.extract_targets,
                                  &out_cols_, &stats_));
        if (heat_enabled_) {
          decode_ns_ += metrics::NowNanos() - heat_t0;
          for (TargetHeat& h : heat_) {
            h.requests += batch->sel.size();
            h.reservoir_served += batch->sel.size();
          }
        }
      }
    } else {
      // No batch-of-rows entry point registered: run the row-level function
      // per selected lane over a scratch row of the child's width. Deferred
      // batches can't take this path — the scan only defers for the batch
      // extractor — but guard anyway: serving from NULL bytes would be
      // silent corruption, an abort is a replan.
      if (batch->lazy_seg != nullptr && SourcesLazyColumn(*batch)) {
        return Status::Aborted(
            "columnar segment changed concurrently; replan");
      }
      out_cols_.resize(num_targets);
      for (std::vector<Datum>& col : out_cols_) {
        col.assign(batch->active(), Datum::Null());
      }
      const uint64_t heat_t0 = heat_enabled_ ? metrics::NowNanos() : 0;
      DatumRow scratch;
      for (size_t k = 0; k < batch->sel.size(); ++k) {
        batch->CopyRow(batch->sel[k], &scratch);
        RETURN_NOT_OK((*fn_)(scratch, node_.extract_targets, &outs_, &stats_));
        for (size_t t = 0; t < num_targets; ++t) {
          out_cols_[t][k] = std::move(outs_[t]);
        }
      }
      if (heat_enabled_) {
        decode_ns_ += metrics::NowNanos() - heat_t0;
        for (TargetHeat& h : heat_) {
          h.requests += batch->sel.size();
          h.reservoir_served += batch->sel.size();
        }
      }
    }
    // Dense selection (no filter below): the per-lane outputs already sit in
    // physical order, so the extractor's columns append wholesale.
    if (batch->active() == batch->size) {
      const size_t base = batch->cols.size();
      for (size_t t = 0; t < num_targets; ++t) {
        batch->cols.push_back(std::move(out_cols_[t]));
      }
      if (strips_pure_) {
        // Seed the batch type tags from the strips' declared types. The
        // profile pass still validates every lane (a mismatched strip type
        // just degrades to kMixed), but it never has to classify.
        for (const auto& [t, col] : servable_) {
          const ColTag::Type want = StripTagType(col->type);
          if (want != ColTag::Type::kUnknown) {
            batch->ProfileColumn(base + t, want);
          }
        }
      }
      return true;
    }
    for (size_t t = 0; t < num_targets; ++t) {
      std::vector<Datum> col(batch->size);
      for (size_t k = 0; k < batch->sel.size(); ++k) {
        col[batch->sel[k]] = std::move(out_cols_[t][k]);
      }
      batch->cols.push_back(std::move(col));
    }
    return true;
  }

 private:
  /// Snapshots the source table's columnar segment and partitions the
  /// targets into strip-servable (a matching strip column exists) and
  /// reservoir-only. The mutation version is read *before* the segment
  /// snapshot: re-checking it per batch then proves the table — and hence
  /// both the segment and every row byte the scan decodes — unchanged
  /// since this instant, so strip values and row values agree per row.
  void BindColumnarSegment() {
    seg_.reset();
    servable_.clear();
    servable_targets_.clear();
    unservable_targets_.clear();
    unservable_index_.clear();
    if (node_.extract_table == nullptr || node_.extract_rid_slot < 0 ||
        rows_fn_ == nullptr || node_.children.empty()) {
      return;
    }
    open_version_ = node_.extract_table->MutationVersion();
    seg_ = node_.extract_table->ColumnarSegmentSnapshot();
    if (seg_ == nullptr) return;
    const auto& child_cols = node_.children[0]->output_schema.cols;
    for (size_t t = 0; t < node_.extract_targets.size(); ++t) {
      const ExtractTarget& target = node_.extract_targets[t];
      const StripColumn* col = nullptr;
      if (!target.raw_bytes && target.source_slot >= 0 &&
          static_cast<size_t>(target.source_slot) < child_cols.size()) {
        col = seg_->Find(child_cols[target.source_slot].name,
                         target.prefix_ids, target.attr_id,
                         static_cast<ValueType>(target.type_tag));
      }
      if (col != nullptr) {
        servable_.emplace_back(t, col);
        servable_targets_.push_back(target);
      } else {
        unservable_index_.push_back(t);
        unservable_targets_.push_back(target);
      }
    }
    if (servable_.empty()) seg_.reset();
    // When an unservable target shares its source column with servable
    // ones, the reservoir decode of that column is paid for every lane
    // anyway, and the extra attributes ride the same merge-join header pass
    // almost for free — strip serving would only stack per-lane overhead on
    // top. Serve the whole node from rows. (A deferring scan cannot reach
    // this shape: it defers only when the same segment resolves every
    // target on the column, which puts them all in the servable set.)
    for (const ExtractTarget& u : unservable_targets_) {
      if (seg_ == nullptr) break;
      for (const ExtractTarget& s : servable_targets_) {
        if (u.source_slot == s.source_slot) {
          seg_.reset();
          break;
        }
      }
    }
  }

  /// True when any extract target reads a column the scan deferred in this
  /// batch (scan output positions; the child's column prefix preserves
  /// them, so source_slot compares directly).
  bool SourcesLazyColumn(const RowBatch& batch) const {
    for (const ExtractTarget& t : node_.extract_targets) {
      for (int pos : batch.lazy_cols) {
        if (t.source_slot == pos) return true;
      }
    }
    return false;
  }

  /// Serves strip-resident targets for cold lanes (rid inside the segment)
  /// straight from the columnar segment — a typed copy instead of a
  /// reservoir header walk — and routes everything else (hot-tail lanes,
  /// reservoir-only targets) through the registered extractor on subset
  /// lane/target lists. Subsets preserve the grouped-by-source /
  /// sorted-by-(prefix, id) contract because they preserve relative order.
  /// Returns false when strip serving is off for this operator; the caller
  /// then runs the plain reservoir path.
  Result<bool> TryServeFromStrips(RowBatch* batch) {
    static metrics::Counter* strip_hits =
        metrics::GetCounter("extract.columnar_hits");
    // Deferred-bytes batches: the scan left reservoir bytes undecoded for
    // segment-covered rows on the promise that this operator serves those
    // columns from the very same segment. Anything voiding the promise — a
    // different (or never bound) segment, a table mutation since Open —
    // makes the batch unextractable; abort for a replan (the retry rebinds
    // everything) rather than ever serving NULLs for real values.
    if (batch->lazy_seg != nullptr && SourcesLazyColumn(*batch)) {
      if (seg_ == nullptr || batch->lazy_seg != seg_.get() ||
          node_.extract_table->MutationVersion() != open_version_) {
        return Status::Aborted(
            "columnar segment changed concurrently; replan");
      }
    }
    if (seg_ == nullptr) return false;
    // Any table mutation since Open — value update, append, maintenance —
    // permanently disables strip serving for this operator instance; the
    // reservoir path is always correct, strips are only an accelerator.
    if (node_.extract_table->MutationVersion() != open_version_) {
      seg_.reset();
      return false;
    }
    const size_t num_targets = node_.extract_targets.size();
    const std::vector<Datum>& rid_col =
        batch->cols[static_cast<size_t>(node_.extract_rid_slot)];
    const uint64_t cold_rows = seg_->row_count();
    cold_k_.clear();
    hot_k_.clear();
    for (size_t k = 0; k < batch->sel.size(); ++k) {
      const Datum& rid = rid_col[batch->sel[k]];
      if (rid.is_int() && static_cast<uint64_t>(rid.int_value()) < cold_rows) {
        cold_k_.push_back(k);
      } else {
        hot_k_.push_back(k);
      }
    }
    out_cols_.resize(num_targets);
    for (std::vector<Datum>& col : out_cols_) {
      col.assign(batch->sel.size(), Datum::Null());
    }
    for (const auto& [t, col] : servable_) {
      std::vector<Datum>& out = out_cols_[t];
      for (size_t k : cold_k_) {
        out[k] = col->GetDatum(
            static_cast<uint64_t>(rid_col[batch->sel[k]].int_value()));
      }
    }
    const uint64_t hits = cold_k_.size() * servable_.size();
    columnar_hits_ += hits;
    if (hits != 0) strip_hits->Add(hits);
    if (!unservable_targets_.empty()) {
      const uint64_t heat_t0 = heat_enabled_ ? metrics::NowNanos() : 0;
      RETURN_NOT_OK((*rows_fn_)(*batch, batch->sel, unservable_targets_,
                                &sub_cols_, &stats_));
      if (heat_enabled_) decode_ns_ += metrics::NowNanos() - heat_t0;
      for (size_t u = 0; u < unservable_index_.size(); ++u) {
        out_cols_[unservable_index_[u]] = std::move(sub_cols_[u]);
      }
    }
    if (!hot_k_.empty()) {
      hot_lanes_.clear();
      for (size_t k : hot_k_) hot_lanes_.push_back(batch->sel[k]);
      const uint64_t heat_t0 = heat_enabled_ ? metrics::NowNanos() : 0;
      RETURN_NOT_OK((*rows_fn_)(*batch, hot_lanes_, servable_targets_,
                                &sub_cols_, &stats_));
      if (heat_enabled_) decode_ns_ += metrics::NowNanos() - heat_t0;
      for (size_t v = 0; v < servable_.size(); ++v) {
        std::vector<Datum>& out = out_cols_[servable_[v].first];
        for (size_t j = 0; j < hot_k_.size(); ++j) {
          out[hot_k_[j]] = std::move(sub_cols_[v][j]);
        }
      }
    }
    if (heat_enabled_) {
      // Per-target lane accounting for this batch: every active lane asked
      // for every target; strip-resident targets answered cold lanes from
      // strips and hot lanes from the reservoir, the rest went all-reservoir.
      for (TargetHeat& h : heat_) h.requests += batch->sel.size();
      for (const auto& [t, col] : servable_) {
        (void)col;
        heat_[t].strip_served += cold_k_.size();
        heat_[t].reservoir_served += hot_k_.size();
      }
      for (size_t u : unservable_index_) {
        heat_[u].reservoir_served += batch->sel.size();
      }
    }
    return true;
  }

  /// Flushes accumulated attribute-heat samples to the registry's sink.
  /// Reservoir decode time is shared across targets in proportion to their
  /// reservoir-served lanes (one decode pass serves all targets at once, so
  /// a per-target clock would double-count).
  void FlushHeat() {
    if (!heat_enabled_ || heat_.empty()) return;
    uint64_t reservoir_total = 0;
    for (const TargetHeat& h : heat_) reservoir_total += h.reservoir_served;
    std::vector<AttrAccessSample> samples;
    samples.reserve(heat_.size());
    const std::string& table = node_.extract_table->name();
    for (size_t t = 0; t < heat_.size(); ++t) {
      if (heat_[t].requests == 0) continue;
      AttrAccessSample s;
      s.table = table;
      s.attr_id = node_.extract_targets[t].attr_id;
      s.requests = heat_[t].requests;
      s.strip_served = heat_[t].strip_served;
      s.reservoir_served = heat_[t].reservoir_served;
      s.decode_ns = reservoir_total == 0
                        ? 0
                        : decode_ns_ * heat_[t].reservoir_served /
                              reservoir_total;
      samples.push_back(std::move(s));
    }
    if (!samples.empty()) (*ctx_->udfs->heat_sink())(samples);
  }

  const PlanNode& node_;
  OperatorPtr child_;
  ExecContext* ctx_;
  const BatchExtractFn* fn_ = nullptr;
  const BatchExtractRowsFn* rows_fn_ = nullptr;
  std::vector<Datum> outs_;
  std::vector<std::vector<Datum>> out_cols_;
  BatchExtractStats stats_;
  // Columnar strip serving state (BindColumnarSegment).
  std::shared_ptr<const ColumnarSegment> seg_;
  uint64_t open_version_ = 0;
  std::vector<std::pair<size_t, const StripColumn*>> servable_;
  std::vector<ExtractTarget> servable_targets_;
  std::vector<ExtractTarget> unservable_targets_;
  std::vector<size_t> unservable_index_;
  std::vector<size_t> cold_k_;
  std::vector<size_t> hot_k_;
  std::vector<uint32_t> hot_lanes_;
  /// Last batch came entirely from strips (no hot reservoir lanes), so
  /// servable output columns can seed batch type tags from the strip type.
  bool strips_pure_ = false;
  std::vector<std::vector<Datum>> sub_cols_;
  uint64_t columnar_hits_ = 0;
  // Attribute heat accounting (FlushHeat), one entry per extract target.
  struct TargetHeat {
    uint64_t requests = 0;
    uint64_t strip_served = 0;
    uint64_t reservoir_served = 0;
  };
  bool heat_enabled_ = false;
  std::vector<TargetHeat> heat_;
  uint64_t decode_ns_ = 0;
};

// ---------------------------------------------------------------- Sort

class SortOp : public Operator {
 public:
  SortOp(const PlanNode& node, OperatorPtr child, ExecContext* ctx)
      : node_(node), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    RETURN_NOT_OK(child_->Open());
    DatumRow row;
    while (true) {
      ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) break;
      DatumRow keys;
      keys.reserve(node_.sort_keys.size());
      for (const ExprPtr& k : node_.sort_keys) {
        ASSIGN_OR_RETURN(Datum v, EvalExpr(*k, row, ctx_->udfs));
        keys.push_back(std::move(v));
      }
      RETURN_NOT_OK(ctx_->Charge(RowBytes(row) + RowBytes(keys)));
      rows_.emplace_back(std::move(keys), std::move(row));
    }
    const std::vector<bool>& desc = node_.sort_desc;
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&desc](const auto& a, const auto& b) {
                       for (size_t i = 0; i < a.first.size(); ++i) {
                         int c = Datum::Compare(a.first[i], b.first[i]);
                         if (c != 0) {
                           return (i < desc.size() && desc[i]) ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(DatumRow* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = std::move(rows_[pos_].second);
    ++pos_;
    return true;
  }

  /// Sort key values of the row last returned by Next (merge join uses this
  /// to avoid re-evaluating keys).
  const DatumRow& LastKeys() const { return rows_[pos_ - 1].first; }

 private:
  const PlanNode& node_;
  OperatorPtr child_;
  ExecContext* ctx_;
  std::vector<std::pair<DatumRow, DatumRow>> rows_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------- Joins

struct RowHasher {
  size_t operator()(const DatumRow& row) const { return HashDatums(row); }
};
struct RowEq {
  bool operator()(const DatumRow& a, const DatumRow& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (Datum::Compare(a[i], b[i]) != 0) return false;
    }
    return true;
  }
};

class HashJoinOp : public Operator {
 public:
  HashJoinOp(const PlanNode& node, OperatorPtr probe, OperatorPtr build,
             ExecContext* ctx)
      : node_(node),
        probe_(std::move(probe)),
        build_(std::move(build)),
        ctx_(ctx) {}

  Status Open() override {
    RETURN_NOT_OK(build_->Open());
    DatumRow row;
    while (true) {
      ASSIGN_OR_RETURN(bool has, build_->Next(&row));
      if (!has) break;
      DatumRow keys;
      keys.reserve(node_.right_keys.size());
      bool has_null = false;
      for (const ExprPtr& k : node_.right_keys) {
        ASSIGN_OR_RETURN(Datum v, EvalExpr(*k, row, ctx_->udfs));
        has_null |= v.is_null();
        keys.push_back(std::move(v));
      }
      if (has_null) continue;  // NULL never equi-joins
      RETURN_NOT_OK(ctx_->Charge(RowBytes(row) + RowBytes(keys)));
      table_[std::move(keys)].push_back(std::move(row));
    }
    return probe_->Open();
  }

  Result<bool> Next(DatumRow* out) override {
    while (true) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        DatumRow combined = probe_row_;
        const DatumRow& build_row = (*matches_)[match_pos_++];
        combined.insert(combined.end(), build_row.begin(), build_row.end());
        if (node_.residual != nullptr) {
          ASSIGN_OR_RETURN(
              bool keep,
              EvalPredicate(*node_.residual, combined, ctx_->udfs));
          if (!keep) continue;
        }
        *out = std::move(combined);
        return true;
      }
      matches_ = nullptr;
      ASSIGN_OR_RETURN(bool has, probe_->Next(&probe_row_));
      if (!has) return false;
      DatumRow keys;
      keys.reserve(node_.left_keys.size());
      bool has_null = false;
      for (const ExprPtr& k : node_.left_keys) {
        ASSIGN_OR_RETURN(Datum v, EvalExpr(*k, probe_row_, ctx_->udfs));
        has_null |= v.is_null();
        keys.push_back(std::move(v));
      }
      if (has_null) continue;
      auto it = table_.find(keys);
      if (it == table_.end()) continue;
      matches_ = &it->second;
      match_pos_ = 0;
    }
  }

 private:
  const PlanNode& node_;
  OperatorPtr probe_;
  OperatorPtr build_;
  ExecContext* ctx_;
  std::unordered_map<DatumRow, std::vector<DatumRow>, RowHasher, RowEq> table_;
  DatumRow probe_row_;
  const std::vector<DatumRow>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// Classic sorted merge join over duplicate key groups. Children are Sort
/// nodes keyed on the join keys. Both inputs are materialized (the right
/// group must be re-scannable anyway).
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(const PlanNode& node, OperatorPtr left, OperatorPtr right,
              ExecContext* ctx)
      : node_(node),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {}

  Status Open() override {
    RETURN_NOT_OK(Drain(left_.get(), node_.left_keys, &lrows_));
    RETURN_NOT_OK(Drain(right_.get(), node_.right_keys, &rrows_));
    li_ = ri_ = 0;
    group_end_l_ = group_end_r_ = 0;
    emit_l_ = emit_r_ = 0;
    in_group_ = false;
    return Status::OK();
  }

  Result<bool> Next(DatumRow* out) override {
    while (true) {
      if (in_group_) {
        if (emit_r_ < group_end_r_) {
          DatumRow combined = lrows_[emit_l_].second;
          const DatumRow& rrow = rrows_[emit_r_].second;
          combined.insert(combined.end(), rrow.begin(), rrow.end());
          ++emit_r_;
          if (node_.residual != nullptr) {
            ASSIGN_OR_RETURN(
                bool keep,
                EvalPredicate(*node_.residual, combined, ctx_->udfs));
            if (!keep) continue;
          }
          *out = std::move(combined);
          return true;
        }
        ++emit_l_;
        if (emit_l_ < group_end_l_) {
          emit_r_ = ri_;
          continue;
        }
        // Advance past this group.
        li_ = group_end_l_;
        ri_ = group_end_r_;
        in_group_ = false;
      }
      // Find the next matching key group.
      while (li_ < lrows_.size() && ri_ < rrows_.size()) {
        const DatumRow& lk = lrows_[li_].first;
        const DatumRow& rk = rrows_[ri_].first;
        if (HasNull(lk)) {
          ++li_;
          continue;
        }
        if (HasNull(rk)) {
          ++ri_;
          continue;
        }
        int c = CompareKeys(lk, rk);
        if (c < 0) {
          ++li_;
        } else if (c > 0) {
          ++ri_;
        } else {
          group_end_l_ = li_ + 1;
          while (group_end_l_ < lrows_.size() &&
                 CompareKeys(lrows_[group_end_l_].first, lk) == 0) {
            ++group_end_l_;
          }
          group_end_r_ = ri_ + 1;
          while (group_end_r_ < rrows_.size() &&
                 CompareKeys(rrows_[group_end_r_].first, rk) == 0) {
            ++group_end_r_;
          }
          emit_l_ = li_;
          emit_r_ = ri_;
          in_group_ = true;
          break;
        }
      }
      if (!in_group_) return false;
    }
  }

 private:
  static bool HasNull(const DatumRow& keys) {
    return std::any_of(keys.begin(), keys.end(),
                       [](const Datum& d) { return d.is_null(); });
  }
  static int CompareKeys(const DatumRow& a, const DatumRow& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Datum::Compare(a[i], b[i]);
      if (c != 0) return c;
    }
    return 0;
  }

  Status Drain(Operator* child, const std::vector<ExprPtr>& keys,
               std::vector<std::pair<DatumRow, DatumRow>>* out) {
    RETURN_NOT_OK(child->Open());
    DatumRow row;
    while (true) {
      ASSIGN_OR_RETURN(bool has, child->Next(&row));
      if (!has) break;
      DatumRow key_values;
      key_values.reserve(keys.size());
      for (const ExprPtr& k : keys) {
        ASSIGN_OR_RETURN(Datum v, EvalExpr(*k, row, ctx_->udfs));
        key_values.push_back(std::move(v));
      }
      RETURN_NOT_OK(ctx_->Charge(RowBytes(row) + RowBytes(key_values)));
      out->emplace_back(std::move(key_values), std::move(row));
    }
    return Status::OK();
  }

  const PlanNode& node_;
  OperatorPtr left_;
  OperatorPtr right_;
  ExecContext* ctx_;
  std::vector<std::pair<DatumRow, DatumRow>> lrows_, rrows_;
  size_t li_ = 0, ri_ = 0;
  size_t group_end_l_ = 0, group_end_r_ = 0;
  size_t emit_l_ = 0, emit_r_ = 0;
  bool in_group_ = false;
};

class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(const PlanNode& node, OperatorPtr outer, OperatorPtr inner,
                   ExecContext* ctx)
      : node_(node),
        outer_(std::move(outer)),
        inner_(std::move(inner)),
        ctx_(ctx) {}

  Status Open() override {
    RETURN_NOT_OK(inner_->Open());
    DatumRow row;
    while (true) {
      ASSIGN_OR_RETURN(bool has, inner_->Next(&row));
      if (!has) break;
      RETURN_NOT_OK(ctx_->Charge(RowBytes(row)));
      inner_rows_.push_back(std::move(row));
    }
    RETURN_NOT_OK(outer_->Open());
    inner_pos_ = inner_rows_.size();
    return Status::OK();
  }

  Result<bool> Next(DatumRow* out) override {
    while (true) {
      if (inner_pos_ < inner_rows_.size()) {
        DatumRow combined = outer_row_;
        const DatumRow& inner_row = inner_rows_[inner_pos_++];
        combined.insert(combined.end(), inner_row.begin(), inner_row.end());
        if (node_.residual != nullptr) {
          ASSIGN_OR_RETURN(
              bool keep,
              EvalPredicate(*node_.residual, combined, ctx_->udfs));
          if (!keep) continue;
        }
        *out = std::move(combined);
        return true;
      }
      ASSIGN_OR_RETURN(bool has, outer_->Next(&outer_row_));
      if (!has) return false;
      inner_pos_ = 0;
    }
  }

 private:
  const PlanNode& node_;
  OperatorPtr outer_;
  OperatorPtr inner_;
  ExecContext* ctx_;
  std::vector<DatumRow> inner_rows_;
  DatumRow outer_row_;
  size_t inner_pos_ = 0;
};

// ---------------------------------------------------------------- Aggregation

struct Accumulator {
  int64_t count = 0;
  bool any = false;
  bool as_double = false;
  int64_t isum = 0;
  double dsum = 0;
  Datum min, max;

  void Add(const Datum& v) {
    if (v.is_null()) return;
    any = true;
    ++count;
    if (v.is_numeric()) {
      if (v.is_double()) {
        if (!as_double) {
          dsum = static_cast<double>(isum);
          as_double = true;
        }
        dsum += v.double_value();
      } else if (as_double) {
        dsum += static_cast<double>(v.int_value());
      } else {
        isum += v.int_value();
      }
    }
    if (min.is_null() || Datum::Compare(v, min) < 0) min = v;
    if (max.is_null() || Datum::Compare(v, max) > 0) max = v;
  }

  /// Folds another accumulator's state into this one (Gather merges
  /// per-worker partial aggregates with this at the barrier).
  void Merge(const Accumulator& other) {
    if (!other.any) return;
    any = true;
    count += other.count;
    if (as_double || other.as_double) {
      double mine = as_double ? dsum : static_cast<double>(isum);
      double theirs =
          other.as_double ? other.dsum : static_cast<double>(other.isum);
      dsum = mine + theirs;
      as_double = true;
    } else {
      isum += other.isum;
    }
    if (!other.min.is_null() &&
        (min.is_null() || Datum::Compare(other.min, min) < 0)) {
      min = other.min;
    }
    if (!other.max.is_null() &&
        (max.is_null() || Datum::Compare(other.max, max) > 0)) {
      max = other.max;
    }
  }

  Datum Sum() const {
    if (!any) return Datum::Null();
    return as_double ? Datum::Double(dsum) : Datum::Int(isum);
  }
  Datum Avg() const {
    if (count == 0) return Datum::Null();
    double total = as_double ? dsum : static_cast<double>(isum);
    return Datum::Double(total / static_cast<double>(count));
  }
};

struct GroupState {
  int64_t star_count = 0;
  std::vector<Accumulator> accs;

  void Merge(const GroupState& other, size_t num_aggs) {
    if (accs.size() < num_aggs) accs.resize(num_aggs);
    star_count += other.star_count;
    for (size_t i = 0; i < other.accs.size(); ++i) {
      accs[i].Merge(other.accs[i]);
    }
  }
};

Result<DatumRow> FinalizeGroup(const PlanNode& node, const DatumRow& keys,
                               const GroupState& state) {
  DatumRow row = keys;
  for (size_t i = 0; i < node.aggs.size(); ++i) {
    const AggSpec& spec = node.aggs[i];
    const Accumulator& acc = state.accs[i];
    if (spec.fn == "count") {
      row.push_back(Datum::Int(spec.is_star ? state.star_count : acc.count));
    } else if (spec.fn == "sum") {
      row.push_back(acc.Sum());
    } else if (spec.fn == "avg") {
      row.push_back(acc.Avg());
    } else if (spec.fn == "min") {
      row.push_back(acc.min);
    } else if (spec.fn == "max") {
      row.push_back(acc.max);
    } else {
      return Status::NotImplemented("aggregate ", spec.fn);
    }
  }
  return row;
}

Status AccumulateRow(const PlanNode& node, const DatumRow& row,
                     GroupState* state, ExecContext* ctx) {
  if (state->accs.size() != node.aggs.size()) {
    state->accs.resize(node.aggs.size());
  }
  ++state->star_count;
  for (size_t i = 0; i < node.aggs.size(); ++i) {
    const AggSpec& spec = node.aggs[i];
    if (spec.is_star || spec.arg == nullptr) continue;
    ASSIGN_OR_RETURN(Datum v, EvalExpr(*spec.arg, row, ctx->udfs));
    state->accs[i].Add(v);
  }
  return Status::OK();
}

class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(const PlanNode& node, OperatorPtr child, ExecContext* ctx)
      : node_(node), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    RETURN_NOT_OK(child_->Open());
    DatumRow row;
    bool saw_rows = false;
    while (true) {
      ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) break;
      saw_rows = true;
      DatumRow keys;
      keys.reserve(node_.group_keys.size());
      for (const ExprPtr& k : node_.group_keys) {
        ASSIGN_OR_RETURN(Datum v, EvalExpr(*k, row, ctx_->udfs));
        keys.push_back(std::move(v));
      }
      auto [it, inserted] = groups_.try_emplace(std::move(keys));
      if (inserted) {
        RETURN_NOT_OK(ctx_->Charge(RowBytes(it->first) + 64));
      }
      RETURN_NOT_OK(AccumulateRow(node_, row, &it->second, ctx_));
    }
    // Aggregate without GROUP BY over empty input: one row of initial
    // accumulator values (COUNT(*) = 0 etc.).
    if (!saw_rows && node_.group_keys.empty()) {
      GroupState empty;
      empty.accs.resize(node_.aggs.size());
      ASSIGN_OR_RETURN(DatumRow out, FinalizeGroup(node_, {}, empty));
      results_.push_back(std::move(out));
    }
    for (const auto& [keys, state] : groups_) {
      ASSIGN_OR_RETURN(DatumRow out, FinalizeGroup(node_, keys, state));
      results_.push_back(std::move(out));
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(DatumRow* out) override {
    if (pos_ >= results_.size()) return false;
    *out = std::move(results_[pos_]);
    ++pos_;
    return true;
  }

 private:
  const PlanNode& node_;
  OperatorPtr child_;
  ExecContext* ctx_;
  std::unordered_map<DatumRow, GroupState, RowHasher, RowEq> groups_;
  std::vector<DatumRow> results_;
  size_t pos_ = 0;
};

/// Aggregation over input sorted by the group keys (the planner puts a Sort
/// underneath). Streams one group at a time — the memory-safe plan shape for
/// high-cardinality grouping.
class GroupAggregateOp : public Operator {
 public:
  GroupAggregateOp(const PlanNode& node, OperatorPtr child, ExecContext* ctx)
      : node_(node), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    RETURN_NOT_OK(child_->Open());
    ASSIGN_OR_RETURN(pending_, ReadOne());
    return Status::OK();
  }

  Result<bool> Next(DatumRow* out) override {
    if (!pending_.has_value()) return false;
    DatumRow group_keys = pending_->first;
    GroupState state;
    state.accs.resize(node_.aggs.size());
    while (pending_.has_value() &&
           RowEq()(pending_->first, group_keys)) {
      RETURN_NOT_OK(AccumulateRow(node_, pending_->second, &state, ctx_));
      ASSIGN_OR_RETURN(pending_, ReadOne());
    }
    ASSIGN_OR_RETURN(*out, FinalizeGroup(node_, group_keys, state));
    return true;
  }

 private:
  Result<std::optional<std::pair<DatumRow, DatumRow>>> ReadOne() {
    DatumRow row;
    ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) return std::optional<std::pair<DatumRow, DatumRow>>();
    DatumRow keys;
    keys.reserve(node_.group_keys.size());
    for (const ExprPtr& k : node_.group_keys) {
      ASSIGN_OR_RETURN(Datum v, EvalExpr(*k, row, ctx_->udfs));
      keys.push_back(std::move(v));
    }
    return std::make_optional(std::make_pair(std::move(keys), std::move(row)));
  }

  const PlanNode& node_;
  OperatorPtr child_;
  ExecContext* ctx_;
  std::optional<std::pair<DatumRow, DatumRow>> pending_;
};

/// DISTINCT over sorted input.
class UniqueOp : public Operator {
 public:
  UniqueOp(OperatorPtr child) : child_(std::move(child)) {}

  Status Open() override {
    RETURN_NOT_OK(child_->Open());
    have_prev_ = false;
    return Status::OK();
  }

  Result<bool> Next(DatumRow* out) override {
    DatumRow row;
    while (true) {
      ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) return false;
      if (have_prev_ && RowEq()(row, prev_)) continue;
      prev_ = row;
      have_prev_ = true;
      *out = std::move(row);
      return true;
    }
  }

 private:
  OperatorPtr child_;
  DatumRow prev_;
  bool have_prev_ = false;
};

class LimitOp : public Operator {
 public:
  LimitOp(const PlanNode& node, OperatorPtr child)
      : node_(node), child_(std::move(child)) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }

  Result<bool> Next(DatumRow* out) override {
    if (batch_capacity_ > 1) return NextFromOwnBatch(out);
    if (emitted_ >= node_.limit) return false;
    ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    ++emitted_;
    return true;
  }

  /// Vectorized limit: truncates the batch's selection vector mid-batch
  /// when the remaining quota is smaller than the batch.
  Result<bool> NextBatch(RowBatch* batch) override {
    if (emitted_ >= node_.limit) return false;
    ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    if (!has) return false;
    const uint64_t quota = static_cast<uint64_t>(node_.limit - emitted_);
    if (batch->sel.size() > quota) batch->sel.resize(quota);
    emitted_ += static_cast<int64_t>(batch->sel.size());
    return true;
  }

 private:
  const PlanNode& node_;
  OperatorPtr child_;
  int64_t emitted_ = 0;
};

Result<OperatorPtr> BuildOperator(const PlanNode& node, ExecContext* ctx,
                                  MorselSource* morsels);
Result<OperatorPtr> BuildOperatorInner(const PlanNode& node, ExecContext* ctx,
                                       MorselSource* morsels);

// ---------------------------------------------------------------- Gather
//
// Runs its single child pipeline on `parallel_degree` pool workers, each
// instantiating its own operator tree over a shared MorselSource, and merges
// the worker streams:
//  - streaming mode (child is a scan/filter/project chain): workers push
//    rows into a bounded queue; Next() pops in arrival order. Row order is
//    nondeterministic — the planner only parallelizes where order is free.
//  - partial-aggregation mode (child is a HashAggregate): each worker runs
//    the aggregate's input pipeline into a private group map; Open() merges
//    the raw accumulators at the barrier (so AVG/SUM merge exactly, not via
//    finalized values) and Next() drains the finalized groups.
class GatherOp : public Operator {
 public:
  GatherOp(const PlanNode& node, ExecContext* ctx) : node_(node), ctx_(ctx) {}

  ~GatherOp() override {
    // An abandoned stream (e.g. a Limit above us stopped pulling, or the
    // query aborted) must release blocked producers before the queue dies.
    {
      std::lock_guard lock(mu_);
      cancelled_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
    for (std::future<Status>& f : futures_) {
      if (!f.valid()) continue;
      try {
        f.get();
      } catch (...) {  // a worker exception must not escape the destructor
      }
    }
    // Workers are done: flush morsel/backpressure tallies to the registry
    // and (for EXPLAIN ANALYZE) onto this plan node's actuals.
    const uint64_t morsels = morsels_.claims.load(std::memory_order_relaxed);
    const uint64_t stalls = stalls_.load(std::memory_order_relaxed);
    static metrics::Counter* morsels_total =
        metrics::GetCounter("exec.gather.morsels_total");
    static metrics::Counter* stalls_total =
        metrics::GetCounter("exec.gather.queue_full_stalls_total");
    morsels_total->Add(morsels);
    stalls_total->Add(stalls);
    if (ctx_->stats != nullptr) {
      if (OperatorStats* stats = ctx_->stats->For(node_)) {
        stats->morsels.fetch_add(morsels, std::memory_order_relaxed);
        stats->stalls.fetch_add(stalls, std::memory_order_relaxed);
      }
    }
  }

  Status Open() override {
    const PlanNode& child = *node_.children[0];
    partial_agg_ = child.kind == PlanKind::kHashAggregate;
    // The morsel source covers the pipeline's single base table; snapshot
    // its row count once so every worker scans the same prefix.
    const PlanNode* leaf = &child;
    while (!leaf->children.empty()) leaf = leaf->children[0].get();
    if (leaf->kind != PlanKind::kSeqScan || leaf->table == nullptr) {
      return Status::Internal("Gather child pipeline has no base-table scan");
    }
    {
      std::shared_lock lock(leaf->table->latch());
      morsels_.end = leaf->table->RowSlotCountUnlocked();
    }
    ThreadPool* pool =
        ctx_->pool != nullptr ? ctx_->pool : ThreadPool::Shared();
    size_t degree = static_cast<size_t>(std::max(1, node_.parallel_degree));
    degree = std::min(degree, std::max<size_t>(1, pool->worker_count()));
    static metrics::Counter* workers_total =
        metrics::GetCounter("exec.gather.workers_total");
    workers_total->Add(degree);
    active_workers_ = degree;
    // Capture the query thread's span identity (Open runs under the query's
    // execute span) so each worker's span lands in the same trace, parented
    // to the query rather than starting a disconnected trace of its own.
    parent_span_ids_ = metrics::CurrentSpanIds();
    futures_.reserve(degree);
    for (size_t i = 0; i < degree; ++i) {
      futures_.push_back(pool->Submit([this] { return RunWorker(); }));
    }
    if (partial_agg_) {
      // Barrier: every worker's partial state must land before finalize.
      Status first;
      for (std::future<Status>& f : futures_) {
        Status st = f.get();
        if (!st.ok() && first.ok()) first = st;
      }
      futures_.clear();
      RETURN_NOT_OK(first);
      return FinalizeAggregate();
    }
    return Status::OK();
  }

  Result<bool> Next(DatumRow* out) override {
    // In batch mode workers ship whole batches, so the row queue stays
    // empty — a row-at-a-time parent (e.g. a Sort above the Gather) must
    // drain through the batch queue.
    if (batch_capacity_ > 1) return NextFromOwnBatch(out);
    if (partial_agg_) {
      if (agg_pos_ >= agg_results_.size()) return false;
      *out = std::move(agg_results_[agg_pos_]);
      ++agg_pos_;
      return true;
    }
    std::unique_lock lock(mu_);
    while (true) {
      if (!worker_status_.ok()) return worker_status_;
      if (!queue_.empty()) {
        *out = std::move(queue_.front());
        queue_.pop_front();
        not_full_.notify_one();
        return true;
      }
      if (active_workers_ == 0) return false;
      not_empty_.wait(lock);
    }
  }

  Result<bool> NextBatch(RowBatch* batch) override {
    if (partial_agg_) {
      // Drain the finalized groups directly: the base-class adapter would
      // call Next(), whose batch-mode guard routes back here.
      batch->Reset(0);
      while (batch->size < batch_capacity_ && agg_pos_ < agg_results_.size()) {
        batch->AppendRow(std::move(agg_results_[agg_pos_]));
        ++agg_pos_;
      }
      return batch->size > 0;
    }
    std::unique_lock lock(mu_);
    while (true) {
      if (!worker_status_.ok()) return worker_status_;
      if (!batch_queue_.empty()) {
        *batch = std::move(batch_queue_.front());
        batch_queue_.pop_front();
        not_full_.notify_one();
        return true;
      }
      if (active_workers_ == 0) return false;
      not_empty_.wait(lock);
    }
  }

 private:
  static constexpr size_t kQueueCap = 1024;
  // Batch mode ships up-to-batch_size-row units, so a much shorter queue
  // provides the same buffering (8 * 1024 rows vs 1024 rows).
  static constexpr size_t kBatchQueueCap = 8;

  Status RunWorker() {
    // Adopt the parent query's trace on this pool thread for the duration
    // of the worker, and record the worker's run as a span under it.
    metrics::SpanIdScope adopt(parent_span_ids_);
    metrics::ScopedSpan span("exec.gather.worker");
    Status st = partial_agg_ ? RunAggWorker() : RunStreamWorker();
    span.End();
    std::lock_guard lock(mu_);
    if (!st.ok() && worker_status_.ok()) {
      worker_status_ = st;
      cancelled_ = true;  // stop sibling workers promptly
      not_full_.notify_all();
    }
    --active_workers_;
    not_empty_.notify_all();
    return st;
  }

  Status RunStreamWorker() {
    ASSIGN_OR_RETURN(OperatorPtr op,
                     BuildOperator(*node_.children[0], ctx_, &morsels_));
    RETURN_NOT_OK(op->Open());
    if (ctx_->batch_size > 1) {
      // Batch mode: the bounded queue carries whole RowBatches, so the
      // mutex is taken once per batch instead of once per row.
      RowBatch local;
      while (true) {
        ASSIGN_OR_RETURN(bool has, op->NextBatch(&local));
        if (!has) return Status::OK();
        if (local.active() == 0) continue;  // fully filtered batch
        std::unique_lock lock(mu_);
        if (!cancelled_ && batch_queue_.size() >= kBatchQueueCap) {
          stalls_.fetch_add(1, std::memory_order_relaxed);
          not_full_.wait(lock, [this] {
            return cancelled_ || batch_queue_.size() < kBatchQueueCap;
          });
        }
        if (cancelled_) return Status::OK();
        batch_queue_.push_back(std::move(local));
        not_empty_.notify_one();
      }
    }
    DatumRow row;
    while (true) {
      ASSIGN_OR_RETURN(bool has, op->Next(&row));
      if (!has) return Status::OK();
      std::unique_lock lock(mu_);
      if (!cancelled_ && queue_.size() >= kQueueCap) {
        // Consumer backpressure: the bounded queue is full.
        stalls_.fetch_add(1, std::memory_order_relaxed);
        not_full_.wait(lock, [this] {
          return cancelled_ || queue_.size() < kQueueCap;
        });
      }
      if (cancelled_) return Status::OK();
      queue_.push_back(std::move(row));
      not_empty_.notify_one();
    }
  }

  Status RunAggWorker() {
    const PlanNode& agg = *node_.children[0];
    ASSIGN_OR_RETURN(OperatorPtr op,
                     BuildOperator(*agg.children[0], ctx_, &morsels_));
    RETURN_NOT_OK(op->Open());
    std::unordered_map<DatumRow, GroupState, RowHasher, RowEq> local;
    auto accumulate = [&](DatumRow& row) -> Status {
      DatumRow keys;
      keys.reserve(agg.group_keys.size());
      for (const ExprPtr& k : agg.group_keys) {
        ASSIGN_OR_RETURN(Datum v, EvalExpr(*k, row, ctx_->udfs));
        keys.push_back(std::move(v));
      }
      auto [it, inserted] = local.try_emplace(std::move(keys));
      if (inserted) {
        RETURN_NOT_OK(ctx_->Charge(RowBytes(it->first) + 64));
      }
      return AccumulateRow(agg, row, &it->second, ctx_);
    };
    DatumRow row;
    if (ctx_->batch_size > 1) {
      RowBatch batch;
      while (true) {
        ASSIGN_OR_RETURN(bool has, op->NextBatch(&batch));
        if (!has) break;
        for (uint32_t lane : batch.sel) {
          batch.MoveRow(lane, &row);
          RETURN_NOT_OK(accumulate(row));
        }
      }
    } else {
      while (true) {
        ASSIGN_OR_RETURN(bool has, op->Next(&row));
        if (!has) break;
        RETURN_NOT_OK(accumulate(row));
      }
    }
    std::lock_guard lock(agg_mu_);
    for (auto& [keys, state] : local) {
      auto [it, inserted] = groups_.try_emplace(keys);
      it->second.Merge(state, agg.aggs.size());
    }
    return Status::OK();
  }

  Status FinalizeAggregate() {
    const PlanNode& agg = *node_.children[0];
    // Aggregate without GROUP BY over empty input: one row of initial
    // accumulator values, matching the serial HashAggregateOp.
    if (groups_.empty() && agg.group_keys.empty()) {
      GroupState empty;
      empty.accs.resize(agg.aggs.size());
      ASSIGN_OR_RETURN(DatumRow out, FinalizeGroup(agg, {}, empty));
      agg_results_.push_back(std::move(out));
    }
    for (const auto& [keys, state] : groups_) {
      ASSIGN_OR_RETURN(DatumRow out, FinalizeGroup(agg, keys, state));
      agg_results_.push_back(std::move(out));
    }
    agg_pos_ = 0;
    // The HashAggregate node itself is never built in this mode (workers run
    // its input pipeline); credit its merged output here so EXPLAIN ANALYZE
    // doesn't print it as never-executed.
    if (ctx_->stats != nullptr) {
      if (OperatorStats* stats = ctx_->stats->For(agg)) {
        stats->instances.fetch_add(1, std::memory_order_relaxed);
        stats->rows.fetch_add(agg_results_.size(), std::memory_order_relaxed);
      }
    }
    return Status::OK();
  }

  const PlanNode& node_;
  ExecContext* ctx_;
  bool partial_agg_ = false;
  MorselSource morsels_;
  metrics::SpanIds parent_span_ids_;
  std::atomic<uint64_t> stalls_{0};
  std::vector<std::future<Status>> futures_;

  // Streaming-mode merge state (all guarded by mu_).
  std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
  std::deque<DatumRow> queue_;        // row mode (batch_size == 1)
  std::deque<RowBatch> batch_queue_;  // batch mode
  size_t active_workers_ = 0;
  bool cancelled_ = false;
  Status worker_status_;

  // Partial-aggregation merge state.
  std::mutex agg_mu_;
  std::unordered_map<DatumRow, GroupState, RowHasher, RowEq> groups_;
  std::vector<DatumRow> agg_results_;
  size_t agg_pos_ = 0;
};

Result<OperatorPtr> BuildOperator(const PlanNode& node, ExecContext* ctx,
                                  MorselSource* morsels) {
  ASSIGN_OR_RETURN(OperatorPtr op, BuildOperatorInner(node, ctx, morsels));
  op->set_batch_capacity(ctx->batch_size);
  if (ctx->stats != nullptr) {
    if (OperatorStats* stats = ctx->stats->For(node)) {
      OperatorPtr wrapped(
          new InstrumentedOp(std::move(op), stats, ctx->time_ops));
      wrapped->set_batch_capacity(ctx->batch_size);
      return wrapped;
    }
  }
  return op;
}

Result<OperatorPtr> BuildOperatorInner(const PlanNode& node, ExecContext* ctx,
                                       MorselSource* morsels) {
  // Gather builds its own child trees (one per worker, over a shared morsel
  // source), so don't recurse here.
  if (node.kind == PlanKind::kGather) {
    return OperatorPtr(new GatherOp(node, ctx));
  }
  std::vector<OperatorPtr> children;
  children.reserve(node.children.size());
  for (const auto& child : node.children) {
    ASSIGN_OR_RETURN(OperatorPtr op, BuildOperator(*child, ctx, morsels));
    children.push_back(std::move(op));
  }
  switch (node.kind) {
    case PlanKind::kSeqScan:
      return OperatorPtr(new ScanOp(node, ctx, morsels));
    case PlanKind::kFilter:
      return OperatorPtr(new FilterOp(node, std::move(children[0]), ctx));
    case PlanKind::kProject:
      return OperatorPtr(new ProjectOp(node, std::move(children[0]), ctx));
    case PlanKind::kExtract:
      return OperatorPtr(new ExtractOp(node, std::move(children[0]), ctx));
    case PlanKind::kSort:
      return OperatorPtr(new SortOp(node, std::move(children[0]), ctx));
    case PlanKind::kHashJoin:
      return OperatorPtr(new HashJoinOp(node, std::move(children[0]),
                                        std::move(children[1]), ctx));
    case PlanKind::kMergeJoin:
      return OperatorPtr(new MergeJoinOp(node, std::move(children[0]),
                                         std::move(children[1]), ctx));
    case PlanKind::kNestedLoopJoin:
      return OperatorPtr(new NestedLoopJoinOp(node, std::move(children[0]),
                                              std::move(children[1]), ctx));
    case PlanKind::kHashAggregate:
      return OperatorPtr(
          new HashAggregateOp(node, std::move(children[0]), ctx));
    case PlanKind::kGroupAggregate:
      return OperatorPtr(
          new GroupAggregateOp(node, std::move(children[0]), ctx));
    case PlanKind::kUnique:
      return OperatorPtr(new UniqueOp(std::move(children[0])));
    case PlanKind::kLimit:
      return OperatorPtr(new LimitOp(node, std::move(children[0])));
    case PlanKind::kGather:
      break;  // handled above
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace

Result<QueryResult> ExecutePlan(const PlanNode& plan, const UdfRegistry* udfs,
                                const ExecOptions& options) {
  static metrics::Counter* queries_total =
      metrics::GetCounter("exec.queries_total");
  static metrics::Counter* rows_out_total =
      metrics::GetCounter("exec.rows_out_total");
  static metrics::Histogram* query_hist =
      metrics::GetHistogram("exec.query_ns");
  const uint64_t start = metrics::NowNanos();

  ExecContext ctx;
  ctx.udfs = udfs;
  ctx.mem_limit = options.max_intermediate_bytes;
  ctx.pool = options.pool;
  ctx.stats = options.stats;
  ctx.batch_size = std::max<size_t>(1, options.batch_size);
  ctx.time_ops = options.time_operators;
  QueryResult result;
  {
    // Scope: the root operator (and any GatherOp inside it, which flushes
    // its morsel/stall tallies from its destructor) must be gone before the
    // caller reads options.stats.
    ASSIGN_OR_RETURN(OperatorPtr root, BuildOperator(plan, &ctx, nullptr));
    RETURN_NOT_OK(root->Open());
    for (const ExecSchema::Col& col : plan.output_schema.cols) {
      result.column_names.push_back(col.name);
      result.column_types.push_back(col.type);
    }
    if (ctx.batch_size > 1) {
      static metrics::Counter* batches_total =
          metrics::GetCounter("exec.batches_total");
      static metrics::Histogram* batch_rows_hist =
          metrics::GetHistogram("exec.batch_rows");
      RowBatch batch;
      DatumRow row;
      while (true) {
        ASSIGN_OR_RETURN(bool has, root->NextBatch(&batch));
        if (!has) break;
        batches_total->Increment();
        batch_rows_hist->Observe(batch.active());
        for (uint32_t lane : batch.sel) {
          batch.MoveRow(lane, &row);
          result.rows.push_back(std::move(row));
        }
      }
    } else {
      DatumRow row;
      while (true) {
        ASSIGN_OR_RETURN(bool has, root->Next(&row));
        if (!has) break;
        result.rows.push_back(std::move(row));
      }
    }
  }

  const uint64_t elapsed = metrics::NowNanos() - start;
  queries_total->Increment();
  rows_out_total->Add(result.rows.size());
  query_hist->Observe(elapsed);
  if (options.stats != nullptr) options.stats->total_ns = elapsed;
  return result;
}

namespace {

void AppendAnalyzedNode(const PlanNode& node, const PlanStats& stats,
                        int depth, std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  if (depth > 0) *out << "-> ";
  *out << node.Summary();
  if (const OperatorStats* s = stats.For(node)) {
    const uint64_t loops = s->instances.load(std::memory_order_relaxed);
    if (loops == 0) {
      *out << " (never executed)";
    } else {
      const uint64_t ns = s->open_ns.load(std::memory_order_relaxed) +
                          s->next_ns.load(std::memory_order_relaxed);
      *out << " (actual rows=" << s->rows.load(std::memory_order_relaxed)
           << " loops=" << loops << " time=" << std::fixed
           << std::setprecision(3) << static_cast<double>(ns) / 1e6 << " ms)";
      if (node.kind == PlanKind::kGather) {
        *out << " (morsels=" << s->morsels.load(std::memory_order_relaxed)
             << " stalls=" << s->stalls.load(std::memory_order_relaxed)
             << ")";
      }
      if (node.kind == PlanKind::kExtract) {
        *out << " (decodes=" << s->decodes.load(std::memory_order_relaxed)
             << " attrs=" << s->attrs.load(std::memory_order_relaxed)
             << " columnar_hits="
             << s->columnar_hits.load(std::memory_order_relaxed) << ")";
      }
      if (node.kind == PlanKind::kSeqScan && !node.zone_filters.empty()) {
        *out << " (zone_skips="
             << s->zone_skips.load(std::memory_order_relaxed) << ")";
      }
      // Compiled-expression shape: static opcode counts from the attached
      // program(s) plus the lanes that escaped to the tree-walk evaluator.
      {
        uint64_t ops = 0, fused = 0;
        bool compiled = false;
        auto add = [&](const bytecode::Program* p) {
          if (p == nullptr) return;
          compiled = true;
          ops += p->num_instrs;
          fused += p->num_fused;
        };
        add(node.predicate_program.get());
        add(node.scan_filter_program.get());
        for (const auto& p : node.projection_programs) add(p.get());
        if (compiled) {
          *out << " (bytecode ops=" << ops << " fused=" << fused
               << " typed=" << s->bc_typed_lanes.load(std::memory_order_relaxed)
               << " fallback_lanes="
               << s->bc_fallback_lanes.load(std::memory_order_relaxed) << ")";
        }
      }
      const uint64_t batches = s->batches.load(std::memory_order_relaxed);
      if (batches > 0) {
        *out << " (batches=" << batches
             << " avg_rows=" << s->rows.load(std::memory_order_relaxed) /
                                    batches
             << ")";
      }
    }
  }
  *out << "\n";
  for (const auto& child : node.children) {
    AppendAnalyzedNode(*child, stats, depth + 1, out);
  }
}

}  // namespace

std::string ExplainAnalyzeText(const PlanNode& plan, const PlanStats& stats) {
  std::ostringstream out;
  AppendAnalyzedNode(plan, stats, 0, &out);
  return out.str();
}

}  // namespace sinew::engine
