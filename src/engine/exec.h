// Volcano-style plan executor.
//
// Streaming operators (scan, filter, project, limit) pull row-at-a-time;
// blocking operators (sort, hash join build, aggregation) materialize and
// charge an intermediate-state memory budget. Exceeding the budget aborts
// the query with Status::Aborted — the mechanism used to reproduce the
// paper's "could not complete for lack of disk space" outcomes for the EAV
// and MongoDB joins honestly rather than by special-casing.

#ifndef SINEW_ENGINE_EXEC_H_
#define SINEW_ENGINE_EXEC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/plan.h"
#include "engine/udf.h"

namespace sinew {
class ThreadPool;
}  // namespace sinew

namespace sinew::engine {

/// Actuals for one plan node, accumulated during execution. All fields are
/// relaxed atomics because Gather workers instantiate clones of the same
/// plan subtree: every clone reports into the one OperatorStats of the plan
/// node it was built from, which is exactly how EXPLAIN ANALYZE aggregates
/// per-worker activity back onto the printed tree.
struct OperatorStats {
  std::atomic<uint64_t> rows{0};        // rows emitted by Next()/NextBatch()
  std::atomic<uint64_t> next_calls{0};  // Next()/NextBatch() calls (incl. EOF)
  std::atomic<uint64_t> batches{0};     // non-empty NextBatch() returns
  std::atomic<uint64_t> open_ns{0};
  std::atomic<uint64_t> next_ns{0};     // cumulative across instances
  std::atomic<uint64_t> instances{0};   // operator clones opened (loops)
  // kGather only:
  std::atomic<uint64_t> morsels{0};     // morsel claims across workers
  std::atomic<uint64_t> stalls{0};      // bounded-queue full waits
  // kExtract only:
  std::atomic<uint64_t> decodes{0};     // source documents decoded
  std::atomic<uint64_t> attrs{0};       // attributes extracted from them
  std::atomic<uint64_t> columnar_hits{0};  // values served from column strips
  // kSeqScan only:
  std::atomic<uint64_t> zone_skips{0};  // strips skipped via zone maps
  // bytecode-compiled nodes only:
  std::atomic<uint64_t> bc_fallback_lanes{0};  // lanes routed to tree walk
  std::atomic<uint64_t> bc_typed_lanes{0};     // lanes on monomorphic kernels
  std::atomic<uint64_t> bc_boxed_lanes{0};     // specializable lanes left boxed
};

/// Side table of per-node actuals for one execution, indexed by plan node
/// identity. Built before execution (so worker threads never mutate the
/// map), read by ExplainAnalyzeText afterwards.
class PlanStats {
 public:
  explicit PlanStats(const PlanNode& root) { Index(root); }

  OperatorStats* For(const PlanNode& node) const {
    auto it = stats_.find(&node);
    return it == stats_.end() ? nullptr : it->second.get();
  }

  /// Wall clock of the whole ExecutePlan call.
  uint64_t total_ns = 0;

 private:
  void Index(const PlanNode& node) {
    stats_.emplace(&node, std::make_unique<OperatorStats>());
    for (const auto& child : node.children) Index(*child);
  }

  std::unordered_map<const PlanNode*, std::unique_ptr<OperatorStats>> stats_;
};

/// EXPLAIN ANALYZE rendering: the plan tree with per-node actual rows,
/// loops and elapsed time appended to each estimate line.
std::string ExplainAnalyzeText(const PlanNode& plan, const PlanStats& stats);

struct ExecOptions {
  /// Budget for materialized intermediate state (sort buffers, hash tables,
  /// inner relations). 0 = unlimited.
  uint64_t max_intermediate_bytes = 4ull << 30;
  /// Worker pool Gather nodes run their child pipelines on. nullptr means
  /// ThreadPool::Shared(). Serial plans (no Gather node) never touch it.
  ThreadPool* pool = nullptr;
  /// When set, every operator is wrapped to record actuals here (EXPLAIN
  /// ANALYZE). Must outlive the ExecutePlan call. nullptr = no overhead.
  PlanStats* stats = nullptr;
  /// Rows per RowBatch on the vectorized path. Values > 1 (the default) run
  /// the scan→extract→filter→project→limit pipeline — and Gather's bounded
  /// queue — batch-at-a-time; 1 restores the row-at-a-time Volcano loop
  /// exactly (blocking operators always consume rows either way, through
  /// the row↔batch adapters). 256 is the sweet spot of the
  /// bench_micro_extract --batch-size sweep: big enough to amortize
  /// per-batch dispatch, small enough that a wide batch's columns stay
  /// cache-resident (1024 measures ~8% slower on 33-column projections).
  size_t batch_size = 256;
  /// Record per-Next()/per-batch wall clock into OperatorStats.next_ns.
  /// Costs two steady_clock reads per call per operator, so EXPLAIN ANALYZE
  /// turns it on and steady-state queries leave it off; row and batch
  /// counts are collected whenever `stats` is set regardless.
  bool time_operators = false;
};

struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<ColumnType> column_types;
  std::vector<DatumRow> rows;
};

/// Executes a plan to completion.
Result<QueryResult> ExecutePlan(const PlanNode& plan, const UdfRegistry* udfs,
                                const ExecOptions& options = {});

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_EXEC_H_
