// Volcano-style plan executor.
//
// Streaming operators (scan, filter, project, limit) pull row-at-a-time;
// blocking operators (sort, hash join build, aggregation) materialize and
// charge an intermediate-state memory budget. Exceeding the budget aborts
// the query with Status::Aborted — the mechanism used to reproduce the
// paper's "could not complete for lack of disk space" outcomes for the EAV
// and MongoDB joins honestly rather than by special-casing.

#ifndef SINEW_ENGINE_EXEC_H_
#define SINEW_ENGINE_EXEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "engine/plan.h"
#include "engine/udf.h"

namespace sinew {
class ThreadPool;
}  // namespace sinew

namespace sinew::engine {

struct ExecOptions {
  /// Budget for materialized intermediate state (sort buffers, hash tables,
  /// inner relations). 0 = unlimited.
  uint64_t max_intermediate_bytes = 4ull << 30;
  /// Worker pool Gather nodes run their child pipelines on. nullptr means
  /// ThreadPool::Shared(). Serial plans (no Gather node) never touch it.
  ThreadPool* pool = nullptr;
};

struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<ColumnType> column_types;
  std::vector<DatumRow> rows;
};

/// Executes a plan to completion.
Result<QueryResult> ExecutePlan(const PlanNode& plan, const UdfRegistry* udfs,
                                const ExecOptions& options = {});

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_EXEC_H_
