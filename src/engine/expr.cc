#include "engine/expr.h"

#include <algorithm>

namespace sinew::engine {

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

ExprPtr Expr::Literal(Datum value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(value);
  return e;
}

ExprPtr Expr::Column(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::Star(std::string table) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  e->table = std::move(table);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->uop = op;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Between(ExprPtr target, ExprPtr lo, ExprPtr hi, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBetween;
  e->negated = negated;
  e->args.push_back(std::move(target));
  e->args.push_back(std::move(lo));
  e->args.push_back(std::move(hi));
  return e;
}

ExprPtr Expr::InList(ExprPtr target, std::vector<ExprPtr> list, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInList;
  e->negated = negated;
  e->args.push_back(std::move(target));
  for (ExprPtr& item : list) e->args.push_back(std::move(item));
  return e;
}

ExprPtr Expr::IsNull(ExprPtr target, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIsNull;
  e->negated = negated;
  e->args.push_back(std::move(target));
  return e;
}

ExprPtr Expr::Function(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->fname = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->table = table;
  e->column = column;
  e->bound_slot = bound_slot;
  e->uop = uop;
  e->bop = bop;
  e->negated = negated;
  e->fname = fname;
  e->cached_fallback_slots = cached_fallback_slots;
  e->fallback_slots_cached = fallback_slots_cached;
  e->args.reserve(args.size());
  for (const ExprPtr& a : args) e->args.push_back(a->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.is_text()) {
        return "'" + literal.str() + "'";
      }
      return literal.ToString();
    case ExprKind::kColumnRef:
      return table.empty() ? "\"" + column + "\""
                           : table + ".\"" + column + "\"";
    case ExprKind::kStar:
      return table.empty() ? "*" : table + ".*";
    case ExprKind::kUnary:
      return (uop == UnaryOp::kNot ? "NOT (" : "-(") + args[0]->ToString() +
             ")";
    case ExprKind::kBinary:
      return "(" + args[0]->ToString() + " " + BinaryOpSymbol(bop) + " " +
             args[1]->ToString() + ")";
    case ExprKind::kBetween:
      return "(" + args[0]->ToString() + (negated ? " NOT" : "") +
             " BETWEEN " + args[1]->ToString() + " AND " +
             args[2]->ToString() + ")";
    case ExprKind::kInList: {
      std::string out = "(" + args[0]->ToString() + (negated ? " NOT" : "") +
                        " IN (";
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) out += ", ";
        out += args[i]->ToString();
      }
      return out + "))";
    }
    case ExprKind::kIsNull:
      return "(" + args[0]->ToString() + " IS " + (negated ? "NOT " : "") +
             "NULL)";
    case ExprKind::kFunction: {
      std::string out = fname + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t i = 0;
      for (; i + 1 < args.size(); i += 2) {
        out += " WHEN " + args[i]->ToString() + " THEN " +
               args[i + 1]->ToString();
      }
      if (i < args.size()) out += " ELSE " + args[i]->ToString();
      return out + " END";
    }
  }
  return "?";
}

bool Expr::IsAggregateCall() const {
  if (kind != ExprKind::kFunction) return false;
  return fname == "count" || fname == "sum" || fname == "avg" ||
         fname == "min" || fname == "max";
}

bool Expr::ContainsAggregate() const {
  if (IsAggregateCall()) return true;
  return std::any_of(args.begin(), args.end(), [](const ExprPtr& a) {
    return a->ContainsAggregate();
  });
}

bool Expr::ContainsColumnRef() const {
  if (kind == ExprKind::kColumnRef || kind == ExprKind::kStar) return true;
  return std::any_of(args.begin(), args.end(), [](const ExprPtr& a) {
    return a->ContainsColumnRef();
  });
}

bool Expr::ContainsNonAggregateFunction() const {
  if (kind == ExprKind::kFunction && !IsAggregateCall()) return true;
  return std::any_of(args.begin(), args.end(), [](const ExprPtr& a) {
    return a->ContainsNonAggregateFunction();
  });
}

void Expr::CollectColumnRefs(std::vector<const Expr*>* out) const {
  if (kind == ExprKind::kColumnRef) out->push_back(this);
  for (const ExprPtr& a : args) a->CollectColumnRefs(out);
}

void Expr::CollectColumnRefsMutable(std::vector<Expr*>* out) {
  if (kind == ExprKind::kColumnRef) out->push_back(this);
  for (ExprPtr& a : args) a->CollectColumnRefsMutable(out);
}

std::vector<ExprPtr> SplitConjuncts(const Expr& predicate) {
  std::vector<ExprPtr> out;
  if (predicate.kind == ExprKind::kBinary &&
      predicate.bop == BinaryOp::kAnd) {
    for (const ExprPtr& side : predicate.args) {
      std::vector<ExprPtr> sub = SplitConjuncts(*side);
      for (ExprPtr& c : sub) out.push_back(std::move(c));
    }
  } else {
    out.push_back(predicate.Clone());
  }
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (ExprPtr& c : conjuncts) {
    if (out == nullptr) {
      out = std::move(c);
    } else {
      out = Expr::Binary(BinaryOp::kAnd, std::move(out), std::move(c));
    }
  }
  return out;
}

}  // namespace sinew::engine
