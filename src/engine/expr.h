// Expression AST shared by the parser, the Sinew query rewriter, the planner
// and the evaluator. A single tagged struct (rather than a class hierarchy)
// keeps rewriting — the heart of Sinew's user layer — simple: the rewriter
// walks the tree and splices extraction function calls over column refs.

#ifndef SINEW_ENGINE_EXPR_H_
#define SINEW_ENGINE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/datum.h"

namespace sinew::engine {

enum class ExprKind : uint8_t {
  kLiteral,    // literal datum
  kColumnRef,  // [table.]column (column may itself be dotted: "user.id")
  kStar,       // * or alias.* (select lists and COUNT(*))
  kUnary,      // NOT, unary -
  kBinary,     // comparisons, arithmetic, AND/OR, LIKE
  kBetween,    // a BETWEEN lo AND hi  (args: a, lo, hi)
  kInList,     // a IN (e1, e2, ...)   (args: a, e1, ...)
  kIsNull,     // a IS [NOT] NULL      (args: a)
  kFunction,   // f(args); includes aggregates and UDFs
  kCase,       // CASE WHEN c1 THEN v1 [...] ELSE ve END
               //   (args: c1, v1, c2, v2, ..., [else])
};

enum class BinaryOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
  kLike,
  kConcat,
};

enum class UnaryOp : uint8_t { kNot, kNeg };

const char* BinaryOpSymbol(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  // kLiteral
  Datum literal;

  // kColumnRef / kStar: `table` is the (optional) alias qualifier; `column`
  // is the logical, possibly dotted, column name. After binding,
  // `bound_slot` indexes the operator's input row.
  std::string table;
  std::string column;
  int bound_slot = -1;

  // kUnary / kBinary
  UnaryOp uop = UnaryOp::kNot;
  BinaryOp bop = BinaryOp::kEq;

  // kBetween / kInList / kIsNull / kLike: NOT-variant flag.
  bool negated = false;

  // kFunction: lower-cased function name.
  std::string fname;

  std::vector<ExprPtr> args;

  // kFunction / kCase / kInList: the subtree's sorted, deduplicated bound
  // slots, cached by BindExpr so per-lane batch fallbacks (engine/eval.cc,
  // engine/bytecode.cc) do not re-collect them every batch. Overwritten on
  // re-bind; may be a stale superset after constant folding (harmless).
  std::vector<int> cached_fallback_slots;
  bool fallback_slots_cached = false;

  // --- constructors ---
  static ExprPtr Literal(Datum value);
  static ExprPtr Column(std::string table, std::string column);
  static ExprPtr Star(std::string table = "");
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Between(ExprPtr target, ExprPtr lo, ExprPtr hi, bool negated);
  static ExprPtr InList(ExprPtr target, std::vector<ExprPtr> list, bool negated);
  static ExprPtr IsNull(ExprPtr target, bool negated);
  static ExprPtr Function(std::string name, std::vector<ExprPtr> args);

  ExprPtr Clone() const;

  /// Canonical text rendering; doubles as the structural-equality key used
  /// for GROUP BY matching.
  std::string ToString() const;

  /// True for count/sum/avg/min/max calls.
  bool IsAggregateCall() const;
  /// True if any node in the tree is an aggregate call.
  bool ContainsAggregate() const;
  /// True if any node is a kColumnRef.
  bool ContainsColumnRef() const;
  /// True if any node is a kFunction that is not an aggregate (i.e. a UDF
  /// the optimizer has no statistics for).
  bool ContainsNonAggregateFunction() const;

  /// Collects column refs (pointers into this tree).
  void CollectColumnRefs(std::vector<const Expr*>* out) const;
  void CollectColumnRefsMutable(std::vector<Expr*>* out);
};

/// Splits a predicate into top-level AND conjuncts (clones the pieces).
std::vector<ExprPtr> SplitConjuncts(const Expr& predicate);

/// Rebuilds a predicate from conjuncts (consumes them); nullptr if empty.
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_EXPR_H_
