#include "engine/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace sinew::engine {

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      tokens.push_back(Token{TokenType::kIdentifier,
                             std::string(sql.substr(start, i - start)), start});
      continue;
    }
    if (c == '"') {
      ++i;
      std::string text;
      while (true) {
        if (i >= n) return Status::ParseError("unterminated quoted identifier");
        if (sql[i] == '"') {
          if (i + 1 < n && sql[i + 1] == '"') {
            text.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        text.push_back(sql[i++]);
      }
      tokens.push_back(Token{TokenType::kQuotedIdentifier, std::move(text), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      while (true) {
        if (i >= n) return Status::ParseError("unterminated string literal");
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        text.push_back(sql[i++]);
      }
      tokens.push_back(Token{TokenType::kString, std::move(text), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_float = false;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.') {
          // A second dot ends the number (e.g. "1.2.3" is not a number).
          if (is_float) break;
          is_float = true;
          ++i;
        } else if (d == 'e' || d == 'E') {
          is_float = true;
          ++i;
          if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        } else {
          break;
        }
      }
      tokens.push_back(Token{is_float ? TokenType::kFloat : TokenType::kInteger,
                             std::string(sql.substr(start, i - start)), start});
      continue;
    }
    // Multi-character symbols first.
    static constexpr std::string_view kTwoChar[] = {"<=", ">=", "<>", "!=",
                                                    "||"};
    bool matched = false;
    if (i + 1 < n) {
      std::string_view two = sql.substr(i, 2);
      for (std::string_view sym : kTwoChar) {
        if (two == sym) {
          tokens.push_back(Token{TokenType::kSymbol, std::string(sym), start});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    static constexpr std::string_view kOneChar = "(),.*+-/%<>=;";
    if (kOneChar.find(c) != std::string_view::npos) {
      tokens.push_back(Token{TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '", std::string(1, c),
                              "' at offset ", i);
  }
  tokens.push_back(Token{TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace sinew::engine
