// SQL lexer.

#ifndef SINEW_ENGINE_LEXER_H_
#define SINEW_ENGINE_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace sinew::engine {

enum class TokenType : uint8_t {
  kIdentifier,        // bare identifier (case preserved; compare case-insensitively)
  kQuotedIdentifier,  // "..." (case and content preserved)
  kString,            // '...' with '' escaping
  kInteger,
  kFloat,
  kSymbol,  // punctuation / operators, text holds the exact symbol
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;
  size_t offset = 0;

  bool IsSymbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-insensitive keyword match against a bare identifier.
  bool IsKeyword(std::string_view kw) const;
};

/// Tokenizes `sql`; the result always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_LEXER_H_
