#include "engine/parser.h"

#include <charconv>

#include "common/str_util.h"
#include "engine/lexer.h"

namespace sinew::engine {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (PeekKeyword("SELECT")) {
      stmt.kind = StatementKind::kSelect;
      ASSIGN_OR_RETURN(SelectStatement sel, ParseSelect());
      stmt.select = std::make_unique<SelectStatement>(std::move(sel));
    } else if (PeekKeyword("EXPLAIN")) {
      ++pos_;
      stmt.kind = StatementKind::kExplain;
      stmt.explain_analyze = ConsumeKeyword("ANALYZE");
      ASSIGN_OR_RETURN(SelectStatement sel, ParseSelect());
      stmt.select = std::make_unique<SelectStatement>(std::move(sel));
    } else if (PeekKeyword("CREATE")) {
      stmt.kind = StatementKind::kCreateTable;
      ASSIGN_OR_RETURN(CreateTableStatement create, ParseCreateTable());
      stmt.create_table =
          std::make_unique<CreateTableStatement>(std::move(create));
    } else if (PeekKeyword("INSERT")) {
      stmt.kind = StatementKind::kInsert;
      ASSIGN_OR_RETURN(InsertStatement ins, ParseInsert());
      stmt.insert = std::make_unique<InsertStatement>(std::move(ins));
    } else if (PeekKeyword("UPDATE")) {
      stmt.kind = StatementKind::kUpdate;
      ASSIGN_OR_RETURN(UpdateStatement upd, ParseUpdate());
      stmt.update = std::make_unique<UpdateStatement>(std::move(upd));
    } else if (PeekKeyword("DELETE")) {
      stmt.kind = StatementKind::kDelete;
      ASSIGN_OR_RETURN(DeleteStatement del, ParseDelete());
      stmt.del = std::make_unique<DeleteStatement>(std::move(del));
    } else if (PeekKeyword("ANALYZE")) {
      stmt.kind = StatementKind::kAnalyze;
      ++pos_;
      AnalyzeStatement an;
      ASSIGN_OR_RETURN(an.table, ExpectIdentifier("table name"));
      stmt.analyze = std::make_unique<AnalyzeStatement>(std::move(an));
    } else {
      return Error("expected a statement keyword");
    }
    ConsumeSymbol(";");
    if (!AtEnd()) return Error("unexpected trailing tokens");
    return stmt;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) return Error("unexpected trailing tokens after expression");
    return e;
  }

 private:
  // --- token helpers ---
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    return Peek(ahead).IsKeyword(kw);
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(std::string_view sym) {
    if (Peek().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) return Error("expected ", kw);
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!ConsumeSymbol(sym)) return Error("expected '", sym, "'");
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(std::string_view what) {
    const Token& t = Peek();
    if (t.type == TokenType::kIdentifier ||
        t.type == TokenType::kQuotedIdentifier) {
      ++pos_;
      return t.text;
    }
    return Error("expected ", what);
  }

  template <typename... Args>
  Status Error(Args&&... args) const {
    return Status::ParseError(std::forward<Args>(args)...,
                              " near offset ", Peek().offset, " (token '",
                              Peek().text, "')");
  }

  // --- statements ---
  Result<SelectStatement> ParseSelect() {
    RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SelectStatement sel;
    sel.distinct = ConsumeKeyword("DISTINCT");
    while (true) {
      ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      sel.items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    RETURN_NOT_OK(ExpectKeyword("FROM"));
    ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    sel.from.push_back(std::move(first));
    std::vector<ExprPtr> join_conditions;
    while (true) {
      if (ConsumeSymbol(",")) {
        ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        sel.from.push_back(std::move(t));
        continue;
      }
      bool inner = PeekKeyword("INNER");
      if (inner || PeekKeyword("JOIN")) {
        if (inner) ++pos_;
        RETURN_NOT_OK(ExpectKeyword("JOIN"));
        ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        sel.from.push_back(std::move(t));
        RETURN_NOT_OK(ExpectKeyword("ON"));
        ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        join_conditions.push_back(std::move(cond));
        continue;
      }
      break;
    }
    if (ConsumeKeyword("WHERE")) {
      ASSIGN_OR_RETURN(sel.where, ParseExpr());
    }
    for (ExprPtr& cond : join_conditions) {
      sel.where = sel.where == nullptr
                      ? std::move(cond)
                      : Expr::Binary(BinaryOp::kAnd, std::move(sel.where),
                                     std::move(cond));
    }
    if (ConsumeKeyword("GROUP")) {
      RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        sel.group_by.push_back(std::move(e));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      ASSIGN_OR_RETURN(sel.having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        sel.order_by.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      const Token& t = Peek();
      if (t.type != TokenType::kInteger) return Error("expected LIMIT count");
      sel.limit = std::stoll(t.text);
      ++pos_;
    }
    return sel;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().IsSymbol("*")) {
      ++pos_;
      item.expr = Expr::Star("");
      return item;
    }
    ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (ConsumeKeyword("AS")) {
      ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsClauseKeyword(Peek().text)) {
      item.alias = Peek().text;
      ++pos_;
    }
    return item;
  }

  static bool IsClauseKeyword(std::string_view word) {
    static constexpr std::string_view kClauses[] = {
        "FROM",  "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN",
        "INNER", "ON",    "AS",    "AND",    "OR",    "NOT",   "ASC",
        "DESC",  "UNION", "SET",   "BETWEEN", "IN",   "LIKE",  "IS"};
    for (std::string_view kw : kClauses) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier("table name"));
    if (ConsumeKeyword("AS")) {
      ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("alias"));
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsClauseKeyword(Peek().text)) {
      ref.alias = Peek().text;
      ++pos_;
    }
    return ref;
  }

  Result<CreateTableStatement> ParseCreateTable() {
    RETURN_NOT_OK(ExpectKeyword("CREATE"));
    RETURN_NOT_OK(ExpectKeyword("TABLE"));
    CreateTableStatement create;
    ASSIGN_OR_RETURN(create.table, ExpectIdentifier("table name"));
    RETURN_NOT_OK(ExpectSymbol("("));
    while (true) {
      Column col;
      ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
      ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier("column type"));
      if (EqualsIgnoreCase(type_name, "double") && PeekKeyword("PRECISION")) {
        ++pos_;
      }
      std::optional<ColumnType> type = ColumnTypeFromName(type_name);
      if (!type.has_value()) return Error("unknown type ", type_name);
      col.type = *type;
      create.columns.push_back(std::move(col));
      if (ConsumeSymbol(",")) continue;
      RETURN_NOT_OK(ExpectSymbol(")"));
      break;
    }
    return create;
  }

  Result<InsertStatement> ParseInsert() {
    RETURN_NOT_OK(ExpectKeyword("INSERT"));
    RETURN_NOT_OK(ExpectKeyword("INTO"));
    InsertStatement ins;
    ASSIGN_OR_RETURN(ins.table, ExpectIdentifier("table name"));
    if (ConsumeSymbol("(")) {
      while (true) {
        ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        ins.columns.push_back(std::move(col));
        if (ConsumeSymbol(",")) continue;
        RETURN_NOT_OK(ExpectSymbol(")"));
        break;
      }
    }
    RETURN_NOT_OK(ExpectKeyword("VALUES"));
    while (true) {
      RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      while (true) {
        ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (ConsumeSymbol(",")) continue;
        RETURN_NOT_OK(ExpectSymbol(")"));
        break;
      }
      ins.values.push_back(std::move(row));
      if (!ConsumeSymbol(",")) break;
    }
    return ins;
  }

  Result<UpdateStatement> ParseUpdate() {
    RETURN_NOT_OK(ExpectKeyword("UPDATE"));
    UpdateStatement upd;
    ASSIGN_OR_RETURN(upd.table, ExpectIdentifier("table name"));
    RETURN_NOT_OK(ExpectKeyword("SET"));
    while (true) {
      ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      RETURN_NOT_OK(ExpectSymbol("="));
      ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      upd.assignments.emplace_back(std::move(col), std::move(e));
      if (!ConsumeSymbol(",")) break;
    }
    if (ConsumeKeyword("WHERE")) {
      ASSIGN_OR_RETURN(upd.where, ParseExpr());
    }
    return upd;
  }

  Result<DeleteStatement> ParseDelete() {
    RETURN_NOT_OK(ExpectKeyword("DELETE"));
    RETURN_NOT_OK(ExpectKeyword("FROM"));
    DeleteStatement del;
    ASSIGN_OR_RETURN(del.table, ExpectIdentifier("table name"));
    if (ConsumeKeyword("WHERE")) {
      ASSIGN_OR_RETURN(del.where, ParseExpr());
    }
    return del;
  }

  // --- expressions, precedence climbing ---
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (PeekKeyword("AND")) {
      ++pos_;
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (true) {
      bool negated = false;
      if (PeekKeyword("NOT") &&
          (PeekKeyword("BETWEEN", 1) || PeekKeyword("IN", 1) ||
           PeekKeyword("LIKE", 1))) {
        ++pos_;
        negated = true;
      }
      if (ConsumeKeyword("BETWEEN")) {
        ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
        RETURN_NOT_OK(ExpectKeyword("AND"));
        ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
        lhs = Expr::Between(std::move(lhs), std::move(lo), std::move(hi),
                            negated);
        continue;
      }
      if (ConsumeKeyword("IN")) {
        RETURN_NOT_OK(ExpectSymbol("("));
        std::vector<ExprPtr> list;
        while (true) {
          ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          list.push_back(std::move(e));
          if (ConsumeSymbol(",")) continue;
          RETURN_NOT_OK(ExpectSymbol(")"));
          break;
        }
        lhs = Expr::InList(std::move(lhs), std::move(list), negated);
        continue;
      }
      if (ConsumeKeyword("LIKE")) {
        ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
        ExprPtr like = Expr::Binary(BinaryOp::kLike, std::move(lhs),
                                    std::move(pattern));
        lhs = negated ? Expr::Unary(UnaryOp::kNot, std::move(like))
                      : std::move(like);
        continue;
      }
      if (negated) return Error("dangling NOT");
      if (ConsumeKeyword("IS")) {
        bool is_not = ConsumeKeyword("NOT");
        RETURN_NOT_OK(ExpectKeyword("NULL"));
        lhs = Expr::IsNull(std::move(lhs), is_not);
        continue;
      }
      BinaryOp op;
      if (ConsumeSymbol("=")) {
        op = BinaryOp::kEq;
      } else if (ConsumeSymbol("<>") || ConsumeSymbol("!=")) {
        op = BinaryOp::kNe;
      } else if (ConsumeSymbol("<=")) {
        op = BinaryOp::kLe;
      } else if (ConsumeSymbol(">=")) {
        op = BinaryOp::kGe;
      } else if (ConsumeSymbol("<")) {
        op = BinaryOp::kLt;
      } else if (ConsumeSymbol(">")) {
        op = BinaryOp::kGt;
      } else {
        break;
      }
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (ConsumeSymbol("+")) {
        op = BinaryOp::kAdd;
      } else if (ConsumeSymbol("-")) {
        op = BinaryOp::kSub;
      } else if (ConsumeSymbol("||")) {
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (ConsumeSymbol("*")) {
        op = BinaryOp::kMul;
      } else if (ConsumeSymbol("/")) {
        op = BinaryOp::kDiv;
      } else if (ConsumeSymbol("%")) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeSymbol("-")) {
      ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kString: {
        ++pos_;
        return Expr::Literal(Datum::Text(t.text));
      }
      case TokenType::kInteger: {
        ++pos_;
        return Expr::Literal(Datum::Int(std::stoll(t.text)));
      }
      case TokenType::kFloat: {
        ++pos_;
        return Expr::Literal(Datum::Double(std::stod(t.text)));
      }
      case TokenType::kSymbol:
        if (t.IsSymbol("(")) {
          ++pos_;
          ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          RETURN_NOT_OK(ExpectSymbol(")"));
          return e;
        }
        return Error("unexpected symbol in expression");
      case TokenType::kIdentifier:
        if (t.IsKeyword("TRUE")) {
          ++pos_;
          return Expr::Literal(Datum::Bool(true));
        }
        if (t.IsKeyword("FALSE")) {
          ++pos_;
          return Expr::Literal(Datum::Bool(false));
        }
        if (t.IsKeyword("NULL")) {
          ++pos_;
          return Expr::Literal(Datum::Null());
        }
        if (t.IsKeyword("CASE")) return ParseCase();
        [[fallthrough]];
      case TokenType::kQuotedIdentifier:
        return ParseIdentifierExpression();
      case TokenType::kEnd:
        return Error("unexpected end of input");
    }
    return Error("unexpected token");
  }

  Result<ExprPtr> ParseCase() {
    ++pos_;  // CASE
    std::vector<ExprPtr> args;
    while (ConsumeKeyword("WHEN")) {
      ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      RETURN_NOT_OK(ExpectKeyword("THEN"));
      ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      args.push_back(std::move(cond));
      args.push_back(std::move(value));
    }
    if (args.empty()) return Error("CASE requires at least one WHEN");
    if (ConsumeKeyword("ELSE")) {
      ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      args.push_back(std::move(e));
    }
    RETURN_NOT_OK(ExpectKeyword("END"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    e->args = std::move(args);
    return e;
  }

  /// Identifier chain: function call, column ref (possibly alias-qualified,
  /// possibly dotted), or alias.* star.
  Result<ExprPtr> ParseIdentifierExpression() {
    std::vector<std::string> parts;
    const Token& first = Peek();
    parts.push_back(first.text);
    bool first_bare = first.type == TokenType::kIdentifier;
    ++pos_;
    // Function call?
    if (first_bare && Peek().IsSymbol("(")) {
      ++pos_;
      std::vector<ExprPtr> args;
      if (!ConsumeSymbol(")")) {
        while (true) {
          if (Peek().IsSymbol("*")) {
            ++pos_;
            args.push_back(Expr::Star(""));
          } else {
            ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            args.push_back(std::move(e));
          }
          if (ConsumeSymbol(",")) continue;
          RETURN_NOT_OK(ExpectSymbol(")"));
          break;
        }
      }
      return Expr::Function(AsciiLower(parts[0]), std::move(args));
    }
    while (Peek().IsSymbol(".")) {
      if (Peek(1).IsSymbol("*")) {
        pos_ += 2;
        // alias.*
        std::string alias = JoinParts(parts);
        return Expr::Star(std::move(alias));
      }
      const Token& next = Peek(1);
      if (next.type != TokenType::kIdentifier &&
          next.type != TokenType::kQuotedIdentifier) {
        break;
      }
      parts.push_back(next.text);
      pos_ += 2;
    }
    // Leave table/column split to the binder: stash the full dotted chain in
    // `column` and let binding peel a leading alias if one matches.
    return Expr::Column("", JoinParts(parts));
  }

  static std::string JoinParts(const std::vector<std::string>& parts) {
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) out.push_back('.');
      out += parts[i];
    }
    return out;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(std::string_view sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace sinew::engine
