// Recursive-descent SQL parser.
//
// Supported surface (everything the paper's workloads need):
//   SELECT [DISTINCT] items FROM t [alias] {, t | JOIN t ON e}*
//     [WHERE e] [GROUP BY e, ...] [HAVING e] [ORDER BY e [ASC|DESC], ...]
//     [LIMIT n]
//   CREATE TABLE t (col type, ...)
//   INSERT INTO t [(cols)] VALUES (...), ...
//   UPDATE t SET col = e, ... [WHERE e]
//   DELETE FROM t [WHERE e]
//   ANALYZE t
//   EXPLAIN <select>
//
// Expressions: literals, [alias.]column (dotted and "quoted" names),
// arithmetic, comparisons, AND/OR/NOT, BETWEEN, IN (...), LIKE, IS [NOT]
// NULL, CASE WHEN, function calls (aggregates and UDFs), COUNT(*).

#ifndef SINEW_ENGINE_PARSER_H_
#define SINEW_ENGINE_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "engine/statement.h"

namespace sinew::engine {

/// Parses a single SQL statement (optional trailing ';').
Result<Statement> ParseSql(std::string_view sql);

/// Parses just an expression (used by tests).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_PARSER_H_
