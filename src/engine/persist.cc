#include "engine/persist.h"

#include <shared_mutex>

#include "common/bytes.h"
#include "common/image_io.h"
#include "common/metrics.h"

namespace sinew::engine {

namespace {

constexpr std::string_view kMagic = "SINEWTBL";
constexpr uint32_t kVersion = 1;

}  // namespace

Result<std::string> SerializeTable(const Table& table) {
  std::shared_lock lock(table.latch());
  const Schema& schema = table.SchemaUnlocked();
  BufferWriter w;
  w.PutBytes(kMagic);
  w.PutU32(kVersion);
  w.PutLengthPrefixed(table.name());
  w.PutU32(static_cast<uint32_t>(schema.num_slots()));
  for (const Column& col : schema.columns()) {
    w.PutLengthPrefixed(col.name);
    w.PutU8(static_cast<uint8_t>(col.type));
    w.PutU8(col.dropped ? 1 : 0);
  }
  uint64_t slots = table.RowSlotCountUnlocked();
  w.PutU64(slots);
  for (uint64_t rid = 0; rid < slots; ++rid) {
    w.PutLengthPrefixed(table.RawRowUnlocked(rid));
  }
  return w.Release();
}

Status SaveTable(const Table& table, const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  ASSIGN_OR_RETURN(std::string image, SerializeTable(table));
  RETURN_NOT_OK(WriteImageFile(env, path, std::move(image)));
  static metrics::Counter* images_saved =
      metrics::GetCounter("persist.table_images_saved_total");
  images_saved->Increment();
  return Status::OK();
}

Result<Table*> DeserializeTable(std::string_view image, Catalog* catalog) {
  BufferReader r(image);
  ASSIGN_OR_RETURN(std::string_view magic, r.ReadBytes(kMagic.size()));
  if (magic != kMagic) return Status::ParseError("bad table image magic");
  ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVersion) {
    return Status::ParseError("unsupported table image version ", version);
  }
  ASSIGN_OR_RETURN(std::string_view name, r.ReadLengthPrefixed());
  ASSIGN_OR_RETURN(uint32_t ncols, r.ReadU32());
  Schema schema;
  for (uint32_t i = 0; i < ncols; ++i) {
    ASSIGN_OR_RETURN(std::string_view col_name, r.ReadLengthPrefixed());
    ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
    ASSIGN_OR_RETURN(uint8_t dropped, r.ReadU8());
    Column col;
    col.name = std::string(col_name);
    col.type = static_cast<ColumnType>(type);
    col.dropped = dropped != 0;
    // AddColumn rejects duplicates of live columns; tombstones are appended
    // directly to preserve slot order.
    if (col.dropped) {
      Column live = col;
      live.dropped = false;
      RETURN_NOT_OK(schema.AddColumn(live));
      RETURN_NOT_OK(schema.DropColumn(col.name));
    } else {
      RETURN_NOT_OK(schema.AddColumn(col));
    }
  }
  ASSIGN_OR_RETURN(Table * table,
                   catalog->CreateTable(std::string(name), std::move(schema)));
  ASSIGN_OR_RETURN(uint64_t slots, r.ReadU64());
  for (uint64_t i = 0; i < slots; ++i) {
    ASSIGN_OR_RETURN(std::string_view row, r.ReadLengthPrefixed());
    RETURN_NOT_OK(table->RestoreRawRow(std::string(row)));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in table image");
  return table;
}

Result<Table*> LoadTable(const std::string& path, Catalog* catalog, Env* env) {
  if (env == nullptr) env = Env::Default();
  ASSIGN_OR_RETURN(std::string image, ReadImageFile(env, path));
  return DeserializeTable(image, catalog);
}

Status CopyTableImage(const std::string& from, const std::string& to,
                      Env* env) {
  if (env == nullptr) env = Env::Default();
  ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(from));
  // Refuse to propagate a damaged source into the new generation: a copy
  // that merely moved corruption forward would defeat the retained-fallback
  // recovery path.
  RETURN_NOT_OK(VerifyImageFooter(bytes).status());
  RETURN_NOT_OK(AtomicWriteFile(env, to, bytes));
  static metrics::Counter* copied =
      metrics::GetCounter("persist.table_images_copied_total");
  copied->Increment();
  return Status::OK();
}

}  // namespace sinew::engine
