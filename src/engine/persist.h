// Single-file binary table images. Used for durability and as the
// deterministic "storage size" measure behind Table 3 (encoded byte volume,
// not process RSS).
//
// Payload layout (SerializeTable / DeserializeTable):
//   magic "SINEWTBL" | u32 version
//   table name (length-prefixed)
//   u32 column count, per column: name, u8 type, u8 dropped
//   u64 row-slot count, per slot: length-prefixed encoded row ("" = deleted)
//
// On disk (SaveTable / LoadTable) the payload additionally carries the
// standard checksummed image footer (common/image_io.h) and is written
// atomically via temp-file + rename, so a torn or bit-flipped image is
// detected at load time instead of being parsed as garbage.

#ifndef SINEW_ENGINE_PERSIST_H_
#define SINEW_ENGINE_PERSIST_H_

#include <string>

#include "common/env.h"
#include "common/result.h"
#include "engine/catalog.h"
#include "engine/table.h"

namespace sinew::engine {

/// Serializes the table into an in-memory image (no footer).
Result<std::string> SerializeTable(const Table& table);

/// Writes the image + checksum footer to a file atomically.
/// `env` defaults to Env::Default().
Status SaveTable(const Table& table, const std::string& path,
                 Env* env = nullptr);

/// Recreates a table from an image into `catalog` (fails if the name exists).
Result<Table*> DeserializeTable(std::string_view image, Catalog* catalog);

/// Reads a table image file (verifying its footer) into `catalog`.
Result<Table*> LoadTable(const std::string& path, Catalog* catalog,
                         Env* env = nullptr);

/// Copies a previously saved table image verbatim (footer and all) after
/// verifying its checksum, writing the copy atomically. Used by LSM
/// compaction (sinew/durable_db.h) to carry tables that have not mutated
/// since the previous generation into the next one without re-serializing
/// them.
Status CopyTableImage(const std::string& from, const std::string& to,
                      Env* env = nullptr);

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_PERSIST_H_
