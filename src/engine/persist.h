// Single-file binary table images. Used for durability and as the
// deterministic "storage size" measure behind Table 3 (encoded byte volume,
// not process RSS).
//
// Image layout:
//   magic "SINEWTBL" | u32 version
//   table name (length-prefixed)
//   u32 column count, per column: name, u8 type, u8 dropped
//   u64 row-slot count, per slot: length-prefixed encoded row ("" = deleted)

#ifndef SINEW_ENGINE_PERSIST_H_
#define SINEW_ENGINE_PERSIST_H_

#include <string>

#include "common/result.h"
#include "engine/catalog.h"
#include "engine/table.h"

namespace sinew::engine {

/// Serializes the table into an in-memory image.
Result<std::string> SerializeTable(const Table& table);

/// Writes the image to a file.
Status SaveTable(const Table& table, const std::string& path);

/// Recreates a table from an image into `catalog` (fails if the name exists).
Result<Table*> DeserializeTable(std::string_view image, Catalog* catalog);

/// Reads a table image file into `catalog`.
Result<Table*> LoadTable(const std::string& path, Catalog* catalog);

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_PERSIST_H_
