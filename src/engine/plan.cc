#include "engine/plan.h"

#include <sstream>

namespace sinew::engine {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan:
      return "Seq Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kNestedLoopJoin:
      return "Nested Loop";
    case PlanKind::kHashJoin:
      return "Hash Join";
    case PlanKind::kMergeJoin:
      return "Merge Join";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kHashAggregate:
      return "HashAggregate";
    case PlanKind::kGroupAggregate:
      return "GroupAggregate";
    case PlanKind::kUnique:
      return "Unique";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kGather:
      return "Gather";
    case PlanKind::kExtract:
      return "SinewExtract";
  }
  return "?";
}

namespace {

std::string ExprListToString(const std::vector<ExprPtr>& exprs) {
  std::string out;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs[i]->ToString();
  }
  return out;
}

void AppendNode(const PlanNode& node, int depth, std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  if (depth > 0) *out << "-> ";
  *out << node.Summary() << "\n";
  for (const auto& child : node.children) {
    AppendNode(*child, depth + 1, out);
  }
}

}  // namespace

std::string PlanNode::Summary() const {
  std::ostringstream out;
  out << PlanKindName(kind);
  switch (kind) {
    case PlanKind::kSeqScan:
      out << " on " << (table != nullptr ? table->name() : "?");
      if (!alias.empty() && (table == nullptr || alias != table->name())) {
        out << " " << alias;
      }
      if (scan_filter != nullptr) {
        out << " (filter: " << scan_filter->ToString() << ")";
      }
      break;
    case PlanKind::kFilter:
      out << " (" << (predicate != nullptr ? predicate->ToString() : "?")
          << ")";
      break;
    case PlanKind::kProject:
      out << " [" << ExprListToString(projections) << "]";
      break;
    case PlanKind::kHashJoin:
    case PlanKind::kMergeJoin:
      out << " (" << ExprListToString(left_keys) << " = "
          << ExprListToString(right_keys) << ")";
      break;
    case PlanKind::kNestedLoopJoin:
      if (residual != nullptr) out << " (" << residual->ToString() << ")";
      break;
    case PlanKind::kSort:
      out << " (" << ExprListToString(sort_keys) << ")";
      break;
    case PlanKind::kHashAggregate:
    case PlanKind::kGroupAggregate:
      out << " (keys: " << ExprListToString(group_keys) << ")";
      break;
    case PlanKind::kGather:
      // Merge path is plan-derivable: a hash-aggregate child runs per-worker
      // partial aggregation merged at the barrier; anything else streams rows
      // through the bounded queue.
      out << " (workers=" << parallel_degree << ", morsel=" << kMorselRows
          << ", merge="
          << (!children.empty() &&
                      children[0]->kind == PlanKind::kHashAggregate
                  ? "partial-agg"
                  : "streaming")
          << ")";
      break;
    case PlanKind::kExtract: {
      size_t sources = 0;
      int prev_slot = -1;
      for (const ExtractTarget& t : extract_targets) {
        if (t.source_slot != prev_slot) ++sources;  // targets grouped by slot
        prev_slot = t.source_slot;
      }
      out << " (attrs=" << extract_targets.size() << ", sources=" << sources
          << ")";
      break;
    }
    case PlanKind::kUnique:
    case PlanKind::kLimit:
      break;
  }
  out << " (rows=" << static_cast<uint64_t>(est_rows) << ")";
  return out.str();
}

std::string PlanNode::DebugString() const {
  std::ostringstream out;
  AppendNode(*this, 0, &out);
  return out.str();
}

}  // namespace sinew::engine
