// Physical query plans. Produced by the planner (planner.h), consumed by the
// executor (exec.h), and printable as EXPLAIN trees — the artifact the
// paper's Table 2 compares across virtual vs. physical columns.

#ifndef SINEW_ENGINE_PLAN_H_
#define SINEW_ENGINE_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/eval.h"
#include "engine/expr.h"
#include "engine/table.h"
#include "engine/udf.h"

namespace sinew::engine {

namespace bytecode {
struct Program;
}  // namespace bytecode

enum class PlanKind : uint8_t {
  kSeqScan,
  kFilter,
  kProject,
  kNestedLoopJoin,
  kHashJoin,
  kMergeJoin,
  kSort,
  kHashAggregate,
  kGroupAggregate,  // aggregation over sorted input
  kUnique,          // DISTINCT over sorted input
  kLimit,
  kGather,          // merge of a parallel (morsel-driven) child pipeline
  kExtract,         // batched document extraction (appends computed columns)
};

const char* PlanKindName(PlanKind kind);

/// Rows per morsel claim in the parallel executor's shared cursor. Shared
/// between exec.cc (MorselSource) and EXPLAIN output so the printed plan
/// reflects the actual claim granularity.
inline constexpr uint64_t kMorselRows = 4096;

/// One aggregate computation (the arg expression is bound against the
/// aggregate node's child schema). COUNT(*) has is_star = true and no arg.
struct AggSpec {
  std::string fn;  // count / sum / avg / min / max
  ExprPtr arg;
  bool is_star = false;
};

/// kSeqScan zone-map pushdown: one entry per scan_filter conjunct of shape
/// `sinew_extract_chain(col, T, ids...) <cmp> literal`. Before decoding a
/// strip-aligned chunk of cold rows, the scan asks the table's columnar
/// segment whether the matching strip's zone map proves no value can satisfy
/// the comparison; if so the whole strip is skipped. Purely an accelerator:
/// rows that survive still evaluate the full scan_filter.
struct ZoneFilter {
  std::string source_column;         ///< reservoir column name (e.g. "_data")
  std::vector<uint32_t> prefix_ids;  ///< object-id descent chain
  uint32_t attr_id = 0;
  int64_t type_tag = 0;              ///< ValueType of the extracted attribute
  BinaryOp op = BinaryOp::kEq;       ///< comparison with the value on the left
  Datum literal;
};

/// kSeqScan deferred-bytes pushdown: a serialized source column (reservoir)
/// whose decoded bytes are consumed *only* by hoisted extract targets above
/// the scan. When the attached columnar segment can serve every listed
/// target, the batch scan skips decoding the column for segment-covered
/// rows and records the deferral on the RowBatch (see row_batch.h); the
/// extract then reads the values from the strips instead. Rows past the
/// segment and chunks where any target fails to resolve decode normally.
struct LazyScanSource {
  int output_pos = -1;  ///< scan output position of the bytes column
  std::vector<ExtractTarget> targets;  ///< every target sourced from it
};

struct PlanNode {
  PlanKind kind;
  std::vector<std::unique_ptr<PlanNode>> children;

  /// Column layout this node emits.
  ExecSchema output_schema;
  /// Planner cardinality estimate (what EXPLAIN prints).
  double est_rows = 0;

  // kSeqScan
  Table* table = nullptr;
  std::string alias;
  ExprPtr scan_filter;  // pushed-down predicate, bound against scan schema
  /// Projection pushdown: positions (into output_schema) the scan must
  /// decode — filter columns first, then the remaining referenced columns
  /// (decoded only for rows that pass the filter). Valid when
  /// scan_projected; otherwise the scan decodes every column.
  bool scan_projected = false;
  std::vector<size_t> scan_filter_cols;
  std::vector<size_t> scan_output_cols;  // excludes filter cols

  // kFilter
  ExprPtr predicate;

  // kProject: one expression per output column, bound against the child.
  std::vector<ExprPtr> projections;

  // joins: equi-key lists bound against left/right child schemas, plus an
  // optional residual predicate bound against the concatenated schema.
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;
  ExprPtr residual;

  // kSort (also used under kMergeJoin / kGroupAggregate / kUnique)
  std::vector<ExprPtr> sort_keys;
  std::vector<bool> sort_desc;

  // kHashAggregate / kGroupAggregate
  std::vector<ExprPtr> group_keys;
  std::vector<AggSpec> aggs;

  // kLimit
  int64_t limit = -1;

  // kGather: number of worker tasks the child pipeline runs on. The single
  // child is the template pipeline each worker instantiates over its own
  // morsel stream (see exec.cc).
  int parallel_degree = 0;

  // kExtract: each target appends one output column (after the child's
  // columns) computed by the registered batch-extract function; targets
  // sharing a source column decode it once per row. Grouped by source_slot
  // and sorted by (prefix_ids, attr_id) — the BatchExtractFn contract.
  std::vector<ExtractTarget> extract_targets;
  std::string extract_fn;  // name resolved via UdfRegistry::FindBatchExtract
  /// Columnar strip serving: when the extract sits over a scan of
  /// `extract_table` and the child emits the scan's __rid pseudo-column at
  /// `extract_rid_slot`, the operator serves targets covered by the table's
  /// columnar segment straight from the strips for cold rows, falling back
  /// to the reservoir function for hot rows and uncovered targets.
  Table* extract_table = nullptr;
  int extract_rid_slot = -1;

  // kSeqScan zone-map pushdown (see ZoneFilter above).
  std::vector<ZoneFilter> zone_filters;

  // kSeqScan deferred-bytes pushdown (see LazyScanSource above).
  std::vector<LazyScanSource> lazy_sources;

  // Compiled bytecode programs (engine/bytecode.h), attached by the
  // planner's compile pass after every plan rewrite has run so the Expr
  // trees they alias are final. Immutable; Gather workers instantiate
  // operators over the same PlanNode and share them (per-instance scratch
  // lives in each operator's bytecode::ExecState). Null entries mean "use
  // the tree-walk evaluator".
  std::shared_ptr<const bytecode::Program> predicate_program;    // kFilter
  std::shared_ptr<const bytecode::Program> scan_filter_program;  // kSeqScan
  std::vector<std::shared_ptr<const bytecode::Program>>
      projection_programs;  // kProject, parallel to `projections`

  /// EXPLAIN rendering (multi-line tree).
  std::string DebugString() const;

  /// Root operator name plus key details on one line (test assertions).
  std::string Summary() const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_PLAN_H_
