#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/metrics.h"
#include "common/value.h"
#include "engine/bytecode.h"
#include "engine/eval.h"

namespace sinew::engine {

namespace {

/// Fraction of non-null values strictly below x, from an equi-depth
/// histogram.
double FractionBelow(const ColumnStats& stats, double x) {
  const std::vector<double>& h = stats.histogram;
  if (h.size() >= 2) {
    if (x <= h.front()) return 0.0;
    if (x >= h.back()) return 1.0;
    size_t buckets = h.size() - 1;
    for (size_t b = 0; b < buckets; ++b) {
      if (x < h[b + 1]) {
        double lo = h[b], hi = h[b + 1];
        double within = hi > lo ? (x - lo) / (hi - lo) : 0.5;
        return (static_cast<double>(b) + within) / buckets;
      }
    }
    return 1.0;
  }
  if (stats.has_minmax && stats.max > stats.min) {
    return std::clamp((x - stats.min) / (stats.max - stats.min), 0.0, 1.0);
  }
  return 0.5;
}

std::optional<double> LiteralAsDouble(const Expr& e) {
  if (e.kind != ExprKind::kLiteral || !e.literal.is_numeric()) {
    return std::nullopt;
  }
  return e.literal.AsDouble();
}

/// Plan-time constant folding (post-order): an operator node whose inputs
/// are all literals is evaluated once here instead of per row at execution
/// time (`1 + 1`, `'a' = 'a'`, `5 BETWEEN 1 AND 9`). Subtrees that error
/// (e.g. `1/0`) stay in place so the error still surfaces at runtime, and
/// kFunction/kCase are never folded (UDFs are opaque to the planner).
/// Decided AND/OR left sides fold too — the row evaluator's Kleene logic
/// never evaluates the right side of `FALSE AND x` / `TRUE OR x`, so
/// replacing the conjunction with the decided literal is exact.
void FoldConstants(ExprPtr* expr) {
  Expr& e = **expr;
  for (ExprPtr& arg : e.args) FoldConstants(&arg);
  switch (e.kind) {
    case ExprKind::kUnary:
    case ExprKind::kBinary:
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
      break;
    default:
      return;
  }
  if (e.kind == ExprKind::kBinary &&
      (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr)) {
    const bool is_or = e.bop == BinaryOp::kOr;
    const Expr& lhs = *e.args[0];
    if (lhs.kind == ExprKind::kLiteral && lhs.literal.is_bool() &&
        lhs.literal.bool_value() == is_or) {
      *expr = Expr::Literal(Datum::Bool(is_or));
      return;
    }
  }
  for (const ExprPtr& arg : e.args) {
    if (arg->kind != ExprKind::kLiteral) return;
  }
  Result<Datum> value = EvalExpr(e, {}, nullptr);
  if (!value.ok()) return;
  *expr = Expr::Literal(std::move(*value));
}

void FoldExprList(std::vector<ExprPtr>* exprs) {
  for (ExprPtr& e : *exprs) FoldConstants(&e);
}

/// Folds every expression slot of the plan tree.
void FoldPlanConstants(PlanNode* node) {
  if (node->scan_filter != nullptr) FoldConstants(&node->scan_filter);
  if (node->predicate != nullptr) FoldConstants(&node->predicate);
  if (node->residual != nullptr) FoldConstants(&node->residual);
  FoldExprList(&node->projections);
  FoldExprList(&node->sort_keys);
  FoldExprList(&node->group_keys);
  FoldExprList(&node->left_keys);
  FoldExprList(&node->right_keys);
  for (AggSpec& agg : node->aggs) {
    if (agg.arg != nullptr) FoldConstants(&agg.arg);
  }
  for (PlanPtr& child : node->children) FoldPlanConstants(child.get());
}

/// Recomputes the per-lane fallback slot caches of every expression in the
/// plan. Plan rewrites after binding (extraction hoisting in particular)
/// redirect colref bound slots in place, which silently invalidates the
/// caches BindExpr filled; this runs after the last rewrite so the batch
/// evaluator and the bytecode compiler see current slot sets.
void RefreshPlanSlotCaches(PlanNode* node) {
  auto refresh = [](const ExprPtr& e) {
    if (e != nullptr) RefreshFallbackSlotCaches(e.get());
  };
  refresh(node->scan_filter);
  refresh(node->predicate);
  refresh(node->residual);
  for (const ExprPtr& e : node->projections) refresh(e);
  for (const ExprPtr& e : node->sort_keys) refresh(e);
  for (const ExprPtr& e : node->group_keys) refresh(e);
  for (const ExprPtr& e : node->left_keys) refresh(e);
  for (const ExprPtr& e : node->right_keys) refresh(e);
  for (AggSpec& agg : node->aggs) refresh(agg.arg);
  for (PlanPtr& child : node->children) RefreshPlanSlotCaches(child.get());
}

/// Final planning pass: compile the hot per-row expression slots — scan
/// filters, filter predicates, projections — to bytecode programs
/// (engine/bytecode.h). Runs after every plan rewrite (constant folding,
/// zone-filter attachment, extraction hoisting, parallelization) so the
/// Expr trees the programs alias are final. Expressions the compiler
/// declines stay on the tree-walk evaluator (nullptr program).
void CompilePlanPrograms(PlanNode* node, const UdfRegistry* udfs) {
  switch (node->kind) {
    case PlanKind::kSeqScan:
      if (node->scan_filter != nullptr) {
        node->scan_filter_program = bytecode::Compile(
            *node->scan_filter, node->output_schema.cols.size(), udfs);
      }
      break;
    case PlanKind::kFilter:
      if (node->predicate != nullptr && !node->children.empty()) {
        node->predicate_program = bytecode::Compile(
            *node->predicate, node->children[0]->output_schema.cols.size(),
            udfs);
      }
      break;
    case PlanKind::kProject:
      if (!node->children.empty()) {
        const size_t width = node->children[0]->output_schema.cols.size();
        node->projection_programs.resize(node->projections.size());
        for (size_t i = 0; i < node->projections.size(); ++i) {
          node->projection_programs[i] =
              bytecode::Compile(*node->projections[i], width, udfs);
        }
      }
      break;
    default:
      break;
  }
  for (PlanPtr& child : node->children) CompilePlanPrograms(child.get(), udfs);
}

}  // namespace

class Planner::SelectPlanner {
 public:
  SelectPlanner(Catalog* catalog, const UdfRegistry* udfs,
                const PlannerOptions& options, const SelectStatement& stmt)
      : catalog_(catalog), udfs_(udfs), options_(options), stmt_(stmt) {}

  Result<PlanPtr> Plan();

 private:
  struct ScanInfo {
    Table* table = nullptr;
    std::string alias;
    ExecSchema schema;
    TableStats stats;
    double base_rows = 0;
  };

  struct Rel {
    PlanPtr plan;
    std::set<std::string> aliases;
  };

  // --- helpers ---
  Status BuildScans();
  Status CollectColumnUsage();
  Result<PlanPtr> BuildJoinTree();
  Result<PlanPtr> AddAggregation(PlanPtr child, std::vector<SelectItem>* items,
                                 ExprPtr* having,
                                 std::vector<OrderItem>* order_by);
  Result<PlanPtr> AddProjection(PlanPtr child,
                                std::vector<SelectItem> items);
  Result<PlanPtr> AddDistinct(PlanPtr child);
  Result<PlanPtr> AddOrderByAndLimit(PlanPtr child,
                                     std::vector<OrderItem> order_by);
  void HoistBatchedExtraction(PlanPtr* node) const;
  void TryHoistBatchedExtraction(PlanNode* cap) const;
  void ParallelizePlan(PlanPtr* node) const;
  int ParallelDegreeFor(const PlanNode& chain) const;
  static bool IsPipelineChain(const PlanNode& node);

  double ConjunctSelectivity(const Expr& conjunct, const ScanInfo& scan) const;
  double ExprDistinct(const Expr& expr, const ExecSchema& schema) const;
  const ScanInfo* FindScan(const std::string& alias) const;

  /// Aliases referenced by a bound expression.
  static void CollectAliases(const Expr& e, std::set<std::string>* out) {
    if (e.kind == ExprKind::kColumnRef && !e.table.empty()) {
      out->insert(e.table);
    }
    for (const ExprPtr& a : e.args) CollectAliases(*a, out);
  }

  Catalog* catalog_;
  const UdfRegistry* udfs_;
  const PlannerOptions& options_;
  const SelectStatement& stmt_;

  std::vector<ScanInfo> scans_;
  std::vector<std::string> aliases_;
  ExecSchema global_schema_;
  // Conjuncts bound against global_schema_, classified by referenced aliases.
  std::vector<std::pair<ExprPtr, std::set<std::string>>> conjuncts_;
  // Column stats lookup across all scans by (alias, column).
  std::map<std::pair<std::string, std::string>, const ColumnStats*> stats_by_col_;
  std::map<std::string, double> table_rows_by_alias_;
  // Projection pushdown: per-alias referenced scan positions, or "all".
  std::map<std::string, std::set<size_t>> needed_positions_;
  std::set<std::string> fully_needed_;
  std::map<std::string, size_t> scan_base_offset_;  // alias -> global offset
};

Status Planner::SelectPlanner::BuildScans() {
  if (stmt_.from.empty()) {
    return Status::InvalidArgument("queries without FROM are not supported");
  }
  std::set<std::string> seen_aliases;
  for (const TableRef& ref : stmt_.from) {
    ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(ref.table_name));
    ScanInfo info;
    info.table = table;
    info.alias = ref.effective_alias();
    if (!seen_aliases.insert(info.alias).second) {
      return Status::InvalidArgument("duplicate table alias ", info.alias);
    }
    // Snapshot under the latch: the background materializer may be adding
    // or dropping columns concurrently (the executor re-validates at Open).
    const Schema schema = table->SchemaSnapshot();
    for (size_t slot : schema.LiveSlots()) {
      const Column& col = schema.columns()[slot];
      info.schema.cols.push_back(
          ExecSchema::Col{info.alias, col.name, col.type});
    }
    info.schema.cols.push_back(
        ExecSchema::Col{info.alias, "__rid", ColumnType::kInt});
    info.stats = table->GetStats();
    info.base_rows = static_cast<double>(table->LiveRowCount());
    aliases_.push_back(info.alias);
    table_rows_by_alias_[info.alias] = info.base_rows;
    scans_.push_back(std::move(info));
  }
  for (const ScanInfo& scan : scans_) {
    scan_base_offset_[scan.alias] = global_schema_.cols.size();
    for (const ExecSchema::Col& col : scan.schema.cols) {
      global_schema_.cols.push_back(col);
      const ColumnStats* cs =
          scan.stats.analyzed ? scan.stats.Find(col.name) : nullptr;
      stats_by_col_[{scan.alias, col.name}] = cs;
    }
  }
  if (stmt_.where != nullptr) {
    std::vector<ExprPtr> parts = SplitConjuncts(*stmt_.where);
    for (ExprPtr& part : parts) {
      RETURN_NOT_OK(BindExpr(part.get(), global_schema_, aliases_));
      std::set<std::string> refs;
      CollectAliases(*part, &refs);
      conjuncts_.emplace_back(std::move(part), std::move(refs));
    }
  }
  return Status::OK();
}

Status Planner::SelectPlanner::CollectColumnUsage() {
  auto mark_all = [this](const std::string& alias_filter) {
    for (const ScanInfo& scan : scans_) {
      if (alias_filter.empty() || scan.alias == alias_filter) {
        fully_needed_.insert(scan.alias);
      }
    }
  };
  auto note_bound_refs = [this](const Expr& bound) {
    std::vector<const Expr*> refs;
    bound.CollectColumnRefs(&refs);
    for (const Expr* ref : refs) {
      auto base = scan_base_offset_.find(ref->table);
      if (base == scan_base_offset_.end() || ref->bound_slot < 0) continue;
      needed_positions_[ref->table].insert(
          static_cast<size_t>(ref->bound_slot) - base->second);
    }
  };
  // Clone-free best-effort resolution for the (possibly very wide) select
  // list: resolve each reference name against the scan schemas directly; an
  // unresolvable unqualified name falls back to conservative marking.
  auto note_light = [&](auto&& self, const Expr& e) -> void {
    if (e.kind == ExprKind::kColumnRef) {
      bool found = false;
      for (const ScanInfo& scan : scans_) {
        // Peel a leading "alias." segment off unqualified dotted names.
        std::string_view column = e.column;
        std::string_view qualifier = e.table;
        if (qualifier.empty()) {
          size_t dot = column.find('.');
          if (dot != std::string_view::npos &&
              column.substr(0, dot) == scan.alias) {
            qualifier = scan.alias;
            column = column.substr(dot + 1);
          }
        }
        if (!qualifier.empty() && qualifier != scan.alias) continue;
        for (size_t i = 0; i < scan.schema.cols.size(); ++i) {
          if (scan.schema.cols[i].name == column) {
            needed_positions_[scan.alias].insert(i);
            found = true;
          }
        }
      }
      if (!found) mark_all("");
      return;
    }
    for (const ExprPtr& a : e.args) {
      if (e.IsAggregateCall() && a->kind == ExprKind::kStar) continue;
      if (a->kind == ExprKind::kStar) {
        mark_all(a->table);
        continue;
      }
      self(self, *a);
    }
  };
  // Stars anywhere in an expression need the whole relation — except
  // COUNT(*), which needs no columns at all.
  auto mark_stars = [&](auto&& self, const Expr& e) -> void {
    if (e.kind == ExprKind::kStar) mark_all(e.table);
    for (const ExprPtr& a : e.args) {
      if (e.IsAggregateCall() && a->kind == ExprKind::kStar) continue;
      self(self, *a);
    }
  };
  auto consider = [&](const Expr& e) {
    if (e.kind == ExprKind::kStar) {
      mark_all(e.table);
      return;
    }
    mark_stars(mark_stars, e);
    note_light(note_light, e);
  };
  for (const SelectItem& item : stmt_.items) consider(*item.expr);
  for (const ExprPtr& g : stmt_.group_by) consider(*g);
  if (stmt_.having != nullptr) consider(*stmt_.having);
  for (const OrderItem& item : stmt_.order_by) consider(*item.expr);
  for (const auto& [conjunct, refs] : conjuncts_) {
    (void)refs;
    note_bound_refs(*conjunct);
  }
  return Status::OK();
}

const Planner::SelectPlanner::ScanInfo* Planner::SelectPlanner::FindScan(
    const std::string& alias) const {
  for (const ScanInfo& scan : scans_) {
    if (scan.alias == alias) return &scan;
  }
  return nullptr;
}

double Planner::SelectPlanner::ConjunctSelectivity(
    const Expr& conjunct, const ScanInfo& scan) const {
  const double rows = std::max(scan.base_rows, 1.0);
  // Predicates routed through UDFs are opaque to the optimizer: fixed
  // absolute row estimate (the paper's observed Postgres behaviour).
  if (conjunct.ContainsNonAggregateFunction()) {
    return std::min(1.0, options_.default_udf_rows / rows);
  }
  auto col_stats = [&](const Expr& e) -> const ColumnStats* {
    if (e.kind != ExprKind::kColumnRef) return nullptr;
    auto it = stats_by_col_.find({e.table, e.column});
    return it == stats_by_col_.end() ? nullptr : it->second;
  };
  switch (conjunct.kind) {
    case ExprKind::kBinary: {
      const Expr& lhs = *conjunct.args[0];
      const Expr& rhs = *conjunct.args[1];
      switch (conjunct.bop) {
        case BinaryOp::kAnd:
          return ConjunctSelectivity(lhs, scan) *
                 ConjunctSelectivity(rhs, scan);
        case BinaryOp::kOr: {
          double a = ConjunctSelectivity(lhs, scan);
          double b = ConjunctSelectivity(rhs, scan);
          return a + b - a * b;
        }
        case BinaryOp::kEq: {
          const ColumnStats* cs = col_stats(lhs);
          const Expr* lit = &rhs;
          if (cs == nullptr) {
            cs = col_stats(rhs);
            lit = &lhs;
          }
          (void)lit;
          if (cs != nullptr && cs->ndistinct >= 1) {
            return (1.0 - cs->null_fraction()) / cs->ndistinct;
          }
          return options_.default_eq_selectivity;
        }
        case BinaryOp::kNe:
          return 1.0 - ConjunctSelectivity(
                           *Expr::Binary(BinaryOp::kEq, lhs.Clone(),
                                         rhs.Clone()),
                           scan);
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          const ColumnStats* cs = col_stats(lhs);
          std::optional<double> lit = LiteralAsDouble(rhs);
          bool flipped = false;
          if (cs == nullptr) {
            cs = col_stats(rhs);
            lit = LiteralAsDouble(lhs);
            flipped = true;
          }
          if (cs != nullptr && lit.has_value() &&
              (cs->has_minmax || cs->histogram.size() >= 2)) {
            double below = FractionBelow(*cs, *lit);
            bool less = conjunct.bop == BinaryOp::kLt ||
                        conjunct.bop == BinaryOp::kLe;
            if (flipped) less = !less;
            double sel = less ? below : 1.0 - below;
            return std::clamp(sel * (1.0 - cs->null_fraction()), 0.0, 1.0);
          }
          return options_.default_range_selectivity;
        }
        case BinaryOp::kLike:
          return options_.default_like_selectivity;
        default:
          return 0.5;
      }
    }
    case ExprKind::kBetween: {
      const ColumnStats* cs = col_stats(*conjunct.args[0]);
      std::optional<double> lo = LiteralAsDouble(*conjunct.args[1]);
      std::optional<double> hi = LiteralAsDouble(*conjunct.args[2]);
      double sel;
      if (cs != nullptr && lo.has_value() && hi.has_value() &&
          (cs->has_minmax || cs->histogram.size() >= 2)) {
        sel = std::max(0.0, FractionBelow(*cs, *hi) - FractionBelow(*cs, *lo));
        sel *= 1.0 - cs->null_fraction();
      } else {
        sel = options_.default_range_selectivity *
              options_.default_range_selectivity;
      }
      return conjunct.negated ? 1.0 - sel : sel;
    }
    case ExprKind::kInList: {
      const ColumnStats* cs = col_stats(*conjunct.args[0]);
      double eq = cs != nullptr && cs->ndistinct >= 1
                      ? (1.0 - cs->null_fraction()) / cs->ndistinct
                      : options_.default_eq_selectivity;
      double sel = std::min(
          1.0, eq * static_cast<double>(conjunct.args.size() - 1));
      return conjunct.negated ? 1.0 - sel : sel;
    }
    case ExprKind::kIsNull: {
      const ColumnStats* cs = col_stats(*conjunct.args[0]);
      double nullfrac = cs != nullptr ? cs->null_fraction() : 0.5;
      return conjunct.negated ? 1.0 - nullfrac : nullfrac;
    }
    case ExprKind::kUnary:
      if (conjunct.uop == UnaryOp::kNot) {
        return 1.0 - ConjunctSelectivity(*conjunct.args[0], scan);
      }
      return 0.5;
    case ExprKind::kLiteral:
      if (conjunct.literal.is_bool()) {
        return conjunct.literal.bool_value() ? 1.0 : 0.0;
      }
      return 0.5;
    default:
      return 0.5;
  }
}

double Planner::SelectPlanner::ExprDistinct(const Expr& expr,
                                            const ExecSchema& schema) const {
  (void)schema;
  if (expr.kind == ExprKind::kColumnRef) {
    auto it = stats_by_col_.find({expr.table, expr.column});
    if (it != stats_by_col_.end() && it->second != nullptr &&
        it->second->ndistinct >= 1) {
      return it->second->ndistinct;
    }
    return options_.default_udf_distinct;
  }
  // Expressions (UDF extractions in particular) have no statistics.
  return options_.default_udf_distinct;
}

Result<PlanPtr> Planner::SelectPlanner::BuildJoinTree() {
  // Per-scan filters and base relations.
  std::vector<Rel> rels;
  std::vector<size_t> used(conjuncts_.size(), 0);
  for (ScanInfo& scan : scans_) {
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanKind::kSeqScan;
    node->table = scan.table;
    node->alias = scan.alias;
    node->output_schema = scan.schema;
    double rows = scan.base_rows;
    std::vector<ExprPtr> filters;
    for (size_t i = 0; i < conjuncts_.size(); ++i) {
      const auto& [expr, refs] = conjuncts_[i];
      bool single_here =
          refs.size() <= 1 && (refs.empty() || *refs.begin() == scan.alias);
      // Constant conjuncts (no refs) apply everywhere but are consumed once.
      if (refs.empty() && used[i] != 0) single_here = false;
      if (!single_here) continue;
      used[i] = 1;
      rows *= ConjunctSelectivity(*expr, scan);
      filters.push_back(expr->Clone());
    }
    if (!filters.empty()) {
      ExprPtr combined = CombineConjuncts(std::move(filters));
      RETURN_NOT_OK(BindExpr(combined.get(), scan.schema, aliases_));
      node->scan_filter = std::move(combined);
    }
    // Projection pushdown: which scan positions must be decoded.
    node->scan_projected = true;
    std::set<size_t> filter_cols;
    if (node->scan_filter != nullptr) {
      std::vector<const Expr*> refs;
      node->scan_filter->CollectColumnRefs(&refs);
      for (const Expr* ref : refs) {
        if (ref->bound_slot >= 0) {
          filter_cols.insert(static_cast<size_t>(ref->bound_slot));
        }
      }
    }
    std::set<size_t> output_cols;
    if (fully_needed_.count(scan.alias) != 0) {
      for (size_t i = 0; i < scan.schema.cols.size(); ++i) {
        output_cols.insert(i);
      }
    } else {
      auto it = needed_positions_.find(scan.alias);
      if (it != needed_positions_.end()) output_cols = it->second;
    }
    for (size_t col : filter_cols) output_cols.erase(col);
    node->scan_filter_cols.assign(filter_cols.begin(), filter_cols.end());
    node->scan_output_cols.assign(output_cols.begin(), output_cols.end());
    node->est_rows = std::max(rows, 0.0);
    Rel rel;
    rel.plan = std::move(node);
    rel.aliases.insert(scan.alias);
    rels.push_back(std::move(rel));
  }

  // Join edges: top-level equality conjuncts whose sides touch one alias
  // each.
  struct Edge {
    size_t conjunct_index;
    std::string left_alias, right_alias;  // as written (args[0]/args[1])
  };
  std::vector<Edge> edges;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (used[i] != 0) continue;
    const auto& [expr, refs] = conjuncts_[i];
    if (refs.size() == 2 && expr->kind == ExprKind::kBinary &&
        expr->bop == BinaryOp::kEq) {
      std::set<std::string> lrefs, rrefs;
      CollectAliases(*expr->args[0], &lrefs);
      CollectAliases(*expr->args[1], &rrefs);
      if (lrefs.size() == 1 && rrefs.size() == 1 && *lrefs.begin() != *rrefs.begin()) {
        edges.push_back(Edge{i, *lrefs.begin(), *rrefs.begin()});
        used[i] = 2;  // will be consumed by a join
      }
    }
  }

  auto rel_of = [&rels](const std::string& alias) -> size_t {
    for (size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].aliases.count(alias) != 0) return i;
    }
    return rels.size();
  };

  // Greedy join ordering: repeatedly join the connected pair with the
  // smallest estimated output.
  while (rels.size() > 1) {
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_a = 0, best_b = 1;
    std::vector<size_t> best_edges;
    bool found_connected = false;
    for (size_t a = 0; a < rels.size(); ++a) {
      for (size_t b = a + 1; b < rels.size(); ++b) {
        std::vector<size_t> connecting;
        double fanout = 1.0;
        for (const Edge& e : edges) {
          size_t ra = rel_of(e.left_alias), rb = rel_of(e.right_alias);
          if ((ra == a && rb == b) || (ra == b && rb == a)) {
            connecting.push_back(&e - edges.data());
            const Expr& eq = *conjuncts_[e.conjunct_index].first;
            double ndl = ExprDistinct(*eq.args[0], global_schema_);
            double ndr = ExprDistinct(*eq.args[1], global_schema_);
            fanout /= std::max({ndl, ndr, 1.0});
          }
        }
        if (connecting.empty()) continue;
        double out =
            rels[a].plan->est_rows * rels[b].plan->est_rows * fanout;
        if (out < best_cost) {
          best_cost = out;
          best_a = a;
          best_b = b;
          best_edges = connecting;
          found_connected = true;
        }
      }
    }
    if (!found_connected) {
      // Cross join the two smallest relations.
      std::vector<size_t> order(rels.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return rels[x].plan->est_rows < rels[y].plan->est_rows;
      });
      best_a = std::min(order[0], order[1]);
      best_b = std::max(order[0], order[1]);
      best_cost = rels[best_a].plan->est_rows * rels[best_b].plan->est_rows;
      best_edges.clear();
    }

    Rel& ra = rels[best_a];
    Rel& rb = rels[best_b];
    // Probe side = larger input, build side = smaller (hash join convention:
    // right child is the build side).
    bool a_is_probe = ra.plan->est_rows >= rb.plan->est_rows;
    Rel& probe = a_is_probe ? ra : rb;
    Rel& build = a_is_probe ? rb : ra;

    auto join = std::make_unique<PlanNode>();
    join->output_schema.cols = probe.plan->output_schema.cols;
    join->output_schema.cols.insert(join->output_schema.cols.end(),
                                    build.plan->output_schema.cols.begin(),
                                    build.plan->output_schema.cols.end());
    join->est_rows = std::max(best_cost, 1.0);

    if (!best_edges.empty()) {
      for (size_t ei : best_edges) {
        const Edge& e = edges[ei];
        const Expr& eq = *conjuncts_[e.conjunct_index].first;
        // Which side of the equality belongs to the probe relation?
        bool lhs_in_probe = probe.aliases.count(e.left_alias) != 0;
        ExprPtr probe_key =
            (lhs_in_probe ? eq.args[0] : eq.args[1])->Clone();
        ExprPtr build_key =
            (lhs_in_probe ? eq.args[1] : eq.args[0])->Clone();
        RETURN_NOT_OK(
            BindExpr(probe_key.get(), probe.plan->output_schema, aliases_));
        RETURN_NOT_OK(
            BindExpr(build_key.get(), build.plan->output_schema, aliases_));
        join->left_keys.push_back(std::move(probe_key));
        join->right_keys.push_back(std::move(build_key));
      }
      bool hash_fits =
          build.plan->est_rows <= options_.hash_join_max_build_rows;
      join->kind = hash_fits ? PlanKind::kHashJoin : PlanKind::kMergeJoin;
      if (join->kind == PlanKind::kMergeJoin) {
        // Sort both inputs on the join keys.
        auto make_sort = [](PlanPtr child,
                            const std::vector<ExprPtr>& keys) -> PlanPtr {
          auto sort = std::make_unique<PlanNode>();
          sort->kind = PlanKind::kSort;
          sort->output_schema = child->output_schema;
          sort->est_rows = child->est_rows;
          for (const ExprPtr& k : keys) {
            sort->sort_keys.push_back(k->Clone());
            sort->sort_desc.push_back(false);
          }
          sort->children.push_back(std::move(child));
          return sort;
        };
        join->children.push_back(
            make_sort(std::move(probe.plan), join->left_keys));
        join->children.push_back(
            make_sort(std::move(build.plan), join->right_keys));
      } else {
        join->children.push_back(std::move(probe.plan));
        join->children.push_back(std::move(build.plan));
      }
    } else {
      join->kind = PlanKind::kNestedLoopJoin;
      join->children.push_back(std::move(probe.plan));
      join->children.push_back(std::move(build.plan));
    }

    Rel merged;
    merged.plan = std::move(join);
    merged.aliases = probe.aliases;
    merged.aliases.insert(build.aliases.begin(), build.aliases.end());
    rels.erase(rels.begin() + best_b);
    rels.erase(rels.begin() + best_a);
    rels.push_back(std::move(merged));
  }

  PlanPtr root = std::move(rels[0].plan);
  // Remaining conjuncts (multi-table non-equi residuals, or equalities not
  // consumed by a join) filter on top.
  std::vector<ExprPtr> leftovers;
  for (size_t i = 0; i < conjuncts_.size(); ++i) {
    if (used[i] == 1) continue;
    if (used[i] == 2) continue;  // consumed as a join key
    leftovers.push_back(conjuncts_[i].first->Clone());
  }
  if (!leftovers.empty()) {
    double sel = 1.0;
    for (const ExprPtr& c : leftovers) {
      // Without a single base table, use the UDF/functional defaults.
      sel *= c->ContainsNonAggregateFunction()
                 ? std::min(1.0, options_.default_udf_rows /
                                     std::max(root->est_rows, 1.0))
                 : 0.1;
    }
    ExprPtr combined = CombineConjuncts(std::move(leftovers));
    RETURN_NOT_OK(BindExpr(combined.get(), root->output_schema, aliases_));
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->predicate = std::move(combined);
    filter->output_schema = root->output_schema;
    filter->est_rows = std::max(root->est_rows * sel, 1.0);
    filter->children.push_back(std::move(root));
    root = std::move(filter);
  }
  return root;
}

namespace {

/// Replaces aggregate calls and group-key-equal subtrees in `expr` with
/// references to the aggregate node's output columns ($aN / $gN).
void RewriteAggRefs(ExprPtr* expr, const std::vector<std::string>& group_texts,
                    std::vector<const Expr*>* agg_nodes,
                    std::vector<ExprPtr>* agg_clones) {
  std::string text = (*expr)->ToString();
  for (size_t g = 0; g < group_texts.size(); ++g) {
    if (text == group_texts[g]) {
      *expr = Expr::Column("", "$g" + std::to_string(g));
      return;
    }
  }
  if ((*expr)->IsAggregateCall()) {
    // Dedupe by text.
    for (size_t i = 0; i < agg_nodes->size(); ++i) {
      if ((*agg_nodes)[i]->ToString() == text) {
        *expr = Expr::Column("", "$a" + std::to_string(i));
        return;
      }
    }
    agg_clones->push_back((*expr)->Clone());
    agg_nodes->push_back(agg_clones->back().get());
    *expr = Expr::Column("", "$a" + std::to_string(agg_nodes->size() - 1));
    return;
  }
  for (ExprPtr& arg : (*expr)->args) {
    RewriteAggRefs(&arg, group_texts, agg_nodes, agg_clones);
  }
}

}  // namespace

Result<PlanPtr> Planner::SelectPlanner::AddAggregation(
    PlanPtr child, std::vector<SelectItem>* items, ExprPtr* having,
    std::vector<OrderItem>* order_by) {
  std::vector<std::string> group_texts;
  group_texts.reserve(stmt_.group_by.size());
  for (const ExprPtr& g : stmt_.group_by) group_texts.push_back(g->ToString());

  std::vector<const Expr*> agg_nodes;
  std::vector<ExprPtr> agg_clones;
  for (SelectItem& item : *items) {
    RewriteAggRefs(&item.expr, group_texts, &agg_nodes, &agg_clones);
  }
  if (*having != nullptr) {
    RewriteAggRefs(having, group_texts, &agg_nodes, &agg_clones);
  }
  for (OrderItem& item : *order_by) {
    RewriteAggRefs(&item.expr, group_texts, &agg_nodes, &agg_clones);
  }

  auto agg = std::make_unique<PlanNode>();
  double est_groups = 1.0;
  for (size_t g = 0; g < stmt_.group_by.size(); ++g) {
    ExprPtr key = stmt_.group_by[g]->Clone();
    RETURN_NOT_OK(BindExpr(key.get(), child->output_schema, aliases_));
    est_groups *= ExprDistinct(*key, child->output_schema);
    agg->output_schema.cols.push_back(
        ExecSchema::Col{"", "$g" + std::to_string(g),
                        InferType(*key, child->output_schema)});
    agg->group_keys.push_back(std::move(key));
  }
  est_groups = std::min(est_groups, std::max(child->est_rows, 1.0));
  for (size_t i = 0; i < agg_clones.size(); ++i) {
    const Expr& call = *agg_clones[i];
    AggSpec spec;
    spec.fn = call.fname;
    if (call.args.empty() ||
        (call.args.size() == 1 && call.args[0]->kind == ExprKind::kStar)) {
      spec.is_star = true;
      if (spec.fn != "count") {
        return Status::InvalidArgument(spec.fn, "(*) is not valid");
      }
    } else {
      spec.arg = call.args[0]->Clone();
      RETURN_NOT_OK(BindExpr(spec.arg.get(), child->output_schema, aliases_));
    }
    ColumnType out_type = ColumnType::kDouble;
    if (spec.fn == "count") {
      out_type = ColumnType::kInt;
    } else if (spec.arg != nullptr &&
               (spec.fn == "sum" || spec.fn == "min" || spec.fn == "max")) {
      out_type = InferType(*spec.arg, child->output_schema);
    }
    agg->output_schema.cols.push_back(
        ExecSchema::Col{"", "$a" + std::to_string(i), out_type});
    agg->aggs.push_back(std::move(spec));
  }

  bool hash_fits = est_groups <= options_.hash_agg_max_groups;
  agg->est_rows = stmt_.group_by.empty() ? 1.0 : est_groups;
  if (hash_fits || agg->group_keys.empty()) {
    agg->kind = PlanKind::kHashAggregate;
    agg->children.push_back(std::move(child));
  } else {
    agg->kind = PlanKind::kGroupAggregate;
    auto sort = std::make_unique<PlanNode>();
    sort->kind = PlanKind::kSort;
    sort->output_schema = child->output_schema;
    sort->est_rows = child->est_rows;
    for (const ExprPtr& k : agg->group_keys) {
      sort->sort_keys.push_back(k->Clone());
      sort->sort_desc.push_back(false);
    }
    sort->children.push_back(std::move(child));
    agg->children.push_back(std::move(sort));
  }

  PlanPtr root = std::move(agg);
  if (*having != nullptr) {
    ExprPtr pred = std::move(*having);
    RETURN_NOT_OK(BindExpr(pred.get(), root->output_schema, aliases_));
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->output_schema = root->output_schema;
    filter->est_rows = std::max(root->est_rows * 0.5, 1.0);
    filter->predicate = std::move(pred);
    filter->children.push_back(std::move(root));
    root = std::move(filter);
  }
  return root;
}

Result<PlanPtr> Planner::SelectPlanner::AddProjection(
    PlanPtr child, std::vector<SelectItem> items) {
  auto project = std::make_unique<PlanNode>();
  project->kind = PlanKind::kProject;
  project->est_rows = child->est_rows;
  for (SelectItem& item : items) {
    if (item.expr->kind == ExprKind::kStar) {
      const std::string& want = item.expr->table;
      for (const ExecSchema::Col& col : child->output_schema.cols) {
        if (col.name == "__rid" || col.name.starts_with("$")) continue;
        if (!want.empty() && col.table != want) continue;
        ExprPtr ref = Expr::Column(col.table, col.name);
        RETURN_NOT_OK(BindExpr(ref.get(), child->output_schema, aliases_));
        project->output_schema.cols.push_back(
            ExecSchema::Col{"", col.name, col.type});
        project->projections.push_back(std::move(ref));
      }
      continue;
    }
    RETURN_NOT_OK(BindExpr(item.expr.get(), child->output_schema, aliases_));
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == ExprKind::kColumnRef ? item.expr->column
                                                     : item.expr->ToString();
    }
    project->output_schema.cols.push_back(ExecSchema::Col{
        "", std::move(name), InferType(*item.expr, child->output_schema)});
    project->projections.push_back(std::move(item.expr));
  }
  if (project->projections.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  project->children.push_back(std::move(child));
  return project;
}

Result<PlanPtr> Planner::SelectPlanner::AddDistinct(PlanPtr child) {
  double est = 1.0;
  PlanNode* project = child.get();
  for (const ExprPtr& p : project->projections) {
    est *= ExprDistinct(*p, project->children.empty()
                                ? project->output_schema
                                : project->children[0]->output_schema);
  }
  est = std::min(est, std::max(child->est_rows, 1.0));
  if (est <= options_.hash_agg_max_groups) {
    // DISTINCT via hash aggregation over all output columns.
    auto agg = std::make_unique<PlanNode>();
    agg->kind = PlanKind::kHashAggregate;
    agg->output_schema = child->output_schema;
    agg->est_rows = est;
    for (const ExecSchema::Col& col : child->output_schema.cols) {
      ExprPtr ref = Expr::Column(col.table, col.name);
      RETURN_NOT_OK(BindExpr(ref.get(), child->output_schema, {}));
      agg->group_keys.push_back(std::move(ref));
    }
    agg->children.push_back(std::move(child));
    return PlanPtr(std::move(agg));
  }
  // Sort + Unique.
  auto sort = std::make_unique<PlanNode>();
  sort->kind = PlanKind::kSort;
  sort->output_schema = child->output_schema;
  sort->est_rows = child->est_rows;
  for (const ExecSchema::Col& col : child->output_schema.cols) {
    ExprPtr ref = Expr::Column(col.table, col.name);
    RETURN_NOT_OK(BindExpr(ref.get(), child->output_schema, {}));
    sort->sort_keys.push_back(std::move(ref));
    sort->sort_desc.push_back(false);
  }
  sort->children.push_back(std::move(child));
  auto unique = std::make_unique<PlanNode>();
  unique->kind = PlanKind::kUnique;
  unique->output_schema = sort->output_schema;
  unique->est_rows = est;
  unique->children.push_back(std::move(sort));
  return PlanPtr(std::move(unique));
}

Result<PlanPtr> Planner::SelectPlanner::AddOrderByAndLimit(
    PlanPtr child, std::vector<OrderItem> order_by) {
  if (!order_by.empty()) {
    // Bind order expressions against the projection output; if a reference
    // does not exist there (ORDER BY over a non-projected column), extend
    // the projection with hidden columns and strip them afterwards.
    PlanNode* project =
        child->kind == PlanKind::kProject ? child.get() : nullptr;
    std::vector<ExprPtr> bound_keys;
    std::vector<bool> desc;
    size_t visible_cols = child->output_schema.cols.size();
    bool added_hidden = false;
    for (OrderItem& item : order_by) {
      ExprPtr key = item.expr->Clone();
      Status st = BindExpr(key.get(), child->output_schema, aliases_);
      if (!st.ok()) {
        if (project == nullptr) return st;
        // Hidden projection column.
        ExprPtr hidden = std::move(item.expr);
        RETURN_NOT_OK(BindExpr(hidden.get(),
                               project->children[0]->output_schema, aliases_));
        std::string name =
            "$ord" + std::to_string(project->projections.size());
        project->output_schema.cols.push_back(ExecSchema::Col{
            "", name,
            InferType(*hidden, project->children[0]->output_schema)});
        project->projections.push_back(std::move(hidden));
        key = Expr::Column("", name);
        RETURN_NOT_OK(BindExpr(key.get(), child->output_schema, {}));
        added_hidden = true;
      }
      bound_keys.push_back(std::move(key));
      desc.push_back(item.descending);
    }
    auto sort = std::make_unique<PlanNode>();
    sort->kind = PlanKind::kSort;
    sort->output_schema = child->output_schema;
    sort->est_rows = child->est_rows;
    sort->sort_keys = std::move(bound_keys);
    sort->sort_desc = std::move(desc);
    sort->children.push_back(std::move(child));
    child = std::move(sort);
    if (added_hidden) {
      // Final projection strips hidden sort columns.
      auto strip = std::make_unique<PlanNode>();
      strip->kind = PlanKind::kProject;
      strip->est_rows = child->est_rows;
      for (size_t i = 0; i < visible_cols; ++i) {
        const ExecSchema::Col& col = child->output_schema.cols[i];
        ExprPtr ref = Expr::Column(col.table, col.name);
        RETURN_NOT_OK(BindExpr(ref.get(), child->output_schema, {}));
        strip->output_schema.cols.push_back(col);
        strip->projections.push_back(std::move(ref));
      }
      strip->children.push_back(std::move(child));
      child = std::move(strip);
    }
  }
  if (stmt_.limit >= 0) {
    auto limit = std::make_unique<PlanNode>();
    limit->kind = PlanKind::kLimit;
    limit->limit = stmt_.limit;
    limit->output_schema = child->output_schema;
    limit->est_rows = std::min(child->est_rows,
                               static_cast<double>(stmt_.limit));
    limit->children.push_back(std::move(child));
    child = std::move(limit);
  }
  return child;
}

namespace {

/// The batch-extract implementation Sinew registers (see
/// sinew/extract_functions.cc). The hoist pass only runs when this name is
/// resolvable, so engine-only databases are unaffected.
constexpr std::string_view kBatchExtractFnName = "sinew_extract_many";

/// A document-extraction call the planner can fold into a kExtract node:
/// sinew_extract_chain[_bytes](<bound column>, <type tag>, <id>...). The
/// rewriter resolves every id literal at bind time, which is exactly what
/// makes the call hoistable — its per-row work is a pure function of the
/// source column.
bool IsHoistableChainCall(const Expr& e) {
  if (e.kind != ExprKind::kFunction) return false;
  if (e.fname != "sinew_extract_chain" &&
      e.fname != "sinew_extract_chain_bytes") {
    return false;
  }
  if (e.args.size() < 3) return false;
  if (e.args[0]->kind != ExprKind::kColumnRef || e.args[0]->bound_slot < 0) {
    return false;
  }
  for (size_t i = 1; i < e.args.size(); ++i) {
    if (e.args[i]->kind != ExprKind::kLiteral ||
        !e.args[i]->literal.is_int()) {
      return false;
    }
  }
  return true;
}

/// Collects pointers to every maximal hoistable chain-call subtree (calls
/// nested inside COALESCE etc. are found; the enclosing expression stays).
void CollectChainCallSites(ExprPtr* expr, std::vector<ExprPtr*>* sites) {
  if (IsHoistableChainCall(**expr)) {
    sites->push_back(expr);
    return;
  }
  for (ExprPtr& a : (*expr)->args) CollectChainCallSites(&a, sites);
}

ExtractTarget TargetFromCall(const Expr& call) {
  ExtractTarget t;
  t.source_slot = call.args[0]->bound_slot;
  t.type_tag = call.args[1]->literal.int_value();
  t.raw_bytes = call.fname == "sinew_extract_chain_bytes";
  for (size_t i = 2; i + 1 < call.args.size(); ++i) {
    t.prefix_ids.push_back(
        static_cast<uint32_t>(call.args[i]->literal.int_value()));
  }
  t.attr_id = static_cast<uint32_t>(call.args.back()->literal.int_value());
  return t;
}

/// A hoistable decode-to-value chain call over a scalar type tag — the only
/// calls whose comparisons a column strip's zone map can reason about (the
/// _bytes variant and object/array extractions have no strip columns).
bool IsZoneEligibleChainCall(const Expr& e) {
  if (!IsHoistableChainCall(e) || e.fname != "sinew_extract_chain") {
    return false;
  }
  const int64_t tag = e.args[1]->literal.int_value();
  return tag == static_cast<int64_t>(ValueType::kBool) ||
         tag == static_cast<int64_t>(ValueType::kInt) ||
         tag == static_cast<int64_t>(ValueType::kDouble) ||
         tag == static_cast<int64_t>(ValueType::kString);
}

bool IsComparisonOp(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

BinaryOp FlipComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

ZoneFilter ZoneFilterFromCall(const Expr& call, const ExecSchema& scan_schema,
                              BinaryOp op, const Datum& literal) {
  ExtractTarget t = TargetFromCall(call);
  ZoneFilter zf;
  zf.source_column = scan_schema.cols[static_cast<size_t>(t.source_slot)].name;
  zf.prefix_ids = std::move(t.prefix_ids);
  zf.attr_id = t.attr_id;
  zf.type_tag = t.type_tag;
  zf.op = op;
  zf.literal = literal;
  return zf;
}

/// Derives zone filters from one pushed-down conjunct. Recognized shapes:
/// chain-call-vs-literal comparisons (either side; the op flips when the
/// literal is on the left) and non-negated BETWEEN with literal bounds.
/// Anything else contributes nothing — a zone filter is a pure accelerator
/// whose only promise is "no row of a skipped strip satisfies the conjunct".
void CollectZoneFilters(const Expr& conjunct, const ExecSchema& scan_schema,
                        std::vector<ZoneFilter>* out) {
  if (conjunct.kind == ExprKind::kBinary && IsComparisonOp(conjunct.bop) &&
      conjunct.args.size() == 2) {
    const Expr& lhs = *conjunct.args[0];
    const Expr& rhs = *conjunct.args[1];
    if (IsZoneEligibleChainCall(lhs) && rhs.kind == ExprKind::kLiteral) {
      out->push_back(
          ZoneFilterFromCall(lhs, scan_schema, conjunct.bop, rhs.literal));
    } else if (IsZoneEligibleChainCall(rhs) &&
               lhs.kind == ExprKind::kLiteral) {
      out->push_back(ZoneFilterFromCall(
          rhs, scan_schema, FlipComparisonOp(conjunct.bop), lhs.literal));
    }
    return;
  }
  if (conjunct.kind == ExprKind::kBetween && !conjunct.negated &&
      conjunct.args.size() == 3 &&
      IsZoneEligibleChainCall(*conjunct.args[0]) &&
      conjunct.args[1]->kind == ExprKind::kLiteral &&
      conjunct.args[2]->kind == ExprKind::kLiteral) {
    out->push_back(ZoneFilterFromCall(*conjunct.args[0], scan_schema,
                                      BinaryOp::kGe,
                                      conjunct.args[1]->literal));
    out->push_back(ZoneFilterFromCall(*conjunct.args[0], scan_schema,
                                      BinaryOp::kLe,
                                      conjunct.args[2]->literal));
  }
}

/// Attaches zone filters to every base scan whose pushed-down filter holds
/// chain-call comparisons. Runs before extraction hoisting, while those
/// conjuncts still live in the scan filter as literal calls; the zone
/// filters stay on the scan either way, because strip skipping happens
/// there regardless of where the conjunct is ultimately evaluated.
void AttachZoneFiltersToScans(PlanNode* node) {
  if (node->kind == PlanKind::kSeqScan && node->scan_filter != nullptr &&
      node->table != nullptr) {
    for (const ExprPtr& part : SplitConjuncts(*node->scan_filter)) {
      CollectZoneFilters(*part, node->output_schema, &node->zone_filters);
    }
  }
  for (PlanPtr& child : node->children) AttachZoneFiltersToScans(child.get());
}

}  // namespace

// Post-pass: fold repeated document-extraction calls over one scan into
// kExtract nodes — predicate attributes into one node below the rebuilt
// filter (predicates and projections of the same attribute share that
// decode), projection-only attributes into one node above it (rows the
// filter drops never pay for them). Only pipelines capped by a Project or
// Aggregate are rewritten — their output schemas hide the appended columns
// from everything upstream.
void Planner::SelectPlanner::HoistBatchedExtraction(PlanPtr* node) const {
  PlanNode& n = **node;
  if ((n.kind == PlanKind::kProject || n.kind == PlanKind::kHashAggregate ||
       n.kind == PlanKind::kGroupAggregate) &&
      n.children.size() == 1) {
    TryHoistBatchedExtraction(&n);
  }
  for (PlanPtr& child : n.children) HoistBatchedExtraction(&child);
}

void Planner::SelectPlanner::TryHoistBatchedExtraction(PlanNode* cap) const {
  // Walk down through schema-preserving streaming nodes to a base scan.
  std::vector<PlanNode*> mid;
  PlanPtr* slot = &cap->children[0];
  while (((*slot)->kind == PlanKind::kFilter ||
          (*slot)->kind == PlanKind::kSort ||
          (*slot)->kind == PlanKind::kUnique ||
          (*slot)->kind == PlanKind::kLimit) &&
         (*slot)->children.size() == 1) {
    mid.push_back(slot->get());
    slot = &(*slot)->children[0];
  }
  if ((*slot)->kind != PlanKind::kSeqScan) return;
  PlanNode* scan = slot->get();
  // The scan's __rid pseudo-column lets the extract nodes map each row back
  // to its slot in the table's columnar segment (strips appended later keep
  // its position, so one resolution serves both nodes).
  int rid_slot = -1;
  for (size_t i = 0; i < scan->output_schema.cols.size(); ++i) {
    if (scan->output_schema.cols[i].name == "__rid") {
      rid_slot = static_cast<int>(i);
      break;
    }
  }

  // Conjuncts of the pushed-down scan filter that contain extraction calls
  // must move above the extract node; the rest stay pushed down.
  std::vector<ExprPtr> keep, moved;
  if (scan->scan_filter != nullptr) {
    std::vector<ExprPtr> parts = SplitConjuncts(*scan->scan_filter);
    for (ExprPtr& part : parts) {
      std::vector<ExprPtr*> in_part;
      CollectChainCallSites(&part, &in_part);
      (in_part.empty() ? keep : moved).push_back(std::move(part));
    }
  }

  // Sites referenced by a predicate must be extracted below the rebuilt
  // filter; sites referenced only by sort keys or the cap are extracted
  // above it, so rows the filter drops never pay for projection-only
  // attributes (SELECT * behind a selective virtual predicate would
  // otherwise decode the whole wide schema for every row).
  std::vector<ExprPtr*> below_sites, above_sites;
  for (ExprPtr& part : moved) CollectChainCallSites(&part, &below_sites);
  for (PlanNode* m : mid) {
    if (m->kind == PlanKind::kFilter && m->predicate != nullptr) {
      CollectChainCallSites(&m->predicate, &below_sites);
    }
    for (ExprPtr& k : m->sort_keys) CollectChainCallSites(&k, &above_sites);
  }
  if (cap->kind == PlanKind::kProject) {
    for (ExprPtr& p : cap->projections) {
      CollectChainCallSites(&p, &above_sites);
    }
  } else {
    for (ExprPtr& k : cap->group_keys) CollectChainCallSites(&k, &above_sites);
    for (AggSpec& a : cap->aggs) {
      if (a.arg != nullptr) CollectChainCallSites(&a.arg, &above_sites);
    }
  }
  // A lone call gains nothing from batching (one decode either way) and
  // would pay an extra operator hop; leave it on the scalar UDF path.
  if (below_sites.size() + above_sites.size() < 2) return;

  // A lone predicate site decodes once per row either way and is cheapest
  // evaluated inside the scan, where dropped rows are never materialized
  // through the extra operator hop. Hoist a predicate group only when it
  // batches at least two call sites into one decode.
  if (below_sites.size() < 2) {
    below_sites.clear();
    moved.clear();  // conjuncts stay in the scan filter, on the chain path
  }

  // Dedupe call sites by structural equality. A site that appears in both
  // a predicate and the projection lands in the below group: predicate and
  // projection then share one decode through the same output column.
  std::vector<ExprPtr> below_templates, above_templates;
  std::vector<std::string> below_texts, above_texts;
  for (ExprPtr* site : below_sites) {
    std::string text = (*site)->ToString();
    if (std::find(below_texts.begin(), below_texts.end(), text) ==
        below_texts.end()) {
      below_texts.push_back(std::move(text));
      below_templates.push_back((*site)->Clone());
    }
  }

  // Above-group sites whose text matches a predicate target reuse its
  // output column for free. A single remaining fresh site stays on the
  // chain path for the same lone-site reason; two or more batch into one
  // decode per filter-surviving row.
  std::vector<ExprPtr*> shared_above, fresh_above;
  for (ExprPtr* site : above_sites) {
    bool is_shared = std::find(below_texts.begin(), below_texts.end(),
                               (*site)->ToString()) != below_texts.end();
    (is_shared ? shared_above : fresh_above).push_back(site);
  }
  const bool hoist_above = fresh_above.size() >= 2;
  if (below_sites.empty() && !hoist_above) return;
  if (hoist_above) {
    for (ExprPtr* site : fresh_above) {
      std::string text = (*site)->ToString();
      if (std::find(above_texts.begin(), above_texts.end(), text) ==
          above_texts.end()) {
        above_texts.push_back(std::move(text));
        above_templates.push_back((*site)->Clone());
      }
    }
  }

  // call text -> (output slot, column name), across both extract nodes.
  std::map<std::string, std::pair<size_t, std::string>> out_by_text;
  size_t next_rank = 0;
  // Builds one kExtract node appending the group's targets to in_schema.
  // Targets are ordered by (source, prefix chain, attr id): the
  // BatchExtractFn contract that lets the implementation decode each source
  // once and merge-join all wanted ids in a single ascending pass.
  auto make_extract = [&](std::vector<ExprPtr>* templates,
                          std::vector<std::string>* texts,
                          const ExecSchema& in_schema,
                          double est_rows) -> PlanPtr {
    std::vector<ExtractTarget> targets;
    targets.reserve(templates->size());
    for (const ExprPtr& t : *templates) targets.push_back(TargetFromCall(*t));
    std::vector<size_t> order(templates->size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const ExtractTarget& ta = targets[a];
      const ExtractTarget& tb = targets[b];
      if (ta.source_slot != tb.source_slot) {
        return ta.source_slot < tb.source_slot;
      }
      if (ta.prefix_ids != tb.prefix_ids) {
        return ta.prefix_ids < tb.prefix_ids;
      }
      if (ta.attr_id != tb.attr_id) return ta.attr_id < tb.attr_id;
      return ta.raw_bytes < tb.raw_bytes;
    });
    auto extract = std::make_unique<PlanNode>();
    extract->kind = PlanKind::kExtract;
    extract->extract_fn = std::string(kBatchExtractFnName);
    extract->extract_table = scan->table;
    extract->extract_rid_slot = rid_slot;
    extract->output_schema = in_schema;
    extract->est_rows = est_rows;
    for (size_t i : order) {
      std::string name = "$x" + std::to_string(next_rank++);
      out_by_text[(*texts)[i]] = {extract->output_schema.cols.size(), name};
      extract->output_schema.cols.push_back(ExecSchema::Col{
          "", std::move(name), InferType(*(*templates)[i],
                                         scan->output_schema)});
      extract->extract_targets.push_back(std::move(targets[i]));
    }
    return extract;
  };

  // Rebuild the pushed-down filter and its projection pushdown: columns a
  // moved conjunct needed (the reservoir in particular) shift from the
  // filter phase to the output phase, so the decoded set is unchanged.
  if (!moved.empty()) {
    std::set<size_t> decoded(scan->scan_filter_cols.begin(),
                             scan->scan_filter_cols.end());
    decoded.insert(scan->scan_output_cols.begin(),
                   scan->scan_output_cols.end());
    scan->scan_filter =
        keep.empty() ? nullptr : CombineConjuncts(std::move(keep));
    std::set<size_t> filter_cols;
    if (scan->scan_filter != nullptr) {
      std::vector<const Expr*> refs;
      scan->scan_filter->CollectColumnRefs(&refs);
      for (const Expr* ref : refs) {
        if (ref->bound_slot >= 0) {
          filter_cols.insert(static_cast<size_t>(ref->bound_slot));
        }
      }
    }
    for (size_t col : filter_cols) decoded.erase(col);
    scan->scan_filter_cols.assign(filter_cols.begin(), filter_cols.end());
    scan->scan_output_cols.assign(decoded.begin(), decoded.end());
  }

  // Build both nodes up front (the above node's input schema includes the
  // below node's outputs), then swap call sites while the moved conjuncts
  // are still intact, then splice.
  PlanPtr below_node, above_node;
  if (!below_templates.empty()) {
    below_node = make_extract(&below_templates, &below_texts,
                              scan->output_schema, scan->est_rows);
  }
  if (!above_templates.empty()) {
    above_node = make_extract(
        &above_templates, &above_texts,
        below_node ? below_node->output_schema : scan->output_schema,
        scan->est_rows);
  }

  // Swap every call site for a reference to its extract output column.
  // Below-group outputs flow through the filter and the above node, so a
  // projection referencing a predicate attribute reuses the below decode.
  auto swap_sites = [&](std::vector<ExprPtr*>* sites) {
    for (ExprPtr* site : *sites) {
      const auto& out = out_by_text[(*site)->ToString()];
      ExprPtr ref = Expr::Column("", out.second);
      ref->bound_slot = static_cast<int>(out.first);
      *site = std::move(ref);
    }
  };
  swap_sites(&below_sites);
  swap_sites(&shared_above);
  if (hoist_above) swap_sites(&fresh_above);

  // Splice: scan -> extract(predicate attrs) [-> filter with the moved
  // conjuncts] [-> extract(projection-only attrs)], and widen the schemas
  // of the pass-through nodes above (rows now carry the appended columns up
  // to the cap, whose own output schema hides them).
  PlanPtr spliced = std::move(*slot);
  if (below_node) {
    below_node->children.push_back(std::move(spliced));
    spliced = std::move(below_node);
  }
  if (!moved.empty()) {
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->predicate = CombineConjuncts(std::move(moved));
    filter->output_schema = spliced->output_schema;
    filter->est_rows = spliced->est_rows;
    filter->children.push_back(std::move(spliced));
    spliced = std::move(filter);
  }
  if (above_node) {
    above_node->children.push_back(std::move(spliced));
    spliced = std::move(above_node);
  }

  for (PlanNode* m : mid) m->output_schema = spliced->output_schema;
  *slot = std::move(spliced);

  // Deferred-bytes pushdown: a serialized source column whose decoded bytes
  // feed *only* the hoisted extract targets can skip its per-row decode
  // whenever the table's columnar segment serves every one of those targets
  // (the scan checks at runtime; see exec.cc). Candidate positions come
  // from the extract nodes just spliced in; a position is disqualified if
  // anything else still reads the column — the pushed-down scan filter, the
  // rebuilt mid-pipeline filter, sort keys, the cap's own expressions — or
  // if a DISTINCT sits in the chain (it compares entire rows), or if a
  // raw-bytes target wants the serialized form itself.
  bool lazy_ok = true;
  for (PlanNode* m : mid) {
    if (m->kind == PlanKind::kUnique) lazy_ok = false;
  }
  if (cap->kind == PlanKind::kUnique) lazy_ok = false;
  if (lazy_ok) {
    std::vector<const Expr*> refs;
    auto collect = [&refs](const ExprPtr& e) {
      if (e != nullptr) e->CollectColumnRefs(&refs);
    };
    for (const ExprPtr& p : cap->projections) collect(p);
    for (const ExprPtr& k : cap->group_keys) collect(k);
    for (const AggSpec& a : cap->aggs) collect(a.arg);
    for (PlanNode* m : mid) {
      collect(m->predicate);
      for (const ExprPtr& k : m->sort_keys) collect(k);
    }
    std::map<int, std::vector<ExtractTarget>> candidates;
    std::set<int> disqualified;
    for (PlanNode* n = slot->get(); n != scan;
         n = n->children[0].get()) {
      if (n->kind == PlanKind::kFilter) collect(n->predicate);
      if (n->kind != PlanKind::kExtract) continue;
      for (const ExtractTarget& t : n->extract_targets) {
        if (t.source_slot < 0) continue;
        if (t.raw_bytes) disqualified.insert(t.source_slot);
        candidates[t.source_slot].push_back(t);
      }
    }
    collect(scan->scan_filter);
    for (const Expr* ref : refs) {
      if (ref->bound_slot >= 0) disqualified.insert(ref->bound_slot);
    }
    for (auto& [pos, targets] : candidates) {
      if (disqualified.count(pos) != 0) continue;
      LazyScanSource source;
      source.output_pos = pos;
      source.targets = std::move(targets);
      scan->lazy_sources.push_back(std::move(source));
    }
  }
}

// A scan → filter → project pipeline: the plan shape Gather workers can run
// independently over disjoint morsels (one base table, no blocking state).
bool Planner::SelectPlanner::IsPipelineChain(const PlanNode& node) {
  if (node.kind == PlanKind::kSeqScan) return true;
  if ((node.kind == PlanKind::kFilter || node.kind == PlanKind::kProject ||
       node.kind == PlanKind::kExtract) &&
      node.children.size() == 1) {
    return IsPipelineChain(*node.children[0]);
  }
  return false;
}

int Planner::SelectPlanner::ParallelDegreeFor(const PlanNode& chain) const {
  const PlanNode* leaf = &chain;
  while (!leaf->children.empty()) leaf = leaf->children[0].get();
  auto it = table_rows_by_alias_.find(leaf->alias);
  double rows = it != table_rows_by_alias_.end() ? it->second : 0.0;
  // Each worker should have at least parallel_min_rows rows to chew on;
  // otherwise fan-out overhead dominates and the pipeline stays serial.
  double workers = std::ceil(rows / std::max(options_.parallel_min_rows, 1.0));
  return static_cast<int>(
      std::min(static_cast<double>(options_.parallelism), workers));
}

// Post-pass: wrap every maximal parallelizable subtree in a Gather node.
// Two shapes qualify — a bare scan pipeline (streaming merge) and a hash
// aggregate directly over one (per-worker partial aggregation merged at the
// barrier). Everything else recurses, so e.g. both join inputs or the
// pipeline under a Sort still go parallel.
void Planner::SelectPlanner::ParallelizePlan(PlanPtr* node) const {
  PlanNode& n = **node;
  const PlanNode* chain = nullptr;
  if (n.kind == PlanKind::kHashAggregate && n.children.size() == 1 &&
      IsPipelineChain(*n.children[0])) {
    chain = n.children[0].get();
  } else if (IsPipelineChain(n)) {
    chain = &n;
  }
  if (chain != nullptr) {
    int degree = ParallelDegreeFor(*chain);
    if (degree > 1) {
      auto gather = std::make_unique<PlanNode>();
      gather->kind = PlanKind::kGather;
      gather->output_schema = n.output_schema;
      gather->est_rows = n.est_rows;
      gather->parallel_degree = degree;
      gather->children.push_back(std::move(*node));
      *node = std::move(gather);
      return;
    }
    if (chain == &n) return;  // too small; nothing beneath to parallelize
  }
  for (PlanPtr& child : n.children) ParallelizePlan(&child);
}

Result<PlanPtr> Planner::SelectPlanner::Plan() {
  RETURN_NOT_OK(BuildScans());
  RETURN_NOT_OK(CollectColumnUsage());
  ASSIGN_OR_RETURN(PlanPtr root, BuildJoinTree());

  // Clone the mutable pieces of the statement.
  std::vector<SelectItem> items;
  for (const SelectItem& item : stmt_.items) {
    SelectItem copy;
    copy.expr = item.expr->Clone();
    copy.alias = item.alias;
    items.push_back(std::move(copy));
  }
  ExprPtr having = stmt_.having != nullptr ? stmt_.having->Clone() : nullptr;
  std::vector<OrderItem> order_by;
  for (const OrderItem& item : stmt_.order_by) {
    OrderItem copy;
    copy.expr = item.expr->Clone();
    copy.descending = item.descending;
    order_by.push_back(std::move(copy));
  }

  bool has_agg = !stmt_.group_by.empty() || having != nullptr;
  for (const SelectItem& item : items) {
    if (item.expr->ContainsAggregate()) has_agg = true;
  }
  for (const OrderItem& item : order_by) {
    if (item.expr->ContainsAggregate()) has_agg = true;
  }

  if (has_agg) {
    ASSIGN_OR_RETURN(root, AddAggregation(std::move(root), &items, &having,
                                          &order_by));
  }
  ASSIGN_OR_RETURN(root, AddProjection(std::move(root), std::move(items)));
  if (stmt_.distinct) {
    ASSIGN_OR_RETURN(root, AddDistinct(std::move(root)));
  }
  ASSIGN_OR_RETURN(root,
                   AddOrderByAndLimit(std::move(root), std::move(order_by)));
  FoldPlanConstants(root.get());
  AttachZoneFiltersToScans(root.get());
  if (options_.enable_batched_extraction && udfs_ != nullptr &&
      udfs_->FindBatchExtract(kBatchExtractFnName) != nullptr) {
    HoistBatchedExtraction(&root);
  }
  if (options_.parallelism > 1) ParallelizePlan(&root);
  RefreshPlanSlotCaches(root.get());
  if (options_.enable_bytecode) CompilePlanPrograms(root.get(), udfs_);
  return root;
}

Result<PlanPtr> Planner::PlanSelect(const SelectStatement& stmt) const {
  static metrics::Counter* plans_total =
      metrics::GetCounter("planner.plans_total");
  static metrics::Counter* plan_ns_total =
      metrics::GetCounter("planner.plan_ns_total");
  const uint64_t start = metrics::NowNanos();
  SelectPlanner planner(catalog_, udfs_, options_, stmt);
  Result<PlanPtr> plan = planner.Plan();
  plans_total->Increment();
  plan_ns_total->Add(metrics::NowNanos() - start);
  return plan;
}

}  // namespace sinew::engine
