// Cost-based planner.
//
// The statistics dependence is the point (paper Section 3.1.1 / Table 2):
// predicates and grouping keys that are plain columns with ANALYZE statistics
// get real selectivity and distinct-count estimates; anything routed through
// a UDF (i.e. Sinew virtual-column extraction, or the jsontext baseline's
// parse-per-call functions) is opaque and falls back to the fixed default of
// `default_udf_rows` rows — the "200 rows out of 10 million" behaviour the
// paper observes in Postgres. Plan-shape decisions (hash vs. sort
// aggregation, join order, hash vs. merge join) then flip with column
// materialization exactly as in the paper.

#ifndef SINEW_ENGINE_PLANNER_H_
#define SINEW_ENGINE_PLANNER_H_

#include <memory>

#include "common/result.h"
#include "engine/catalog.h"
#include "engine/plan.h"
#include "engine/statement.h"
#include "engine/udf.h"

namespace sinew::engine {

struct PlannerOptions {
  /// Fixed row estimate for predicates the optimizer has no statistics for
  /// (UDF calls over the column reservoir). The paper reports Postgres
  /// assuming 200 rows.
  double default_udf_rows = 200;
  /// Distinct-count default for stat-less grouping/join keys.
  double default_udf_distinct = 200;
  /// Fallback selectivities when a column has no ANALYZE statistics.
  double default_eq_selectivity = 0.005;
  double default_range_selectivity = 1.0 / 3.0;
  double default_like_selectivity = 0.05;
  /// work_mem proxies: estimated group/build cardinalities beyond these make
  /// the planner prefer sort-based aggregation / merge join, mirroring
  /// Postgres's memory-bounded plan choices.
  double hash_agg_max_groups = 100000;
  double hash_join_max_build_rows = 1000000;
  /// Intra-query parallelism: maximum Gather degree. 1 keeps plans serial.
  int parallelism = 1;
  /// Batched-extraction hoist: when a pipeline evaluates two or more
  /// document-extraction calls over the same scan, fold them into kExtract
  /// nodes — predicate attributes below the rebuilt filter, projection-only
  /// attributes above it — so each group shares one reservoir decode.
  /// Requires a registered batch-extract function; no-op otherwise.
  /// Off restores the per-attribute UDF path (differential testing).
  bool enable_batched_extraction = true;
  /// Parallelization threshold: a scan pipeline goes parallel only when its
  /// base table has at least this many rows per worker, so the chosen degree
  /// is min(parallelism, ceil(rows / parallel_min_rows)).
  double parallel_min_rows = 8192;
  /// Compile filter predicates, scan filters and projections to postfix
  /// bytecode (engine/bytecode.h) executed over RowBatch columns. Runs as
  /// the last planning pass; expressions the compiler cannot handle keep
  /// the tree-walk evaluator. Off restores pure tree walking (differential
  /// testing).
  bool enable_bytecode = true;
};

class Planner {
 public:
  Planner(Catalog* catalog, const UdfRegistry* udfs,
          PlannerOptions options = {})
      : catalog_(catalog), udfs_(udfs), options_(options) {}

  /// Builds a physical plan for a SELECT.
  Result<PlanPtr> PlanSelect(const SelectStatement& stmt) const;

 private:
  class SelectPlanner;

  Catalog* catalog_;
  const UdfRegistry* udfs_;
  PlannerOptions options_;
};

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_PLANNER_H_
