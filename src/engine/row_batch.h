// RowBatch: the unit of work on the vectorized execution path.
//
// A batch holds up to ExecOptions.batch_size rows in column-major order:
// cols[c][r] is column c of physical row r. The selection vector `sel` lists
// the physical rows that are logically alive, in ascending order — filters
// shrink it instead of compacting the columns, so a predicate pass touches
// only the selection vector and downstream operators skip dead lanes for
// free. Column vectors are reused across batches (Reset clears without
// freeing), so the steady-state pipeline allocates nothing per batch.
//
// The `tags` sidecar carries per-column, per-batch type evidence for the
// bytecode VM's monomorphic kernels: a column proven to hold exactly one
// value kind (plus NULLs) for the whole batch gets a ColTag with a null
// bitmap and the raw values rebucketed into a dense int64/double/bool array,
// so kernel loops run over 8-byte strides with no per-lane Datum kind
// dispatch. Tags are a pure cache over `cols` — producers seed them
// (SinewExtract from strip metadata, the VM from a one-pass profile) and
// every mutation of the column data must invalidate them (Reset, AppendRow
// and MoveRow do; operators that write `cols` directly are responsible for
// their own columns).

#ifndef SINEW_ENGINE_ROW_BATCH_H_
#define SINEW_ENGINE_ROW_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/datum.h"

namespace sinew::engine {

/// Batch-scoped type evidence for one column. `kUnknown` means "not yet
/// profiled"; `kMixed` is a profiled negative (more than one non-null kind,
/// or a kind without a kernel) cached so the batch is never re-scanned.
struct ColTag {
  enum class Type : uint8_t { kUnknown = 0, kMixed, kInt, kDouble, kBool, kText };
  Type type = Type::kUnknown;
  bool has_nulls = false;
  /// Bit r set = physical row r is NULL. Sized (size+63)/64 when typed.
  std::vector<uint64_t> nulls;
  /// Row-dense raw values (NULL rows hold zero), one array per proven type;
  /// kText keeps no raw copy — string kernels read the Datum column.
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<uint8_t> bools;

  /// True when the column is proven monomorphic (kernel-eligible).
  bool typed() const { return type >= Type::kInt; }
  bool IsNull(uint32_t r) const {
    return has_nulls && ((nulls[r >> 6] >> (r & 63)) & 1) != 0;
  }
};

struct RowBatch {
  /// Column-major values; every column has `size` entries.
  std::vector<std::vector<Datum>> cols;
  /// Physical row indices that are logically alive, ascending.
  std::vector<uint32_t> sel;
  /// Physical row count (appended rows, dead or alive).
  size_t size = 0;

  /// Deferred-bytes contract between a scan and the extract above it: when
  /// `lazy_seg` is non-null, rows whose __rid is below `lazy_limit` may
  /// carry NULL instead of the decoded reservoir bytes in the columns named
  /// by `lazy_cols` (scan output positions). The scan only defers when the
  /// columnar segment identified by `lazy_seg` can serve every extract
  /// target sourced from those columns; the extract verifies it bound the
  /// same segment (pointer identity + unchanged mutation version) before
  /// serving, and aborts the query for a replan on any mismatch.
  const void* lazy_seg = nullptr;
  uint64_t lazy_limit = 0;
  std::vector<int> lazy_cols;

  /// Per-column type tags, parallel to `cols` (may be shorter: untagged
  /// suffix). Mutable because profiling is a cache fill over logically-const
  /// column data; batches are single-owner, never profiled concurrently.
  mutable std::vector<ColTag> tags;

  size_t num_cols() const { return cols.size(); }
  /// Logically alive rows.
  size_t active() const { return sel.size(); }

  /// The tag for column `c` if it has been profiled or seeded, else nullptr.
  const ColTag* TagFor(size_t c) const {
    if (c >= tags.size() || tags[c].type == ColTag::Type::kUnknown) {
      return nullptr;
    }
    return &tags[c];
  }

  /// Drops every tag (column data is about to change).
  void InvalidateTags() {
    if (!tags.empty()) tags.clear();
  }

  /// Drops column `c`'s tag only (a single column is about to change).
  void InvalidateTag(size_t c) {
    if (c < tags.size()) tags[c] = ColTag{};
  }

  /// One-pass type profile of column `c`: proves it monomorphic (one
  /// non-null kind) for this batch, filling the null bitmap and the raw
  /// value array, or caches kMixed so the scan never repeats. `want` seeds
  /// the expected type when the producer already knows it (strip-served
  /// columns) — the pass then only validates, it never classifies. The
  /// result is cached; returns the tag (never nullptr for a valid column).
  const ColTag* ProfileColumn(size_t c,
                              ColTag::Type want = ColTag::Type::kUnknown) const {
    if (c >= cols.size()) return nullptr;
    if (tags.size() < cols.size()) tags.resize(cols.size());
    ColTag& t = tags[c];
    if (t.type != ColTag::Type::kUnknown) return &t;
    const std::vector<Datum>& col = cols[c];
    t.has_nulls = false;
    t.nulls.assign((size + 63) / 64, 0);
    t.ints.clear();
    t.doubles.clear();
    t.bools.clear();
    ColTag::Type ty = want;
    for (size_t r = 0; r < size; ++r) {
      const Datum& d = col[r];
      if (d.is_null()) {
        t.nulls[r >> 6] |= uint64_t{1} << (r & 63);
        t.has_nulls = true;
        // Raw arrays stay row-dense: NULL rows hold a zero placeholder.
        switch (ty) {
          case ColTag::Type::kInt: t.ints.push_back(0); break;
          case ColTag::Type::kDouble: t.doubles.push_back(0); break;
          case ColTag::Type::kBool: t.bools.push_back(0); break;
          default: break;  // leading nulls backfill when the type is known
        }
        continue;
      }
      ColTag::Type m;
      switch (d.kind()) {
        case Datum::Kind::kInt: m = ColTag::Type::kInt; break;
        case Datum::Kind::kDouble: m = ColTag::Type::kDouble; break;
        case Datum::Kind::kBool: m = ColTag::Type::kBool; break;
        case Datum::Kind::kText: m = ColTag::Type::kText; break;
        default: m = ColTag::Type::kMixed; break;  // kBytes: no kernel
      }
      if (ty == ColTag::Type::kUnknown) {
        ty = m;
        // Backfill zero placeholders for the all-NULL prefix.
        if (ty == ColTag::Type::kInt) t.ints.assign(r, 0);
        if (ty == ColTag::Type::kDouble) t.doubles.assign(r, 0);
        if (ty == ColTag::Type::kBool) t.bools.assign(r, 0);
      }
      if (m != ty) {
        t = ColTag{};
        t.type = ColTag::Type::kMixed;
        return &t;
      }
      switch (ty) {
        case ColTag::Type::kInt: t.ints.push_back(d.int_value()); break;
        case ColTag::Type::kDouble: t.doubles.push_back(d.double_value()); break;
        case ColTag::Type::kBool:
          t.bools.push_back(d.bool_value() ? 1 : 0);
          break;
        default: break;  // kText: no raw copy
      }
    }
    // An all-NULL column is monomorphic under any type; kText avoids
    // allocating a raw array nobody will read.
    t.type = ty == ColTag::Type::kUnknown ? ColTag::Type::kText : ty;
    return &t;
  }

  /// Empties the batch and sets the column count, keeping the column
  /// vectors' capacity for reuse.
  void Reset(size_t num_columns) {
    cols.resize(num_columns);
    for (std::vector<Datum>& c : cols) c.clear();
    sel.clear();
    size = 0;
    lazy_seg = nullptr;
    lazy_limit = 0;
    lazy_cols.clear();
    tags.clear();
  }

  /// Appends one row (selected). On the first append the batch adopts the
  /// row's width, so row→batch adapters need not know the schema up front.
  void AppendRow(DatumRow&& row) {
    if (size == 0 && cols.size() != row.size()) {
      cols.assign(row.size(), {});
    }
    for (size_t c = 0; c < cols.size(); ++c) {
      cols[c].push_back(std::move(row[c]));
    }
    sel.push_back(static_cast<uint32_t>(size));
    ++size;
    InvalidateTags();
  }

  /// Moves physical row `r` out into `*out` (row r's cells are left
  /// moved-from; callers only move each selected lane once).
  void MoveRow(uint32_t r, DatumRow* out) {
    InvalidateTags();
    out->clear();
    out->reserve(cols.size());
    for (std::vector<Datum>& c : cols) out->push_back(std::move(c[r]));
  }

  /// Copies physical row `r` into `*out`.
  void CopyRow(uint32_t r, DatumRow* out) const {
    out->clear();
    out->reserve(cols.size());
    for (const std::vector<Datum>& c : cols) out->push_back(c[r]);
  }
};

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_ROW_BATCH_H_
