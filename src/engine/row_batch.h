// RowBatch: the unit of work on the vectorized execution path.
//
// A batch holds up to ExecOptions.batch_size rows in column-major order:
// cols[c][r] is column c of physical row r. The selection vector `sel` lists
// the physical rows that are logically alive, in ascending order — filters
// shrink it instead of compacting the columns, so a predicate pass touches
// only the selection vector and downstream operators skip dead lanes for
// free. Column vectors are reused across batches (Reset clears without
// freeing), so the steady-state pipeline allocates nothing per batch.

#ifndef SINEW_ENGINE_ROW_BATCH_H_
#define SINEW_ENGINE_ROW_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/datum.h"

namespace sinew::engine {

struct RowBatch {
  /// Column-major values; every column has `size` entries.
  std::vector<std::vector<Datum>> cols;
  /// Physical row indices that are logically alive, ascending.
  std::vector<uint32_t> sel;
  /// Physical row count (appended rows, dead or alive).
  size_t size = 0;

  /// Deferred-bytes contract between a scan and the extract above it: when
  /// `lazy_seg` is non-null, rows whose __rid is below `lazy_limit` may
  /// carry NULL instead of the decoded reservoir bytes in the columns named
  /// by `lazy_cols` (scan output positions). The scan only defers when the
  /// columnar segment identified by `lazy_seg` can serve every extract
  /// target sourced from those columns; the extract verifies it bound the
  /// same segment (pointer identity + unchanged mutation version) before
  /// serving, and aborts the query for a replan on any mismatch.
  const void* lazy_seg = nullptr;
  uint64_t lazy_limit = 0;
  std::vector<int> lazy_cols;

  size_t num_cols() const { return cols.size(); }
  /// Logically alive rows.
  size_t active() const { return sel.size(); }

  /// Empties the batch and sets the column count, keeping the column
  /// vectors' capacity for reuse.
  void Reset(size_t num_columns) {
    cols.resize(num_columns);
    for (std::vector<Datum>& c : cols) c.clear();
    sel.clear();
    size = 0;
    lazy_seg = nullptr;
    lazy_limit = 0;
    lazy_cols.clear();
  }

  /// Appends one row (selected). On the first append the batch adopts the
  /// row's width, so row→batch adapters need not know the schema up front.
  void AppendRow(DatumRow&& row) {
    if (size == 0 && cols.size() != row.size()) {
      cols.assign(row.size(), {});
    }
    for (size_t c = 0; c < cols.size(); ++c) {
      cols[c].push_back(std::move(row[c]));
    }
    sel.push_back(static_cast<uint32_t>(size));
    ++size;
  }

  /// Moves physical row `r` out into `*out` (row r's cells are left
  /// moved-from; callers only move each selected lane once).
  void MoveRow(uint32_t r, DatumRow* out) {
    out->clear();
    out->reserve(cols.size());
    for (std::vector<Datum>& c : cols) out->push_back(std::move(c[r]));
  }

  /// Copies physical row `r` into `*out`.
  void CopyRow(uint32_t r, DatumRow* out) const {
    out->clear();
    out->reserve(cols.size());
    for (const std::vector<Datum>& c : cols) out->push_back(c[r]);
  }
};

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_ROW_BATCH_H_
