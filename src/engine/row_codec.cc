#include "engine/row_codec.h"

#include "common/bytes.h"

namespace sinew::engine {

namespace {

Status CheckKind(const Datum& d, ColumnType type, size_t slot) {
  bool ok = false;
  switch (type) {
    case ColumnType::kBool:
      ok = d.is_bool();
      break;
    case ColumnType::kInt:
      ok = d.is_int();
      break;
    case ColumnType::kDouble:
      ok = d.is_double() || d.is_int();  // implicit widening on store
      break;
    case ColumnType::kText:
      ok = d.is_text();
      break;
    case ColumnType::kBytes:
      ok = d.is_bytes() || d.is_text();
      break;
  }
  if (!ok) {
    return Status::TypeError("datum kind does not match column type ",
                             ColumnTypeName(type), " at slot ", slot);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> EncodeRow(const Schema& schema, const DatumRow& row) {
  const size_t n = schema.num_slots();
  if (row.size() != n) {
    return Status::InvalidArgument("row has ", row.size(), " datums, schema ",
                                   n, " slots");
  }
  BufferWriter w(16 + n * 4);
  w.PutVarint(n);
  // Null bitmap: bit i set => slot i non-null.
  size_t bitmap_offset = w.size();
  for (size_t i = 0; i < (n + 7) / 8; ++i) w.PutU8(0);
  std::string bitmap((n + 7) / 8, '\0');
  for (size_t i = 0; i < n; ++i) {
    const Datum& d = row[i];
    const Column& col = schema.columns()[i];
    if (d.is_null() || col.dropped) continue;
    RETURN_NOT_OK(CheckKind(d, col.type, i));
    bitmap[i / 8] = static_cast<char>(bitmap[i / 8] | (1 << (i % 8)));
    switch (col.type) {
      case ColumnType::kBool:
        w.PutU8(d.bool_value() ? 1 : 0);
        break;
      case ColumnType::kInt:
        w.PutI64(d.int_value());
        break;
      case ColumnType::kDouble:
        w.PutDouble(d.AsDouble());
        break;
      case ColumnType::kText:
      case ColumnType::kBytes:
        w.PutLengthPrefixed(d.str());
        break;
    }
  }
  std::string out = w.Release();
  out.replace(bitmap_offset, bitmap.size(), bitmap);
  return out;
}

namespace {

struct RowHeader {
  size_t ncols;
  std::string_view bitmap;
};

Result<RowHeader> ReadHeader(BufferReader* r) {
  RowHeader h;
  ASSIGN_OR_RETURN(uint64_t ncols, r->ReadVarint());
  h.ncols = ncols;
  ASSIGN_OR_RETURN(h.bitmap, r->ReadBytes((ncols + 7) / 8));
  return h;
}

bool BitSet(std::string_view bitmap, size_t i) {
  return (static_cast<unsigned char>(bitmap[i / 8]) >> (i % 8)) & 1;
}

Result<Datum> ReadValue(ColumnType type, BufferReader* r) {
  switch (type) {
    case ColumnType::kBool: {
      ASSIGN_OR_RETURN(uint8_t b, r->ReadU8());
      return Datum::Bool(b != 0);
    }
    case ColumnType::kInt: {
      ASSIGN_OR_RETURN(int64_t v, r->ReadI64());
      return Datum::Int(v);
    }
    case ColumnType::kDouble: {
      ASSIGN_OR_RETURN(double v, r->ReadDouble());
      return Datum::Double(v);
    }
    case ColumnType::kText: {
      ASSIGN_OR_RETURN(std::string_view s, r->ReadLengthPrefixed());
      return Datum::Text(std::string(s));
    }
    case ColumnType::kBytes: {
      ASSIGN_OR_RETURN(std::string_view s, r->ReadLengthPrefixed());
      return Datum::Bytes(std::string(s));
    }
  }
  return Status::Internal("bad column type");
}

Status SkipValue(ColumnType type, BufferReader* r) {
  switch (type) {
    case ColumnType::kBool: {
      ASSIGN_OR_RETURN(uint8_t b, r->ReadU8());
      (void)b;
      return Status::OK();
    }
    case ColumnType::kInt:
    case ColumnType::kDouble: {
      ASSIGN_OR_RETURN(std::string_view s, r->ReadBytes(8));
      (void)s;
      return Status::OK();
    }
    case ColumnType::kText:
    case ColumnType::kBytes: {
      ASSIGN_OR_RETURN(std::string_view s, r->ReadLengthPrefixed());
      (void)s;
      return Status::OK();
    }
  }
  return Status::Internal("bad column type");
}

}  // namespace

Result<DatumRow> DecodeRow(const Schema& schema, std::string_view data) {
  BufferReader r(data);
  ASSIGN_OR_RETURN(RowHeader h, ReadHeader(&r));
  const size_t n = schema.num_slots();
  if (h.ncols > n) {
    return Status::Internal("row encodes ", h.ncols, " slots, schema has ", n);
  }
  DatumRow row(n);  // default-null
  for (size_t i = 0; i < h.ncols; ++i) {
    if (!BitSet(h.bitmap, i)) continue;
    ASSIGN_OR_RETURN(row[i], ReadValue(schema.columns()[i].type, &r));
  }
  return row;
}

Status DecodeRowSlots(const Schema& schema, std::string_view data,
                      const std::vector<size_t>& slots, DatumRow* row) {
  if (slots.empty()) return Status::OK();
  BufferReader r(data);
  ASSIGN_OR_RETURN(RowHeader h, ReadHeader(&r));
  size_t next = 0;  // index into `slots`
  const size_t last = slots.back();
  for (size_t i = 0; i < h.ncols && i <= last; ++i) {
    if (!BitSet(h.bitmap, i)) {
      if (i == slots[next]) {
        (*row)[i] = Datum::Null();
        if (++next == slots.size()) break;
      }
      continue;
    }
    if (i == slots[next]) {
      ASSIGN_OR_RETURN((*row)[i], ReadValue(schema.columns()[i].type, &r));
      if (++next == slots.size()) break;
    } else {
      RETURN_NOT_OK(SkipValue(schema.columns()[i].type, &r));
    }
  }
  // Slots beyond the encoded arity decode as NULL.
  for (; next < slots.size(); ++next) {
    if (slots[next] >= h.ncols) (*row)[slots[next]] = Datum::Null();
  }
  return Status::OK();
}

Result<Datum> DecodeRowColumn(const Schema& schema, std::string_view data,
                              size_t slot) {
  BufferReader r(data);
  ASSIGN_OR_RETURN(RowHeader h, ReadHeader(&r));
  if (slot >= h.ncols) return Datum::Null();
  if (!BitSet(h.bitmap, slot)) return Datum::Null();
  for (size_t i = 0; i < slot; ++i) {
    if (!BitSet(h.bitmap, i)) continue;
    RETURN_NOT_OK(SkipValue(schema.columns()[i].type, &r));
  }
  return ReadValue(schema.columns()[slot].type, &r);
}

}  // namespace sinew::engine
