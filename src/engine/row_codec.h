// Packed on-heap row encoding, in the spirit of a row-store tuple:
//
//   [varint ncols] [null bitmap, ceil(ncols/8) bytes] [values...]
//
// Values appear for non-null slots only, in slot order:
//   bool    1 byte
//   int     8-byte little-endian
//   double  8-byte little-endian
//   text    varint length + bytes
//   bytes   varint length + bytes
//
// The per-row ncols makes rows self-describing under schema evolution: a row
// encoded before AddColumn simply lacks the trailing slots, which decode as
// NULL — the property Sinew's incremental materializer depends on. Per the
// paper's Postgres rationale (Section 5), a NULL costs one bitmap bit, not
// column width.

#ifndef SINEW_ENGINE_ROW_CODEC_H_
#define SINEW_ENGINE_ROW_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "engine/datum.h"
#include "engine/schema.h"

namespace sinew::engine {

/// Encodes a row. `row.size()` must equal `schema.num_slots()`; datum kinds
/// must match column types (or be null).
Result<std::string> EncodeRow(const Schema& schema, const DatumRow& row);

/// Decodes a row into exactly `schema.num_slots()` datums; slots beyond the
/// encoded ncols come back NULL.
Result<DatumRow> DecodeRow(const Schema& schema, std::string_view data);

/// Decodes a single slot without materializing the whole row (O(slot) walk).
Result<Datum> DecodeRowColumn(const Schema& schema, std::string_view data,
                              size_t slot);

/// Projection-pushdown decode: fills only `slots` (ascending, unique) of
/// `row` (which must be pre-sized to schema.num_slots()); other slots are
/// left untouched. One sequential walk that stops after the last requested
/// slot and skips (without copying) everything in between.
Status DecodeRowSlots(const Schema& schema, std::string_view data,
                      const std::vector<size_t>& slots, DatumRow* row);

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_ROW_CODEC_H_
