// Table schemas. Columns can be appended at any time (Sinew materialization)
// and dropped logically (dematerialization): dropped columns stay in the
// schema vector as tombstones so previously encoded rows remain decodable,
// but they disappear from name lookup and from `SELECT *` expansion.

#ifndef SINEW_ENGINE_SCHEMA_H_
#define SINEW_ENGINE_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "engine/type.h"

namespace sinew::engine {

struct Column {
  std::string name;
  ColumnType type = ColumnType::kText;
  bool dropped = false;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  /// All physical column slots, including tombstones (decode order).
  const std::vector<Column>& columns() const { return columns_; }
  size_t num_slots() const { return columns_.size(); }

  /// Slot index for a live column name, if any.
  std::optional<size_t> FindColumn(std::string_view name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (!columns_[i].dropped && columns_[i].name == name) return i;
    }
    return std::nullopt;
  }

  /// Appends a live column; the name must not collide with a live column.
  Status AddColumn(Column column) {
    if (FindColumn(column.name).has_value()) {
      return Status::AlreadyExists("column ", column.name, " already exists");
    }
    columns_.push_back(std::move(column));
    return Status::OK();
  }

  /// Tombstones a live column.
  Status DropColumn(std::string_view name) {
    std::optional<size_t> slot = FindColumn(name);
    if (!slot.has_value()) {
      return Status::NotFound("column ", name, " does not exist");
    }
    columns_[*slot].dropped = true;
    return Status::OK();
  }

  /// Live slot indices, in declaration order (drives `SELECT *`).
  std::vector<size_t> LiveSlots() const {
    std::vector<size_t> out;
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (!columns_[i].dropped) out.push_back(i);
    }
    return out;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_SCHEMA_H_
