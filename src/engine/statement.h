// Parsed SQL statement representations.

#ifndef SINEW_ENGINE_STATEMENT_H_
#define SINEW_ENGINE_STATEMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/expr.h"
#include "engine/schema.h"

namespace sinew::engine {

struct TableRef {
  std::string table_name;
  std::string alias;  // defaults to table_name

  const std::string& effective_alias() const {
    return alias.empty() ? table_name : alias;
  }
};

struct SelectItem {
  ExprPtr expr;       // null when star
  std::string alias;  // output column name override
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // includes JOIN ... ON conditions, ANDed in
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit
};

struct CreateTableStatement {
  std::string table;
  std::vector<Column> columns;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;          // empty = schema order
  std::vector<std::vector<ExprPtr>> values;  // literal expressions
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;
};

struct AnalyzeStatement {
  std::string table;
};

enum class StatementKind {
  kSelect,
  kExplain,  // EXPLAIN <select>
  kCreateTable,
  kInsert,
  kUpdate,
  kDelete,
  kAnalyze,
};

struct Statement {
  StatementKind kind;
  /// EXPLAIN ANALYZE: execute the plan and annotate the printed tree with
  /// per-operator actual rows / loops / elapsed time. kExplain only.
  bool explain_analyze = false;
  std::unique_ptr<SelectStatement> select;  // kSelect / kExplain
  std::unique_ptr<CreateTableStatement> create_table;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<UpdateStatement> update;
  std::unique_ptr<DeleteStatement> del;
  std::unique_ptr<AnalyzeStatement> analyze;
};

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_STATEMENT_H_
