// Per-column statistics gathered by ANALYZE and consumed by the planner's
// selectivity estimation. The existence (or not) of these statistics is the
// mechanism behind the paper's Table 2: attributes hidden inside the column
// reservoir have no entry here, so the planner falls back to a fixed default
// row estimate.

#ifndef SINEW_ENGINE_STATS_H_
#define SINEW_ENGINE_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/datum.h"

namespace sinew::engine {

struct ColumnStats {
  uint64_t non_null_count = 0;
  uint64_t null_count = 0;
  /// Exact up to an internal cap, estimated beyond it.
  double ndistinct = 0;
  /// Numeric range (valid when has_minmax).
  bool has_minmax = false;
  double min = 0;
  double max = 0;
  /// Equi-depth histogram bounds over the sorted non-null values
  /// (numeric columns only); kHistogramBuckets+1 entries when present.
  std::vector<double> histogram;

  double null_fraction() const {
    uint64_t total = non_null_count + null_count;
    return total == 0 ? 0.0 : static_cast<double>(null_count) / total;
  }
};

struct TableStats {
  uint64_t row_count = 0;
  bool analyzed = false;
  std::map<std::string, ColumnStats> columns;

  const ColumnStats* Find(const std::string& column) const {
    auto it = columns.find(column);
    return it == columns.end() ? nullptr : &it->second;
  }
};

inline constexpr int kHistogramBuckets = 32;

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_STATS_H_
