#include "engine/table.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_set>

#include "engine/columnar.h"

namespace sinew::engine {

Status Table::AddColumn(Column column) {
  std::unique_lock lock(latch_);
  RETURN_NOT_OK(schema_.AddColumn(std::move(column)));
  BumpVersion();
  return Status::OK();
}

Status Table::DropColumn(std::string_view column) {
  std::unique_lock lock(latch_);
  RETURN_NOT_OK(schema_.DropColumn(column));
  // Strips are keyed by source column name; a drop (and possible later
  // re-add) could change what that name means, so detach conservatively.
  columnar_.reset();
  BumpVersion();
  return Status::OK();
}

Result<uint64_t> Table::AppendRow(const DatumRow& row) {
  std::unique_lock lock(latch_);
  ASSIGN_OR_RETURN(std::string encoded, EncodeRow(schema_, row));
  data_bytes_ += encoded.size();
  rows_.push_back(std::move(encoded));
  ++live_rows_;
  BumpVersion();
  return rows_.size() - 1;
}

uint64_t Table::RowSlotCount() const {
  std::shared_lock lock(latch_);
  return rows_.size();
}

uint64_t Table::LiveRowCount() const {
  std::shared_lock lock(latch_);
  return live_rows_;
}

bool Table::IsLive(uint64_t rid) const {
  std::shared_lock lock(latch_);
  return rid < rows_.size() && !rows_[rid].empty();
}

Result<DatumRow> Table::ReadRow(uint64_t rid) const {
  std::shared_lock lock(latch_);
  if (rid >= rows_.size() || rows_[rid].empty()) {
    return Status::NotFound("row ", rid, " not found in ", name_);
  }
  return DecodeRow(schema_, rows_[rid]);
}

Result<DatumRow> Table::ReadRowSlots(uint64_t rid,
                                     const std::vector<size_t>& slots) const {
  std::shared_lock lock(latch_);
  if (rid >= rows_.size() || rows_[rid].empty()) {
    return Status::NotFound("row ", rid, " not found in ", name_);
  }
  DatumRow row(schema_.num_slots());
  RETURN_NOT_OK(DecodeRowSlots(schema_, rows_[rid], slots, &row));
  return row;
}

Status Table::UpdateRow(uint64_t rid, const DatumRow& row) {
  std::unique_lock lock(latch_);
  if (rid >= rows_.size() || rows_[rid].empty()) {
    return Status::NotFound("row ", rid, " not found in ", name_);
  }
  // Detach the shredded segment before the covered row's bytes change:
  // readers snapshot the segment pointer under the shared latch, so they see
  // either the old segment with the old row bytes or no segment at all —
  // never a strip value disagreeing with the row it was shredded from.
  if (columnar_ != nullptr && rid < columnar_->row_count()) {
    columnar_.reset();
  }
  ASSIGN_OR_RETURN(std::string encoded, EncodeRow(schema_, row));
  data_bytes_ += encoded.size();
  data_bytes_ -= rows_[rid].size();
  rows_[rid] = std::move(encoded);
  BumpVersion();
  return Status::OK();
}

Status Table::DeleteRow(uint64_t rid) {
  std::unique_lock lock(latch_);
  if (rid >= rows_.size() || rows_[rid].empty()) {
    return Status::NotFound("row ", rid, " not found in ", name_);
  }
  data_bytes_ -= rows_[rid].size();
  rows_[rid].clear();
  --live_rows_;
  BumpVersion();
  return Status::OK();
}

Status Table::RestoreRawRow(std::string encoded) {
  std::unique_lock lock(latch_);
  if (!encoded.empty()) {
    RETURN_NOT_OK(DecodeRow(schema_, encoded).status());
    data_bytes_ += encoded.size();
    ++live_rows_;
  }
  rows_.push_back(std::move(encoded));
  BumpVersion();
  return Status::OK();
}

uint64_t Table::DataBytes() const {
  std::shared_lock lock(latch_);
  return data_bytes_;
}

namespace {

// Exact distinct counting up to a cap, then scaled estimation: the planner
// only needs order-of-magnitude fidelity.
class DistinctCounter {
 public:
  void Add(const Datum& d) {
    ++n_;
    if (saturated_) return;
    seen_.insert(d.Hash() * 0x9e3779b97f4a7c15ull + static_cast<int>(d.kind()));
    if (seen_.size() > kCap) {
      saturated_ = true;
      n_at_cap_ = n_;
    }
  }

  double Estimate() const {
    if (!saturated_) return static_cast<double>(seen_.size());
    // Saw more than kCap distinct hashes; assume distincts keep growing
    // linearly with data volume at the observed rate.
    return static_cast<double>(seen_.size()) *
           (static_cast<double>(n_) / std::max<uint64_t>(n_at_cap_, 1));
  }

 private:
  static constexpr size_t kCap = 1 << 20;
  std::unordered_set<uint64_t> seen_;
  uint64_t n_ = 0;
  uint64_t n_at_cap_ = 0;
  bool saturated_ = false;
};

}  // namespace

Status Table::Analyze() {
  std::unique_lock lock(latch_);
  TableStats stats;
  stats.analyzed = true;
  stats.row_count = live_rows_;
  const auto& columns = schema_.columns();
  std::vector<ColumnStats> col_stats(columns.size());
  std::vector<DistinctCounter> distinct(columns.size());
  std::vector<std::vector<double>> numeric_samples(columns.size());

  for (const std::string& encoded : rows_) {
    if (encoded.empty()) continue;
    ASSIGN_OR_RETURN(DatumRow row, DecodeRow(schema_, encoded));
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].dropped) continue;
      const Datum& d = row[i];
      if (d.is_null()) {
        ++col_stats[i].null_count;
        continue;
      }
      ++col_stats[i].non_null_count;
      distinct[i].Add(d);
      if (d.is_numeric()) {
        double v = d.AsDouble();
        if (!col_stats[i].has_minmax) {
          col_stats[i].has_minmax = true;
          col_stats[i].min = col_stats[i].max = v;
        } else {
          col_stats[i].min = std::min(col_stats[i].min, v);
          col_stats[i].max = std::max(col_stats[i].max, v);
        }
        numeric_samples[i].push_back(v);
      }
    }
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].dropped) continue;
    col_stats[i].ndistinct = distinct[i].Estimate();
    // Equi-depth histogram over numeric values.
    std::vector<double>& samples = numeric_samples[i];
    if (samples.size() >= kHistogramBuckets * 2) {
      std::sort(samples.begin(), samples.end());
      std::vector<double> bounds;
      bounds.reserve(kHistogramBuckets + 1);
      for (int b = 0; b <= kHistogramBuckets; ++b) {
        size_t idx = std::min(samples.size() - 1,
                              samples.size() * b / kHistogramBuckets);
        bounds.push_back(samples[idx]);
      }
      col_stats[i].histogram = std::move(bounds);
    }
    stats.columns[columns[i].name] = std::move(col_stats[i]);
  }
  stats_ = std::move(stats);
  return Status::OK();
}

TableStats Table::GetStats() const {
  std::shared_lock lock(latch_);
  return stats_;
}

}  // namespace sinew::engine
