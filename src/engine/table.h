// Table: an append-oriented heap of packed rows with a row-id address space,
// logical deletes, online schema evolution and chunked latching.
//
// Concurrency contract (documented in DESIGN.md):
//  - readers take the latch shared, and long scans re-acquire it every
//    kScanChunk rows so background row updates (the column materializer)
//    can interleave;
//  - writers (append / update / delete / schema change) take it exclusive
//    per operation, making every row update atomic — the granularity the
//    paper requires for incremental materialization.

#ifndef SINEW_ENGINE_TABLE_H_
#define SINEW_ENGINE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/datum.h"
#include "engine/row_codec.h"
#include "engine/schema.h"
#include "engine/stats.h"

namespace sinew::engine {

inline constexpr size_t kScanChunk = 1024;

class ColumnarSegment;

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  /// Unsynchronized schema reference. Safe only when no concurrent schema
  /// evolution is possible (single-threaded use, or the caller holds the
  /// maintenance latch that serializes DDL). Read paths that can race with
  /// the background materializer must use SchemaSnapshot /
  /// FindColumnLatched instead.
  const Schema& schema() const { return schema_; }

  /// Copy of the schema taken under the shared latch — for read paths
  /// (planner, rewriter, DML planning) that race with online ADD/DROP
  /// COLUMN by the materializer.
  Schema SchemaSnapshot() const {
    std::shared_lock lock(latch_);
    return schema_;
  }
  /// Latched point lookup of a live column's slot.
  std::optional<size_t> FindColumnLatched(std::string_view column) const {
    std::shared_lock lock(latch_);
    return schema_.FindColumn(column);
  }

  // --- schema evolution (exclusive) ---
  Status AddColumn(Column column);
  Status DropColumn(std::string_view column);

  // --- row access ---
  /// Appends a row; returns its row id.
  Result<uint64_t> AppendRow(const DatumRow& row);
  /// Number of row-id slots (including deleted rows).
  uint64_t RowSlotCount() const;
  /// Live rows.
  uint64_t LiveRowCount() const;
  /// True if the row id holds a live row.
  bool IsLive(uint64_t rid) const;
  /// Decodes a live row; NotFound for deleted/out-of-range ids.
  Result<DatumRow> ReadRow(uint64_t rid) const;
  /// Decodes only the given slots (ascending) of a live row; other slots of
  /// the returned row are NULL. Projection pushdown for point reads.
  Result<DatumRow> ReadRowSlots(uint64_t rid,
                                const std::vector<size_t>& slots) const;
  /// Atomically replaces a live row.
  Status UpdateRow(uint64_t rid, const DatumRow& row);
  /// Logical delete.
  Status DeleteRow(uint64_t rid);

  /// Sum of encoded row bytes (the Table 3 "storage size" measure).
  uint64_t DataBytes() const;

  /// Monotonic counter bumped by every successful mutation (append, update,
  /// delete, schema change, raw restore). Persistence compares snapshots of
  /// it to skip re-serializing tables unchanged since the last generation
  /// image. Latch-free read; only equality of two snapshots is meaningful.
  uint64_t MutationVersion() const {
    return mutation_version_.load(std::memory_order_acquire);
  }

  /// Restores a row image verbatim at the next row id (persist/load path);
  /// an empty string restores a deleted slot. Validates decodability.
  Status RestoreRawRow(std::string encoded);

  // --- statistics ---
  /// Recomputes ANALYZE statistics for all live columns.
  Status Analyze();
  /// Snapshot of current statistics (copy; cheap at our scales).
  TableStats GetStats() const;

  /// Raw latch, exposed for the scan iterator's chunked locking.
  std::shared_mutex& latch() const { return latch_; }

  /// Unsynchronized access used by the scan iterator while holding the
  /// latch shared: encoded row bytes or empty string for deleted rows.
  const std::string& RawRowUnlocked(uint64_t rid) const { return rows_[rid]; }
  uint64_t RowSlotCountUnlocked() const { return rows_.size(); }
  const Schema& SchemaUnlocked() const { return schema_; }

  // --- columnar segment (shredded cold-rows accelerator) ---
  /// Attaches (or detaches, with nullptr) the shredded image of this table's
  /// cold rows. Takes the latch exclusive but deliberately does NOT bump the
  /// mutation version: the segment is derived read-only state, and bumping
  /// would defeat persistence's unchanged-table verbatim-copy fast path.
  void SetColumnarSegment(std::shared_ptr<const ColumnarSegment> segment) {
    std::unique_lock lock(latch_);
    columnar_ = std::move(segment);
  }
  /// Attach only if no mutation happened since `expected_version` was
  /// snapshotted (i.e. since the shredder read the rows). Returns false —
  /// leaving the current segment untouched — when the table changed
  /// underneath the shred, so a stale segment can never be published.
  bool SetColumnarSegmentIfUnchanged(
      std::shared_ptr<const ColumnarSegment> segment,
      uint64_t expected_version) {
    std::unique_lock lock(latch_);
    if (mutation_version_.load(std::memory_order_acquire) !=
        expected_version) {
      return false;
    }
    columnar_ = std::move(segment);
    return true;
  }
  /// Latched snapshot for readers outside a scan's chunk lock.
  std::shared_ptr<const ColumnarSegment> ColumnarSegmentSnapshot() const {
    std::shared_lock lock(latch_);
    return columnar_;
  }
  /// For readers already holding the latch (scan chunk loop).
  const std::shared_ptr<const ColumnarSegment>& ColumnarSegmentUnlocked()
      const {
    return columnar_;
  }

 private:
  /// Bump under the exclusive latch after a successful mutation.
  void BumpVersion() {
    mutation_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  std::string name_;
  Schema schema_;
  std::vector<std::string> rows_;  // empty string = deleted
  uint64_t live_rows_ = 0;
  uint64_t data_bytes_ = 0;
  std::atomic<uint64_t> mutation_version_{0};
  TableStats stats_;
  /// Shredded strips over rows [0, segment row_count); detached wholesale by
  /// UpdateRow before any covered row mutates, so a snapshot taken under the
  /// shared latch always agrees with the row bytes it was shredded from.
  std::shared_ptr<const ColumnarSegment> columnar_;
  mutable std::shared_mutex latch_;
};

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_TABLE_H_
