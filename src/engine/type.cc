#include "engine/type.h"

#include "common/str_util.h"

namespace sinew::engine {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kBool:
      return "bool";
    case ColumnType::kInt:
      return "int";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kText:
      return "text";
    case ColumnType::kBytes:
      return "bytes";
  }
  return "unknown";
}

std::optional<ColumnType> ColumnTypeFromName(std::string_view name) {
  std::string lower = AsciiLower(name);
  if (lower == "bool" || lower == "boolean") return ColumnType::kBool;
  if (lower == "int" || lower == "integer" || lower == "bigint" ||
      lower == "int8") {
    return ColumnType::kInt;
  }
  if (lower == "double" || lower == "real" || lower == "float" ||
      lower == "double precision") {
    return ColumnType::kDouble;
  }
  if (lower == "text" || lower == "varchar" || lower == "string") {
    return ColumnType::kText;
  }
  if (lower == "bytes" || lower == "bytea" || lower == "blob") {
    return ColumnType::kBytes;
  }
  return std::nullopt;
}

ColumnType ColumnTypeForValueType(ValueType type) {
  switch (type) {
    case ValueType::kBool:
      return ColumnType::kBool;
    case ValueType::kInt:
      return ColumnType::kInt;
    case ValueType::kDouble:
      return ColumnType::kDouble;
    case ValueType::kString:
      return ColumnType::kText;
    case ValueType::kNull:
    case ValueType::kArray:
    case ValueType::kObject:
      return ColumnType::kBytes;
  }
  return ColumnType::kBytes;
}

}  // namespace sinew::engine
