// Column types of the microdb storage engine.
//
// kBytes is the workhorse behind Sinew: the column reservoir, materialized
// nested objects, and materialized arrays are all BYTES columns whose content
// uses the serial/ formats.

#ifndef SINEW_ENGINE_TYPE_H_
#define SINEW_ENGINE_TYPE_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/value.h"

namespace sinew::engine {

enum class ColumnType : uint8_t {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kText = 3,
  kBytes = 4,
};

const char* ColumnTypeName(ColumnType type);

/// Parses "bool"/"boolean", "int"/"integer"/"bigint", "double"/"real"/
/// "float", "text"/"varchar", "bytes"/"bytea" (case-insensitive).
std::optional<ColumnType> ColumnTypeFromName(std::string_view name);

/// The storage type used to materialize a document attribute of the given
/// logical type. Objects and arrays materialize as serialized BYTES
/// (paper Section 6.1: "nested_obj (itself a serialized data column)").
ColumnType ColumnTypeForValueType(ValueType type);

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_TYPE_H_
