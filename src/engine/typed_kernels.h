// Monomorphic kernel loops for the bytecode VM.
//
// Every kernel here runs after the batch-boundary type proof: a ColTag
// (engine/row_batch.h) has established that a column holds exactly one value
// kind for the whole batch, so the loops read raw int64/double/bool arrays
// with a null bitmap and never touch a Datum kind tag per lane. The
// comparison predicates are written in the `!(a < b)` / `(b < a)` form so
// they reproduce Datum::Compare's three-way Cmp() bit for bit — including
// its NaN behavior (NaN compares "equal" to everything because both strict
// orders are false) and -0.0 == 0.0 — rather than IEEE `==`/`!=`. Dispatch
// on (opcode, type, literal kind) happens once per batch in bytecode.cc;
// these templates are the per-lane bodies it instantiates.
//
// Select-mode kernels refine the selection vector in place (NULL lanes and
// NULL verdicts drop, as in EvalPredicate); value-mode kernels write one
// Datum per lane into a register, NULL in, NULL out.

#ifndef SINEW_ENGINE_TYPED_KERNELS_H_
#define SINEW_ENGINE_TYPED_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "engine/datum.h"
#include "engine/expr.h"
#include "engine/row_batch.h"

namespace sinew::engine::typed {

// Comparison predicates over the three-way Cmp() contract: a<b / b<a only.
struct EqPred {
  template <typename T>
  bool operator()(T a, T b) const { return !(a < b) && !(b < a); }
};
struct NePred {
  template <typename T>
  bool operator()(T a, T b) const { return (a < b) || (b < a); }
};
struct LtPred {
  template <typename T>
  bool operator()(T a, T b) const { return a < b; }
};
struct LePred {
  template <typename T>
  bool operator()(T a, T b) const { return !(b < a); }
};
struct GtPred {
  template <typename T>
  bool operator()(T a, T b) const { return b < a; }
};
struct GePred {
  template <typename T>
  bool operator()(T a, T b) const { return !(a < b); }
};

/// Instantiates `fn` with the predicate functor for a comparison op.
/// Returns false (without calling `fn`) for non-comparison ops.
template <typename Fn>
inline bool WithCmpPred(BinaryOp op, Fn&& fn) {
  switch (op) {
    case BinaryOp::kEq: fn(EqPred{}); return true;
    case BinaryOp::kNe: fn(NePred{}); return true;
    case BinaryOp::kLt: fn(LtPred{}); return true;
    case BinaryOp::kLe: fn(LePred{}); return true;
    case BinaryOp::kGt: fn(GtPred{}); return true;
    case BinaryOp::kGe: fn(GePred{}); return true;
    default: return false;
  }
}

/// Select-mode col-cmp-literal: keeps lanes where pred(vals[lane], lit) and
/// the lane is non-null. `L` is the comparison domain — int64 for int/int
/// (exact), double when either side is a double, exactly the kind pairing
/// Datum::Compare applies — so an int column against a double literal
/// promotes the lane value. The no-nulls variant is a branch-light loop
/// over an 8-byte-stride array — the shape the auto-vectorizer likes.
template <typename T, typename L, typename Pred>
inline void SelectCmp(const T* vals, const ColTag& tag, L lit, Pred pred,
                      std::vector<uint32_t>* sel) {
  size_t kept = 0;
  if (!tag.has_nulls) {
    for (uint32_t lane : *sel) {
      if (pred(static_cast<L>(vals[lane]), lit)) (*sel)[kept++] = lane;
    }
  } else {
    for (uint32_t lane : *sel) {
      if (!tag.IsNull(lane) && pred(static_cast<L>(vals[lane]), lit)) {
        (*sel)[kept++] = lane;
      }
    }
  }
  sel->resize(kept);
}

/// Value-mode col-cmp-literal: Bool verdict per lane, NULL in → NULL out.
template <typename T, typename L, typename Pred>
inline void ValueCmp(const T* vals, const ColTag& tag, L lit, Pred pred,
                     const std::vector<uint32_t>& lanes,
                     std::vector<Datum>* dst) {
  const size_t n = lanes.size();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t lane = lanes[i];
    (*dst)[i] = tag.IsNull(lane)
                    ? Datum::Null()
                    : Datum::Bool(pred(static_cast<L>(vals[lane]), lit));
  }
}

/// One BETWEEN bound, resolved once per batch: compares a lane value of
/// type T against an int64 or double literal exactly as Datum::Compare
/// would pair those kinds (int/int stays exact int64; any double promotes
/// both sides to double).
template <typename T>
struct NumBound {
  bool is_int = false;
  int64_t i = 0;
  double d = 0;

  bool Ge(T v) const {  // v >= bound, in the !(a < b) Cmp form
    if constexpr (std::is_same_v<T, int64_t>) {
      if (is_int) return !(v < i);
    }
    return !(static_cast<double>(v) < d);
  }
  bool Le(T v) const {  // v <= bound
    if constexpr (std::is_same_v<T, int64_t>) {
      if (is_int) return !(i < v);
    }
    return !(d < static_cast<double>(v));
  }
};

template <typename T>
inline NumBound<T> MakeBound(const Datum& lit) {
  NumBound<T> b;
  b.is_int = lit.is_int();
  if (b.is_int) b.i = lit.int_value();
  b.d = lit.AsDouble();
  return b;
}

/// Select-mode numeric BETWEEN: NULL lanes drop (NULL BETWEEN is NULL
/// whether or not negated), in-range xor negated keeps.
template <typename T>
inline void SelectBetween(const T* vals, const ColTag& tag, NumBound<T> lo,
                          NumBound<T> hi, bool negated,
                          std::vector<uint32_t>* sel) {
  size_t kept = 0;
  for (uint32_t lane : *sel) {
    if (tag.IsNull(lane)) continue;
    const T v = vals[lane];
    const bool in_range = lo.Ge(v) && hi.Le(v);
    if (in_range != negated) (*sel)[kept++] = lane;
  }
  sel->resize(kept);
}

template <typename T>
inline void ValueBetween(const T* vals, const ColTag& tag, NumBound<T> lo,
                         NumBound<T> hi, bool negated,
                         const std::vector<uint32_t>& lanes,
                         std::vector<Datum>* dst) {
  const size_t n = lanes.size();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t lane = lanes[i];
    if (tag.IsNull(lane)) {
      (*dst)[i] = Datum::Null();
    } else {
      const T v = vals[lane];
      (*dst)[i] = Datum::Bool((lo.Ge(v) && hi.Le(v)) != negated);
    }
  }
}

/// IS [NOT] NULL straight off the bitmap — works for every proven type
/// (including kText, which keeps no raw array).
inline void SelectIsNull(const ColTag& tag, bool negated,
                         std::vector<uint32_t>* sel) {
  size_t kept = 0;
  for (uint32_t lane : *sel) {
    if (tag.IsNull(lane) != negated) (*sel)[kept++] = lane;
  }
  sel->resize(kept);
}

inline void ValueIsNull(const ColTag& tag, bool negated,
                        const std::vector<uint32_t>& lanes,
                        std::vector<Datum>* dst) {
  const size_t n = lanes.size();
  for (size_t i = 0; i < n; ++i) {
    (*dst)[i] = Datum::Bool(tag.IsNull(lanes[i]) != negated);
  }
}

/// Text col-cmp-literal: no raw array (values stay in the Datum column) but
/// still one string compare per lane with no kind dispatch and no Datum
/// temporaries. The three-way compare() result feeds the same predicates.
template <typename Pred>
inline void SelectCmpStr(const std::vector<Datum>& col, const ColTag& tag,
                         const std::string& lit, Pred pred,
                         std::vector<uint32_t>* sel) {
  size_t kept = 0;
  for (uint32_t lane : *sel) {
    if (tag.IsNull(lane)) continue;
    if (pred(col[lane].str().compare(lit), 0)) (*sel)[kept++] = lane;
  }
  sel->resize(kept);
}

template <typename Pred>
inline void ValueCmpStr(const std::vector<Datum>& col, const ColTag& tag,
                        const std::string& lit, Pred pred,
                        const std::vector<uint32_t>& lanes,
                        std::vector<Datum>* dst) {
  const size_t n = lanes.size();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t lane = lanes[i];
    (*dst)[i] = tag.IsNull(lane)
                    ? Datum::Null()
                    : Datum::Bool(pred(col[lane].str().compare(lit), 0));
  }
}

}  // namespace sinew::engine::typed

#endif  // SINEW_ENGINE_TYPED_KERNELS_H_
