#include "engine/udf.h"

#include <cmath>

#include "common/str_util.h"

namespace sinew::engine {

void RegisterBuiltinFunctions(UdfRegistry* registry) {
  registry->Register("abs", [](const UdfArgs& args) -> Result<Datum> {
    if (args.size() != 1) return Status::InvalidArgument("abs expects 1 arg");
    const Datum& v = *args[0];
    if (v.is_null()) return Datum::Null();
    if (v.is_int()) return Datum::Int(std::abs(v.int_value()));
    if (v.is_double()) return Datum::Double(std::fabs(v.double_value()));
    return Status::TypeError("abs on non-numeric");
  });
  registry->Register("lower",
                     [](const UdfArgs& args) -> Result<Datum> {
    if (args.size() != 1) return Status::InvalidArgument("lower expects 1 arg");
    if (args[0]->is_null()) return Datum::Null();
    if (!args[0]->is_text()) return Status::TypeError("lower on non-text");
    return Datum::Text(AsciiLower(args[0]->str()));
  });
  registry->Register("upper",
                     [](const UdfArgs& args) -> Result<Datum> {
    if (args.size() != 1) return Status::InvalidArgument("upper expects 1 arg");
    if (args[0]->is_null()) return Datum::Null();
    if (!args[0]->is_text()) return Status::TypeError("upper on non-text");
    std::string s = args[0]->str();
    for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return Datum::Text(std::move(s));
  });
  registry->Register("length",
                     [](const UdfArgs& args) -> Result<Datum> {
    if (args.size() != 1) {
      return Status::InvalidArgument("length expects 1 arg");
    }
    if (args[0]->is_null()) return Datum::Null();
    if (!args[0]->is_text() && !args[0]->is_bytes()) {
      return Status::TypeError("length on non-text");
    }
    return Datum::Int(static_cast<int64_t>(args[0]->str().size()));
  });
  registry->Register("substr",
                     [](const UdfArgs& args) -> Result<Datum> {
    if (args.size() != 3) {
      return Status::InvalidArgument("substr expects 3 args");
    }
    if (args[0]->is_null() || args[1]->is_null() || args[2]->is_null()) {
      return Datum::Null();
    }
    if (!args[0]->is_text() || !args[1]->is_int() || !args[2]->is_int()) {
      return Status::TypeError("substr(text, int, int)");
    }
    const std::string& s = args[0]->str();
    int64_t start = std::max<int64_t>(args[1]->int_value() - 1, 0);  // 1-based
    int64_t len = std::max<int64_t>(args[2]->int_value(), 0);
    if (start >= static_cast<int64_t>(s.size())) return Datum::Text("");
    return Datum::Text(s.substr(static_cast<size_t>(start),
                                static_cast<size_t>(len)));
  });
}

}  // namespace sinew::engine
