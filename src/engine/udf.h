// Scalar user-defined function registry. Sinew's extraction functions
// (Section 3.2.2), the jsontext baseline's parse-per-call functions and the
// text-search integration all enter the engine through here, mirroring how
// the paper's prototype extends Postgres with UDFs (Section 5).

#ifndef SINEW_ENGINE_UDF_H_
#define SINEW_ENGINE_UDF_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "engine/datum.h"

namespace sinew::engine {

/// UDF arguments are passed by pointer so that column values (notably the
/// column reservoir) reach the function without being copied per row.
using UdfArgs = std::vector<const Datum*>;
using UdfFn = std::function<Result<Datum>(const UdfArgs&)>;

class UdfRegistry {
 public:
  /// Registers (or replaces) a scalar function under a lower-case name.
  void Register(std::string name, UdfFn fn) {
    fns_[std::move(name)] = std::move(fn);
  }

  const UdfFn* Find(std::string_view name) const {
    auto it = fns_.find(name);
    return it == fns_.end() ? nullptr : &it->second;
  }

  bool Contains(std::string_view name) const { return Find(name) != nullptr; }

 private:
  std::map<std::string, UdfFn, std::less<>> fns_;
};

/// Registers the engine's built-in scalar functions: coalesce, abs, lower,
/// upper, length, substr.
void RegisterBuiltinFunctions(UdfRegistry* registry);

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_UDF_H_
