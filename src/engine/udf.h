// Scalar user-defined function registry. Sinew's extraction functions
// (Section 3.2.2), the jsontext baseline's parse-per-call functions and the
// text-search integration all enter the engine through here, mirroring how
// the paper's prototype extends Postgres with UDFs (Section 5).

#ifndef SINEW_ENGINE_UDF_H_
#define SINEW_ENGINE_UDF_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "engine/datum.h"
#include "engine/row_batch.h"

namespace sinew::engine {

/// UDF arguments are passed by pointer so that column values (notably the
/// column reservoir) reach the function without being copied per row.
using UdfArgs = std::vector<const Datum*>;
using UdfFn = std::function<Result<Datum>(const UdfArgs&)>;

/// One output of a batched extraction call (plan node kExtract): read the
/// serialized document in input slot `source_slot`, descend through the
/// nested-object attributes `prefix_ids`, then extract `attr_id` and decode
/// it per `type_tag` (a ValueType tag; opaque to the engine). `raw_bytes`
/// skips decoding and emits the value's serialized bytes verbatim.
struct ExtractTarget {
  int source_slot = -1;
  int64_t type_tag = 0;
  bool raw_bytes = false;
  std::vector<uint32_t> prefix_ids;
  uint32_t attr_id = 0;
};

/// Work done by one batch-extract invocation, fed into per-node EXPLAIN
/// ANALYZE stats by the executor.
struct BatchExtractStats {
  uint64_t decodes = 0;  // source documents decoded (header walks)
  uint64_t attrs = 0;    // attributes requested across those decodes
};

/// Per-attribute access telemetry accumulated by the extract operator and
/// flushed to the heat sink when the operator closes. The engine knows
/// attributes only by (table, attr_id); the sink owner (the Sinew layer's
/// AttributeCatalog) resolves names and aggregates across queries.
struct AttrAccessSample {
  std::string table;
  uint32_t attr_id = 0;
  uint64_t requests = 0;          // lanes that asked for this attribute
  uint64_t strip_served = 0;      // lanes answered from a columnar strip
  uint64_t reservoir_served = 0;  // lanes answered by decoding the reservoir
  uint64_t decode_ns = 0;         // share of reservoir decode time
};

/// Receives attribute-heat samples at operator close. Called on the query
/// thread; implementations must be thread-safe across concurrent queries.
using HeatSinkFn = std::function<void(const std::vector<AttrAccessSample>&)>;

/// Batched extraction function: fills (*outs)[i] from targets[i] for one
/// row. The planner guarantees targets arrive grouped by source_slot and
/// sorted by (prefix_ids, attr_id), so implementations can decode each
/// source once and merge-join all wanted ids in a single header pass.
using BatchExtractFn =
    std::function<Status(const DatumRow& row,
                         const std::vector<ExtractTarget>& targets,
                         std::vector<Datum>* outs, BatchExtractStats* stats)>;

/// Vectorized variant: serves every listed lane of a RowBatch in one call,
/// filling (*out_cols)[t][k] from targets[t] for the k-th entry of `lanes`
/// (NULL-source lanes stay NULL). One call amortizes the std::function
/// dispatch of BatchExtractFn over the whole batch; per-row guarantees
/// (targets grouped by source, sorted ids, one decode per source) carry
/// over unchanged.
using BatchExtractRowsFn = std::function<Status(
    const RowBatch& batch, const std::vector<uint32_t>& lanes,
    const std::vector<ExtractTarget>& targets,
    std::vector<std::vector<Datum>>* out_cols, BatchExtractStats* stats)>;

class UdfRegistry {
 public:
  /// Registers (or replaces) a scalar function under a lower-case name.
  void Register(std::string name, UdfFn fn) {
    fns_[std::move(name)] = std::move(fn);
  }

  const UdfFn* Find(std::string_view name) const {
    auto it = fns_.find(name);
    return it == fns_.end() ? nullptr : &it->second;
  }

  bool Contains(std::string_view name) const { return Find(name) != nullptr; }

  /// Registers (or replaces) a batched extraction function (the engine's
  /// kExtract node resolves its implementation through here, keeping the
  /// serialized-format knowledge outside the engine).
  void RegisterBatchExtract(std::string name, BatchExtractFn fn) {
    batch_extract_[std::move(name)] = std::move(fn);
  }

  const BatchExtractFn* FindBatchExtract(std::string_view name) const {
    auto it = batch_extract_.find(name);
    return it == batch_extract_.end() ? nullptr : &it->second;
  }

  /// Registers (or replaces) the batch-of-rows extraction entry point the
  /// vectorized executor prefers; the row-level BatchExtractFn remains the
  /// fallback (and the batch_size=1 path).
  void RegisterBatchExtractRows(std::string name, BatchExtractRowsFn fn) {
    batch_extract_rows_[std::move(name)] = std::move(fn);
  }

  const BatchExtractRowsFn* FindBatchExtractRows(std::string_view name) const {
    auto it = batch_extract_rows_.find(name);
    return it == batch_extract_rows_.end() ? nullptr : &it->second;
  }

  /// Installs the attribute-heat sink (RegisterSinewFunctions points it at
  /// the AttributeCatalog). Unset by default: the extract operator skips all
  /// heat accounting when no sink is present.
  void SetHeatSink(HeatSinkFn sink) { heat_sink_ = std::move(sink); }

  const HeatSinkFn* heat_sink() const {
    return heat_sink_ ? &heat_sink_ : nullptr;
  }

 private:
  std::map<std::string, UdfFn, std::less<>> fns_;
  std::map<std::string, BatchExtractFn, std::less<>> batch_extract_;
  std::map<std::string, BatchExtractRowsFn, std::less<>> batch_extract_rows_;
  HeatSinkFn heat_sink_;
};

/// Registers the engine's built-in scalar functions: coalesce, abs, lower,
/// upper, length, substr.
void RegisterBuiltinFunctions(UdfRegistry* registry);

}  // namespace sinew::engine

#endif  // SINEW_ENGINE_UDF_H_
