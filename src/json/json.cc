#include "json/json.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/str_util.h"

namespace sinew::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(std::string_view message) const {
    return Status::ParseError(message, " at offset ", pos_);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (depth_ > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value::String(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Value::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++depth_;
    ++pos_;  // '{'
    std::vector<Value::Member> members;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return Value::Object(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      SkipWhitespace();
      ASSIGN_OR_RETURN(Value v, ParseValue());
      members.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    --depth_;
    return Value::Object(std::move(members));
  }

  Result<Value> ParseArray() {
    ++depth_;
    ++pos_;  // '['
    std::vector<Value> elements;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return Value::Array(std::move(elements));
    }
    while (true) {
      SkipWhitespace();
      ASSIGN_OR_RETURN(Value v, ParseValue());
      elements.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    --depth_;
    return Value::Array(std::move(elements));
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            if (cp >= 0xd800 && cp <= 0xdbff) {
              // High surrogate: expect \uXXXX low surrogate next.
              if (!ConsumeLiteral("\\u")) return Error("lone high surrogate");
              ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
              if (lo < 0xdc00 || lo > 0xdfff) return Error("bad low surrogate");
              cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
            } else if (cp >= 0xdc00 && cp <= 0xdfff) {
              return Error("lone low surrogate");
            }
            AppendUtf8(cp, &out);
            break;
          }
          default:
            return Error("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit");
      }
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view num = text_.substr(start, pos_ - start);
    if (num.empty() || num == "-") return Error("invalid number");
    if (!is_double) {
      int64_t iv = 0;
      auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), iv);
      if (ec == std::errc() && ptr == num.data() + num.size()) {
        return Value::Int(iv);
      }
      // Integer overflow: fall back to double.
    }
    double dv = 0;
    auto [dptr, dec] = std::from_chars(num.data(), num.data() + num.size(), dv);
    if (dec != std::errc() || dptr != num.data() + num.size()) {
      return Error("invalid number");
    }
    return Value::Double(dv);
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void AppendPretty(const Value& v, int indent, int depth, std::string* out) {
  auto pad = [&](int d) { out->append(static_cast<size_t>(indent) * d, ' '); };
  switch (v.type()) {
    case ValueType::kArray: {
      if (v.array().empty()) {
        out->append("[]");
        return;
      }
      out->append("[\n");
      for (size_t i = 0; i < v.array().size(); ++i) {
        pad(depth + 1);
        AppendPretty(v.array()[i], indent, depth + 1, out);
        if (i + 1 < v.array().size()) out->push_back(',');
        out->push_back('\n');
      }
      pad(depth);
      out->push_back(']');
      return;
    }
    case ValueType::kObject: {
      if (v.members().empty()) {
        out->append("{}");
        return;
      }
      out->append("{\n");
      for (size_t i = 0; i < v.members().size(); ++i) {
        pad(depth + 1);
        out->push_back('"');
        AppendJsonEscaped(v.members()[i].first, out);
        out->append("\": ");
        AppendPretty(v.members()[i].second, indent, depth + 1, out);
        if (i + 1 < v.members().size()) out->push_back(',');
        out->push_back('\n');
      }
      pad(depth);
      out->push_back('}');
      return;
    }
    default:
      out->append(v.ToJson());
  }
}

}  // namespace

Result<Value> Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

Result<std::vector<Value>> ParseLines(std::string_view text) {
  std::vector<Value> docs;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    // Skip blank lines.
    if (line.find_first_not_of(" \t\r") != std::string_view::npos) {
      ASSIGN_OR_RETURN(Value v, Parse(line));
      docs.push_back(std::move(v));
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return docs;
}

std::string Write(const Value& value) { return value.ToJson(); }

std::string WritePretty(const Value& value, int indent) {
  std::string out;
  AppendPretty(value, indent, 0, &out);
  return out;
}

}  // namespace sinew::json
