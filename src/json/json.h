// JSON text <-> Value document model.
//
// The parser is a strict recursive-descent JSON parser (RFC 8259 subset:
// \uXXXX escapes are decoded to UTF-8; surrogate pairs supported). Numbers
// without '.', 'e' or 'E' parse as kInt, others as kDouble — this distinction
// feeds the paper's attribute = (key, type) model.

#ifndef SINEW_JSON_JSON_H_
#define SINEW_JSON_JSON_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace sinew::json {

/// Parses one JSON document. Trailing non-whitespace is an error.
Result<Value> Parse(std::string_view text);

/// Parses a stream of newline-delimited JSON documents (blank lines skipped).
Result<std::vector<Value>> ParseLines(std::string_view text);

/// Compact serialization (same output as Value::ToJson).
std::string Write(const Value& value);

/// Indented serialization for humans.
std::string WritePretty(const Value& value, int indent = 2);

}  // namespace sinew::json

#endif  // SINEW_JSON_JSON_H_
