#include "serial/avrolike.h"

#include <algorithm>

#include "common/bytes.h"

namespace sinew::serial {

Status AvroLikeSerializer::ObserveSchema(const Value& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("schema discovery expects objects");
  }
  return ObserveInto(doc, "");
}

Status AvroLikeSerializer::ObserveInto(const Value& doc,
                                       const std::string& prefix) {
  RecordSchema& record = records_[prefix];
  for (const auto& [key, value] : doc.members()) {
    if (value.is_null()) continue;
    auto it = record.index.find(key);
    if (it == record.index.end()) {
      record.index.emplace(key, record.fields.size());
      record.fields.push_back(FieldSchema{key, {value.type()}});
    } else {
      FieldSchema& field = record.fields[it->second];
      if (std::find(field.branches.begin(), field.branches.end(),
                    value.type()) == field.branches.end()) {
        field.branches.push_back(value.type());
        std::sort(field.branches.begin(), field.branches.end());
      }
    }
    if (value.is_object()) {
      RETURN_NOT_OK(ObserveInto(value, prefix + key + "."));
    } else if (value.is_array()) {
      for (const Value& e : value.array()) {
        if (e.is_object()) {
          RETURN_NOT_OK(ObserveInto(e, prefix + key + "."));
        }
      }
    }
  }
  return Status::OK();
}

const AvroLikeSerializer::RecordSchema* AvroLikeSerializer::FindRecord(
    const std::string& prefix) const {
  auto it = records_.find(prefix);
  return it == records_.end() ? nullptr : &it->second;
}

size_t AvroLikeSerializer::top_level_field_count() const {
  const RecordSchema* r = FindRecord("");
  return r == nullptr ? 0 : r->fields.size();
}

namespace {

Status EncodeScalarAvro(const Value& v, BufferWriter* w) {
  switch (v.type()) {
    case ValueType::kBool:
      w->PutU8(v.bool_value() ? 1 : 0);
      return Status::OK();
    case ValueType::kInt:
      w->PutSignedVarint(v.int_value());
      return Status::OK();
    case ValueType::kDouble:
      w->PutDouble(v.double_value());
      return Status::OK();
    case ValueType::kString:
      w->PutLengthPrefixed(v.string_value());
      return Status::OK();
    default:
      return Status::Internal("not a scalar");
  }
}

}  // namespace

Status AvroLikeSerializer::Serialize(const Value& doc, std::string* out) {
  const RecordSchema* record = FindRecord("");
  if (record == nullptr) {
    return Status::InvalidArgument("no schema; call ObserveSchema first");
  }
  // Recursive encoder defined as a lambda so it can consult `records_`.
  auto encode_record = [this](auto&& self, const Value& obj,
                              const std::string& prefix,
                              BufferWriter* w) -> Status {
    const RecordSchema* rec = FindRecord(prefix);
    if (rec == nullptr) {
      return Status::Internal("missing sub-record schema for ", prefix);
    }
    for (const FieldSchema& field : rec->fields) {
      const Value* v = obj.Find(field.name);
      if (v == nullptr || v->is_null()) {
        w->PutVarint(0);  // null branch — explicit, the Avro bloat source
        continue;
      }
      auto branch = std::find(field.branches.begin(), field.branches.end(),
                              v->type());
      if (branch == field.branches.end()) {
        return Status::TypeError("type ", ValueTypeName(v->type()),
                                 " of field ", field.name, " not in schema");
      }
      w->PutVarint(
          static_cast<uint64_t>(branch - field.branches.begin()) + 1);
      switch (v->type()) {
        case ValueType::kObject:
          RETURN_NOT_OK(self(self, *v, prefix + field.name + ".", w));
          break;
        case ValueType::kArray: {
          w->PutVarint(v->array().size());
          for (const Value& e : v->array()) {
            w->PutU8(static_cast<uint8_t>(e.type()));
            if (e.is_object()) {
              RETURN_NOT_OK(self(self, e, prefix + field.name + ".", w));
            } else if (e.is_array()) {
              return Status::NotImplemented("nested arrays in avrolike");
            } else if (!e.is_null()) {
              RETURN_NOT_OK(EncodeScalarAvro(e, w));
            }
          }
          if (!v->array().empty()) w->PutVarint(0);  // block terminator
          break;
        }
        default:
          RETURN_NOT_OK(EncodeScalarAvro(*v, w));
      }
    }
    return Status::OK();
  };
  BufferWriter w;
  RETURN_NOT_OK(encode_record(encode_record, doc, "", &w));
  *out = w.Release();
  return Status::OK();
}

Result<Value> AvroLikeSerializer::Deserialize(std::string_view data) const {
  BufferReader r(data);
  auto decode_record = [this](auto&& self, const std::string& prefix,
                              BufferReader* in) -> Result<Value> {
    const RecordSchema* rec = FindRecord(prefix);
    if (rec == nullptr) {
      return Status::Internal("missing record schema for ", prefix);
    }
    std::vector<Value::Member> members;
    for (const FieldSchema& field : rec->fields) {
      ASSIGN_OR_RETURN(uint64_t branch, in->ReadVarint());
      if (branch == 0) continue;  // null: not part of the logical document
      if (branch > field.branches.size()) {
        return Status::ParseError("branch index out of range for ",
                                  field.name);
      }
      ValueType type = field.branches[branch - 1];
      switch (type) {
        case ValueType::kBool: {
          ASSIGN_OR_RETURN(uint8_t b, in->ReadU8());
          members.emplace_back(field.name, Value::Bool(b != 0));
          break;
        }
        case ValueType::kInt: {
          ASSIGN_OR_RETURN(int64_t v, in->ReadSignedVarint());
          members.emplace_back(field.name, Value::Int(v));
          break;
        }
        case ValueType::kDouble: {
          ASSIGN_OR_RETURN(double v, in->ReadDouble());
          members.emplace_back(field.name, Value::Double(v));
          break;
        }
        case ValueType::kString: {
          ASSIGN_OR_RETURN(std::string_view s, in->ReadLengthPrefixed());
          members.emplace_back(field.name, Value::String(std::string(s)));
          break;
        }
        case ValueType::kObject: {
          ASSIGN_OR_RETURN(Value sub,
                           self(self, prefix + field.name + ".", in));
          members.emplace_back(field.name, std::move(sub));
          break;
        }
        case ValueType::kArray: {
          ASSIGN_OR_RETURN(uint64_t count, in->ReadVarint());
          std::vector<Value> elements;
          for (uint64_t i = 0; i < count; ++i) {
            ASSIGN_OR_RETURN(uint8_t tag, in->ReadU8());
            ValueType et = static_cast<ValueType>(tag);
            switch (et) {
              case ValueType::kNull:
                elements.push_back(Value::Null());
                break;
              case ValueType::kBool: {
                ASSIGN_OR_RETURN(uint8_t b, in->ReadU8());
                elements.push_back(Value::Bool(b != 0));
                break;
              }
              case ValueType::kInt: {
                ASSIGN_OR_RETURN(int64_t v, in->ReadSignedVarint());
                elements.push_back(Value::Int(v));
                break;
              }
              case ValueType::kDouble: {
                ASSIGN_OR_RETURN(double v, in->ReadDouble());
                elements.push_back(Value::Double(v));
                break;
              }
              case ValueType::kString: {
                ASSIGN_OR_RETURN(std::string_view s, in->ReadLengthPrefixed());
                elements.push_back(Value::String(std::string(s)));
                break;
              }
              case ValueType::kObject: {
                ASSIGN_OR_RETURN(Value sub,
                                 self(self, prefix + field.name + ".", in));
                elements.push_back(std::move(sub));
                break;
              }
              case ValueType::kArray:
                return Status::NotImplemented("nested arrays in avrolike");
            }
          }
          if (count > 0) {
            ASSIGN_OR_RETURN(uint64_t terminator, in->ReadVarint());
            if (terminator != 0) {
              return Status::ParseError("bad array block terminator");
            }
          }
          members.emplace_back(field.name, Value::Array(std::move(elements)));
          break;
        }
        case ValueType::kNull:
          break;
      }
    }
    return Value::Object(std::move(members));
  };
  return decode_record(decode_record, "", &r);
}

Result<Value> AvroLikeSerializer::Extract(std::string_view data,
                                          std::string_view key) const {
  // Avro has no random access: decode the whole record, then look the key up
  // in the logical representation. (Real Avro readers can skip-decode, but
  // still must walk every preceding field; full decode matches the observed
  // order-of-magnitude Table 4 behaviour.)
  ASSIGN_OR_RETURN(Value doc, Deserialize(data));
  const Value* v = doc.Find(key);
  return v == nullptr ? Value::Null() : *v;
}

}  // namespace sinew::serial
