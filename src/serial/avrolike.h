// An Avro-like schema-resolved binary format (Appendix A comparator).
//
// Faithful to the aspects of Avro that drive its Table 4 profile:
//   - a writer schema fixed before encoding; every record stores a value (or
//     an explicit null) for EVERY schema field in schema order
//   - optionality via unions: each field is union(null, T1, ...); each record
//     spends at least one branch-index byte per schema field, so wide/sparse
//     schemas (NoBench's 1000 sparse keys) bloat dramatically
//   - sequential access only: reading field k requires decode-skipping all
//     earlier fields
//   - Avro primitive encodings: zigzag varint longs, 8-byte doubles,
//     length-prefixed strings, block-encoded arrays
//
// Use: call ObserveSchema() over the corpus (schema discovery), then
// Serialize/Deserialize/Extract.

#ifndef SINEW_SERIAL_AVROLIKE_H_
#define SINEW_SERIAL_AVROLIKE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "serial/serializer.h"

namespace sinew::serial {

class AvroLikeSerializer : public DocumentSerializer {
 public:
  std::string_view name() const override { return "avrolike"; }

  Status ObserveSchema(const Value& doc) override;
  Status Serialize(const Value& doc, std::string* out) override;
  Result<Value> Deserialize(std::string_view data) const override;
  Result<Value> Extract(std::string_view data,
                        std::string_view key) const override;

  /// Number of fields in the top-level record schema.
  size_t top_level_field_count() const;

 private:
  struct FieldSchema {
    std::string name;                 // leaf key
    std::vector<ValueType> branches;  // union members after null, sorted
  };
  // Record schemas keyed by dotted path prefix ("" = top level,
  // "nested_obj." = that sub-record).
  struct RecordSchema {
    std::vector<FieldSchema> fields;
    std::map<std::string, size_t, std::less<>> index;  // name -> position
  };

  Status ObserveInto(const Value& doc, const std::string& prefix);
  const RecordSchema* FindRecord(const std::string& prefix) const;

  std::map<std::string, RecordSchema> records_;
};

}  // namespace sinew::serial

#endif  // SINEW_SERIAL_AVROLIKE_H_
