// Attribute dictionary interface.
//
// The paper's serialization format replaces key names with integer attribute
// IDs assigned by the catalog's global dictionary (Section 3.1.2). An
// *attribute* is the combination of a key name and a type: the same key
// observed with two runtime types yields two attribute IDs, which is what
// lets typed extraction return NULL on type mismatch instead of erroring
// (Section 3.2.2).
//
// Nested keys are interned under their full dotted path ("user.id"), so a
// document header always contains globally unique IDs.

#ifndef SINEW_SERIAL_DICTIONARY_H_
#define SINEW_SERIAL_DICTIONARY_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace sinew::serial {

struct Attribute {
  uint32_t id = 0;
  std::string key;        // full dotted path
  ValueType type = ValueType::kNull;
};

/// Maps (key, type) pairs to dense integer IDs and back. Implementations must
/// assign IDs densely starting at `first_id()` and never reuse them.
class AttributeDictionary {
 public:
  virtual ~AttributeDictionary() = default;

  /// Returns the ID for (key, type), allocating a new one if absent.
  virtual Result<uint32_t> Intern(std::string_view key, ValueType type) = 0;

  /// Returns the ID for (key, type) if it exists.
  virtual std::optional<uint32_t> FindId(std::string_view key,
                                         ValueType type) const = 0;

  /// Reverse lookup. Error if the ID was never allocated.
  virtual Result<Attribute> Lookup(uint32_t id) const = 0;

  /// All IDs registered for a key name (one per observed type).
  virtual std::vector<Attribute> FindAllTypes(std::string_view key) const = 0;

  /// Number of registered attributes.
  virtual size_t size() const = 0;
};

/// In-memory dictionary used by tests, benchmarks and the Sinew catalog.
class SimpleDictionary : public AttributeDictionary {
 public:
  Result<uint32_t> Intern(std::string_view key, ValueType type) override {
    auto it = ids_.find(LookupKey{key, type});
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(attrs_.size());
    attrs_.push_back(Attribute{id, std::string(key), type});
    ids_.emplace(StoredKey{std::string(key), type}, id);
    by_name_.emplace(std::string(key), id);
    return id;
  }

  std::optional<uint32_t> FindId(std::string_view key,
                                 ValueType type) const override {
    auto it = ids_.find(LookupKey{key, type});
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  Result<Attribute> Lookup(uint32_t id) const override {
    if (id >= attrs_.size()) {
      return Status::NotFound("attribute id ", id, " not in dictionary");
    }
    return attrs_[id];
  }

  std::vector<Attribute> FindAllTypes(std::string_view key) const override {
    std::vector<Attribute> out;
    auto [begin, end] = by_name_.equal_range(key);
    for (auto it = begin; it != end; ++it) out.push_back(attrs_[it->second]);
    // Deterministic order (by id) regardless of multimap iteration order.
    std::sort(out.begin(), out.end(),
              [](const Attribute& a, const Attribute& b) { return a.id < b.id; });
    return out;
  }

  size_t size() const override { return attrs_.size(); }

  const std::vector<Attribute>& attributes() const { return attrs_; }

  /// Forgets every attribute. IDs restart at 0 — only safe when all documents
  /// encoded against the old IDs are discarded too (persistence rollback).
  void Clear() {
    attrs_.clear();
    ids_.clear();
    by_name_.clear();
  }

 private:
  struct StoredKey {
    std::string key;
    ValueType type;
  };
  struct LookupKey {
    std::string_view key;
    ValueType type;
  };
  /// Transparent comparator: allocation-free lookups by string_view.
  struct KeyLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      std::string_view ak(a.key), bk(b.key);
      if (ak != bk) return ak < bk;
      return a.type < b.type;
    }
  };

  std::vector<Attribute> attrs_;
  std::map<StoredKey, uint32_t, KeyLess> ids_;
  std::multimap<std::string, uint32_t, std::less<>> by_name_;
};

}  // namespace sinew::serial

#endif  // SINEW_SERIAL_DICTIONARY_H_
