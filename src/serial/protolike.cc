#include "serial/protolike.h"

#include <algorithm>
#include <vector>

#include "common/bytes.h"

namespace sinew::serial {

namespace {

enum WireType : uint32_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
};

WireType WireTypeFor(ValueType type) {
  switch (type) {
    case ValueType::kBool:
    case ValueType::kInt:
      return kVarint;
    case ValueType::kDouble:
      return kFixed64;
    default:
      return kLengthDelimited;
  }
}

// Array messages use synthetic field numbers 1..7 equal to the element's
// ValueType tag + 1 so heterogeneous arrays round-trip.
uint32_t ArrayFieldNumber(ValueType type) {
  return static_cast<uint32_t>(type) + 1;
}

Status EncodeField(uint32_t field, const Value& value,
                   AttributeDictionary* dict, const std::string& prefix,
                   BufferWriter* w);

Status EncodeArrayMessage(const Value& value, AttributeDictionary* dict,
                          const std::string& prefix, std::string* out) {
  BufferWriter w;
  for (const Value& e : value.array()) {
    RETURN_NOT_OK(EncodeField(ArrayFieldNumber(e.type()), e, dict, prefix, &w));
  }
  *out = w.Release();
  return Status::OK();
}

Status EncodeMessage(const Value& doc, AttributeDictionary* dict,
                     const std::string& prefix, std::string* out) {
  struct Entry {
    uint32_t field;
    const Value* value;
    std::string path;
  };
  std::vector<Entry> entries;
  for (const auto& [key, value] : doc.members()) {
    if (value.is_null()) continue;
    std::string path = prefix + key;
    ASSIGN_OR_RETURN(uint32_t id, dict->Intern(path, value.type()));
    entries.push_back(Entry{id + 1, &value, std::move(path)});
  }
  // Protobuf serializers emit fields in ascending field-number order.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.field < b.field; });
  BufferWriter w;
  for (const Entry& e : entries) {
    RETURN_NOT_OK(EncodeField(e.field, *e.value, dict, e.path + ".", &w));
  }
  *out = w.Release();
  return Status::OK();
}

Status EncodeField(uint32_t field, const Value& value,
                   AttributeDictionary* dict, const std::string& prefix,
                   BufferWriter* w) {
  WireType wt = WireTypeFor(value.type());
  w->PutVarint((static_cast<uint64_t>(field) << 3) | wt);
  switch (value.type()) {
    case ValueType::kBool:
      w->PutVarint(value.bool_value() ? 1 : 0);
      break;
    case ValueType::kInt:
      w->PutSignedVarint(value.int_value());
      break;
    case ValueType::kDouble:
      w->PutDouble(value.double_value());
      break;
    case ValueType::kString:
      w->PutLengthPrefixed(value.string_value());
      break;
    case ValueType::kObject: {
      std::string sub;
      RETURN_NOT_OK(EncodeMessage(value, dict, prefix, &sub));
      w->PutLengthPrefixed(sub);
      break;
    }
    case ValueType::kArray: {
      std::string sub;
      RETURN_NOT_OK(EncodeArrayMessage(value, dict, prefix, &sub));
      w->PutLengthPrefixed(sub);
      break;
    }
    case ValueType::kNull:
      return Status::Internal("null field should have been skipped");
  }
  return Status::OK();
}

struct RawField {
  uint32_t field;
  WireType wire_type;
  uint64_t varint = 0;       // kVarint payload
  double fixed64 = 0;        // kFixed64 payload
  std::string_view bytes;    // kLengthDelimited payload
};

/// Reads the next tag/value pair; positions the reader after the value.
Result<RawField> ReadField(BufferReader* r) {
  RawField out;
  ASSIGN_OR_RETURN(uint64_t tag, r->ReadVarint());
  out.field = static_cast<uint32_t>(tag >> 3);
  out.wire_type = static_cast<WireType>(tag & 7);
  switch (out.wire_type) {
    case kVarint: {
      ASSIGN_OR_RETURN(out.varint, r->ReadVarint());
      return out;
    }
    case kFixed64: {
      ASSIGN_OR_RETURN(out.fixed64, r->ReadDouble());
      return out;
    }
    case kLengthDelimited: {
      ASSIGN_OR_RETURN(out.bytes, r->ReadLengthPrefixed());
      return out;
    }
  }
  return Status::ParseError("bad wire type ", static_cast<int>(out.wire_type));
}

Result<Value> DecodeFieldValue(const RawField& raw, ValueType type,
                               const AttributeDictionary& dict);

Result<Value> DecodeArrayMessage(std::string_view data,
                                 const AttributeDictionary& dict) {
  BufferReader r(data);
  std::vector<Value> elements;
  while (!r.AtEnd()) {
    ASSIGN_OR_RETURN(RawField raw, ReadField(&r));
    ValueType type = static_cast<ValueType>(raw.field - 1);
    ASSIGN_OR_RETURN(Value v, DecodeFieldValue(raw, type, dict));
    elements.push_back(std::move(v));
  }
  return Value::Array(std::move(elements));
}

Result<Value> DecodeMessage(std::string_view data,
                            const AttributeDictionary& dict) {
  BufferReader r(data);
  std::vector<Value::Member> members;
  while (!r.AtEnd()) {
    ASSIGN_OR_RETURN(RawField raw, ReadField(&r));
    ASSIGN_OR_RETURN(Attribute attr, dict.Lookup(raw.field - 1));
    ASSIGN_OR_RETURN(Value v, DecodeFieldValue(raw, attr.type, dict));
    size_t dot = attr.key.rfind('.');
    std::string name =
        dot == std::string::npos ? attr.key : attr.key.substr(dot + 1);
    members.emplace_back(std::move(name), std::move(v));
  }
  return Value::Object(std::move(members));
}

Result<Value> DecodeFieldValue(const RawField& raw, ValueType type,
                               const AttributeDictionary& dict) {
  switch (type) {
    case ValueType::kBool:
      return Value::Bool(raw.varint != 0);
    case ValueType::kInt: {
      uint64_t u = raw.varint;
      return Value::Int(static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1)));
    }
    case ValueType::kDouble:
      return Value::Double(raw.fixed64);
    case ValueType::kString:
      return Value::String(std::string(raw.bytes));
    case ValueType::kObject:
      return DecodeMessage(raw.bytes, dict);
    case ValueType::kArray:
      return DecodeArrayMessage(raw.bytes, dict);
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::ParseError("bad value type");
}

}  // namespace

Status ProtoLikeSerializer::Serialize(const Value& doc, std::string* out) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("can only serialize objects");
  }
  return EncodeMessage(doc, &dict_, "", out);
}

Result<Value> ProtoLikeSerializer::Deserialize(std::string_view data) const {
  return DecodeMessage(data, dict_);
}

Result<Value> ProtoLikeSerializer::Extract(std::string_view data,
                                           std::string_view key) const {
  std::vector<Attribute> candidates = dict_.FindAllTypes(key);
  if (candidates.empty()) return Value::Null();
  uint32_t max_field = 0;
  for (const Attribute& a : candidates) {
    max_field = std::max(max_field, a.id + 1);
  }
  // Sequential scan with short-circuit once past the largest candidate field
  // number (fields are in ascending order on the wire).
  BufferReader r(data);
  while (!r.AtEnd()) {
    ASSIGN_OR_RETURN(RawField raw, ReadField(&r));
    if (raw.field > max_field) break;
    for (const Attribute& a : candidates) {
      if (raw.field == a.id + 1) {
        return DecodeFieldValue(raw, a.type, dict_);
      }
    }
  }
  return Value::Null();
}

}  // namespace sinew::serial
