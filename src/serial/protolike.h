// A Protocol-Buffers-like wire format (Appendix A comparator).
//
// Faithful to the aspects of protobuf that drive its Table 4 profile:
//   - tag/value pairs: varint tag = (field_number << 3) | wire_type
//   - wire types: 0 varint (bool, zigzag int), 1 fixed 64-bit (double),
//     2 length-delimited (string, nested message, array message)
//   - fields serialized in ascending field-number order, enabling the
//     short-circuit "passed the expected position" optimization on lookup
//   - no random access: extracting field k requires walking (and
//     length-skipping) every earlier field
//   - aggressive varint bit-packing makes it the smallest format
//
// Field numbers are allocated per (dotted key path, type) from an internal
// dictionary, mirroring how a .proto schema fixes name->number->type.

#ifndef SINEW_SERIAL_PROTOLIKE_H_
#define SINEW_SERIAL_PROTOLIKE_H_

#include <string>
#include <string_view>

#include "serial/dictionary.h"
#include "serial/serializer.h"

namespace sinew::serial {

class ProtoLikeSerializer : public DocumentSerializer {
 public:
  std::string_view name() const override { return "protolike"; }

  Status Serialize(const Value& doc, std::string* out) override;
  Result<Value> Deserialize(std::string_view data) const override;
  Result<Value> Extract(std::string_view data,
                        std::string_view key) const override;

 private:
  SimpleDictionary dict_;
};

}  // namespace sinew::serial

#endif  // SINEW_SERIAL_PROTOLIKE_H_
