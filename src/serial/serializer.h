// Common interface over the three document serializers compared in the
// paper's Appendix A: Sinew's custom format, a Protocol-Buffers-like wire
// format, and an Avro-like schema-resolved format.

#ifndef SINEW_SERIAL_SERIALIZER_H_
#define SINEW_SERIAL_SERIALIZER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/value.h"

namespace sinew::serial {

class DocumentSerializer {
 public:
  virtual ~DocumentSerializer() = default;

  virtual std::string_view name() const = 0;

  /// Schema-discovery pass. Formats with a fixed writer schema (Avro-like)
  /// must see every document before Serialize; the others may ignore this.
  virtual Status ObserveSchema(const Value& doc) {
    (void)doc;
    return Status::OK();
  }

  virtual Status Serialize(const Value& doc, std::string* out) = 0;

  /// Full logical reconstruction of the document.
  virtual Result<Value> Deserialize(std::string_view data) const = 0;

  /// Extracts a single top-level key (any observed type); Null if absent.
  virtual Result<Value> Extract(std::string_view data,
                                std::string_view key) const = 0;
};

}  // namespace sinew::serial

#endif  // SINEW_SERIAL_SERIALIZER_H_
