#include "serial/sinew_format.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/bytes.h"

namespace sinew::serial {

namespace {

constexpr size_t kU32 = sizeof(uint32_t);

uint32_t LoadU32(std::string_view data, size_t offset) {
  uint32_t v;
  std::memcpy(&v, data.data() + offset, kU32);
  return v;
}

Status EncodeScalar(const Value& value, std::string* out) {
  BufferWriter w;
  switch (value.type()) {
    case ValueType::kBool:
      w.PutU8(value.bool_value() ? 1 : 0);
      break;
    case ValueType::kInt:
      w.PutI64(value.int_value());
      break;
    case ValueType::kDouble:
      w.PutDouble(value.double_value());
      break;
    case ValueType::kString:
      w.PutBytes(value.string_value());
      break;
    default:
      return Status::Internal("EncodeScalar on non-scalar ",
                              ValueTypeName(value.type()));
  }
  *out = w.Release();
  return Status::OK();
}

Result<std::string> EncodeArray(const Value& value, AttributeDictionary* dict,
                                const std::string& path_prefix) {
  BufferWriter w;
  const std::vector<Value>& elements = value.array();
  w.PutU32(static_cast<uint32_t>(elements.size()));
  std::vector<std::string> bodies;
  bodies.reserve(elements.size());
  for (const Value& e : elements) {
    ASSIGN_OR_RETURN(std::string body,
                     EncodeValueBody(e, dict, path_prefix));
    w.PutU8(static_cast<uint8_t>(e.type()));
    w.PutU32(static_cast<uint32_t>(body.size()));
    bodies.push_back(std::move(body));
  }
  for (const std::string& b : bodies) w.PutBytes(b);
  return w.Release();
}

Result<Value> DecodeArray(std::string_view bytes,
                          const AttributeDictionary& dict) {
  BufferReader r(bytes);
  ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  // Each element needs at least a 5-byte (tag + length) table entry; a
  // larger count can only come from corrupted input, and allocating for it
  // would be an OOM vector.
  if (count > r.remaining() / 5) {
    return Status::ParseError("array count ", count,
                              " exceeds available bytes");
  }
  std::vector<uint8_t> tags(count);
  std::vector<uint32_t> lengths(count);
  for (uint32_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(tags[i], r.ReadU8());
    ASSIGN_OR_RETURN(lengths[i], r.ReadU32());
  }
  std::vector<Value> elements;
  elements.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(std::string_view body, r.ReadBytes(lengths[i]));
    ASSIGN_OR_RETURN(
        Value v, DecodeValueBody(static_cast<ValueType>(tags[i]), body, dict));
    elements.push_back(std::move(v));
  }
  return Value::Array(std::move(elements));
}

}  // namespace

Result<std::string> EncodeValueBody(const Value& value,
                                    AttributeDictionary* dict,
                                    const std::string& path_prefix) {
  switch (value.type()) {
    case ValueType::kNull:
      return std::string();
    case ValueType::kBool:
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kString: {
      std::string out;
      RETURN_NOT_OK(EncodeScalar(value, &out));
      return out;
    }
    case ValueType::kObject:
      return SerializeDocument(value, dict, path_prefix);
    case ValueType::kArray:
      return EncodeArray(value, dict, path_prefix);
  }
  return Status::Internal("unreachable value type");
}

Result<Value> DecodeValueBody(ValueType type, std::string_view bytes,
                              const AttributeDictionary& dict) {
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      BufferReader r(bytes);
      ASSIGN_OR_RETURN(uint8_t b, r.ReadU8());
      return Value::Bool(b != 0);
    }
    case ValueType::kInt: {
      BufferReader r(bytes);
      ASSIGN_OR_RETURN(int64_t v, r.ReadI64());
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      BufferReader r(bytes);
      ASSIGN_OR_RETURN(double v, r.ReadDouble());
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(std::string(bytes));
    case ValueType::kObject:
      return DeserializeDocument(bytes, dict);
    case ValueType::kArray:
      return DecodeArray(bytes, dict);
  }
  return Status::ParseError("invalid value type tag");
}

Result<std::string> SerializeDocument(const Value& doc,
                                      AttributeDictionary* dict,
                                      const std::string& path_prefix) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("can only serialize objects, got ",
                                   ValueTypeName(doc.type()));
  }
  struct Entry {
    uint32_t id;
    std::string body;
  };
  std::vector<Entry> entries;
  entries.reserve(doc.members().size());
  for (const auto& [key, value] : doc.members()) {
    if (value.is_null()) continue;  // absence encodes NULL
    std::string path = path_prefix + key;
    ASSIGN_OR_RETURN(uint32_t id, dict->Intern(path, value.type()));
    ASSIGN_OR_RETURN(std::string body,
                     EncodeValueBody(value, dict, path + "."));
    // Duplicate keys in one object: last writer wins, as in JSON semantics.
    auto it = std::find_if(entries.begin(), entries.end(),
                           [id](const Entry& e) { return e.id == id; });
    if (it != entries.end()) {
      it->body = std::move(body);
    } else {
      entries.push_back(Entry{id, std::move(body)});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });

  uint32_t n = static_cast<uint32_t>(entries.size());
  size_t body_size = 0;
  for (const Entry& e : entries) body_size += e.body.size();
  BufferWriter w(kU32 * (2 * n + 2) + body_size);
  w.PutU32(n);
  for (const Entry& e : entries) w.PutU32(e.id);
  uint32_t offset = 0;
  for (const Entry& e : entries) {
    w.PutU32(offset);
    offset += static_cast<uint32_t>(e.body.size());
  }
  w.PutU32(offset);  // total body length
  for (const Entry& e : entries) w.PutBytes(e.body);
  return w.Release();
}

Result<Value> DeserializeDocument(std::string_view data,
                                  const AttributeDictionary& dict) {
  DocumentView view(data);
  RETURN_NOT_OK(view.Validate());
  ASSIGN_OR_RETURN(uint32_t n, view.attribute_count());
  std::vector<Value::Member> members;
  members.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t id = view.AttributeIdAt(i);
    ASSIGN_OR_RETURN(Attribute attr, dict.Lookup(id));
    std::optional<std::string_view> bytes = view.Extract(id);
    if (!bytes.has_value()) {
      return Status::Internal("attribute listed in header but not extractable");
    }
    ASSIGN_OR_RETURN(Value v, DecodeValueBody(attr.type, *bytes, dict));
    // Member name: strip any parent path ("user.id" -> "id") so nested
    // deserialization rebuilds the original document shape.
    size_t dot = attr.key.rfind('.');
    std::string name =
        dot == std::string::npos ? attr.key : attr.key.substr(dot + 1);
    members.emplace_back(std::move(name), std::move(v));
  }
  return Value::Object(std::move(members));
}

Status DocumentView::Validate() const {
  if (data_.size() < kU32) return Status::ParseError("document too short");
  uint32_t n = LoadU32(data_, 0);
  size_t header_size = kU32 * (2 + 2 * static_cast<size_t>(n));
  if (data_.size() < header_size) {
    return Status::ParseError("document header truncated");
  }
  uint32_t prev_id = 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t id = LoadU32(data_, kU32 * (1 + i));
    if (i > 0 && id <= prev_id) {
      return Status::ParseError("attribute ids not strictly ascending");
    }
    prev_id = id;
  }
  uint32_t prev_off = 0;
  for (uint32_t i = 0; i <= n; ++i) {
    uint32_t off = LoadU32(data_, kU32 * (1 + n + i));
    if (off < prev_off) return Status::ParseError("offsets not monotone");
    prev_off = off;
  }
  if (header_size + prev_off != data_.size()) {
    return Status::ParseError("body length mismatch");
  }
  return Status::OK();
}

Result<uint32_t> DocumentView::attribute_count() const {
  if (data_.size() < kU32) return Status::ParseError("document too short");
  return LoadU32(data_, 0);
}

uint32_t DocumentView::AttributeIdAt(uint32_t i) const {
  return LoadU32(data_, kU32 * (1 + i));
}

bool DocumentView::Has(uint32_t id) const { return Extract(id).has_value(); }

std::optional<std::string_view> DocumentView::Extract(uint32_t id) const {
  if (data_.size() < kU32) return std::nullopt;
  uint32_t n = LoadU32(data_, 0);
  if (data_.size() < kU32 * (2 + 2 * static_cast<size_t>(n))) {
    return std::nullopt;
  }
  // Binary search the sorted attribute-ID run.
  const char* ids_base = data_.data() + kU32;
  uint32_t lo = 0, hi = n;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    uint32_t mid_id;
    std::memcpy(&mid_id, ids_base + kU32 * mid, kU32);
    if (mid_id < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= n) return std::nullopt;
  uint32_t found;
  std::memcpy(&found, ids_base + kU32 * lo, kU32);
  if (found != id) return std::nullopt;
  size_t offsets_base = kU32 * (1 + n);
  uint32_t begin = LoadU32(data_, offsets_base + kU32 * lo);
  uint32_t end = LoadU32(data_, offsets_base + kU32 * (lo + 1));
  size_t body_base = kU32 * (2 + 2 * static_cast<size_t>(n));
  if (body_base + end > data_.size() || begin > end) return std::nullopt;
  return data_.substr(body_base + begin, end - begin);
}

size_t DocumentView::ExtractMany(const uint32_t* ids, size_t count,
                                 std::optional<std::string_view>* out) const {
  for (size_t i = 0; i < count; ++i) out[i] = std::nullopt;
  if (count == 0 || data_.size() < kU32) return 0;
  uint32_t n = LoadU32(data_, 0);
  size_t body_base = kU32 * (2 + 2 * static_cast<size_t>(n));
  if (data_.size() < body_base || n == 0) return 0;
  const char* ids_base = data_.data() + kU32;
  size_t offsets_base = kU32 * (1 + n);
  size_t found = 0;
  uint32_t pos = 0;
  uint32_t doc_id;
  std::memcpy(&doc_id, ids_base, kU32);
  for (size_t i = 0; i < count && pos < n;) {
    if (doc_id < ids[i]) {
      ++pos;
      if (pos < n) std::memcpy(&doc_id, ids_base + kU32 * pos, kU32);
    } else if (doc_id > ids[i]) {
      ++i;
    } else {
      uint32_t begin = LoadU32(data_, offsets_base + kU32 * pos);
      uint32_t end = LoadU32(data_, offsets_base + kU32 * (pos + 1));
      if (body_base + end <= data_.size() && begin <= end) {
        out[i] = data_.substr(body_base + begin, end - begin);
        ++found;
      }
      ++i;  // pos stays put so a duplicate wanted id matches again
    }
  }
  return found;
}

Result<Value> DocumentView::ExtractValue(uint32_t id,
                                         const AttributeDictionary& dict) const {
  std::optional<std::string_view> bytes = Extract(id);
  if (!bytes.has_value()) return Value::Null();
  ASSIGN_OR_RETURN(Attribute attr, dict.Lookup(id));
  return DecodeValueBody(attr.type, *bytes, dict);
}

std::optional<std::string_view> DocumentView::ExtractPath(
    std::string_view path, ValueType type,
    const AttributeDictionary& dict) const {
  // Direct hit: the full dotted path is an attribute of this document level.
  if (std::optional<uint32_t> id = dict.FindId(path, type)) {
    if (std::optional<std::string_view> v = Extract(*id)) return v;
  }
  // Otherwise descend through enclosing nested objects, trying each dotted
  // prefix as an object-typed attribute of this level.
  for (size_t dot = path.find('.'); dot != std::string_view::npos;
       dot = path.find('.', dot + 1)) {
    std::string_view prefix = path.substr(0, dot);
    std::optional<uint32_t> oid = dict.FindId(prefix, ValueType::kObject);
    if (!oid.has_value()) continue;
    std::optional<std::string_view> sub = Extract(*oid);
    if (!sub.has_value()) continue;
    return DocumentView(*sub).ExtractPath(path, type, dict);
  }
  return std::nullopt;
}

Result<bool> ArrayContainsScalar(std::string_view array_bytes,
                                 const Value& needle) {
  BufferReader r(array_bytes);
  ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (count > r.remaining() / 5) {
    return Status::ParseError("array count ", count,
                              " exceeds available bytes");
  }
  std::vector<std::pair<ValueType, uint32_t>> elements(count);
  for (uint32_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
    ASSIGN_OR_RETURN(uint32_t len, r.ReadU32());
    elements[i] = {static_cast<ValueType>(tag), len};
  }
  for (uint32_t i = 0; i < count; ++i) {
    auto [type, len] = elements[i];
    ASSIGN_OR_RETURN(std::string_view body, r.ReadBytes(len));
    switch (needle.type()) {
      case ValueType::kString:
        if (type == ValueType::kString && body == needle.string_value()) {
          return true;
        }
        break;
      case ValueType::kBool: {
        if (type == ValueType::kBool && len == 1 &&
            (body[0] != 0) == needle.bool_value()) {
          return true;
        }
        break;
      }
      case ValueType::kInt:
      case ValueType::kDouble: {
        double want = needle.AsDouble();
        if (type == ValueType::kInt && len == 8) {
          int64_t v;
          std::memcpy(&v, body.data(), 8);
          if (static_cast<double>(v) == want) return true;
        } else if (type == ValueType::kDouble && len == 8) {
          double v;
          std::memcpy(&v, body.data(), 8);
          if (v == want) return true;
        }
        break;
      }
      default:
        break;
    }
  }
  return false;
}

namespace {

struct ParsedDoc {
  uint32_t n;
  std::vector<uint32_t> ids;
  std::vector<uint32_t> offsets;  // n+1 entries
  std::string_view body;
};

Result<ParsedDoc> ParseHeader(std::string_view data) {
  DocumentView view(data);
  RETURN_NOT_OK(view.Validate());
  ParsedDoc doc;
  doc.n = LoadU32(data, 0);
  doc.ids.resize(doc.n);
  doc.offsets.resize(doc.n + 1);
  for (uint32_t i = 0; i < doc.n; ++i) {
    doc.ids[i] = LoadU32(data, kU32 * (1 + i));
  }
  for (uint32_t i = 0; i <= doc.n; ++i) {
    doc.offsets[i] = LoadU32(data, kU32 * (1 + doc.n + i));
  }
  doc.body = data.substr(kU32 * (2 + 2 * static_cast<size_t>(doc.n)));
  return doc;
}

std::string Rebuild(const std::vector<uint32_t>& ids,
                    const std::vector<std::string_view>& bodies) {
  uint32_t n = static_cast<uint32_t>(ids.size());
  size_t body_size = 0;
  for (std::string_view b : bodies) body_size += b.size();
  BufferWriter w(kU32 * (2 * n + 2) + body_size);
  w.PutU32(n);
  for (uint32_t id : ids) w.PutU32(id);
  uint32_t offset = 0;
  for (std::string_view b : bodies) {
    w.PutU32(offset);
    offset += static_cast<uint32_t>(b.size());
  }
  w.PutU32(offset);
  for (std::string_view b : bodies) w.PutBytes(b);
  return w.Release();
}

}  // namespace

Result<std::string> SetAttribute(std::string_view data, uint32_t id,
                                 std::string_view encoded) {
  ASSIGN_OR_RETURN(ParsedDoc doc, ParseHeader(data));
  std::vector<uint32_t> ids;
  std::vector<std::string_view> bodies;
  ids.reserve(doc.n + 1);
  bodies.reserve(doc.n + 1);
  bool inserted = false;
  for (uint32_t i = 0; i < doc.n; ++i) {
    std::string_view body =
        doc.body.substr(doc.offsets[i], doc.offsets[i + 1] - doc.offsets[i]);
    if (doc.ids[i] == id) {
      ids.push_back(id);
      bodies.push_back(encoded);
      inserted = true;
    } else {
      if (!inserted && doc.ids[i] > id) {
        ids.push_back(id);
        bodies.push_back(encoded);
        inserted = true;
      }
      ids.push_back(doc.ids[i]);
      bodies.push_back(body);
    }
  }
  if (!inserted) {
    ids.push_back(id);
    bodies.push_back(encoded);
  }
  return Rebuild(ids, bodies);
}

Result<std::string> RemoveAttribute(std::string_view data, uint32_t id) {
  ASSIGN_OR_RETURN(ParsedDoc doc, ParseHeader(data));
  std::vector<uint32_t> ids;
  std::vector<std::string_view> bodies;
  ids.reserve(doc.n);
  bodies.reserve(doc.n);
  for (uint32_t i = 0; i < doc.n; ++i) {
    if (doc.ids[i] == id) continue;
    ids.push_back(doc.ids[i]);
    bodies.push_back(
        doc.body.substr(doc.offsets[i], doc.offsets[i + 1] - doc.offsets[i]));
  }
  return Rebuild(ids, bodies);
}

}  // namespace sinew::serial
