// Sinew's custom serialization format (paper Section 4.1, Figure 5).
//
// Layout of a serialized document:
//
//   [u32 n]                          number of attributes
//   [n   x u32]                      attribute IDs, ascending
//   [n+1 x u32]                      byte offsets of each value within the
//                                    body; entry n is the body length, so
//                                    value i spans [off[i], off[i+1])
//   [body bytes]
//
// IDs and offsets are stored as two separate runs (not interleaved) to
// maximise cache locality of the binary search over IDs. Key lookup is
// O(log n); extraction is the lookup plus one memcpy-free view of the value
// bytes.
//
// Value encodings (the attribute ID implies the type via the dictionary):
//   bool    1 byte (0/1)
//   int     8-byte little-endian two's complement
//   double  8-byte IEEE-754 little endian
//   string  raw bytes (length implied by the offset table)
//   object  a nested serialized document whose header uses the dictionary
//           IDs of the dotted sub-paths ("user.id")
//   array   u32 count, count x (u8 type tag + u32 length), then payloads;
//           element payloads use the same encodings (nested arrays tagged
//           kArray, nested objects tagged kObject)
//
// Explicit JSON nulls are not stored: absence of an ID means NULL, exactly
// as in the paper.

#ifndef SINEW_SERIAL_SINEW_FORMAT_H_
#define SINEW_SERIAL_SINEW_FORMAT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/value.h"
#include "serial/dictionary.h"

namespace sinew::serial {

/// A typed view of one extracted value: the raw bytes plus the declared type.
struct ExtractedValue {
  ValueType type;
  std::string_view bytes;
};

/// Serializes `doc` (must be an object). New keys are interned into `dict`.
/// `path_prefix` is prepended to keys when interning (used for the recursive
/// nested-object case; leave empty for top-level documents).
Result<std::string> SerializeDocument(const Value& doc,
                                      AttributeDictionary* dict,
                                      const std::string& path_prefix = "");

/// Reassembles the full logical document (inverse of SerializeDocument up to
/// member ordering, which becomes attribute-ID order).
Result<Value> DeserializeDocument(std::string_view data,
                                  const AttributeDictionary& dict);

/// Encodes a single standalone value with the array-element encoding
/// (used by the materializer when moving reservoir values into columns and
/// by the update path).
Result<std::string> EncodeValueBody(const Value& value,
                                    AttributeDictionary* dict,
                                    const std::string& path_prefix = "");

/// Decodes a single value given its declared type.
Result<Value> DecodeValueBody(ValueType type, std::string_view bytes,
                              const AttributeDictionary& dict);

/// Zero-copy random-access reader over one serialized document.
class DocumentView {
 public:
  explicit DocumentView(std::string_view data) : data_(data) {}

  /// Validates the header (bounds, sortedness, monotone offsets).
  Status Validate() const;

  /// Number of attributes present.
  Result<uint32_t> attribute_count() const;

  /// Attribute ID at header position i (no bounds check beyond Validate).
  uint32_t AttributeIdAt(uint32_t i) const;

  /// True if the document contains `id`. O(log n).
  bool Has(uint32_t id) const;

  /// Raw value bytes for `id`, or nullopt if absent. O(log n).
  std::optional<std::string_view> Extract(uint32_t id) const;

  /// Batched extraction: fills out[i] with the value bytes of ids[i], or
  /// nullopt when absent. `ids` must be ascending (equal adjacent ids are
  /// allowed and each receives the shared value); the wanted list is
  /// merge-joined against the document's sorted ID run in one forward pass,
  /// so the header is parsed once for all attributes instead of once per
  /// Extract call. Returns the number of ids found.
  size_t ExtractMany(const uint32_t* ids, size_t count,
                     std::optional<std::string_view>* out) const;

  /// Extracts and decodes `id` as its dictionary-declared type. Returns
  /// kNull Value if the attribute is absent.
  Result<Value> ExtractValue(uint32_t id, const AttributeDictionary& dict) const;

  /// Follows a dotted path ("user.id"): resolves the (path, type) attribute
  /// in the *innermost* enclosing document. Returns nullopt when any step is
  /// absent. The declared `type` selects among multi-typed attributes.
  std::optional<std::string_view> ExtractPath(std::string_view path,
                                              ValueType type,
                                              const AttributeDictionary& dict) const;

 private:
  std::string_view data_;
};

/// Zero-materialization array containment: walks the serialized array's
/// element table and compares payload bytes against a scalar needle
/// (cross-numeric int/double equality included). Collection elements never
/// match a scalar needle.
Result<bool> ArrayContainsScalar(std::string_view array_bytes,
                                 const Value& needle);

/// Functional-update helpers used by the UPDATE rewrite path: produce a new
/// serialized document with one attribute set / removed. `encoded` must use
/// the value encoding described above for the attribute's declared type.
Result<std::string> SetAttribute(std::string_view data, uint32_t id,
                                 std::string_view encoded);
Result<std::string> RemoveAttribute(std::string_view data, uint32_t id);

}  // namespace sinew::serial

#endif  // SINEW_SERIAL_SINEW_FORMAT_H_
