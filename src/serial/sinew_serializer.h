// DocumentSerializer adapter over the Sinew reservoir format + a private
// attribute dictionary (the role the catalog plays inside the full system).

#ifndef SINEW_SERIAL_SINEW_SERIALIZER_H_
#define SINEW_SERIAL_SINEW_SERIALIZER_H_

#include <string>
#include <string_view>

#include "serial/dictionary.h"
#include "serial/serializer.h"
#include "serial/sinew_format.h"

namespace sinew::serial {

class SinewSerializer : public DocumentSerializer {
 public:
  std::string_view name() const override { return "sinew"; }

  Status Serialize(const Value& doc, std::string* out) override {
    ASSIGN_OR_RETURN(*out, SerializeDocument(doc, &dict_));
    return Status::OK();
  }

  Result<Value> Deserialize(std::string_view data) const override {
    return DeserializeDocument(data, dict_);
  }

  Result<Value> Extract(std::string_view data,
                        std::string_view key) const override {
    DocumentView view(data);
    for (const Attribute& attr : dict_.FindAllTypes(key)) {
      if (std::optional<std::string_view> bytes = view.Extract(attr.id)) {
        return DecodeValueBody(attr.type, *bytes, dict_);
      }
    }
    return Value::Null();
  }

  const SimpleDictionary& dictionary() const { return dict_; }
  SimpleDictionary* mutable_dictionary() { return &dict_; }

 private:
  SimpleDictionary dict_;
};

}  // namespace sinew::serial

#endif  // SINEW_SERIAL_SINEW_SERIALIZER_H_
