#include "sinew/array_offload.h"

#include <algorithm>
#include <map>

#include "engine/table.h"
#include "serial/sinew_format.h"
#include "sinew/loader.h"
#include "sinew/sinew_db.h"

namespace sinew {

namespace {

constexpr size_t kParentSlot = 0;
constexpr size_t kIdxSlot = 1;
constexpr size_t kTextSlot = 2;
constexpr size_t kNumSlot = 3;
constexpr size_t kBoolSlot = 4;

engine::ColumnType SubKeyColumnType(ValueType type) {
  switch (type) {
    case ValueType::kInt:
    case ValueType::kDouble:
      return engine::ColumnType::kDouble;
    case ValueType::kBool:
      return engine::ColumnType::kBool;
    default:
      return engine::ColumnType::kText;
  }
}

}  // namespace

std::string ArraySideTableName(const std::string& table,
                               const std::string& key) {
  std::string out = table + "__" + key;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

Result<uint64_t> BuildArraySideTable(SinewDb* db, const std::string& table,
                                     const std::string& key) {
  if (!db->catalog()->HasTable(table)) {
    return Status::NotFound("table ", table, " is not a Sinew table");
  }
  std::optional<uint32_t> attr_id =
      db->catalog()->FindId(key, ValueType::kArray);
  if (!attr_id.has_value()) {
    return Status::NotFound("no array attribute named ", key, " in ", table);
  }
  ASSIGN_OR_RETURN(engine::Table * source,
                   db->engine()->catalog()->GetTable(table));
  std::optional<size_t> data_slot =
      source->schema().FindColumn(kReservoirColumn);
  std::optional<size_t> column_slot = source->schema().FindColumn(key);

  // Pass 1: collect elements per row and discover object sub-keys ("the
  // element can be divided into separate columns").
  struct ElementRow {
    uint64_t parent;
    int64_t idx;
    Value element;
  };
  std::vector<ElementRow> elements;
  std::map<std::string, ValueType> sub_keys;  // insertion-agnostic order
  uint64_t slots = source->RowSlotCount();
  for (uint64_t rid = 0; rid < slots; ++rid) {
    Result<engine::DatumRow> row = source->ReadRow(rid);
    if (!row.ok()) continue;
    std::optional<std::string_view> bytes;
    if (column_slot.has_value() && !(*row)[*column_slot].is_null()) {
      bytes = (*row)[*column_slot].str();
    } else if (data_slot.has_value() && !(*row)[*data_slot].is_null()) {
      serial::DocumentView view((*row)[*data_slot].str());
      bytes = view.ExtractPath(key, ValueType::kArray, *db->catalog());
    }
    if (!bytes.has_value()) continue;
    ASSIGN_OR_RETURN(Value array,
                     serial::DecodeValueBody(ValueType::kArray, *bytes,
                                             *db->catalog()));
    int64_t idx = 0;
    for (Value& element : array.mutable_array()) {
      if (element.is_object()) {
        for (const auto& [sub, value] : element.members()) {
          if (value.is_object() || value.is_array() || value.is_null()) {
            continue;  // only scalar sub-keys become columns
          }
          sub_keys.try_emplace(sub, value.type());
        }
      }
      elements.push_back(ElementRow{rid, idx++, std::move(element)});
    }
  }

  // (Re)create the side table.
  std::string side_name = ArraySideTableName(table, key);
  (void)db->engine()->catalog()->DropTable(side_name);
  engine::Schema schema;
  RETURN_NOT_OK(schema.AddColumn({"parent", engine::ColumnType::kInt}));
  RETURN_NOT_OK(schema.AddColumn({"idx", engine::ColumnType::kInt}));
  RETURN_NOT_OK(schema.AddColumn({"elem_text", engine::ColumnType::kText}));
  RETURN_NOT_OK(schema.AddColumn({"elem_num", engine::ColumnType::kDouble}));
  RETURN_NOT_OK(schema.AddColumn({"elem_bool", engine::ColumnType::kBool}));
  std::map<std::string, size_t> sub_slot;
  for (const auto& [sub, type] : sub_keys) {
    sub_slot[sub] = schema.num_slots();
    RETURN_NOT_OK(schema.AddColumn({sub, SubKeyColumnType(type)}));
  }
  ASSIGN_OR_RETURN(engine::Table * side,
                   db->engine()->catalog()->CreateTable(side_name,
                                                        std::move(schema)));

  for (const ElementRow& e : elements) {
    engine::DatumRow row(side->schema().num_slots());
    row[kParentSlot] = engine::Datum::Int(static_cast<int64_t>(e.parent));
    row[kIdxSlot] = engine::Datum::Int(e.idx);
    switch (e.element.type()) {
      case ValueType::kString:
        row[kTextSlot] = engine::Datum::Text(e.element.string_value());
        break;
      case ValueType::kInt:
      case ValueType::kDouble:
        row[kNumSlot] = engine::Datum::Double(e.element.AsDouble());
        break;
      case ValueType::kBool:
        row[kBoolSlot] = engine::Datum::Bool(e.element.bool_value());
        break;
      case ValueType::kObject:
        for (const auto& [sub, value] : e.element.members()) {
          auto it = sub_slot.find(sub);
          if (it == sub_slot.end()) continue;
          switch (side->schema().columns()[it->second].type) {
            case engine::ColumnType::kDouble:
              if (value.is_number()) {
                row[it->second] = engine::Datum::Double(value.AsDouble());
              }
              break;
            case engine::ColumnType::kBool:
              if (value.is_bool()) {
                row[it->second] = engine::Datum::Bool(value.bool_value());
              }
              break;
            default:
              if (value.is_string()) {
                row[it->second] = engine::Datum::Text(value.string_value());
              }
          }
        }
        break;
      default:
        break;  // nested arrays / nulls: position recorded, value columns NULL
    }
    RETURN_NOT_OK(side->AppendRow(row).status());
  }
  // Aggregate statistics over the element collection (the paper's stated
  // benefit of the separate-table layout).
  RETURN_NOT_OK(side->Analyze());
  return static_cast<uint64_t>(elements.size());
}

}  // namespace sinew
