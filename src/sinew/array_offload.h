// Array storage options (paper Section 4.2).
//
// By default Sinew stores an array attribute serialized (inside the
// reservoir, or as its own serialized column once materialized). For arrays
// that are logically unordered collections — or arrays of nested objects —
// the paper lets the user ask for the elements to live in a separate table
// of (parent id, index, element) tuples, so containment and other
// predicates "reduce to trivial filters" and the RDBMS keeps aggregate
// statistics over the elements.
//
// BuildArraySideTable materializes that layout: it creates
// `<table>__<key>` with columns
//     parent INT, idx INT, elem_text TEXT, elem_num DOUBLE, elem_bool BOOL
// plus, for arrays of nested objects, one column per scalar sub-key
// ("element divided into separate columns"), fills it from the current rows
// and ANALYZEs it. Queries join it explicitly, as the paper prescribes:
//
//   SELECT t.str1 FROM nobench_main t, nobench_main__nested_arr a
//   WHERE a.parent = t.__rid AND a.elem_text = 'XXXXX'
//
// The side table is a one-shot materialization of the current state
// (rebuild after further loads); the primary copy remains the serialized
// attribute.

#ifndef SINEW_SINEW_ARRAY_OFFLOAD_H_
#define SINEW_SINEW_ARRAY_OFFLOAD_H_

#include <string>

#include "common/result.h"

namespace sinew {

class SinewDb;

/// Builds (or rebuilds) the side table for array attribute `key` of `table`.
/// Returns the number of element tuples produced.
Result<uint64_t> BuildArraySideTable(SinewDb* db, const std::string& table,
                                     const std::string& key);

/// Side-table naming convention.
std::string ArraySideTableName(const std::string& table,
                               const std::string& key);

}  // namespace sinew

#endif  // SINEW_SINEW_ARRAY_OFFLOAD_H_
