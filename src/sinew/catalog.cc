#include "sinew/catalog.h"

namespace sinew {

Result<uint32_t> AttributeCatalog::Intern(std::string_view key,
                                          ValueType type) {
  std::lock_guard lock(mutex_);
  return dict_.Intern(key, type);
}

std::optional<uint32_t> AttributeCatalog::FindId(std::string_view key,
                                                 ValueType type) const {
  std::lock_guard lock(mutex_);
  return dict_.FindId(key, type);
}

Result<serial::Attribute> AttributeCatalog::Lookup(uint32_t id) const {
  std::lock_guard lock(mutex_);
  return dict_.Lookup(id);
}

std::vector<serial::Attribute> AttributeCatalog::FindAllTypes(
    std::string_view key) const {
  std::lock_guard lock(mutex_);
  return dict_.FindAllTypes(key);
}

size_t AttributeCatalog::size() const {
  std::lock_guard lock(mutex_);
  return dict_.size();
}

void AttributeCatalog::RegisterTable(const std::string& table) {
  std::lock_guard lock(mutex_);
  tables_.try_emplace(table);
  latches_.try_emplace(table, std::make_unique<std::mutex>());
}

bool AttributeCatalog::HasTable(const std::string& table) const {
  std::lock_guard lock(mutex_);
  return tables_.count(table) != 0;
}

void AttributeCatalog::AddOccurrences(const std::string& table,
                                      uint32_t attr_id, uint64_t delta) {
  std::lock_guard lock(mutex_);
  AttributeState& state = tables_[table][attr_id];
  state.attr_id = attr_id;
  state.count += delta;
}

Status AttributeCatalog::SetMaterialized(const std::string& table,
                                         uint32_t attr_id, bool materialized) {
  std::lock_guard lock(mutex_);
  auto t = tables_.find(table);
  if (t == tables_.end()) return Status::NotFound("table ", table);
  auto a = t->second.find(attr_id);
  if (a == t->second.end()) {
    return Status::NotFound("attribute ", attr_id, " in table ", table);
  }
  if (a->second.materialized != materialized) {
    a->second.materialized = materialized;
    a->second.dirty = true;  // data movement now pending
  }
  return Status::OK();
}

Status AttributeCatalog::SetDirty(const std::string& table, uint32_t attr_id,
                                  bool dirty) {
  std::lock_guard lock(mutex_);
  auto t = tables_.find(table);
  if (t == tables_.end()) return Status::NotFound("table ", table);
  auto a = t->second.find(attr_id);
  if (a == t->second.end()) {
    return Status::NotFound("attribute ", attr_id, " in table ", table);
  }
  a->second.dirty = dirty;
  return Status::OK();
}

std::optional<AttributeState> AttributeCatalog::GetState(
    const std::string& table, uint32_t attr_id) const {
  std::lock_guard lock(mutex_);
  auto t = tables_.find(table);
  if (t == tables_.end()) return std::nullopt;
  auto a = t->second.find(attr_id);
  if (a == t->second.end()) return std::nullopt;
  return a->second;
}

std::vector<AttributeState> AttributeCatalog::TableAttributes(
    const std::string& table) const {
  std::lock_guard lock(mutex_);
  std::vector<AttributeState> out;
  auto t = tables_.find(table);
  if (t == tables_.end()) return out;
  out.reserve(t->second.size());
  for (const auto& [id, state] : t->second) out.push_back(state);
  return out;
}

std::vector<uint32_t> AttributeCatalog::DirtyAttributes(
    const std::string& table) const {
  std::lock_guard lock(mutex_);
  std::vector<uint32_t> out;
  auto t = tables_.find(table);
  if (t == tables_.end()) return out;
  for (const auto& [id, state] : t->second) {
    if (state.dirty) out.push_back(id);
  }
  return out;
}

std::vector<std::string> AttributeCatalog::TableNames() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, attrs] : tables_) {
    (void)attrs;
    out.push_back(name);
  }
  return out;
}

std::mutex& AttributeCatalog::MaintenanceLatch(const std::string& table) {
  std::lock_guard lock(mutex_);
  auto& latch = latches_[table];
  if (latch == nullptr) latch = std::make_unique<std::mutex>();
  return *latch;
}

void AttributeCatalog::Clear() {
  std::lock_guard lock(mutex_);
  dict_.Clear();
  tables_.clear();
  latches_.clear();
}

}  // namespace sinew
