#include "sinew/catalog.h"

namespace sinew {

Result<uint32_t> AttributeCatalog::Intern(std::string_view key,
                                          ValueType type) {
  std::lock_guard lock(mutex_);
  const size_t before = dict_.size();
  Result<uint32_t> id = dict_.Intern(key, type);
  if (id.ok() && dict_.size() != before) {
    version_.fetch_add(1, std::memory_order_release);
  }
  return id;
}

std::optional<uint32_t> AttributeCatalog::FindId(std::string_view key,
                                                 ValueType type) const {
  std::lock_guard lock(mutex_);
  return dict_.FindId(key, type);
}

Result<serial::Attribute> AttributeCatalog::Lookup(uint32_t id) const {
  std::lock_guard lock(mutex_);
  return dict_.Lookup(id);
}

std::vector<serial::Attribute> AttributeCatalog::FindAllTypes(
    std::string_view key) const {
  std::lock_guard lock(mutex_);
  return dict_.FindAllTypes(key);
}

size_t AttributeCatalog::size() const {
  std::lock_guard lock(mutex_);
  return dict_.size();
}

void AttributeCatalog::RegisterTable(const std::string& table) {
  std::lock_guard lock(mutex_);
  tables_.try_emplace(table);
  latches_.try_emplace(table, std::make_unique<std::mutex>());
}

bool AttributeCatalog::HasTable(const std::string& table) const {
  std::lock_guard lock(mutex_);
  return tables_.count(table) != 0;
}

void AttributeCatalog::AddOccurrences(const std::string& table,
                                      uint32_t attr_id, uint64_t delta) {
  std::lock_guard lock(mutex_);
  AttributeState& state = tables_[table][attr_id];
  state.attr_id = attr_id;
  state.count += delta;
}

Status AttributeCatalog::SetMaterialized(const std::string& table,
                                         uint32_t attr_id, bool materialized) {
  std::lock_guard lock(mutex_);
  auto t = tables_.find(table);
  if (t == tables_.end()) return Status::NotFound("table ", table);
  auto a = t->second.find(attr_id);
  if (a == t->second.end()) {
    return Status::NotFound("attribute ", attr_id, " in table ", table);
  }
  if (a->second.materialized != materialized) {
    a->second.materialized = materialized;
    a->second.dirty = true;  // data movement now pending
  }
  return Status::OK();
}

Status AttributeCatalog::SetDirty(const std::string& table, uint32_t attr_id,
                                  bool dirty) {
  std::lock_guard lock(mutex_);
  auto t = tables_.find(table);
  if (t == tables_.end()) return Status::NotFound("table ", table);
  auto a = t->second.find(attr_id);
  if (a == t->second.end()) {
    return Status::NotFound("attribute ", attr_id, " in table ", table);
  }
  a->second.dirty = dirty;
  return Status::OK();
}

std::optional<AttributeState> AttributeCatalog::GetState(
    const std::string& table, uint32_t attr_id) const {
  std::lock_guard lock(mutex_);
  auto t = tables_.find(table);
  if (t == tables_.end()) return std::nullopt;
  auto a = t->second.find(attr_id);
  if (a == t->second.end()) return std::nullopt;
  return a->second;
}

std::vector<AttributeState> AttributeCatalog::TableAttributes(
    const std::string& table) const {
  std::lock_guard lock(mutex_);
  std::vector<AttributeState> out;
  auto t = tables_.find(table);
  if (t == tables_.end()) return out;
  out.reserve(t->second.size());
  for (const auto& [id, state] : t->second) out.push_back(state);
  return out;
}

std::vector<uint32_t> AttributeCatalog::DirtyAttributes(
    const std::string& table) const {
  std::lock_guard lock(mutex_);
  std::vector<uint32_t> out;
  auto t = tables_.find(table);
  if (t == tables_.end()) return out;
  for (const auto& [id, state] : t->second) {
    if (state.dirty) out.push_back(id);
  }
  return out;
}

std::vector<std::string> AttributeCatalog::TableNames() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, attrs] : tables_) {
    (void)attrs;
    out.push_back(name);
  }
  return out;
}

void AttributeCatalog::RecordHeat(const std::string& table, uint32_t attr_id,
                                  uint64_t requests, uint64_t strip_served,
                                  uint64_t reservoir_served,
                                  uint64_t decode_ns,
                                  uint64_t query_ordinal) {
  std::lock_guard lock(mutex_);
  AttrHeat& heat = heat_[table][attr_id];
  heat.extract_requests += requests;
  heat.strip_served += strip_served;
  heat.reservoir_served += reservoir_served;
  heat.decode_ns += decode_ns;
  if (query_ordinal > heat.last_touched_ordinal) {
    heat.last_touched_ordinal = query_ordinal;
  }
}

std::map<uint32_t, AttrHeat> AttributeCatalog::HeatSnapshot(
    const std::string& table) const {
  std::lock_guard lock(mutex_);
  auto t = heat_.find(table);
  return t == heat_.end() ? std::map<uint32_t, AttrHeat>{} : t->second;
}

std::mutex& AttributeCatalog::MaintenanceLatch(const std::string& table) {
  std::lock_guard lock(mutex_);
  auto& latch = latches_[table];
  if (latch == nullptr) latch = std::make_unique<std::mutex>();
  return *latch;
}

std::map<std::string, AttributeCatalog::ResolvedPath, std::less<>>
AttributeCatalog::ResolveBatch(const std::string& table,
                               const std::vector<std::string>& paths) const {
  std::lock_guard lock(mutex_);
  std::map<std::string, ResolvedPath, std::less<>> out;
  auto t = tables_.find(table);
  auto state_of = [&](uint32_t id) -> std::optional<AttributeState> {
    if (t == tables_.end()) return std::nullopt;
    auto a = t->second.find(id);
    if (a == t->second.end()) return std::nullopt;
    return a->second;
  };
  for (const std::string& path : paths) {
    if (out.count(path) != 0) continue;
    ResolvedPath resolved;
    resolved.types = dict_.FindAllTypes(path);
    for (const serial::Attribute& attr : resolved.types) {
      resolved.states.push_back(state_of(attr.id));
    }
    for (size_t dot = path.find('.'); dot != std::string::npos;
         dot = path.find('.', dot + 1)) {
      std::optional<uint32_t> oid =
          dict_.FindId(std::string_view(path).substr(0, dot),
                       ValueType::kObject);
      resolved.prefix_ids.push_back(oid);
      resolved.prefix_states.push_back(
          oid.has_value() ? state_of(*oid) : std::nullopt);
    }
    out.emplace(path, std::move(resolved));
  }
  return out;
}

void AttributeCatalog::Clear() {
  std::lock_guard lock(mutex_);
  dict_.Clear();
  tables_.clear();
  heat_.clear();
  latches_.clear();
  version_.fetch_add(1, std::memory_order_release);
}

}  // namespace sinew
