// Sinew's catalog (paper Section 3.1.2, Figure 4).
//
// Two parts, exactly as in the paper:
//  (a) a global attribute dictionary mapping (key path, type) -> attribute ID
//      — the dictionary the serialization format compresses key names with;
//  (b) per-table attribute state: occurrence counts, whether the attribute's
//      target representation is a physical column or a virtual (reservoir)
//      one, and the dirty flag that says data movement is still pending.
//
// The catalog also owns the per-table maintenance latch that keeps the
// loader and the column materializer from running concurrently
// (Section 3.1.4).

#ifndef SINEW_SINEW_CATALOG_H_
#define SINEW_SINEW_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "serial/dictionary.h"

namespace sinew {

/// Per-table, per-attribute bookkeeping (Figure 4b).
struct AttributeState {
  uint32_t attr_id = 0;
  /// Rows of the table containing this attribute.
  uint64_t count = 0;
  /// Target representation: true = physical column.
  bool materialized = false;
  /// Data movement pending: values may be split between the physical column
  /// and the reservoir; readers must COALESCE.
  bool dirty = false;
};

/// Per-table, per-attribute access telemetry, aggregated across queries —
/// the workload signal the adaptive materializer (ROADMAP item 3) reads.
/// Fed by the engine's extract operator through the UdfRegistry heat sink;
/// surfaced as the `sinew_attribute_stats` system table.
struct AttrHeat {
  uint64_t extract_requests = 0;   // lanes that asked for this attribute
  uint64_t strip_served = 0;       // lanes answered from columnar strips
  uint64_t reservoir_served = 0;   // lanes answered by reservoir decode
  uint64_t decode_ns = 0;          // cumulative reservoir decode time share
  uint64_t last_touched_ordinal = 0;  // query ordinal of the latest access
};

class AttributeCatalog : public serial::AttributeDictionary {
 public:
  // --- global dictionary (Figure 4a); thread-safe ---
  Result<uint32_t> Intern(std::string_view key, ValueType type) override;
  std::optional<uint32_t> FindId(std::string_view key,
                                 ValueType type) const override;
  Result<serial::Attribute> Lookup(uint32_t id) const override;
  std::vector<serial::Attribute> FindAllTypes(std::string_view key) const override;
  size_t size() const override;

  /// Monotone dictionary version, bumped whenever Intern adds a new
  /// attribute (and on Clear). Lock-free, so per-query resolution caches can
  /// validate their entries without touching the catalog mutex on every row.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Everything the query rewriter needs to know about one dotted path:
  /// every typed variant, its per-table state, and the object attribute id
  /// (plus state) of each dotted prefix, shortest first.
  struct ResolvedPath {
    std::vector<serial::Attribute> types;
    std::vector<std::optional<AttributeState>> states;  // parallel to types
    std::vector<std::optional<uint32_t>> prefix_ids;
    std::vector<std::optional<AttributeState>> prefix_states;
  };

  /// Bind-time batch resolution: resolves every path for `table` under a
  /// single mutex acquisition, instead of one lock round-trip per path per
  /// lookup kind per row. The rewriter calls this once per query.
  std::map<std::string, ResolvedPath, std::less<>> ResolveBatch(
      const std::string& table, const std::vector<std::string>& paths) const;

  // --- per-table state ---
  /// Registers a table (idempotent).
  void RegisterTable(const std::string& table);
  bool HasTable(const std::string& table) const;

  /// Bumps the occurrence count of an attribute in a table.
  void AddOccurrences(const std::string& table, uint32_t attr_id,
                      uint64_t delta);

  /// Sets the target representation; flips the dirty bit when it changes.
  Status SetMaterialized(const std::string& table, uint32_t attr_id,
                         bool materialized);
  Status SetDirty(const std::string& table, uint32_t attr_id, bool dirty);

  std::optional<AttributeState> GetState(const std::string& table,
                                         uint32_t attr_id) const;
  /// Snapshot of all attribute states of a table, ordered by attribute ID.
  std::vector<AttributeState> TableAttributes(const std::string& table) const;
  /// Attribute IDs currently marked dirty.
  std::vector<uint32_t> DirtyAttributes(const std::string& table) const;

  /// Names of all registered tables.
  std::vector<std::string> TableNames() const;

  // --- attribute heat telemetry ---
  /// Folds one access sample into the per-(table, attribute) heat entry.
  /// `query_ordinal` stamps recency (0 = unknown, keeps the old stamp).
  void RecordHeat(const std::string& table, uint32_t attr_id,
                  uint64_t requests, uint64_t strip_served,
                  uint64_t reservoir_served, uint64_t decode_ns,
                  uint64_t query_ordinal);
  /// Heat entries of one table, keyed by attribute ID.
  std::map<uint32_t, AttrHeat> HeatSnapshot(const std::string& table) const;

  /// The loader/materializer mutual-exclusion latch for a table.
  std::mutex& MaintenanceLatch(const std::string& table);

  /// Forgets the dictionary and all per-table state, returning the catalog to
  /// freshly-constructed. Only safe when no loader/materializer is running
  /// (invalidates MaintenanceLatch references); used to make a failed
  /// persistence restore failure-atomic.
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::atomic<uint64_t> version_{1};
  serial::SimpleDictionary dict_;
  std::map<std::string, std::map<uint32_t, AttributeState>> tables_;
  std::map<std::string, std::map<uint32_t, AttrHeat>> heat_;
  // Stable-address latches (std::mutex is not movable).
  std::map<std::string, std::unique_ptr<std::mutex>> latches_;
};

}  // namespace sinew

#endif  // SINEW_SINEW_CATALOG_H_
