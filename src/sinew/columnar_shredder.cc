#include "sinew/columnar_shredder.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "engine/row_codec.h"
#include "serial/sinew_format.h"
#include "sinew/loader.h"

namespace sinew {

namespace {

using engine::ColumnarSegment;
using engine::kStripRows;
using engine::StripColumn;

struct Candidate {
  serial::Attribute attr;
  std::vector<uint32_t> prefix_ids;
  uint64_t count = 0;
};

bool IsScalar(ValueType t) {
  return t == ValueType::kBool || t == ValueType::kInt ||
         t == ValueType::kDouble || t == ValueType::kString;
}

/// Shreds one serialized document into the strip set: one prefix-chain
/// descent per candidate group, one ExtractMany header pass per group —
/// exactly the access pattern of ExtractGroupFromDoc in the executor's
/// batched extractor, so strip values match reservoir decodes bit for bit.
Status ShredDocument(const AttributeCatalog& catalog,
                     const std::vector<Candidate>& candidates,
                     std::string_view doc, uint32_t offset,
                     std::vector<ColumnStrip>* strips,
                     std::vector<uint32_t>* wanted_scratch,
                     std::vector<std::optional<std::string_view>>* values_scratch) {
  size_t g = 0;
  while (g < candidates.size()) {
    size_t h = g;
    while (h < candidates.size() &&
           candidates[h].prefix_ids == candidates[g].prefix_ids) {
      ++h;
    }
    std::string_view current = doc;
    bool present = true;
    for (uint32_t pid : candidates[g].prefix_ids) {
      serial::DocumentView view(current);
      std::optional<std::string_view> sub = view.Extract(pid);
      if (!sub.has_value()) {
        present = false;
        break;
      }
      current = *sub;
    }
    if (!present) {
      g = h;
      continue;
    }
    wanted_scratch->clear();
    for (size_t k = g; k < h; ++k) {
      wanted_scratch->push_back(candidates[k].attr.id);
    }
    values_scratch->assign(h - g, std::nullopt);
    serial::DocumentView view(current);
    view.ExtractMany(wanted_scratch->data(), wanted_scratch->size(),
                     values_scratch->data());
    for (size_t k = g; k < h; ++k) {
      const std::optional<std::string_view>& bytes = (*values_scratch)[k - g];
      if (!bytes.has_value()) continue;
      const ValueType type = candidates[k].attr.type;
      ASSIGN_OR_RETURN(Value v, serial::DecodeValueBody(type, *bytes, catalog));
      ColumnStrip* strip = &(*strips)[k];
      switch (type) {
        case ValueType::kBool:
          engine::StripAppend(strip, offset, v.bool_value());
          break;
        case ValueType::kInt:
          engine::StripAppend(strip, offset, v.int_value());
          break;
        case ValueType::kDouble:
          engine::StripAppend(strip, offset, v.double_value());
          break;
        case ValueType::kString:
          engine::StripAppend(strip, offset,
                              std::string_view(v.string_value()));
          break;
        default:
          break;  // filtered out during candidate selection
      }
    }
    g = h;
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const ColumnarSegment>> ShredAndAttachSegment(
    engine::Table* table, const AttributeCatalog& catalog,
    const std::string& table_name, const ShredOptions& options) {
  static metrics::Counter* strips_written =
      metrics::GetCounter("strips.written");
  static metrics::Counter* segments_built =
      metrics::GetCounter("columnar.segments_built");
  static metrics::Counter* shred_aborts =
      metrics::GetCounter("columnar.shred_aborts");
  metrics::ScopedSpan shred_span("shred.segment", table_name);

  const uint64_t version = table->MutationVersion();
  const uint64_t row_count = table->RowSlotCount();
  if (row_count == 0) return std::shared_ptr<const ColumnarSegment>();
  std::optional<size_t> data_slot =
      table->FindColumnLatched(kReservoirColumn);
  if (!data_slot.has_value()) return std::shared_ptr<const ColumnarSegment>();
  const engine::Schema schema = table->SchemaSnapshot();

  // --- strip selection: reservoir-resident, scalar, single-typed, dense
  //     enough. The reservoir stays authoritative for everything excluded.
  std::vector<Candidate> candidates;
  for (const AttributeState& state : catalog.TableAttributes(table_name)) {
    if (state.materialized || state.dirty || state.count == 0) continue;
    Result<serial::Attribute> attr = catalog.Lookup(state.attr_id);
    if (!attr.ok()) continue;
    if (!IsScalar(attr->type)) continue;
    if (catalog.FindAllTypes(attr->key).size() > 1) continue;
    if (static_cast<double>(state.count) <
        options.min_density * static_cast<double>(row_count)) {
      continue;
    }
    Candidate c;
    c.attr = std::move(*attr);
    c.count = state.count;
    // Canonical descent chain: the object-typed id of every dotted prefix
    // that exists, in order — identical to the rewriter's ChainPrefixIds, so
    // executor lookups key-match exactly.
    for (size_t dot = c.attr.key.find('.'); dot != std::string::npos;
         dot = c.attr.key.find('.', dot + 1)) {
      std::optional<uint32_t> oid =
          catalog.FindId(std::string_view(c.attr.key).substr(0, dot),
                         ValueType::kObject);
      if (oid.has_value()) c.prefix_ids.push_back(*oid);
    }
    candidates.push_back(std::move(c));
  }
  if (candidates.empty()) return std::shared_ptr<const ColumnarSegment>();
  if (candidates.size() > options.max_columns) {
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.count != b.count ? a.count > b.count
                                          : a.attr.id < b.attr.id;
              });
    candidates.resize(options.max_columns);
  }
  // Group by prefix chain with ascending attr ids inside each group — the
  // ExtractMany merge-join contract.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.prefix_ids != b.prefix_ids) {
                return a.prefix_ids < b.prefix_ids;
              }
              return a.attr.id < b.attr.id;
            });

  const uint64_t num_strips = (row_count + kStripRows - 1) / kStripRows;
  std::vector<StripColumn> columns(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    columns[i].source_column = std::string(kReservoirColumn);
    columns[i].prefix_ids = candidates[i].prefix_ids;
    columns[i].attr_id = candidates[i].attr.id;
    columns[i].type = candidates[i].attr.type;
    columns[i].strips.reserve(num_strips);
  }

  const std::vector<size_t> slots{*data_slot};
  engine::DatumRow row(schema.num_slots());
  std::vector<uint32_t> wanted_scratch;
  std::vector<std::optional<std::string_view>> values_scratch;
  for (uint64_t s = 0; s < num_strips; ++s) {
    const uint64_t first = s * kStripRows;
    const uint64_t end = std::min<uint64_t>(row_count, first + kStripRows);
    const uint32_t strip_rows = static_cast<uint32_t>(end - first);
    std::vector<ColumnStrip> strips(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      strips[i].first_row = first;
      strips[i].row_count = strip_rows;
      strips[i].type = candidates[i].attr.type;
      strips[i].presence.assign((strip_rows + 63) / 64, 0);
    }
    {
      std::shared_lock lock(table->latch());
      // A mutation since the version snapshot may have rewritten rows we
      // already shredded; abandon the segment rather than publish staleness.
      if (table->MutationVersion() != version) {
        shred_aborts->Increment();
        return std::shared_ptr<const ColumnarSegment>();
      }
      for (uint64_t rid = first; rid < end; ++rid) {
        const std::string& encoded = table->RawRowUnlocked(rid);
        if (encoded.empty()) continue;  // deleted row: stays absent
        RETURN_NOT_OK(engine::DecodeRowSlots(schema, encoded, slots, &row));
        const engine::Datum& src = row[*data_slot];
        if (!src.is_bytes()) continue;
        RETURN_NOT_OK(ShredDocument(catalog, candidates, src.str(),
                                    static_cast<uint32_t>(rid - first),
                                    &strips, &wanted_scratch,
                                    &values_scratch));
      }
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      columns[i].strips.push_back(engine::MakeStripRef(std::move(strips[i])));
    }
  }

  auto segment =
      std::make_shared<const ColumnarSegment>(row_count, std::move(columns));
  if (!table->SetColumnarSegmentIfUnchanged(segment, version)) {
    shred_aborts->Increment();
    return std::shared_ptr<const ColumnarSegment>();
  }
  strips_written->Add(num_strips * candidates.size());
  segments_built->Increment();
  return segment;
}

}  // namespace sinew
