// Columnar shredder: builds a table's ColumnarSegment at flush/compaction
// time (paper hybrid thesis at segment granularity — frequent attributes go
// columnar, the reservoir stays authoritative for everything else).
//
// Strip selection mirrors the analyzer's catalog view: an attribute
// qualifies when it is reservoir-resident (not materialized, not dirty),
// scalar-typed, single-typed (a key observed with more than one type is
// excluded — its comparisons are type-dependent and its values would split
// across strips), and at least `min_density` dense. The shredder then
// replays the exact chain-extraction the executor performs — canonical
// object-id prefix descent plus one ExtractMany header pass per row — so a
// strip value is byte-for-byte what sinew_extract_many would have decoded.

#ifndef SINEW_SINEW_COLUMNAR_SHREDDER_H_
#define SINEW_SINEW_COLUMNAR_SHREDDER_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/result.h"
#include "engine/columnar.h"
#include "engine/table.h"
#include "sinew/catalog.h"

namespace sinew {

struct ShredOptions {
  /// Minimum fraction of rows carrying the attribute. 0 shreds every
  /// qualifying attribute — sparse attributes benefit most from zone-map
  /// skipping (an all-null strip skips for free), so the default is 0.
  double min_density = 0.0;
  /// Cap on shredded attributes per table, densest first.
  size_t max_columns = 4096;
};

/// Shreds rows [0, RowSlotCount) of `table` into a ColumnarSegment and
/// attaches it. Returns the attached segment, or nullptr when there is
/// nothing to shred (no rows, no reservoir column, no qualifying attribute)
/// or the table mutated while shredding (the stale segment is discarded —
/// shredding is an accelerator, never a correctness requirement).
Result<std::shared_ptr<const engine::ColumnarSegment>> ShredAndAttachSegment(
    engine::Table* table, const AttributeCatalog& catalog,
    const std::string& table_name, const ShredOptions& options = {});

}  // namespace sinew

#endif  // SINEW_SINEW_COLUMNAR_SHREDDER_H_
