#include "sinew/durable_db.h"

#include <cinttypes>
#include <cstdio>
#include <optional>
#include <utility>

#include "common/bytes.h"
#include "common/metrics.h"
#include "engine/table.h"
#include "json/json.h"

namespace sinew {

namespace {

// Logical WAL record kinds (first payload byte).
constexpr uint8_t kRecordDocs = 1;  // table + JSONL document batch
constexpr uint8_t kRecordDml = 2;   // SQL text, re-executed on replay

constexpr uint8_t kDmlFlagCreateTable = 1;

constexpr std::string_view kWalPrefix = "wal-";
constexpr std::string_view kWalSuffix = ".log";

/// Parses "wal-NNNNNN.log" entry names; nullopt for anything else.
std::optional<uint64_t> ParseWalName(std::string_view name) {
  if (name.size() <= kWalPrefix.size() + kWalSuffix.size()) return std::nullopt;
  if (name.substr(0, kWalPrefix.size()) != kWalPrefix) return std::nullopt;
  if (name.substr(name.size() - kWalSuffix.size()) != kWalSuffix) {
    return std::nullopt;
  }
  std::string_view digits = name.substr(
      kWalPrefix.size(), name.size() - kWalPrefix.size() - kWalSuffix.size());
  uint64_t gen = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    gen = gen * 10 + static_cast<uint64_t>(c - '0');
  }
  return gen;
}

metrics::Gauge* MemtableBytesGauge() {
  static metrics::Gauge* gauge = metrics::GetGauge("memtable.bytes");
  return gauge;
}

}  // namespace

std::string DurableDb::WalPath(const std::string& directory, uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06" PRIu64 ".log", gen);
  return directory + "/" + buf;
}

DurableDb::DurableDb(const std::string& directory, DurableDbOptions options,
                     Env* env)
    : directory_(directory), options_(options), env_(env), db_(options.sinew) {}

DurableDb::~DurableDb() { (void)Close(); }

Result<std::unique_ptr<DurableDb>> DurableDb::Open(const std::string& directory,
                                                   DurableDbOptions options,
                                                   Env* env) {
  if (env == nullptr) env = Env::Default();
  RETURN_NOT_OK(env->CreateDirs(directory));
  std::unique_ptr<DurableDb> db(new DurableDb(directory, options, env));
  DurableOpenInfo& info = db->open_info_;

  // 1. Load the committed generation image (with the damaged-generation
  //    fallback persistence already provides).
  uint64_t gen = 0;
  if (env->FileExists(directory + "/MANIFEST")) {
    ASSIGN_OR_RETURN(RecoveryInfo rinfo,
                     RecoverDatabase(&db->db_, directory, env));
    gen = rinfo.loaded_generation;
    info.used_fallback = rinfo.used_fallback;
    if (rinfo.used_fallback) {
      info.notes = "fell back to generation " + std::to_string(gen) + ": " +
                   rinfo.fallback_reason;
    }
  }
  db->current_generation_ = gen;

  // 2. Replay the generation's log tail. Mid-log corruption fails the Open
  //    (ReadWalFile returns IOError); a torn tail truncates and is normal.
  const std::string wal_path = WalPath(directory, gen);
  if (env->FileExists(wal_path)) {
    ASSIGN_OR_RETURN(WalReadResult wal, ReadWalFile(env, wal_path));
    info.wal_truncated_tail = wal.truncated_tail;
    for (const std::string& record : wal.records) {
      RETURN_NOT_OK(db->ApplyReplayRecord(record));
      ++info.replayed_records;
    }
    static metrics::Counter* replayed =
        metrics::GetCounter("wal.replayed_records_total");
    replayed->Add(static_cast<int64_t>(info.replayed_records));
  }

  // 3. Garbage-collect logs for other generations. A log newer than the
  //    loaded generation (only possible after a fallback, or a crash between
  //    a flush's manifest commit and its log switch) deltas an image we do
  //    not have — it must not be replayed here, so it is orphaned.
  if (Result<std::vector<std::string>> entries = env->ListDir(directory);
      entries.ok()) {
    for (const std::string& entry : *entries) {
      std::optional<uint64_t> wal_gen = ParseWalName(entry);
      if (!wal_gen.has_value() || *wal_gen == gen) continue;
      if (*wal_gen > gen) {
        if (!info.notes.empty()) info.notes += "; ";
        info.notes += "orphaned " + entry +
                      " (log for a generation newer than the one recovered)";
      }
      (void)env->DeleteFile(directory + "/" + entry);
    }
  }

  // 4. If anything was replayed, flush immediately: the replayed delta is
  //    folded into the next generation image and the log truncated, so a
  //    crash during this flush re-runs the identical replay from the same
  //    base image (double-recovery idempotence).
  if (info.replayed_records > 0) {
    std::lock_guard lock(db->commit_mu_);
    RETURN_NOT_OK(db->FlushLocked());
  } else {
    // Nothing to replay: start (or truncate — dropping at most a torn tail
    // that was never acknowledged) this generation's log.
    ASSIGN_OR_RETURN(db->wal_,
                     WalWriter::Create(env, wal_path, options.wal));
    db->flushed_versions_ = db->SnapshotVersions();
  }
  info.generation = db->current_generation_;

  // 5. Only now, with recovery fully done, start logging new writes.
  db->db_.SetWriteAheadHook(db.get());
  return db;
}

Status DurableDb::ApplyReplayRecord(std::string_view record) {
  BufferReader r(record);
  ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind == kRecordDocs) {
    ASSIGN_OR_RETURN(std::string_view table, r.ReadLengthPrefixed());
    ASSIGN_OR_RETURN(std::string_view jsonl, r.ReadLengthPrefixed());
    if (!r.AtEnd()) {
      return Status::ParseError("trailing bytes in WAL document record");
    }
    ASSIGN_OR_RETURN(std::vector<Value> docs, json::ParseLines(jsonl));
    // An apply failure here mirrors the original apply failure (the record
    // was logged before the apply): a deterministic no-op, not corruption.
    (void)db_.LoadDocumentsUnlogged(std::string(table), docs);
    return Status::OK();
  }
  if (kind == kRecordDml) {
    ASSIGN_OR_RETURN(uint8_t flags, r.ReadU8());
    ASSIGN_OR_RETURN(std::string_view sql, r.ReadLengthPrefixed());
    ASSIGN_OR_RETURN(std::string_view table, r.ReadLengthPrefixed());
    if (!r.AtEnd()) {
      return Status::ParseError("trailing bytes in WAL DML record");
    }
    // The hook is not installed yet, so this re-execution is not re-logged.
    Result<engine::QueryResult> result = db_.Query(sql);
    if (result.ok() && (flags & kDmlFlagCreateTable) != 0 && !table.empty()) {
      db_.catalog()->RegisterTable(std::string(table));
      db_.NoteTable(std::string(table));
    }
    return Status::OK();
  }
  return Status::ParseError("unknown WAL record kind ", kind);
}

Status DurableDb::LogRecordLocked(std::string payload) {
  commit_mu_.lock();
  if (closed_ || wal_ == nullptr) {
    commit_mu_.unlock();
    return Status::InvalidArgument("DurableDb is closed");
  }
  Status st = wal_->AppendRecord(payload);
  if (st.ok()) st = wal_->Commit();
  if (!st.ok()) {
    commit_mu_.unlock();
    return st;
  }
  staged_bytes_ = payload.size();
  return Status::OK();
}

Status DurableDb::BeforeLoad(const std::string& table,
                             const std::vector<Value>& docs) {
  std::string jsonl;
  for (const Value& doc : docs) {
    jsonl += json::Write(doc);
    jsonl += '\n';
  }
  BufferWriter w;
  w.PutU8(kRecordDocs);
  w.PutLengthPrefixed(table);
  w.PutLengthPrefixed(jsonl);
  RETURN_NOT_OK(LogRecordLocked(w.Release()));
  staged_table_ = table;
  staged_create_table_ = false;
  return Status::OK();
}

Status DurableDb::BeforeDml(std::string_view sql, const std::string& table,
                            engine::StatementKind kind) {
  BufferWriter w;
  w.PutU8(kRecordDml);
  w.PutU8(kind == engine::StatementKind::kCreateTable ? kDmlFlagCreateTable
                                                      : 0);
  w.PutLengthPrefixed(sql);
  w.PutLengthPrefixed(table);
  RETURN_NOT_OK(LogRecordLocked(w.Release()));
  staged_table_ = table;
  staged_create_table_ = kind == engine::StatementKind::kCreateTable;
  return Status::OK();
}

void DurableDb::AfterWrite(const Status& apply_status) {
  // commit_mu_ has been held since Before*; release it on every path.
  if (apply_status.ok()) {
    memtable_bytes_ += staged_bytes_;
    memtable_records_ += 1;
    if (!staged_table_.empty()) touched_tables_.insert(staged_table_);
    if (staged_create_table_ && !staged_table_.empty()) {
      // Adopt the created table into the Sinew-managed set so generation
      // images persist it (replay alone would lose it at WAL truncation).
      db_.catalog()->RegisterTable(staged_table_);
      db_.NoteTable(staged_table_);
    }
    MemtableBytesGauge()->Set(static_cast<int64_t>(memtable_bytes_));
    if (memtable_bytes_ >= options_.memtable_flush_bytes) {
      // Best-effort: on failure the WAL still holds the delta, accounting is
      // kept, and the next commit retries the flush.
      (void)FlushLocked();
    }
  }
  // An apply failure leaves its record in the WAL; replay re-fails it the
  // same deterministic way, so it is not counted against the memtable.
  staged_bytes_ = 0;
  staged_table_.clear();
  staged_create_table_ = false;
  commit_mu_.unlock();
}

Status DurableDb::FlushLocked() {
  if (closed_) return Status::InvalidArgument("DurableDb is closed");
  // Traceable as a span: when the flush is triggered by a query's commit
  // (AfterWrite under the query span) it parents into that query's trace;
  // a standalone Flush() starts its own trace.
  metrics::ScopedSpan flush_span("durable.flush");
  // Compaction-time materialization: the flush rewrites table images anyway,
  // so run the analyzer + materializer on every table the delta touched and
  // serialize the already-columnarized result. Best-effort — a table that
  // cannot be analyzed (e.g. created without a document reservoir) is still
  // persisted as-is.
  if (options_.compact_on_flush) {
    for (const std::string& table : touched_tables_) {
      (void)db_.AnalyzeAndMaterialize(table);
    }
  }
  // Columnar shredding rides the same compaction: every table the delta
  // touched gets a fresh strip segment over its now-cold rows, which the
  // generation save below persists as a .strips sidecar. Best-effort — a
  // table that cannot be shredded simply stays on the row reservoir.
  if (db_.columnar_segments_enabled()) {
    for (const std::string& table : touched_tables_) {
      (void)db_.BuildColumnarSegments(table);
    }
  }

  // Version snapshot BEFORE serialization: a concurrent background-
  // maintenance mutation between snapshot and save makes the recorded
  // version stale, which only costs an unnecessary re-serialization next
  // flush — never a wrongly skipped one.
  std::map<std::string, uint64_t> versions = SnapshotVersions();
  SaveOptions save;
  for (const auto& [table, version] : versions) {
    auto it = flushed_versions_.find(table);
    if (it != flushed_versions_.end() && it->second == version) {
      save.unchanged_tables.push_back(table);
    }
  }
  ASSIGN_OR_RETURN(uint64_t gen,
                   SaveDatabaseGeneration(&db_, directory_, env_, save));

  // The image is committed; switch to its log. If the new log cannot be
  // created, fail stop: continuing to append to the old log would put
  // acknowledged commits where recovery (which replays only wal-<gen>)
  // would never look.
  Result<std::unique_ptr<WalWriter>> new_wal =
      WalWriter::Create(env_, WalPath(directory_, gen), options_.wal);
  if (!new_wal.ok()) {
    closed_ = true;
    if (wal_ != nullptr) (void)wal_->Close();
    wal_.reset();
    return Status::IOError("generation ", gen,
                           " committed but its WAL could not be created (",
                           new_wal.status().message(),
                           "); database is now closed");
  }
  if (wal_ != nullptr) (void)wal_->Close();
  const std::string old_path = WalPath(directory_, current_generation_);
  wal_ = std::move(*new_wal);
  if (current_generation_ != gen && env_->FileExists(old_path)) {
    (void)env_->DeleteFile(old_path);
  }
  current_generation_ = gen;
  flushed_versions_ = std::move(versions);
  memtable_bytes_ = 0;
  memtable_records_ = 0;
  touched_tables_.clear();
  MemtableBytesGauge()->Set(0);
  static metrics::Counter* runs = metrics::GetCounter("compaction.runs_total");
  runs->Increment();
  ++flush_count_;
  return Status::OK();
}

Status DurableDb::Flush() {
  std::lock_guard lock(commit_mu_);
  if (memtable_records_ == 0) return Status::OK();
  return FlushLocked();
}

Status DurableDb::Close() {
  std::lock_guard lock(commit_mu_);
  if (closed_) return Status::OK();
  closed_ = true;
  Status st = Status::OK();
  if (wal_ != nullptr) {
    st = wal_->Sync();
    Status close_st = wal_->Close();
    if (st.ok()) st = close_st;
    wal_.reset();
  }
  return st;
}

uint64_t DurableDb::current_generation() const {
  std::lock_guard lock(commit_mu_);
  return current_generation_;
}

uint64_t DurableDb::memtable_bytes() const {
  std::lock_guard lock(commit_mu_);
  return memtable_bytes_;
}

uint64_t DurableDb::memtable_records() const {
  std::lock_guard lock(commit_mu_);
  return memtable_records_;
}

uint64_t DurableDb::flush_count() const {
  std::lock_guard lock(commit_mu_);
  return flush_count_;
}

std::map<std::string, uint64_t> DurableDb::SnapshotVersions() {
  std::map<std::string, uint64_t> out;
  for (const std::string& table : db_.Tables()) {
    Result<engine::Table*> engine_table =
        db_.engine()->catalog()->GetTable(table);
    if (engine_table.ok()) out[table] = (*engine_table)->MutationVersion();
  }
  return out;
}

}  // namespace sinew
