// DurableDb: the crash-safe LSM write path over a SinewDb.
//
// The generation-image store (sinew/persistence.h) is durable but pays a
// whole-database image rewrite per commit. DurableDb puts a write-ahead log
// and a memtable in front of it, giving the classic LSM shape:
//
//   write ──► WAL append + fsync (common/wal.h)          cheap, per commit
//         ──► in-memory apply (the live engine tables)
//   flush ──► schema analyze + materialize (compaction-time materialization)
//         ──► next generation image (SaveDatabaseGeneration)
//         ──► truncate the WAL
//
// "Memtable" here is the unflushed delta: this engine already keeps every
// table in memory, so the live tables ARE the merged (image + delta) read
// view and no separate merge structure is needed. DurableDb tracks the
// delta's byte/record volume and the set of touched tables; once the byte
// volume crosses `memtable_flush_bytes`, the next commit triggers a flush.
//
// Flush doubles as compaction — and compaction is exactly the moment the
// paper's schema analyzer and column materializer want to run: the data is
// being rewritten anyway, so column extraction is piggybacked on I/O that is
// already paid for (compaction-time materialization, cf. the AsterixDB
// tuple-compaction framework). Tables untouched since the previous
// generation have their image files copied verbatim instead of re-serialized
// (engine::CopyTableImage).
//
// WAL <-> generation coupling: the active log is `wal-NNNNNN.log` where
// NNNNNN is the generation it deltas. A flush commits generation N+1, starts
// wal-(N+1) and deletes the old log; recovery replays exactly wal-G over the
// loaded generation G and garbage-collects every other wal-* file. This makes
// recovery idempotent: a crash anywhere inside a flush leaves either (old
// image + old log) or (new image [+ new log]) — never a log applied to the
// wrong base image.
//
// Recovery (Open): load the committed generation (RecoverDatabase, with its
// damaged-generation fallback), replay wal-G tolerating a torn tail
// (truncate at the first bad checksum; mid-log corruption fails the Open),
// then — if anything was replayed — immediately flush, so a second crash
// during recovery's own flush re-runs the same replay from the same base
// (double-recovery idempotence). If recovery had to fall back to the
// previous generation, the newer generation's log cannot be applied to it;
// it is orphaned (deleted) and reported in DurableOpenInfo::notes.
//
// Replay applies logical records: document batches are re-loaded, DML
// statements re-executed. A statement that failed to apply originally was
// still logged (log-before-apply); its replay fails the same deterministic
// way and is skipped.
//
// Concurrency: a commit mutex serializes writers against flushes. It is
// acquired in the write-ahead hook's Before* (log), held across the
// in-memory apply, and released in AfterWrite (which may first run an
// inline flush). Queries do not take it.

#ifndef SINEW_SINEW_DURABLE_DB_H_
#define SINEW_SINEW_DURABLE_DB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "common/wal.h"
#include "sinew/persistence.h"
#include "sinew/sinew_db.h"

namespace sinew {

struct DurableDbOptions {
  SinewOptions sinew;
  /// WAL durability policy (fsync per commit / grouped / never).
  WalWriterOptions wal;
  /// Flush (compact) once the unflushed delta reaches this many logical
  /// bytes. The trigger is evaluated after each commit.
  uint64_t memtable_flush_bytes = 8ull << 20;
  /// Run the schema analyzer + column materializer on every table the delta
  /// touched, as part of flush (compaction-time materialization).
  bool compact_on_flush = true;
};

/// What Open() found and did.
struct DurableOpenInfo {
  /// Generation the store was at after Open (recovery's own flush included).
  uint64_t generation = 0;
  /// Complete WAL records replayed over the loaded image.
  uint64_t replayed_records = 0;
  /// A torn record at the log tail was dropped (normal after a crash).
  bool wal_truncated_tail = false;
  /// The committed generation was damaged; the previous one was loaded.
  bool used_fallback = false;
  /// Human-readable details (fallback reason, orphaned logs); "" if none.
  std::string notes;
};

class DurableDb : private WriteAheadHook {
 public:
  /// Opens (creating if absent) the database in `directory`, running crash
  /// recovery: image load, WAL replay, recovery flush. `env == nullptr`
  /// means Env::Default().
  static Result<std::unique_ptr<DurableDb>> Open(const std::string& directory,
                                                 DurableDbOptions options = {},
                                                 Env* env = nullptr);

  ~DurableDb() override;

  DurableDb(const DurableDb&) = delete;
  DurableDb& operator=(const DurableDb&) = delete;

  /// The underlying SinewDb. Mutations through it are intercepted by the
  /// write-ahead hook, so calling db()->Query(...) directly is safe.
  SinewDb* db() { return &db_; }

  // Convenience passthroughs (equivalent to calling db()->...).
  Result<uint64_t> LoadJsonLines(const std::string& table,
                                 std::string_view jsonl) {
    return db_.LoadJsonLines(table, jsonl);
  }
  Result<uint64_t> LoadDocuments(const std::string& table,
                                 const std::vector<Value>& docs) {
    return db_.LoadDocuments(table, docs);
  }
  Result<engine::QueryResult> Query(std::string_view sql) {
    return db_.Query(sql);
  }

  /// Explicit flush: compacts the delta into the next generation image and
  /// truncates the WAL, regardless of the byte threshold. No-op (OK) when
  /// the delta is empty.
  Status Flush();

  /// Final WAL sync + close. Deliberately does NOT write an image: shutdown
  /// stays cheap and the next Open replays the log. Call Flush() first for
  /// a replay-free restart. Idempotent; writes after Close are rejected.
  Status Close();

  const DurableOpenInfo& open_info() const { return open_info_; }
  /// Generation the current WAL deltas (bumps at every flush).
  uint64_t current_generation() const;
  /// Unflushed delta accounting.
  uint64_t memtable_bytes() const;
  uint64_t memtable_records() const;
  uint64_t flush_count() const;

  /// The wal-NNNNNN.log path for generation `gen` under `directory` (exposed
  /// so tests can inspect / corrupt the live log).
  static std::string WalPath(const std::string& directory, uint64_t gen);

 private:
  DurableDb(const std::string& directory, DurableDbOptions options, Env* env);

  // WriteAheadHook (log-before-apply; commit_mu_ held Before* -> AfterWrite).
  Status BeforeLoad(const std::string& table,
                    const std::vector<Value>& docs) override;
  Status BeforeDml(std::string_view sql, const std::string& table,
                   engine::StatementKind kind) override;
  void AfterWrite(const Status& apply_status) override;

  /// Appends + commits one encoded record; on OK, commit_mu_ is held.
  Status LogRecordLocked(std::string payload);
  /// Compact: materialize touched tables, write generation current_+1,
  /// switch to its WAL, delete the old log. Requires commit_mu_.
  Status FlushLocked();
  /// Replays one WAL record during Open (hook not yet installed).
  Status ApplyReplayRecord(std::string_view record);
  /// Snapshots every engine table's MutationVersion.
  std::map<std::string, uint64_t> SnapshotVersions();

  const std::string directory_;
  const DurableDbOptions options_;
  Env* const env_;
  SinewDb db_;
  DurableOpenInfo open_info_;

  /// Serializes commits and flushes. Locked in Before*, unlocked in
  /// AfterWrite; public Flush()/Close() take it for their whole duration.
  mutable std::mutex commit_mu_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t current_generation_ = 0;
  bool closed_ = false;

  // The memtable: unflushed-delta accounting (see header comment).
  uint64_t memtable_bytes_ = 0;
  uint64_t memtable_records_ = 0;
  std::set<std::string> touched_tables_;
  /// Table -> MutationVersion as of the last flushed image; tables whose
  /// current version still matches are copied verbatim at the next flush.
  std::map<std::string, uint64_t> flushed_versions_;

  // Staged by Before*, consumed by AfterWrite (valid only while locked).
  uint64_t staged_bytes_ = 0;
  std::string staged_table_;
  bool staged_create_table_ = false;
  uint64_t flush_count_ = 0;
};

}  // namespace sinew

#endif  // SINEW_SINEW_DURABLE_DB_H_
