#include "sinew/extract_functions.h"

#include <optional>

#include "serial/sinew_format.h"

namespace sinew {

namespace {

using engine::Datum;
using engine::UdfArgs;

Status CheckDataPathArgs(const UdfArgs& args, const char* fn) {
  if (args.size() < 2) {
    return Status::InvalidArgument(fn, " expects (data, path, ...)");
  }
  if (!args[0]->is_null() && !args[0]->is_bytes()) {
    return Status::TypeError(fn, ": first argument must be serialized data");
  }
  if (!args[1]->is_text()) {
    return Status::TypeError(fn, ": path must be text");
  }
  return Status::OK();
}

/// Extracts the raw bytes of (path, type) from a serialized document,
/// descending through nested objects as needed.
std::optional<std::string_view> ExtractTyped(const AttributeCatalog& catalog,
                                             std::string_view data,
                                             std::string_view path,
                                             ValueType type) {
  serial::DocumentView view(data);
  return view.ExtractPath(path, type, catalog);
}

Result<Datum> DecodeScalarTyped(const AttributeCatalog& catalog,
                                ValueType type, std::string_view bytes) {
  ASSIGN_OR_RETURN(Value v, serial::DecodeValueBody(type, bytes, catalog));
  return Datum::FromValue(v);
}

engine::UdfFn MakeTypedExtractor(AttributeCatalog* catalog, ValueType type,
                                 const char* fn_name) {
  return [catalog, type, fn_name](
             const UdfArgs& args) -> Result<Datum> {
    RETURN_NOT_OK(CheckDataPathArgs(args, fn_name));
    if (args[0]->is_null()) return Datum::Null();
    std::optional<std::string_view> bytes =
        ExtractTyped(*catalog, args[0]->str(), args[1]->str(), type);
    if (!bytes.has_value()) return Datum::Null();
    return DecodeScalarTyped(*catalog, type, *bytes);
  };
}

/// Encodes a scalar datum with the reservoir value encoding; returns its
/// ValueType alongside.
Result<std::pair<ValueType, std::string>> EncodeScalarDatum(const Datum& v) {
  Value value = v.ToValue();
  ASSIGN_OR_RETURN(std::string body,
                   serial::EncodeValueBody(value, nullptr, ""));
  return std::make_pair(value.type(), std::move(body));
}

}  // namespace

void RegisterSinewFunctions(engine::UdfRegistry* registry,
                            AttributeCatalog* catalog) {
  registry->Register("sinew_extract_text",
                     MakeTypedExtractor(catalog, ValueType::kString,
                                        "sinew_extract_text"));
  registry->Register(
      "sinew_extract_int",
      MakeTypedExtractor(catalog, ValueType::kInt, "sinew_extract_int"));
  registry->Register("sinew_extract_double",
                     MakeTypedExtractor(catalog, ValueType::kDouble,
                                        "sinew_extract_double"));
  registry->Register(
      "sinew_extract_bool",
      MakeTypedExtractor(catalog, ValueType::kBool, "sinew_extract_bool"));

  registry->Register(
      "sinew_extract_num",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_extract_num"));
        if (args[0]->is_null()) return Datum::Null();
        for (ValueType type : {ValueType::kInt, ValueType::kDouble}) {
          std::optional<std::string_view> bytes =
              ExtractTyped(*catalog, args[0]->str(), args[1]->str(), type);
          if (bytes.has_value()) {
            return DecodeScalarTyped(*catalog, type, *bytes);
          }
        }
        return Datum::Null();
      });

  registry->Register(
      "sinew_extract_any",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_extract_any"));
        if (args[0]->is_null()) return Datum::Null();
        static constexpr ValueType kOrder[] = {
            ValueType::kBool,   ValueType::kInt,   ValueType::kDouble,
            ValueType::kString, ValueType::kArray, ValueType::kObject};
        for (ValueType type : kOrder) {
          std::optional<std::string_view> bytes =
              ExtractTyped(*catalog, args[0]->str(), args[1]->str(), type);
          if (!bytes.has_value()) continue;
          if (type == ValueType::kArray || type == ValueType::kObject) {
            ASSIGN_OR_RETURN(Value v,
                             serial::DecodeValueBody(type, *bytes, *catalog));
            return Datum::Text(v.ToJson());
          }
          return DecodeScalarTyped(*catalog, type, *bytes);
        }
        return Datum::Null();
      });

  registry->Register(
      "sinew_extract_bytes",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_extract_bytes"));
        if (args[0]->is_null()) return Datum::Null();
        for (ValueType type : {ValueType::kObject, ValueType::kArray}) {
          std::optional<std::string_view> bytes =
              ExtractTyped(*catalog, args[0]->str(), args[1]->str(), type);
          if (bytes.has_value()) return Datum::Bytes(std::string(*bytes));
        }
        return Datum::Null();
      });

  // Chain extraction: the query rewriter resolves a dotted path to the
  // attribute-ID descent chain at rewrite time, so the per-row work is pure
  // header binary searches with no dictionary access at all.
  //   sinew_extract_chain(data, type_tag, id0, id1, ..., idN)
  // descends through object ids id0..idN-1 and decodes idN as `type_tag`
  // (objects/arrays render as JSON text, as in sinew_extract_any).
  auto chain_extract = [catalog](const UdfArgs& args,
                                 bool raw_bytes) -> Result<Datum> {
    if (args.size() < 3) {
      return Status::InvalidArgument(
          "sinew_extract_chain expects (data, type, id...)");
    }
    if (args[0]->is_null()) return Datum::Null();
    if (!args[0]->is_bytes() || !args[1]->is_int()) {
      return Status::TypeError("sinew_extract_chain(bytes, int, int...)");
    }
    std::string_view current = args[0]->str();
    for (size_t i = 2; i + 1 < args.size(); ++i) {
      if (!args[i]->is_int()) {
        return Status::TypeError("chain ids must be integers");
      }
      serial::DocumentView view(current);
      std::optional<std::string_view> sub =
          view.Extract(static_cast<uint32_t>(args[i]->int_value()));
      if (!sub.has_value()) return Datum::Null();
      current = *sub;
    }
    serial::DocumentView view(current);
    std::optional<std::string_view> bytes = view.Extract(
        static_cast<uint32_t>(args.back()->int_value()));
    if (!bytes.has_value()) return Datum::Null();
    ValueType type = static_cast<ValueType>(args[1]->int_value());
    if (raw_bytes) return Datum::Bytes(std::string(*bytes));
    if (type == ValueType::kObject || type == ValueType::kArray) {
      ASSIGN_OR_RETURN(Value v,
                       serial::DecodeValueBody(type, *bytes, *catalog));
      return Datum::Text(v.ToJson());
    }
    return DecodeScalarTyped(*catalog, type, *bytes);
  };
  registry->Register("sinew_extract_chain",
                     [chain_extract](const UdfArgs& args) {
                       return chain_extract(args, /*raw_bytes=*/false);
                     });
  registry->Register("sinew_extract_chain_bytes",
                     [chain_extract](const UdfArgs& args) {
                       return chain_extract(args, /*raw_bytes=*/true);
                     });

  // Array containment without materializing the array: walks the serialized
  // element table and memcmps candidate payloads.
  //   sinew_array_contains_chain(data, value, id0, ..., idN)
  registry->Register(
      "sinew_array_contains_chain",
      [](const UdfArgs& args) -> Result<Datum> {
        if (args.size() < 3) {
          return Status::InvalidArgument(
              "sinew_array_contains_chain expects (data, value, id...)");
        }
        if (args[0]->is_null() || args[1]->is_null()) return Datum::Null();
        if (!args[0]->is_bytes()) {
          return Status::TypeError("first argument must be serialized data");
        }
        std::string_view current = args[0]->str();
        for (size_t i = 2; i + 1 < args.size(); ++i) {
          serial::DocumentView view(current);
          std::optional<std::string_view> sub =
              view.Extract(static_cast<uint32_t>(args[i]->int_value()));
          if (!sub.has_value()) return Datum::Null();
          current = *sub;
        }
        serial::DocumentView view(current);
        std::optional<std::string_view> arr = view.Extract(
            static_cast<uint32_t>(args.back()->int_value()));
        if (!arr.has_value()) return Datum::Null();
        ASSIGN_OR_RETURN(bool contains,
                         serial::ArrayContainsScalar(*arr, args[1]->ToValue()));
        return Datum::Bool(contains);
      });

  registry->Register(
      "sinew_array_contains",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 3) {
          return Status::InvalidArgument(
              "sinew_array_contains expects (data, path, value)");
        }
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_array_contains"));
        if (args[0]->is_null() || args[2]->is_null()) return Datum::Null();
        std::optional<std::string_view> bytes;
        std::string_view path = args[1]->str();
        if (path.empty()) {
          // The first argument is itself the serialized array.
          bytes = args[0]->str();
        } else {
          bytes = ExtractTyped(*catalog, args[0]->str(), path,
                               ValueType::kArray);
        }
        if (!bytes.has_value()) return Datum::Null();
        ASSIGN_OR_RETURN(bool contains, serial::ArrayContainsScalar(
                                            *bytes, args[2]->ToValue()));
        return Datum::Bool(contains);
      });

  registry->Register(
      "sinew_reservoir_set",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 3) {
          return Status::InvalidArgument(
              "sinew_reservoir_set expects (data, path, value)");
        }
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_reservoir_set"));
        std::string data;
        if (args[0]->is_null()) {
          ASSIGN_OR_RETURN(
              data, serial::SerializeDocument(Value::Object({}), catalog));
        } else {
          data = args[0]->str();
        }
        const std::string& path = args[1]->str();
        if (args[2]->is_null()) {
          // Setting NULL removes every typed variant of the attribute.
          for (const serial::Attribute& attr : catalog->FindAllTypes(path)) {
            ASSIGN_OR_RETURN(data, serial::RemoveAttribute(data, attr.id));
          }
          return Datum::Bytes(std::move(data));
        }
        ASSIGN_OR_RETURN(auto typed, EncodeScalarDatum(*args[2]));
        ASSIGN_OR_RETURN(uint32_t id, catalog->Intern(path, typed.first));
        // Remove other-typed variants of the key first, then set.
        for (const serial::Attribute& attr : catalog->FindAllTypes(path)) {
          if (attr.id != id) {
            ASSIGN_OR_RETURN(data, serial::RemoveAttribute(data, attr.id));
          }
        }
        ASSIGN_OR_RETURN(data, serial::SetAttribute(data, id, typed.second));
        return Datum::Bytes(std::move(data));
      });

  registry->Register(
      "sinew_reservoir_remove",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 2) {
          return Status::InvalidArgument(
              "sinew_reservoir_remove expects (data, path)");
        }
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_reservoir_remove"));
        if (args[0]->is_null()) return Datum::Null();
        std::string data = args[0]->str();
        for (const serial::Attribute& attr :
             catalog->FindAllTypes(args[1]->str())) {
          ASSIGN_OR_RETURN(data, serial::RemoveAttribute(data, attr.id));
        }
        return Datum::Bytes(std::move(data));
      });

  registry->Register(
      "sinew_render_object",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 1) {
          return Status::InvalidArgument("sinew_render_object expects (data)");
        }
        if (args[0]->is_null()) return Datum::Null();
        if (!args[0]->is_bytes()) {
          return Status::TypeError("sinew_render_object on non-bytes");
        }
        ASSIGN_OR_RETURN(Value v, serial::DeserializeDocument(args[0]->str(),
                                                              *catalog));
        return Datum::Text(v.ToJson());
      });

  registry->Register(
      "sinew_render_array",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 1) {
          return Status::InvalidArgument("sinew_render_array expects (data)");
        }
        if (args[0]->is_null()) return Datum::Null();
        if (!args[0]->is_bytes()) {
          return Status::TypeError("sinew_render_array on non-bytes");
        }
        ASSIGN_OR_RETURN(Value v, serial::DecodeValueBody(
                                      ValueType::kArray, args[0]->str(),
                                      *catalog));
        return Datum::Text(v.ToJson());
      });

  registry->Register(
      "sinew_reconstruct",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 1) {
          return Status::InvalidArgument("sinew_reconstruct expects (data)");
        }
        if (args[0]->is_null()) return Datum::Null();
        if (!args[0]->is_bytes()) {
          return Status::TypeError("sinew_reconstruct on non-bytes");
        }
        ASSIGN_OR_RETURN(Value doc, serial::DeserializeDocument(
                                        args[0]->str(), *catalog));
        return Datum::Text(doc.ToJson());
      });
}

}  // namespace sinew
