#include "sinew/extract_functions.h"

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/query_log.h"
#include "serial/sinew_format.h"

namespace sinew {

namespace {

using engine::Datum;
using engine::UdfArgs;

Status CheckDataPathArgs(const UdfArgs& args, const char* fn) {
  if (args.size() < 2) {
    return Status::InvalidArgument(fn, " expects (data, path, ...)");
  }
  if (!args[0]->is_null() && !args[0]->is_bytes()) {
    return Status::TypeError(fn, ": first argument must be serialized data");
  }
  if (!args[1]->is_text()) {
    return Status::TypeError(fn, ": path must be text");
  }
  return Status::OK();
}

/// A (path, type) resolution against the dictionary, precomputed so per-row
/// extraction is pure header lookups: `direct_id` is the attribute id of the
/// full dotted path at this nesting level, `prefixes` the object-typed id of
/// each dotted prefix with the resolution subtree inside that object.
/// Mirrors DocumentView::ExtractPath with every FindId call hoisted out.
struct ResolvedNode {
  std::optional<uint32_t> direct_id;
  std::vector<std::pair<uint32_t, ResolvedNode>> prefixes;
};

std::optional<std::string_view> WalkResolved(std::string_view data,
                                             const ResolvedNode& node) {
  serial::DocumentView view(data);
  if (node.direct_id.has_value()) {
    if (std::optional<std::string_view> v = view.Extract(*node.direct_id)) {
      return v;
    }
  }
  for (const auto& [oid, sub] : node.prefixes) {
    std::optional<std::string_view> s = view.Extract(oid);
    if (!s.has_value()) continue;
    // Commit to the first present enclosing object, exactly as
    // DocumentView::ExtractPath does.
    return WalkResolved(*s, sub);
  }
  return std::nullopt;
}

/// Fix for the per-row catalog latch: typed extractors used to call
/// ExtractPath, which takes the catalog mutex (FindId) once per dotted
/// prefix per row. This cache resolves a (path, type) pair once per
/// dictionary version; subsequent rows validate against the catalog's
/// lock-free version counter and never touch the mutex.
class PathResolutionCache {
 public:
  std::shared_ptr<const ResolvedNode> Resolve(const AttributeCatalog& catalog,
                                              std::string_view path,
                                              ValueType type) {
    static metrics::Counter* hits =
        metrics::GetCounter("extract.path_cache_hits");
    static metrics::Counter* misses =
        metrics::GetCounter("extract.path_cache_misses");
    const uint64_t version = catalog.version();
    std::string key(path);
    key.push_back('\0');
    key.push_back(static_cast<char>(type));
    {
      std::shared_lock lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end() && it->second.first == version) {
        hits->Increment();
        return it->second.second;
      }
    }
    misses->Increment();
    auto node = std::make_shared<ResolvedNode>();
    Build(catalog, path, type, 0, node.get());
    std::unique_lock lock(mu_);
    auto& entry = cache_[std::move(key)];
    entry.first = version;
    entry.second = node;
    return node;
  }

 private:
  static void Build(const AttributeCatalog& catalog, std::string_view path,
                    ValueType type, size_t start, ResolvedNode* node) {
    node->direct_id = catalog.FindId(path, type);
    // Only prefixes extending the already-descended one can exist inside a
    // nested object (its keys are all strictly longer dotted paths), so the
    // recursion starts after the last consumed dot — same reachable set as
    // ExtractPath's full rescan, without the provably-dead lookups.
    for (size_t dot = path.find('.', start); dot != std::string_view::npos;
         dot = path.find('.', dot + 1)) {
      std::optional<uint32_t> oid =
          catalog.FindId(path.substr(0, dot), ValueType::kObject);
      if (!oid.has_value()) continue;
      node->prefixes.emplace_back(*oid, ResolvedNode{});
      Build(catalog, path, type, dot + 1, &node->prefixes.back().second);
    }
  }

  std::shared_mutex mu_;
  std::map<std::string, std::pair<uint64_t, std::shared_ptr<const ResolvedNode>>,
           std::less<>>
      cache_;
};

/// Extracts the raw bytes of (path, type) from a serialized document,
/// descending through nested objects as needed. Resolution comes from the
/// shared cache; no catalog lock on the per-row path.
std::optional<std::string_view> ExtractTyped(const AttributeCatalog& catalog,
                                             PathResolutionCache* cache,
                                             std::string_view data,
                                             std::string_view path,
                                             ValueType type) {
  std::shared_ptr<const ResolvedNode> node =
      cache->Resolve(catalog, path, type);
  return WalkResolved(data, *node);
}

Result<Datum> DecodeScalarTyped(const AttributeCatalog& catalog,
                                ValueType type, std::string_view bytes) {
  ASSIGN_OR_RETURN(Value v, serial::DecodeValueBody(type, bytes, catalog));
  return Datum::FromValue(v);
}

engine::UdfFn MakeTypedExtractor(AttributeCatalog* catalog,
                                 std::shared_ptr<PathResolutionCache> cache,
                                 ValueType type, const char* fn_name) {
  return [catalog, cache, type, fn_name](
             const UdfArgs& args) -> Result<Datum> {
    RETURN_NOT_OK(CheckDataPathArgs(args, fn_name));
    if (args[0]->is_null()) return Datum::Null();
    std::optional<std::string_view> bytes = ExtractTyped(
        *catalog, cache.get(), args[0]->str(), args[1]->str(), type);
    if (!bytes.has_value()) return Datum::Null();
    return DecodeScalarTyped(*catalog, type, *bytes);
  };
}

/// Extracts targets [i, j) — one source-slot group — from a single
/// serialized document, writing each decoded value through `out_at(k)`
/// (a Datum* for target index k; absent attributes are never written, so
/// callers pre-fill NULLs). Targets sharing a prefix chain share one
/// nested-object descent, and all attribute ids under a chain resolve in a
/// single header pass (DocumentView::ExtractMany). The shared core of the
/// row-level and batch-of-rows extraction entry points.
template <typename OutAt>
Status ExtractGroupFromDoc(const AttributeCatalog& catalog,
                           const std::vector<engine::ExtractTarget>& targets,
                           size_t i, size_t j, std::string_view doc,
                           OutAt&& out_at) {
  size_t g = i;
  while (g < j) {
    size_t h = g;
    while (h < j && targets[h].prefix_ids == targets[g].prefix_ids) ++h;
    std::string_view current = doc;
    bool present = true;
    for (uint32_t pid : targets[g].prefix_ids) {
      serial::DocumentView view(current);
      std::optional<std::string_view> sub = view.Extract(pid);
      if (!sub.has_value()) {
        present = false;
        break;
      }
      current = *sub;
    }
    if (!present) {
      g = h;  // every target under this prefix chain stays NULL
      continue;
    }
    // Scratch buffers are thread_local: the registered std::function is
    // shared by every worker clone of the Extract operator.
    thread_local std::vector<uint32_t> wanted;
    thread_local std::vector<std::optional<std::string_view>> values;
    wanted.clear();
    for (size_t k = g; k < h; ++k) wanted.push_back(targets[k].attr_id);
    values.assign(h - g, std::nullopt);
    serial::DocumentView view(current);
    view.ExtractMany(wanted.data(), wanted.size(), values.data());
    for (size_t k = g; k < h; ++k) {
      const std::optional<std::string_view>& bytes = values[k - g];
      if (!bytes.has_value()) continue;
      const engine::ExtractTarget& t = targets[k];
      if (t.raw_bytes) {
        *out_at(k) = Datum::Bytes(std::string(*bytes));
        continue;
      }
      ValueType type = static_cast<ValueType>(t.type_tag);
      if (type == ValueType::kObject || type == ValueType::kArray) {
        ASSIGN_OR_RETURN(Value v,
                         serial::DecodeValueBody(type, *bytes, catalog));
        *out_at(k) = Datum::Text(v.ToJson());
      } else {
        ASSIGN_OR_RETURN(*out_at(k), DecodeScalarTyped(catalog, type, *bytes));
      }
    }
    g = h;
  }
  return Status::OK();
}

/// The batched fast path behind the planner's kExtract node: decodes each
/// row's reservoir header once per source column and serves every wanted
/// attribute from that single pass (DocumentView::ExtractMany). Targets
/// arrive grouped by source slot and sorted by (prefix chain, attr id);
/// equal prefix chains share one descent.
engine::BatchExtractFn MakeBatchExtractor(AttributeCatalog* catalog) {
  return [catalog](const engine::DatumRow& row,
                   const std::vector<engine::ExtractTarget>& targets,
                   std::vector<Datum>* outs,
                   engine::BatchExtractStats* stats) -> Status {
    static metrics::Counter* decodes_counter =
        metrics::GetCounter("reservoir.decodes");
    static metrics::Histogram* attrs_hist =
        metrics::GetHistogram("reservoir.attrs_per_decode");
    outs->assign(targets.size(), Datum::Null());
    size_t i = 0;
    while (i < targets.size()) {
      const int slot = targets[i].source_slot;
      size_t j = i;
      while (j < targets.size() && targets[j].source_slot == slot) ++j;
      if (slot < 0 || static_cast<size_t>(slot) >= row.size()) {
        return Status::Internal("sinew_extract_many: source slot ", slot,
                                " out of range");
      }
      const Datum& src = row[slot];
      if (src.is_null()) {
        i = j;
        continue;
      }
      if (!src.is_bytes()) {
        return Status::TypeError(
            "sinew_extract_many: source must be serialized data");
      }
      stats->decodes += 1;
      stats->attrs += j - i;
      decodes_counter->Increment();
      attrs_hist->Observe(j - i);
      RETURN_NOT_OK(ExtractGroupFromDoc(
          *catalog, targets, i, j, src.str(),
          [outs](size_t k) { return &(*outs)[k]; }));
      i = j;
    }
    return Status::OK();
  };
}

/// The vectorized entry point the batch executor prefers: one call serves
/// every selected lane of a RowBatch. Per source-slot group, the loop over
/// lanes is the only addition — the per-document work is the same shared
/// core — but the std::function dispatch, target grouping and slot checks
/// amortize over the whole batch, and stats/metrics updates collapse from
/// one per row to one per batch.
engine::BatchExtractRowsFn MakeBatchRowsExtractor(AttributeCatalog* catalog) {
  return [catalog](const engine::RowBatch& batch,
                   const std::vector<uint32_t>& lanes,
                   const std::vector<engine::ExtractTarget>& targets,
                   std::vector<std::vector<Datum>>* out_cols,
                   engine::BatchExtractStats* stats) -> Status {
    static metrics::Counter* decodes_counter =
        metrics::GetCounter("reservoir.decodes");
    static metrics::Histogram* attrs_hist =
        metrics::GetHistogram("reservoir.attrs_per_decode");
    out_cols->resize(targets.size());
    for (std::vector<Datum>& col : *out_cols) {
      col.assign(lanes.size(), Datum::Null());
    }
    size_t i = 0;
    while (i < targets.size()) {
      const int slot = targets[i].source_slot;
      size_t j = i;
      while (j < targets.size() && targets[j].source_slot == slot) ++j;
      if (slot < 0 || static_cast<size_t>(slot) >= batch.num_cols()) {
        return Status::Internal("sinew_extract_many: source slot ", slot,
                                " out of range");
      }
      const std::vector<Datum>& src_col = batch.cols[slot];
      uint64_t decoded = 0;
      for (size_t n = 0; n < lanes.size(); ++n) {
        const Datum& src = src_col[lanes[n]];
        if (src.is_null()) continue;
        if (!src.is_bytes()) {
          return Status::TypeError(
              "sinew_extract_many: source must be serialized data");
        }
        ++decoded;
        RETURN_NOT_OK(ExtractGroupFromDoc(
            *catalog, targets, i, j, src.str(),
            [out_cols, n](size_t k) { return &(*out_cols)[k][n]; }));
      }
      stats->decodes += decoded;
      stats->attrs += decoded * (j - i);
      decodes_counter->Add(decoded);
      attrs_hist->ObserveN(j - i, decoded);
      i = j;
    }
    return Status::OK();
  };
}

/// Encodes a scalar datum with the reservoir value encoding; returns its
/// ValueType alongside.
Result<std::pair<ValueType, std::string>> EncodeScalarDatum(const Datum& v) {
  Value value = v.ToValue();
  ASSIGN_OR_RETURN(std::string body,
                   serial::EncodeValueBody(value, nullptr, ""));
  return std::make_pair(value.type(), std::move(body));
}

}  // namespace

void RegisterSinewFunctions(engine::UdfRegistry* registry,
                            AttributeCatalog* catalog) {
  // One resolution cache shared by every path-taking extractor registered
  // against this catalog; lives as long as any of the registered closures.
  auto cache = std::make_shared<PathResolutionCache>();

  // Attribute heat: the extract operator accumulates per-target access
  // tallies and flushes them here at close; the catalog aggregates them
  // across queries (surfaced as sinew_attribute_stats). Called from Gather
  // worker threads too — RecordHeat is mutex-guarded.
  registry->SetHeatSink(
      [catalog](const std::vector<engine::AttrAccessSample>& samples) {
        const uint64_t ordinal = qlog::QueryLog::Global()->CurrentOrdinal();
        for (const engine::AttrAccessSample& s : samples) {
          catalog->RecordHeat(s.table, s.attr_id, s.requests, s.strip_served,
                              s.reservoir_served, s.decode_ns, ordinal);
        }
      });
  registry->Register("sinew_extract_text",
                     MakeTypedExtractor(catalog, cache, ValueType::kString,
                                        "sinew_extract_text"));
  registry->Register("sinew_extract_int",
                     MakeTypedExtractor(catalog, cache, ValueType::kInt,
                                        "sinew_extract_int"));
  registry->Register("sinew_extract_double",
                     MakeTypedExtractor(catalog, cache, ValueType::kDouble,
                                        "sinew_extract_double"));
  registry->Register("sinew_extract_bool",
                     MakeTypedExtractor(catalog, cache, ValueType::kBool,
                                        "sinew_extract_bool"));

  registry->Register(
      "sinew_extract_num",
      [catalog, cache](const UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_extract_num"));
        if (args[0]->is_null()) return Datum::Null();
        for (ValueType type : {ValueType::kInt, ValueType::kDouble}) {
          std::optional<std::string_view> bytes = ExtractTyped(
              *catalog, cache.get(), args[0]->str(), args[1]->str(), type);
          if (bytes.has_value()) {
            return DecodeScalarTyped(*catalog, type, *bytes);
          }
        }
        return Datum::Null();
      });

  registry->Register(
      "sinew_extract_any",
      [catalog, cache](const UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_extract_any"));
        if (args[0]->is_null()) return Datum::Null();
        static constexpr ValueType kOrder[] = {
            ValueType::kBool,   ValueType::kInt,   ValueType::kDouble,
            ValueType::kString, ValueType::kArray, ValueType::kObject};
        for (ValueType type : kOrder) {
          std::optional<std::string_view> bytes = ExtractTyped(
              *catalog, cache.get(), args[0]->str(), args[1]->str(), type);
          if (!bytes.has_value()) continue;
          if (type == ValueType::kArray || type == ValueType::kObject) {
            ASSIGN_OR_RETURN(Value v,
                             serial::DecodeValueBody(type, *bytes, *catalog));
            return Datum::Text(v.ToJson());
          }
          return DecodeScalarTyped(*catalog, type, *bytes);
        }
        return Datum::Null();
      });

  registry->Register(
      "sinew_extract_bytes",
      [catalog, cache](const UdfArgs& args) -> Result<Datum> {
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_extract_bytes"));
        if (args[0]->is_null()) return Datum::Null();
        for (ValueType type : {ValueType::kObject, ValueType::kArray}) {
          std::optional<std::string_view> bytes = ExtractTyped(
              *catalog, cache.get(), args[0]->str(), args[1]->str(), type);
          if (bytes.has_value()) return Datum::Bytes(std::string(*bytes));
        }
        return Datum::Null();
      });

  // Batched extraction behind the planner's SinewExtract node: one reservoir
  // decode per row serves every hoisted virtual-attribute reference. The
  // batch-of-rows variant additionally amortizes dispatch and stats over a
  // whole RowBatch on the vectorized executor path.
  registry->RegisterBatchExtract("sinew_extract_many",
                                 MakeBatchExtractor(catalog));
  registry->RegisterBatchExtractRows("sinew_extract_many",
                                     MakeBatchRowsExtractor(catalog));

  // Chain extraction: the query rewriter resolves a dotted path to the
  // attribute-ID descent chain at rewrite time, so the per-row work is pure
  // header binary searches with no dictionary access at all.
  //   sinew_extract_chain(data, type_tag, id0, id1, ..., idN)
  // descends through object ids id0..idN-1 and decodes idN as `type_tag`
  // (objects/arrays render as JSON text, as in sinew_extract_any).
  auto chain_extract = [catalog](const UdfArgs& args,
                                 bool raw_bytes) -> Result<Datum> {
    if (args.size() < 3) {
      return Status::InvalidArgument(
          "sinew_extract_chain expects (data, type, id...)");
    }
    if (args[0]->is_null()) return Datum::Null();
    if (!args[0]->is_bytes() || !args[1]->is_int()) {
      return Status::TypeError("sinew_extract_chain(bytes, int, int...)");
    }
    // Each chain call decodes the row's reservoir anew for one attribute —
    // this is the per-attribute cost the batched path amortizes.
    static metrics::Counter* decodes = metrics::GetCounter("reservoir.decodes");
    static metrics::Histogram* attrs =
        metrics::GetHistogram("reservoir.attrs_per_decode");
    decodes->Increment();
    attrs->Observe(1);
    std::string_view current = args[0]->str();
    for (size_t i = 2; i + 1 < args.size(); ++i) {
      if (!args[i]->is_int()) {
        return Status::TypeError("chain ids must be integers");
      }
      serial::DocumentView view(current);
      std::optional<std::string_view> sub =
          view.Extract(static_cast<uint32_t>(args[i]->int_value()));
      if (!sub.has_value()) return Datum::Null();
      current = *sub;
    }
    serial::DocumentView view(current);
    std::optional<std::string_view> bytes = view.Extract(
        static_cast<uint32_t>(args.back()->int_value()));
    if (!bytes.has_value()) return Datum::Null();
    ValueType type = static_cast<ValueType>(args[1]->int_value());
    if (raw_bytes) return Datum::Bytes(std::string(*bytes));
    if (type == ValueType::kObject || type == ValueType::kArray) {
      ASSIGN_OR_RETURN(Value v,
                       serial::DecodeValueBody(type, *bytes, *catalog));
      return Datum::Text(v.ToJson());
    }
    return DecodeScalarTyped(*catalog, type, *bytes);
  };
  registry->Register("sinew_extract_chain",
                     [chain_extract](const UdfArgs& args) {
                       return chain_extract(args, /*raw_bytes=*/false);
                     });
  registry->Register("sinew_extract_chain_bytes",
                     [chain_extract](const UdfArgs& args) {
                       return chain_extract(args, /*raw_bytes=*/true);
                     });

  // Array containment without materializing the array: walks the serialized
  // element table and memcmps candidate payloads.
  //   sinew_array_contains_chain(data, value, id0, ..., idN)
  registry->Register(
      "sinew_array_contains_chain",
      [](const UdfArgs& args) -> Result<Datum> {
        if (args.size() < 3) {
          return Status::InvalidArgument(
              "sinew_array_contains_chain expects (data, value, id...)");
        }
        if (args[0]->is_null() || args[1]->is_null()) return Datum::Null();
        if (!args[0]->is_bytes()) {
          return Status::TypeError("first argument must be serialized data");
        }
        std::string_view current = args[0]->str();
        for (size_t i = 2; i + 1 < args.size(); ++i) {
          serial::DocumentView view(current);
          std::optional<std::string_view> sub =
              view.Extract(static_cast<uint32_t>(args[i]->int_value()));
          if (!sub.has_value()) return Datum::Null();
          current = *sub;
        }
        serial::DocumentView view(current);
        std::optional<std::string_view> arr = view.Extract(
            static_cast<uint32_t>(args.back()->int_value()));
        if (!arr.has_value()) return Datum::Null();
        ASSIGN_OR_RETURN(bool contains,
                         serial::ArrayContainsScalar(*arr, args[1]->ToValue()));
        return Datum::Bool(contains);
      });

  registry->Register(
      "sinew_array_contains",
      [catalog, cache](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 3) {
          return Status::InvalidArgument(
              "sinew_array_contains expects (data, path, value)");
        }
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_array_contains"));
        if (args[0]->is_null() || args[2]->is_null()) return Datum::Null();
        std::optional<std::string_view> bytes;
        std::string_view path = args[1]->str();
        if (path.empty()) {
          // The first argument is itself the serialized array.
          bytes = args[0]->str();
        } else {
          bytes = ExtractTyped(*catalog, cache.get(), args[0]->str(), path,
                               ValueType::kArray);
        }
        if (!bytes.has_value()) return Datum::Null();
        ASSIGN_OR_RETURN(bool contains, serial::ArrayContainsScalar(
                                            *bytes, args[2]->ToValue()));
        return Datum::Bool(contains);
      });

  registry->Register(
      "sinew_reservoir_set",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 3) {
          return Status::InvalidArgument(
              "sinew_reservoir_set expects (data, path, value)");
        }
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_reservoir_set"));
        std::string data;
        if (args[0]->is_null()) {
          ASSIGN_OR_RETURN(
              data, serial::SerializeDocument(Value::Object({}), catalog));
        } else {
          data = args[0]->str();
        }
        const std::string& path = args[1]->str();
        if (args[2]->is_null()) {
          // Setting NULL removes every typed variant of the attribute.
          for (const serial::Attribute& attr : catalog->FindAllTypes(path)) {
            ASSIGN_OR_RETURN(data, serial::RemoveAttribute(data, attr.id));
          }
          return Datum::Bytes(std::move(data));
        }
        ASSIGN_OR_RETURN(auto typed, EncodeScalarDatum(*args[2]));
        ASSIGN_OR_RETURN(uint32_t id, catalog->Intern(path, typed.first));
        // Remove other-typed variants of the key first, then set.
        for (const serial::Attribute& attr : catalog->FindAllTypes(path)) {
          if (attr.id != id) {
            ASSIGN_OR_RETURN(data, serial::RemoveAttribute(data, attr.id));
          }
        }
        ASSIGN_OR_RETURN(data, serial::SetAttribute(data, id, typed.second));
        return Datum::Bytes(std::move(data));
      });

  registry->Register(
      "sinew_reservoir_remove",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 2) {
          return Status::InvalidArgument(
              "sinew_reservoir_remove expects (data, path)");
        }
        RETURN_NOT_OK(CheckDataPathArgs(args, "sinew_reservoir_remove"));
        if (args[0]->is_null()) return Datum::Null();
        std::string data = args[0]->str();
        for (const serial::Attribute& attr :
             catalog->FindAllTypes(args[1]->str())) {
          ASSIGN_OR_RETURN(data, serial::RemoveAttribute(data, attr.id));
        }
        return Datum::Bytes(std::move(data));
      });

  registry->Register(
      "sinew_render_object",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 1) {
          return Status::InvalidArgument("sinew_render_object expects (data)");
        }
        if (args[0]->is_null()) return Datum::Null();
        if (!args[0]->is_bytes()) {
          return Status::TypeError("sinew_render_object on non-bytes");
        }
        ASSIGN_OR_RETURN(Value v, serial::DeserializeDocument(args[0]->str(),
                                                              *catalog));
        return Datum::Text(v.ToJson());
      });

  registry->Register(
      "sinew_render_array",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 1) {
          return Status::InvalidArgument("sinew_render_array expects (data)");
        }
        if (args[0]->is_null()) return Datum::Null();
        if (!args[0]->is_bytes()) {
          return Status::TypeError("sinew_render_array on non-bytes");
        }
        ASSIGN_OR_RETURN(Value v, serial::DecodeValueBody(
                                      ValueType::kArray, args[0]->str(),
                                      *catalog));
        return Datum::Text(v.ToJson());
      });

  registry->Register(
      "sinew_reconstruct",
      [catalog](const UdfArgs& args) -> Result<Datum> {
        if (args.size() != 1) {
          return Status::InvalidArgument("sinew_reconstruct expects (data)");
        }
        if (args[0]->is_null()) return Datum::Null();
        if (!args[0]->is_bytes()) {
          return Status::TypeError("sinew_reconstruct on non-bytes");
        }
        ASSIGN_OR_RETURN(Value doc, serial::DeserializeDocument(
                                        args[0]->str(), *catalog));
        return Datum::Text(doc.ToJson());
      });
}

}  // namespace sinew
