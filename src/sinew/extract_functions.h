// Sinew's extraction UDFs (paper Sections 3.2.2 and 4.1), registered into
// the engine's UDF registry exactly as the prototype installs C UDFs into
// Postgres (Section 5).
//
//   sinew_extract_text/int/double/bool(data, 'path')
//       typed extraction; returns NULL when the path is absent OR holds a
//       value of a different type (the multi-typed-key behaviour).
//   sinew_extract_num(data, 'path')
//       numeric extraction accepting int- or double-typed attributes.
//   sinew_extract_any(data, 'path')
//       untyped extraction for projection contexts; scalars come back in
//       their natural type, objects/arrays as canonical JSON text.
//       (Deviation from the paper, which downcasts everything to string in
//       untyped contexts: natural types keep results comparable across the
//       benchmarked systems. Recorded in DESIGN.md.)
//   sinew_extract_bytes(data, 'path')
//       raw serialized body (nested objects/arrays) for re-extraction.
//   sinew_array_contains(data, 'path', value)
//       array containment over a serialized array attribute.
//   sinew_reservoir_set(data, 'path', value) / sinew_reservoir_remove(...)
//       functional updates used by the UPDATE rewrite path.
//   sinew_reconstruct(data)
//       the full document as canonical JSON text.

#ifndef SINEW_SINEW_EXTRACT_FUNCTIONS_H_
#define SINEW_SINEW_EXTRACT_FUNCTIONS_H_

#include "engine/udf.h"
#include "sinew/catalog.h"

namespace sinew {

/// Registers all Sinew UDFs. `catalog` must outlive the registry.
void RegisterSinewFunctions(engine::UdfRegistry* registry,
                            AttributeCatalog* catalog);

}  // namespace sinew

#endif  // SINEW_SINEW_EXTRACT_FUNCTIONS_H_
