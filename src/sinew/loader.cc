#include "sinew/loader.h"

#include <set>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "json/json.h"
#include "serial/sinew_format.h"

namespace sinew {

namespace {

/// Collects the attribute IDs present in a document (recursively, including
/// attributes nested inside objects and inside arrays of objects), mirroring
/// the paths SerializeDocument interns.
Status CollectAttributeIds(const Value& doc, const std::string& prefix,
                           const AttributeCatalog& catalog,
                           std::set<uint32_t>* out) {
  for (const auto& [key, value] : doc.members()) {
    if (value.is_null()) continue;
    std::string path = prefix + key;
    std::optional<uint32_t> id = catalog.FindId(path, value.type());
    if (!id.has_value()) {
      return Status::Internal("attribute ", path,
                              " missing from catalog after serialization");
    }
    out->insert(*id);
    if (value.is_object()) {
      RETURN_NOT_OK(CollectAttributeIds(value, path + ".", catalog, out));
    } else if (value.is_array()) {
      for (const Value& e : value.array()) {
        if (e.is_object()) {
          RETURN_NOT_OK(CollectAttributeIds(e, path + ".", catalog, out));
        }
      }
    }
  }
  return Status::OK();
}

void IndexDocument(const Value& doc, const std::string& prefix, uint64_t rid,
                   textindex::InvertedIndex* index) {
  for (const auto& [key, value] : doc.members()) {
    std::string path = prefix + key;
    switch (value.type()) {
      case ValueType::kString:
        index->AddText(rid, path, value.string_value());
        break;
      case ValueType::kInt:
        index->AddNumber(rid, path, static_cast<double>(value.int_value()));
        break;
      case ValueType::kDouble:
        index->AddNumber(rid, path, value.double_value());
        break;
      case ValueType::kBool:
        index->AddText(rid, path, value.bool_value() ? "true" : "false");
        break;
      case ValueType::kObject:
        IndexDocument(value, path + ".", rid, index);
        break;
      case ValueType::kArray:
        for (const Value& e : value.array()) {
          if (e.is_string()) {
            index->AddText(rid, path, e.string_value());
          } else if (e.is_number()) {
            index->AddNumber(rid, path, e.AsDouble());
          } else if (e.is_object()) {
            IndexDocument(e, path + ".", rid, index);
          }
        }
        break;
      case ValueType::kNull:
        break;
    }
  }
}

}  // namespace

Result<uint64_t> Loader::LoadDocuments(const std::string& table,
                                       const std::vector<Value>& docs,
                                       textindex::InvertedIndex* index) {
  static metrics::Counter* batches_total =
      metrics::GetCounter("loader.batches_total");
  static metrics::Counter* load_ns_total =
      metrics::GetCounter("loader.load_ns_total");
  batches_total->Increment();
  const uint64_t load_start = metrics::NowNanos();
  // Ensure the engine table and catalog entry exist.
  if (!catalog_->HasTable(table)) {
    catalog_->RegisterTable(table);
  }
  engine::Table* engine_table;
  Result<engine::Table*> existing = db_->catalog()->GetTable(table);
  if (existing.ok()) {
    engine_table = *existing;
  } else {
    engine::Schema schema;
    RETURN_NOT_OK(schema.AddColumn(engine::Column{
        std::string(kReservoirColumn), engine::ColumnType::kBytes, false}));
    ASSIGN_OR_RETURN(engine_table,
                     db_->catalog()->CreateTable(table, std::move(schema)));
  }

  // Validate everything up front so the batch is all-or-nothing before any
  // row lands, and the parallel phase below never sees malformed input.
  for (size_t i = 0; i < docs.size(); ++i) {
    const Value& doc = docs[i];
    if (!doc.is_object()) {
      return Status::InvalidArgument(
          "document ", i, " is not an object (", ValueTypeName(doc.type()),
          ")");
    }
    for (const auto& [key, value] : doc.members()) {
      (void)value;
      if (key == kReservoirColumn || key == "__rid" || key.starts_with("$")) {
        return Status::InvalidArgument("reserved key name '", key, "'");
      }
    }
  }

  // Loader and materializer are mutually exclusive (paper Section 3.1.4).
  std::lock_guard maintenance(catalog_->MaintenanceLatch(table));
  if (!engine_table->FindColumnLatched(kReservoirColumn).has_value()) {
    return Status::InvalidArgument("table ", table,
                                   " has no column reservoir");
  }

  // Phase 1 — serialize each document into its reservoir image and collect
  // its attribute ids. This is the CPU-heavy part of a bulk load (catalog
  // interning is internally synchronized), so it fans out over the shared
  // pool; attribute-id interning order becomes nondeterministic, which is
  // harmless — ids are opaque.
  std::vector<std::string> reservoirs(docs.size());
  std::vector<std::set<uint32_t>> doc_ids(docs.size());
  auto serialize_range = [&](uint64_t lo, uint64_t hi) -> Status {
    for (uint64_t i = lo; i < hi; ++i) {
      ASSIGN_OR_RETURN(reservoirs[i],
                       serial::SerializeDocument(docs[i], catalog_));
      RETURN_NOT_OK(CollectAttributeIds(docs[i], "", *catalog_, &doc_ids[i]));
    }
    return Status::OK();
  };
  if (parallelism_ > 1 && docs.size() >= 64) {
    RETURN_NOT_OK(ThreadPool::Shared()->ParallelFor(
        0, docs.size(), 64, static_cast<size_t>(parallelism_),
        serialize_range));
  } else {
    RETURN_NOT_OK(serialize_range(0, docs.size()));
  }
  uint64_t reservoir_bytes = 0;
  for (const std::string& r : reservoirs) reservoir_bytes += r.size();
  static metrics::Counter* reservoir_bytes_total =
      metrics::GetCounter("loader.reservoir_bytes_total");
  reservoir_bytes_total->Add(reservoir_bytes);

  // Phase 2 — append rows and update occurrence counts in document order
  // (serial, so row ids match input order deterministically).
  engine::Schema schema = engine_table->SchemaSnapshot();
  uint64_t loaded = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    Result<uint64_t> rid_or = 0;
    for (int attempt = 0; attempt < 2; ++attempt) {
      std::optional<size_t> data_slot = schema.FindColumn(kReservoirColumn);
      engine::DatumRow row(schema.num_slots());
      row[*data_slot] = engine::Datum::Bytes(reservoirs[i]);
      rid_or = engine_table->AppendRow(row);
      // A concurrent query's rewriter may add a physical column between our
      // snapshot and the append; refresh the snapshot and retry once.
      if (rid_or.ok() || !rid_or.status().IsInvalidArgument()) break;
      schema = engine_table->SchemaSnapshot();
    }
    RETURN_NOT_OK(rid_or.status());
    uint64_t rid = *rid_or;

    for (uint32_t id : doc_ids[i]) {
      catalog_->AddOccurrences(table, id, 1);
      // Data for already-materialized attributes lands in the reservoir
      // first; flag the column dirty so the materializer moves it.
      std::optional<AttributeState> state = catalog_->GetState(table, id);
      if (state.has_value() && state->materialized && !state->dirty) {
        RETURN_NOT_OK(catalog_->SetDirty(table, id, true));
      }
    }
    if (index != nullptr) {
      IndexDocument(docs[i], "", rid, index);
    }
    ++loaded;
  }
  static metrics::Counter* docs_total =
      metrics::GetCounter("loader.docs_total");
  docs_total->Add(loaded);
  load_ns_total->Add(metrics::NowNanos() - load_start);
  return loaded;
}

Result<uint64_t> Loader::LoadJsonLines(const std::string& table,
                                       std::string_view jsonl,
                                       textindex::InvertedIndex* index) {
  ASSIGN_OR_RETURN(std::vector<Value> docs, json::ParseLines(jsonl));
  return LoadDocuments(table, docs, index);
}

}  // namespace sinew
