// Bulk loader (paper Section 3.2.1).
//
// A load is serialization + insertion: each document is validated, serialized
// into the reservoir format (interning new attributes into the catalog as a
// side effect — "the cost of adding a new attribute to the schema is just the
// cost to insert it into the catalog"), and appended as a row whose only
// non-null column is `_data`. The loader never looks at the physical schema:
// data always lands in the reservoir, and affected materialized columns are
// flagged dirty for the materializer to move later.

#ifndef SINEW_SINEW_LOADER_H_
#define SINEW_SINEW_LOADER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "sinew/catalog.h"
#include "textindex/inverted_index.h"

namespace sinew {

/// Name of the column reservoir column in every Sinew-managed table.
inline constexpr std::string_view kReservoirColumn = "_data";

class Loader {
 public:
  Loader(engine::Database* db, AttributeCatalog* catalog)
      : db_(db), catalog_(catalog) {}

  /// Degree of parallelism for the document serialization phase of a bulk
  /// load (the CPU-heavy part; appends stay serial to keep row order
  /// deterministic). 1 = fully serial.
  void SetParallelism(int degree) { parallelism_ = degree < 1 ? 1 : degree; }

  /// Loads parsed documents; creates the table (schema: `_data BYTES`) on
  /// first use. Returns the number of rows loaded. If `index` is non-null,
  /// scalar fields are added to it under their dotted paths.
  Result<uint64_t> LoadDocuments(const std::string& table,
                                 const std::vector<Value>& docs,
                                 textindex::InvertedIndex* index = nullptr);

  /// Parses newline-delimited JSON and loads it.
  Result<uint64_t> LoadJsonLines(const std::string& table,
                                 std::string_view jsonl,
                                 textindex::InvertedIndex* index = nullptr);

 private:
  engine::Database* db_;
  AttributeCatalog* catalog_;
  int parallelism_ = 1;
};

}  // namespace sinew

#endif  // SINEW_SINEW_LOADER_H_
