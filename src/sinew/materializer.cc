#include "sinew/materializer.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "engine/table.h"
#include "serial/sinew_format.h"
#include "sinew/loader.h"

namespace sinew {

namespace {

/// Encodes a physical column datum back into the reservoir value encoding
/// for its attribute type.
Result<std::string> EncodeDatumForAttribute(const serial::Attribute& attr,
                                            const engine::Datum& value) {
  switch (attr.type) {
    case ValueType::kBool:
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kString: {
      Value v = value.ToValue();
      return serial::EncodeValueBody(v, nullptr, "");
    }
    case ValueType::kObject:
    case ValueType::kArray:
      // BYTES columns hold the serialized body verbatim.
      return value.str();
    case ValueType::kNull:
      return std::string();
  }
  return Status::Internal("bad attribute type");
}

/// Decodes a reservoir value into the physical column representation.
Result<engine::Datum> DecodeAttributeValue(const serial::Attribute& attr,
                                           std::string_view bytes,
                                           const AttributeCatalog& catalog) {
  switch (attr.type) {
    case ValueType::kObject:
    case ValueType::kArray:
      return engine::Datum::Bytes(std::string(bytes));
    default: {
      ASSIGN_OR_RETURN(Value v,
                       serial::DecodeValueBody(attr.type, bytes, catalog));
      return engine::Datum::FromValue(v);
    }
  }
}

}  // namespace

Result<ColumnMaterializer::Pass*> ColumnMaterializer::StartPassIfNeeded(
    const std::string& table) {
  {
    std::lock_guard lock(passes_mu_);
    auto it = passes_.find(table);
    if (it != passes_.end()) return &it->second;  // pass already in flight
  }
  std::vector<uint32_t> dirty = catalog_->DirtyAttributes(table);
  if (dirty.empty()) return static_cast<Pass*>(nullptr);
  ASSIGN_OR_RETURN(engine::Table * engine_table,
                   db_->catalog()->GetTable(table));
  // Ensure physical columns exist for attributes being materialized.
  for (uint32_t id : dirty) {
    std::optional<AttributeState> state = catalog_->GetState(table, id);
    if (!state.has_value()) continue;
    ASSIGN_OR_RETURN(serial::Attribute attr, catalog_->Lookup(id));
    std::optional<size_t> slot = engine_table->FindColumnLatched(attr.key);
    if (state->materialized && !slot.has_value()) {
      RETURN_NOT_OK(engine_table->AddColumn(engine::Column{
          attr.key, engine::ColumnTypeForValueType(attr.type), false}));
      static metrics::Counter* promoted =
          metrics::GetCounter("materializer.columns_promoted_total");
      promoted->Increment();
    }
  }
  Pass pass;
  pass.cursor = 0;
  pass.end = engine_table->RowSlotCount();
  pass.attr_ids = std::move(dirty);
  std::lock_guard lock(passes_mu_);
  return &passes_.emplace(table, std::move(pass)).first->second;
}

Result<uint64_t> ColumnMaterializer::Step(const std::string& table,
                                          uint64_t max_rows) {
  metrics::ScopedSpan step_span("materializer.step", table);
  // Exclude the loader while we move data (paper Section 3.1.4).
  std::lock_guard maintenance(catalog_->MaintenanceLatch(table));
  ASSIGN_OR_RETURN(Pass * pass_ptr, StartPassIfNeeded(table));
  if (pass_ptr == nullptr) return 0;
  static metrics::Counter* steps_total =
      metrics::GetCounter("materializer.steps_total");
  steps_total->Increment();
  Pass& pass = *pass_ptr;
  ASSIGN_OR_RETURN(engine::Table * engine_table,
                   db_->catalog()->GetTable(table));

  struct Work {
    serial::Attribute attr;
    bool materialize;  // direction
    size_t slot;
    uint32_t id;
  };
  std::vector<Work> work;
  for (uint32_t id : pass.attr_ids) {
    std::optional<AttributeState> state = catalog_->GetState(table, id);
    if (!state.has_value() || !state->dirty) continue;
    ASSIGN_OR_RETURN(serial::Attribute attr, catalog_->Lookup(id));
    std::optional<size_t> slot = engine_table->FindColumnLatched(attr.key);
    if (!slot.has_value()) continue;
    work.push_back(Work{std::move(attr), state->materialized, *slot, id});
  }
  std::optional<size_t> data_slot =
      engine_table->FindColumnLatched(kReservoirColumn);
  if (!data_slot.has_value()) {
    return Status::InvalidArgument("table ", table, " has no reservoir");
  }

  // Each row move is an independent read-modify-write of one row, idempotent
  // on retry (re-extracting an attribute already moved is a no-op extract
  // miss), so the increment can fan out over the shared pool. The cursor
  // only advances after the whole range succeeds.
  const uint64_t lo = pass.cursor;
  const uint64_t hi = std::min(pass.end, lo + max_rows);
  auto process_row = [&](uint64_t rid) -> Status {
    Result<engine::DatumRow> row_or = engine_table->ReadRow(rid);
    if (!row_or.ok()) return Status::OK();  // deleted row
    engine::DatumRow row = std::move(*row_or);
    engine::Datum& data = row[*data_slot];
    bool changed = false;
    std::string reservoir = data.is_null() ? std::string() : data.str();
    for (const Work& w : work) {
      if (w.materialize) {
        // reservoir -> physical column. Top-level attributes are moved out
        // of the reservoir; attributes nested inside an object (dotted key)
        // are copied from their enclosing serialized document — either the
        // reservoir (via path descent) or an already-materialized ancestor
        // column — and the parent document stays authoritative.
        std::optional<std::string_view> bytes;
        bool top_level = w.attr.key.find('.') == std::string::npos;
        if (!reservoir.empty()) {
          serial::DocumentView view(reservoir);
          if (top_level) {
            bytes = view.Extract(w.id);
          } else {
            bytes = view.ExtractPath(w.attr.key, w.attr.type, *catalog_);
          }
        }
        if (!bytes.has_value() && !top_level) {
          // Look inside materialized ancestor columns of this row.
          size_t dot = w.attr.key.rfind('.');
          while (dot != std::string::npos && !bytes.has_value()) {
            std::string prefix = w.attr.key.substr(0, dot);
            std::optional<size_t> pslot =
                engine_table->FindColumnLatched(prefix);
            if (pslot.has_value() && !row[*pslot].is_null() &&
                row[*pslot].is_bytes()) {
              serial::DocumentView pview(row[*pslot].str());
              bytes = pview.ExtractPath(w.attr.key, w.attr.type, *catalog_);
            }
            dot = dot == 0 ? std::string::npos
                           : w.attr.key.rfind('.', dot - 1);
          }
        }
        if (!bytes.has_value()) continue;
        ASSIGN_OR_RETURN(engine::Datum v,
                         DecodeAttributeValue(w.attr, *bytes, *catalog_));
        row[w.slot] = std::move(v);
        if (top_level) {
          ASSIGN_OR_RETURN(reservoir,
                           serial::RemoveAttribute(reservoir, w.id));
        }
        changed = true;
      } else {
        // physical column -> reservoir
        if (row[w.slot].is_null()) continue;
        ASSIGN_OR_RETURN(std::string encoded,
                         EncodeDatumForAttribute(w.attr, row[w.slot]));
        if (reservoir.empty()) {
          // Start from an empty document.
          ASSIGN_OR_RETURN(
              reservoir,
              serial::SerializeDocument(Value::Object({}), catalog_));
        }
        ASSIGN_OR_RETURN(reservoir,
                         serial::SetAttribute(reservoir, w.id, encoded));
        row[w.slot] = engine::Datum::Null();
        changed = true;
      }
    }
    if (changed) {
      data = engine::Datum::Bytes(std::move(reservoir));
      // Atomic single-row update; queries interleave freely.
      RETURN_NOT_OK(engine_table->UpdateRow(rid, row));
      // Thread-safe: process_row fans out over the shared pool.
      static metrics::Counter* backfilled =
          metrics::GetCounter("materializer.rows_backfilled_total");
      backfilled->Increment();
    }
    return Status::OK();
  };
  auto process_range = [&](uint64_t a, uint64_t b) -> Status {
    for (uint64_t rid = a; rid < b; ++rid) {
      RETURN_NOT_OK(process_row(rid));
    }
    return Status::OK();
  };
  if (parallelism_ > 1 && hi - lo >= 2048) {
    RETURN_NOT_OK(ThreadPool::Shared()->ParallelFor(
        lo, hi, 512, static_cast<size_t>(parallelism_), process_range));
  } else {
    RETURN_NOT_OK(process_range(lo, hi));
  }
  pass.cursor = hi;

  if (pass.cursor >= pass.end) {
    RETURN_NOT_OK(FinishPass(table));
  }
  return hi - lo;
}

Status ColumnMaterializer::FinishPass(const std::string& table) {
  static metrics::Counter* passes_total =
      metrics::GetCounter("materializer.passes_total");
  passes_total->Increment();
  Pass pass;
  {
    std::lock_guard lock(passes_mu_);
    pass = std::move(passes_[table]);
    passes_.erase(table);
  }
  ASSIGN_OR_RETURN(engine::Table * engine_table,
                   db_->catalog()->GetTable(table));
  // Rows the loader appended after this pass snapshotted its end still hold
  // their values in the reservoir (the loader re-flags affected columns
  // dirty as it appends). Clearing the flag here would clobber that
  // re-dirty and leave those rows unpromoted forever, so promoted columns
  // stay dirty and the next pass covers the new rows (re-examining old rows
  // is a no-op: their reservoir entries were already removed).
  // Dematerialization is unaffected — appended rows only ever write the
  // reservoir, which is where a dematerialized column lives anyway.
  const bool grew = engine_table->RowSlotCount() > pass.end;
  for (uint32_t id : pass.attr_ids) {
    std::optional<AttributeState> state = catalog_->GetState(table, id);
    if (!state.has_value()) continue;
    if (!state->materialized || !grew) {
      RETURN_NOT_OK(catalog_->SetDirty(table, id, false));
    }
    if (!state->materialized) {
      // Dematerialization completed: drop the physical column.
      ASSIGN_OR_RETURN(serial::Attribute attr, catalog_->Lookup(id));
      if (engine_table->FindColumnLatched(attr.key).has_value()) {
        RETURN_NOT_OK(engine_table->DropColumn(attr.key));
        static metrics::Counter* demoted =
            metrics::GetCounter("materializer.columns_demoted_total");
        demoted->Increment();
      }
    }
  }
  return Status::OK();
}

Status ColumnMaterializer::RunToCompletion(const std::string& table) {
  while (true) {
    ASSIGN_OR_RETURN(uint64_t examined, Step(table, 1 << 16));
    if (examined == 0) break;
  }
  // Refresh optimizer statistics now that the physical schema changed.
  ASSIGN_OR_RETURN(engine::Table * engine_table,
                   db_->catalog()->GetTable(table));
  return engine_table->Analyze();
}

}  // namespace sinew
