// Column materializer (paper Section 3.1.4).
//
// Moves attribute values between the column reservoir and physical columns,
// one atomic row update at a time, in bounded increments (`Step`). A column
// being moved stays dirty until a full pass over the table completes, and
// queries remain correct at every intermediate point because the rewriter
// reads dirty columns through COALESCE(column, extract(reservoir)).
//
// The materializer and the loader are mutually exclusive via the catalog's
// per-table maintenance latch; queries are NOT excluded (the whole point of
// the design). Concurrent UPDATE statements against a column mid-movement
// are the one unsupported interleaving (same as the paper, which runs the
// materializer "when there are spare resources").

#ifndef SINEW_SINEW_MATERIALIZER_H_
#define SINEW_SINEW_MATERIALIZER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "sinew/catalog.h"

namespace sinew {

class ColumnMaterializer {
 public:
  ColumnMaterializer(engine::Database* db, AttributeCatalog* catalog)
      : db_(db), catalog_(catalog) {}

  /// Degree of parallelism for the row-movement phase of a Step (each row
  /// update is independently atomic, so large increments fan out over the
  /// shared pool). 1 = fully serial.
  void SetParallelism(int degree) { parallelism_ = degree < 1 ? 1 : degree; }

  /// Performs up to `max_rows` row updates of pending work on `table`.
  /// Returns the number of rows examined (0 when nothing is dirty). The
  /// increment can be stopped at any point and resumed later; the cursor is
  /// kept across calls.
  Result<uint64_t> Step(const std::string& table, uint64_t max_rows);

  /// Loops Step until no column of `table` is dirty, then refreshes engine
  /// ANALYZE statistics so the optimizer sees the new physical columns.
  Status RunToCompletion(const std::string& table);

 private:
  struct Pass {
    uint64_t cursor = 0;
    uint64_t end = 0;  // row-slot snapshot when the pass started
    std::vector<uint32_t> attr_ids;
  };

  /// Returns the in-flight pass for `table` (starting one if any column is
  /// dirty), or nullptr when there is no work. The pointer stays valid until
  /// FinishPass erases the entry: map nodes are stable, concurrent Steps on
  /// the same table are serialized by the maintenance latch, and only
  /// passes_mu_ — not the per-table latch — guards the map itself, since
  /// Steps on *different* tables run concurrently.
  Result<Pass*> StartPassIfNeeded(const std::string& table);
  Status FinishPass(const std::string& table);

  engine::Database* db_;
  AttributeCatalog* catalog_;
  std::mutex passes_mu_;
  std::map<std::string, Pass> passes_;
  int parallelism_ = 1;
};

}  // namespace sinew

#endif  // SINEW_SINEW_MATERIALIZER_H_
