#include "sinew/persistence.h"

#include <filesystem>
#include <fstream>

#include "common/bytes.h"
#include "engine/persist.h"
#include "sinew/sinew_db.h"

namespace sinew {

namespace {

constexpr std::string_view kCatalogMagic = "SINEWCAT";
constexpr uint32_t kCatalogVersion = 1;

Status WriteFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open ", path, " for writing");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IOError("short write to ", path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open ", path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string TableImagePath(const std::string& dir, const std::string& table) {
  return dir + "/table_" + table + ".tbl";
}

}  // namespace

Result<std::string> SerializeCatalogImage(SinewDb* db) {
  AttributeCatalog* catalog = db->catalog();
  BufferWriter w;
  w.PutBytes(kCatalogMagic);
  w.PutU32(kCatalogVersion);
  // Global dictionary, dense ids in order.
  uint32_t n = static_cast<uint32_t>(catalog->size());
  w.PutU32(n);
  for (uint32_t id = 0; id < n; ++id) {
    ASSIGN_OR_RETURN(serial::Attribute attr, catalog->Lookup(id));
    w.PutLengthPrefixed(attr.key);
    w.PutU8(static_cast<uint8_t>(attr.type));
  }
  // Per-table attribute state.
  std::vector<std::string> tables = catalog->TableNames();
  w.PutU32(static_cast<uint32_t>(tables.size()));
  for (const std::string& table : tables) {
    w.PutLengthPrefixed(table);
    std::vector<AttributeState> attrs = catalog->TableAttributes(table);
    w.PutU32(static_cast<uint32_t>(attrs.size()));
    for (const AttributeState& state : attrs) {
      w.PutU32(state.attr_id);
      w.PutU64(state.count);
      w.PutU8(static_cast<uint8_t>((state.materialized ? 1 : 0) |
                                   (state.dirty ? 2 : 0)));
    }
  }
  return w.Release();
}

Status RestoreCatalogImage(SinewDb* db, std::string_view image) {
  AttributeCatalog* catalog = db->catalog();
  if (catalog->size() != 0) {
    return Status::InvalidArgument(
        "catalog restore requires a fresh SinewDb");
  }
  BufferReader r(image);
  ASSIGN_OR_RETURN(std::string_view magic, r.ReadBytes(kCatalogMagic.size()));
  if (magic != kCatalogMagic) {
    return Status::ParseError("bad catalog image magic");
  }
  ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kCatalogVersion) {
    return Status::ParseError("unsupported catalog image version ", version);
  }
  ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  for (uint32_t id = 0; id < n; ++id) {
    ASSIGN_OR_RETURN(std::string_view key, r.ReadLengthPrefixed());
    ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
    ASSIGN_OR_RETURN(uint32_t assigned,
                     catalog->Intern(key, static_cast<ValueType>(type)));
    if (assigned != id) {
      return Status::Internal("catalog id mismatch on restore: got ",
                              assigned, ", expected ", id);
    }
  }
  ASSIGN_OR_RETURN(uint32_t num_tables, r.ReadU32());
  for (uint32_t t = 0; t < num_tables; ++t) {
    ASSIGN_OR_RETURN(std::string_view table_view, r.ReadLengthPrefixed());
    std::string table(table_view);
    catalog->RegisterTable(table);
    ASSIGN_OR_RETURN(uint32_t num_attrs, r.ReadU32());
    for (uint32_t a = 0; a < num_attrs; ++a) {
      ASSIGN_OR_RETURN(uint32_t id, r.ReadU32());
      ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
      ASSIGN_OR_RETURN(uint8_t flags, r.ReadU8());
      catalog->AddOccurrences(table, id, count);
      if ((flags & 1) != 0) {
        RETURN_NOT_OK(catalog->SetMaterialized(table, id, true));
      }
      // SetMaterialized flips dirty; restore the saved bit exactly.
      RETURN_NOT_OK(catalog->SetDirty(table, id, (flags & 2) != 0));
    }
    db->NoteTable(table);
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in catalog image");
  return Status::OK();
}

Status SaveDatabase(SinewDb* db, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create ", directory, ": ", ec.message());
  }
  ASSIGN_OR_RETURN(std::string catalog_image, SerializeCatalogImage(db));
  RETURN_NOT_OK(WriteFile(directory + "/catalog.sinew", catalog_image));
  for (const std::string& table : db->Tables()) {
    ASSIGN_OR_RETURN(engine::Table * engine_table,
                     db->engine()->catalog()->GetTable(table));
    RETURN_NOT_OK(
        engine::SaveTable(*engine_table, TableImagePath(directory, table)));
  }
  return Status::OK();
}

Status LoadDatabase(SinewDb* db, const std::string& directory) {
  if (!db->Tables().empty()) {
    return Status::InvalidArgument("LoadDatabase requires a fresh SinewDb");
  }
  ASSIGN_OR_RETURN(std::string catalog_image,
                   ReadFile(directory + "/catalog.sinew"));
  RETURN_NOT_OK(RestoreCatalogImage(db, catalog_image));
  for (const std::string& table : db->Tables()) {
    RETURN_NOT_OK(engine::LoadTable(TableImagePath(directory, table),
                                    db->engine()->catalog())
                      .status());
  }
  return Status::OK();
}

}  // namespace sinew
