#include "sinew/persistence.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/image_io.h"
#include "common/metrics.h"
#include "engine/columnar.h"
#include "engine/persist.h"
#include "engine/table.h"
#include "sinew/sinew_db.h"

namespace sinew {

namespace {

constexpr std::string_view kCatalogMagic = "SINEWCAT";
constexpr uint32_t kCatalogVersion = 1;

constexpr std::string_view kManifestMagic = "SINEWMAN";
constexpr uint32_t kManifestVersion = 1;
constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kGenPrefix = "gen-";

std::string TableImagePath(const std::string& dir, const std::string& table) {
  return dir + "/table_" + table + ".tbl";
}

/// Columnar strip sidecar: shredded column strips of the table's cold rows,
/// written next to the row image. Strictly optional — a generation with a
/// missing, truncated or corrupt sidecar loads fine on the row reservoir.
std::string StripSidecarPath(const std::string& dir, const std::string& table) {
  return TableImagePath(dir, table) + ".strips";
}

/// Best-effort sidecar load: attaches the generation's columnar segment to
/// the freshly loaded table. Any failure — unreadable file, checksum
/// mismatch, malformed strips, or a segment covering rows the image does not
/// have — discards the sidecar and leaves the table on the row reservoir,
/// which is always correct.
void LoadStripSidecar(SinewDb* db, const std::string& table,
                      const std::string& path, Env* env) {
  static metrics::Counter* loaded =
      metrics::GetCounter("columnar.sidecar_loads");
  static metrics::Counter* rejected =
      metrics::GetCounter("columnar.sidecar_rejected");
  Result<std::string> payload = ReadImageFile(env, path);
  if (!payload.ok()) {
    rejected->Increment();
    return;
  }
  Result<std::shared_ptr<const engine::ColumnarSegment>> segment =
      engine::ColumnarSegment::Deserialize(*payload);
  if (!segment.ok()) {
    rejected->Increment();
    return;
  }
  Result<engine::Table*> engine_table = db->engine()->catalog()->GetTable(table);
  if (!engine_table.ok()) {
    rejected->Increment();
    return;
  }
  // The segment may cover fewer rows than the image (rows appended after the
  // shred are the hot tail, served by the reservoir) but never more.
  if ((*segment)->row_count() > (*engine_table)->RowSlotCount()) {
    rejected->Increment();
    return;
  }
  (*engine_table)->SetColumnarSegment(std::move(*segment));
  loaded->Increment();
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + std::string(kManifestName);
}

std::string GenDirName(const std::string& dir, uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "gen-%06" PRIu64, gen);
  return dir + "/" + buf;
}

/// Parses "gen-NNNNNN" directory entry names; nullopt for anything else.
std::optional<uint64_t> ParseGenEntry(std::string_view name) {
  if (name.substr(0, kGenPrefix.size()) != kGenPrefix) return std::nullopt;
  std::string_view digits = name.substr(kGenPrefix.size());
  if (digits.empty()) return std::nullopt;
  uint64_t gen = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    gen = gen * 10 + static_cast<uint64_t>(c - '0');
  }
  return gen;
}

/// The commit record: which generation is current, which one is retained as
/// the fallback, and the tables the current generation contains.
struct Manifest {
  uint64_t current = 0;
  uint64_t previous = 0;  // 0 = none retained
  std::vector<std::string> tables;
};

std::string EncodeManifest(const Manifest& m) {
  BufferWriter w;
  w.PutBytes(kManifestMagic);
  w.PutU32(kManifestVersion);
  w.PutU64(m.current);
  w.PutU64(m.previous);
  w.PutU32(static_cast<uint32_t>(m.tables.size()));
  for (const std::string& table : m.tables) w.PutLengthPrefixed(table);
  return w.Release();
}

Result<Manifest> DecodeManifest(std::string_view payload) {
  BufferReader r(payload);
  ASSIGN_OR_RETURN(std::string_view magic, r.ReadBytes(kManifestMagic.size()));
  if (magic != kManifestMagic) return Status::ParseError("bad MANIFEST magic");
  ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kManifestVersion) {
    return Status::ParseError("unsupported MANIFEST version ", version);
  }
  Manifest m;
  ASSIGN_OR_RETURN(m.current, r.ReadU64());
  ASSIGN_OR_RETURN(m.previous, r.ReadU64());
  if (m.current == 0) return Status::ParseError("MANIFEST names generation 0");
  ASSIGN_OR_RETURN(uint32_t num_tables, r.ReadU32());
  for (uint32_t i = 0; i < num_tables; ++i) {
    ASSIGN_OR_RETURN(std::string_view table, r.ReadLengthPrefixed());
    m.tables.emplace_back(table);
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in MANIFEST");
  return m;
}

Result<Manifest> ReadManifest(Env* env, const std::string& directory) {
  Result<std::string> payload = ReadImageFile(env, ManifestPath(directory));
  if (!payload.ok()) return payload.status();
  return DecodeManifest(*payload);
}

/// Best-effort cleanup of generations the MANIFEST no longer references and
/// of temp files a crashed save left behind. Never fails the caller: losing
/// garbage is not an error, and a crash mid-GC just leaves it for next time.
void GarbageCollect(Env* env, const std::string& directory, uint64_t keep_a,
                    uint64_t keep_b) {
  auto entries = env->ListDir(directory);
  if (!entries.ok()) return;
  for (const std::string& entry : *entries) {
    if (std::optional<uint64_t> gen = ParseGenEntry(entry)) {
      if (*gen != keep_a && *gen != keep_b) {
        (void)env->RemoveAll(directory + "/" + entry);
      }
    } else if (entry.size() > 4 &&
               entry.compare(entry.size() - 4, 4, ".tmp") == 0) {
      (void)env->DeleteFile(directory + "/" + entry);
    }
  }
}

/// Loads one generation directory into a fresh db. Not failure-atomic by
/// itself — callers reset the db on error.
Status LoadGeneration(SinewDb* db, const std::string& gen_dir, Env* env) {
  ASSIGN_OR_RETURN(std::string catalog_image,
                   ReadImageFile(env, gen_dir + "/catalog.sinew"));
  RETURN_NOT_OK(RestoreCatalogImage(db, catalog_image));
  for (const std::string& table : db->Tables()) {
    RETURN_NOT_OK(engine::LoadTable(TableImagePath(gen_dir, table),
                                    db->engine()->catalog(), env)
                      .status());
    const std::string strips = StripSidecarPath(gen_dir, table);
    if (env->FileExists(strips)) LoadStripSidecar(db, table, strips, env);
  }
  return Status::OK();
}

Status LoadGenerationOrReset(SinewDb* db, const std::string& directory,
                             uint64_t gen, Env* env) {
  Status st = LoadGeneration(db, GenDirName(directory, gen), env);
  if (!st.ok()) db->ResetForRecovery();
  return st;
}

}  // namespace

Result<std::string> SerializeCatalogImage(SinewDb* db) {
  AttributeCatalog* catalog = db->catalog();
  BufferWriter w;
  w.PutBytes(kCatalogMagic);
  w.PutU32(kCatalogVersion);
  // Global dictionary, dense ids in order.
  uint32_t n = static_cast<uint32_t>(catalog->size());
  w.PutU32(n);
  for (uint32_t id = 0; id < n; ++id) {
    ASSIGN_OR_RETURN(serial::Attribute attr, catalog->Lookup(id));
    w.PutLengthPrefixed(attr.key);
    w.PutU8(static_cast<uint8_t>(attr.type));
  }
  // Per-table attribute state.
  std::vector<std::string> tables = catalog->TableNames();
  w.PutU32(static_cast<uint32_t>(tables.size()));
  for (const std::string& table : tables) {
    w.PutLengthPrefixed(table);
    std::vector<AttributeState> attrs = catalog->TableAttributes(table);
    w.PutU32(static_cast<uint32_t>(attrs.size()));
    for (const AttributeState& state : attrs) {
      w.PutU32(state.attr_id);
      w.PutU64(state.count);
      w.PutU8(static_cast<uint8_t>((state.materialized ? 1 : 0) |
                                   (state.dirty ? 2 : 0)));
    }
  }
  return w.Release();
}

Status RestoreCatalogImage(SinewDb* db, std::string_view image) {
  AttributeCatalog* catalog = db->catalog();
  if (catalog->size() != 0) {
    return Status::InvalidArgument(
        "catalog restore requires a fresh SinewDb");
  }
  BufferReader r(image);
  ASSIGN_OR_RETURN(std::string_view magic, r.ReadBytes(kCatalogMagic.size()));
  if (magic != kCatalogMagic) {
    return Status::ParseError("bad catalog image magic");
  }
  ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kCatalogVersion) {
    return Status::ParseError("unsupported catalog image version ", version);
  }
  ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  for (uint32_t id = 0; id < n; ++id) {
    ASSIGN_OR_RETURN(std::string_view key, r.ReadLengthPrefixed());
    ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
    ASSIGN_OR_RETURN(uint32_t assigned,
                     catalog->Intern(key, static_cast<ValueType>(type)));
    if (assigned != id) {
      return Status::Internal("catalog id mismatch on restore: got ",
                              assigned, ", expected ", id);
    }
  }
  ASSIGN_OR_RETURN(uint32_t num_tables, r.ReadU32());
  for (uint32_t t = 0; t < num_tables; ++t) {
    ASSIGN_OR_RETURN(std::string_view table_view, r.ReadLengthPrefixed());
    std::string table(table_view);
    catalog->RegisterTable(table);
    ASSIGN_OR_RETURN(uint32_t num_attrs, r.ReadU32());
    for (uint32_t a = 0; a < num_attrs; ++a) {
      ASSIGN_OR_RETURN(uint32_t id, r.ReadU32());
      ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
      ASSIGN_OR_RETURN(uint8_t flags, r.ReadU8());
      catalog->AddOccurrences(table, id, count);
      if ((flags & 1) != 0) {
        RETURN_NOT_OK(catalog->SetMaterialized(table, id, true));
      }
      // SetMaterialized flips dirty; restore the saved bit exactly.
      RETURN_NOT_OK(catalog->SetDirty(table, id, (flags & 2) != 0));
    }
    db->NoteTable(table);
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in catalog image");
  return Status::OK();
}

Status SaveDatabase(SinewDb* db, const std::string& directory, Env* env) {
  return SaveDatabaseGeneration(db, directory, env).status();
}

Result<uint64_t> SaveDatabaseGeneration(SinewDb* db,
                                        const std::string& directory,
                                        Env* env, const SaveOptions& options) {
  if (env == nullptr) env = Env::Default();
  RETURN_NOT_OK(env->CreateDirs(directory));

  // Pick the new generation number: above both the committed generation and
  // any on-disk gen-* leftover, so an interrupted save can never be confused
  // with (or clobber) a committed one.
  uint64_t max_on_disk = 0;
  ASSIGN_OR_RETURN(std::vector<std::string> entries, env->ListDir(directory));
  for (const std::string& entry : entries) {
    if (std::optional<uint64_t> gen = ParseGenEntry(entry)) {
      max_on_disk = std::max(max_on_disk, *gen);
    }
  }
  uint64_t committed = 0;  // 0 = no (readable) committed generation
  if (env->FileExists(ManifestPath(directory))) {
    // A corrupt existing MANIFEST does not block saving: the new commit
    // rewrites it. It does mean there is no trustworthy fallback to retain.
    auto manifest = ReadManifest(env, directory);
    if (manifest.ok()) committed = manifest->current;
  }
  uint64_t next = std::max(max_on_disk, committed) + 1;

  // Stage the complete new state in its own generation directory.
  const std::string gen_dir = GenDirName(directory, next);
  RETURN_NOT_OK(env->CreateDirs(gen_dir));
  ASSIGN_OR_RETURN(std::string catalog_image, SerializeCatalogImage(db));
  RETURN_NOT_OK(
      WriteImageFile(env, gen_dir + "/catalog.sinew", std::move(catalog_image)));
  Manifest manifest;
  manifest.current = next;
  manifest.previous = committed;
  manifest.tables = db->Tables();
  const std::string prev_gen_dir =
      committed != 0 ? GenDirName(directory, committed) : std::string();
  for (const std::string& table : manifest.tables) {
    ASSIGN_OR_RETURN(engine::Table * engine_table,
                     db->engine()->catalog()->GetTable(table));
    const std::string dst = TableImagePath(gen_dir, table);
    // Compaction fast path: an unchanged table's image is copied verbatim
    // from the previous generation instead of re-serialized. A failed copy
    // (missing/damaged source) silently falls back to a full save — the
    // copy is an optimization, never a correctness dependency.
    bool copied = false;
    if (!prev_gen_dir.empty() &&
        std::find(options.unchanged_tables.begin(),
                  options.unchanged_tables.end(),
                  table) != options.unchanged_tables.end()) {
      copied = engine::CopyTableImage(TableImagePath(prev_gen_dir, table),
                                      dst, env)
                   .ok();
    }
    if (!copied) {
      RETURN_NOT_OK(engine::SaveTable(*engine_table, dst, env));
    }
    // Columnar sidecar: an attached segment summarizes exactly the rows just
    // serialized (mutators detach it before rewriting a covered row), so it
    // persists alongside the image. Best-effort — a failed write only costs
    // a re-shred after the next recovery, never the generation.
    if (std::shared_ptr<const engine::ColumnarSegment> segment =
            engine_table->ColumnarSegmentSnapshot()) {
      (void)WriteImageFile(env, StripSidecarPath(gen_dir, table),
                           segment->Serialize());
    }
  }

  // Commit point: atomically publish the manifest naming the new generation.
  RETURN_NOT_OK(
      WriteImageFile(env, ManifestPath(directory), EncodeManifest(manifest)));
  static metrics::Counter* generations_committed =
      metrics::GetCounter("persist.generations_committed_total");
  generations_committed->Increment();

  GarbageCollect(env, directory, manifest.current, manifest.previous);
  return manifest.current;
}

Status LoadDatabase(SinewDb* db, const std::string& directory, Env* env) {
  if (env == nullptr) env = Env::Default();
  if (!db->Tables().empty()) {
    return Status::InvalidArgument("LoadDatabase requires a fresh SinewDb");
  }
  ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(env, directory));
  Status st = LoadGenerationOrReset(db, directory, manifest.current, env);
  if (!st.ok()) {
    if (manifest.previous != 0) {
      return Status::IOError(
          "committed generation ", manifest.current, " is damaged: ",
          st.message(), "; RecoverDatabase() can fall back to generation ",
          manifest.previous);
    }
    return Status::IOError("committed generation ", manifest.current,
                           " is damaged: ", st.message(),
                           "; no previous generation is retained");
  }
  return Status::OK();
}

Result<RecoveryInfo> RecoverDatabase(SinewDb* db, const std::string& directory,
                                     Env* env) {
  if (env == nullptr) env = Env::Default();
  if (!db->Tables().empty()) {
    return Status::InvalidArgument("RecoverDatabase requires a fresh SinewDb");
  }
  ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(env, directory));
  Status current_st =
      LoadGenerationOrReset(db, directory, manifest.current, env);
  if (current_st.ok()) {
    GarbageCollect(env, directory, manifest.current, manifest.previous);
    RecoveryInfo info;
    info.loaded_generation = manifest.current;
    return info;
  }
  if (manifest.previous == 0) {
    return Status::IOError("committed generation ", manifest.current,
                           " is damaged: ", current_st.message(),
                           "; no previous generation is retained");
  }
  Status previous_st =
      LoadGenerationOrReset(db, directory, manifest.previous, env);
  if (!previous_st.ok()) {
    return Status::IOError(
        "both retained generations are damaged: generation ", manifest.current,
        ": ", current_st.message(), "; generation ", manifest.previous, ": ",
        previous_st.message());
  }
  // Keep the damaged current generation on disk for post-mortems; only
  // unreferenced generations are collected.
  GarbageCollect(env, directory, manifest.current, manifest.previous);
  static metrics::Counter* fallbacks =
      metrics::GetCounter("persist.recovery_fallbacks_total");
  fallbacks->Increment();
  metrics::MetricsRegistry::Global()->AddTrace(metrics::TraceEvent{
      "persist.recovery_fallback",
      std::string(current_st.message()), metrics::NowNanos(), 0, 0});
  RecoveryInfo info;
  info.loaded_generation = manifest.previous;
  info.used_fallback = true;
  info.fallback_reason = current_st.message();
  return info;
}

}  // namespace sinew
