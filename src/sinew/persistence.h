// Whole-database persistence: saves/restores a SinewDb — the attribute
// catalog (global dictionary + per-table state) and every engine table —
// to a directory of checksummed binary images. The paper's prototype
// inherits durability from Postgres; microdb provides table images
// (engine/persist), and this module adds the Sinew-layer state plus the
// crash-safe commit protocol on top.
//
// Directory layout (generation commit protocol):
//   <dir>/MANIFEST                 names the committed generation; updated by
//                                  atomic temp-file + rename, so it is always
//                                  either the old or the new complete manifest
//   <dir>/gen-000001/catalog.sinew dictionary + per-table attribute state
//   <dir>/gen-000001/table_<t>.tbl one engine table image per table
//
// SaveDatabase writes the entire new state into a fresh gen-N directory,
// fsyncs every file, then commits by atomically replacing MANIFEST. A crash
// at any point leaves MANIFEST pointing at a fully written generation:
// recovery loads exactly the previous or the new state, never a mix. The
// previously committed generation is retained as a fallback; older and
// uncommitted generations are garbage-collected.
//
// Every image (including MANIFEST) carries the common/image_io.h footer
// (length + masked CRC32C), so torn writes and bit flips are detected at
// load and reported as a non-OK Status.
//
// All I/O goes through an Env (common/env.h); tests pass a
// FaultInjectionEnv to sweep crash points. `env == nullptr` means
// Env::Default().
//
// Text indexes are not persisted (the paper's Solr index is likewise an
// external, rebuildable artifact): call EnableTextIndex() again after Load.

#ifndef SINEW_SINEW_PERSISTENCE_H_
#define SINEW_SINEW_PERSISTENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"

namespace sinew {

class SinewDb;

/// Saves the database to `directory` (created if missing) as a new committed
/// generation. On any error the previously committed generation is untouched.
Status SaveDatabase(SinewDb* db, const std::string& directory,
                    Env* env = nullptr);

struct SaveOptions {
  /// Tables whose engine state is known unchanged since the previous
  /// committed generation (Table::MutationVersion snapshots match). Their
  /// image files are copied verbatim from that generation instead of being
  /// re-serialized — the LSM-compaction fast path for cold tables. Names
  /// not present in the previous generation fall back to a normal save.
  std::vector<std::string> unchanged_tables;
};

/// Like SaveDatabase, but returns the committed generation number and
/// accepts compaction options. The WAL layer (sinew/durable_db.h) names its
/// log segments after this number to tie each log to the image it deltas.
Result<uint64_t> SaveDatabaseGeneration(SinewDb* db,
                                        const std::string& directory,
                                        Env* env = nullptr,
                                        const SaveOptions& options = {});

/// Restores the committed generation into `db`, which must be freshly
/// constructed (no tables). Failure-atomic: on a non-OK return (missing
/// files, checksum mismatch, torn image, ...) `db` is reset to fresh rather
/// than left half-populated; use RecoverDatabase to fall back to the
/// previous generation.
Status LoadDatabase(SinewDb* db, const std::string& directory,
                    Env* env = nullptr);

/// What RecoverDatabase loaded.
struct RecoveryInfo {
  uint64_t loaded_generation = 0;
  /// True when the committed generation was damaged and the previous one was
  /// loaded instead.
  bool used_fallback = false;
  /// Why the fallback was needed ("" when used_fallback is false).
  std::string fallback_reason;
};

/// Like LoadDatabase, but on a damaged committed generation falls back to
/// the retained previous generation, and garbage-collects generation
/// directories that are not referenced by the MANIFEST (incomplete saves).
/// Errors only when no intact generation exists.
Result<RecoveryInfo> RecoverDatabase(SinewDb* db, const std::string& directory,
                                     Env* env = nullptr);

/// (De)serializes just the catalog image (exposed for tests).
Result<std::string> SerializeCatalogImage(SinewDb* db);
Status RestoreCatalogImage(SinewDb* db, std::string_view image);

}  // namespace sinew

#endif  // SINEW_SINEW_PERSISTENCE_H_
