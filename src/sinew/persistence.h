// Whole-database persistence: saves/restores a SinewDb — the attribute
// catalog (global dictionary + per-table state) and every engine table —
// to a directory of binary images. The paper's prototype inherits
// durability from Postgres; microdb provides table images (engine/persist),
// and this module adds the Sinew-layer state on top.
//
// Layout:
//   <dir>/catalog.sinew          dictionary + per-table attribute state
//   <dir>/table_<name>.tbl       one engine table image per table
//
// Text indexes are not persisted (the paper's Solr index is likewise an
// external, rebuildable artifact): call EnableTextIndex() again after Load.

#ifndef SINEW_SINEW_PERSISTENCE_H_
#define SINEW_SINEW_PERSISTENCE_H_

#include <string>

#include "common/result.h"

namespace sinew {

class SinewDb;

/// Saves the database to `directory` (created if missing).
Status SaveDatabase(SinewDb* db, const std::string& directory);

/// Restores into `db`, which must be freshly constructed (no tables).
Status LoadDatabase(SinewDb* db, const std::string& directory);

/// (De)serializes just the catalog image (exposed for tests).
Result<std::string> SerializeCatalogImage(SinewDb* db);
Status RestoreCatalogImage(SinewDb* db, std::string_view image);

}  // namespace sinew

#endif  // SINEW_SINEW_PERSISTENCE_H_
